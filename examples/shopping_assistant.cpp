// The paper's Figure 1 scenario: a shopping assistant over a multi-modal
// product knowledge base. The user searches in text, uploads a reference
// image ("image-assisted input", Figure 4b), refines with attribute
// feedback, and adjusts modality weights at the query point.

#include <cstdio>

#include "core/coordinator.h"
#include "core/session.h"

namespace {

void PrintTurn(const char* user_line, const mqa::AnswerTurn& turn) {
  std::printf("user: %s\nassistant:\n%s\n\n", user_line, turn.answer.c_str());
}

}  // namespace

int main() {
  mqa::MqaConfig config;
  config.world.num_concepts = 48;
  config.world.seed = 2024;
  config.corpus_size = 8000;
  config.kb_name = "product-catalog";
  config.search.k = 5;

  auto coordinator_or = mqa::Coordinator::Create(config);
  if (!coordinator_or.ok()) {
    std::fprintf(stderr, "startup failed: %s\n",
                 coordinator_or.status().ToString().c_str());
    return 1;
  }
  auto coordinator = std::move(coordinator_or).Value();
  const mqa::World& world = coordinator->world();
  mqa::Session session(coordinator.get());

  // Pick a "product" the user is shopping for: a concept with siblings so
  // an attribute change is possible.
  const uint32_t concept_id = 0;
  const std::string concept_name = world.ConceptName(concept_id);

  // --- Round 1: text-only search (Figure 4a). ---
  const std::string ask1 = "i am looking for " + concept_name;
  auto turn1 = session.Ask(ask1);
  if (!turn1.ok()) {
    std::fprintf(stderr, "%s\n", turn1.status().ToString().c_str());
    return 1;
  }
  PrintTurn(ask1.c_str(), *turn1);

  // --- Round 2: the user clicks the second result and refines. ---
  if (auto st = session.Select(1); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const std::string ask2 =
      "i like this one, could you locate more " + concept_name +
      " similar to it?";
  auto turn2 = session.Ask(ask2);
  if (!turn2.ok()) return 1;
  PrintTurn(ask2.c_str(), *turn2);

  // --- Round 3: image-assisted input (Figure 4b): the user uploads a
  // reference photo (here: an image payload of some catalog object) and
  // asks for similar material. ---
  mqa::Rng rng(99);
  const mqa::Object reference = world.MakeObject(5, &rng);
  const std::string ask3 =
      "could you find more items made of similar material to the one i "
      "have provided?";
  auto turn3 = session.AskWithImage(ask3, reference.modalities[0]);
  if (!turn3.ok()) return 1;
  PrintTurn(ask3.c_str(), *turn3);

  // --- Round 4: the user boosts the text modality before an attribute
  // request (the configuration panel's weight control). ---
  if (auto st = coordinator->SetWeights({0.6f, 1.4f}); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const mqa::ModificationSpec mod = world.MakeModification(5, &rng);
  auto turn4 = session.Ask(mod.text);
  if (!turn4.ok()) return 1;
  PrintTurn(mod.text.c_str(), *turn4);

  std::printf("=== session summary ===\nrounds: %zu, status timeline:\n%s",
              session.rounds(), coordinator->monitor().Render().c_str());
  return 0;
}
