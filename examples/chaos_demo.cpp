// Chaos demo: a multi-round dialogue while faults are injected live into
// the LLM, the text encoder and the query rewriter. The system never
// returns an error to the user — it retries, trips a circuit breaker,
// serves extractive answers, drops dead modalities — and every degradation
// is visible in the turn's notes and on the status panel as "[!]" events.
//
//   FaultInjector::Global().Arm(...)  ->  Ask()  ->  inspect turn.degraded

#include <cstdio>

#include "common/clock.h"
#include "common/fault.h"
#include "core/coordinator.h"
#include "llm/resilient_llm.h"

namespace {

void PrintTurn(const char* label, const mqa::AnswerTurn& turn) {
  std::printf("\n=== %s ===\nassistant:\n%s\n", label, turn.answer.c_str());
  for (const std::string& note : turn.degradation_notes) {
    std::printf("  [degraded] %s\n", note.c_str());
  }
  if (!turn.degraded) std::printf("  (healthy round)\n");
}

}  // namespace

int main() {
  mqa::MqaConfig config;
  config.world.num_concepts = 24;
  config.world.seed = 7;
  config.corpus_size = 1200;
  config.search.k = 5;
  config.index.algorithm = "mqa-hybrid";
  // The resilient online pipeline: 3 LLM attempts with 10ms backoff, a
  // breaker that opens after 2 straight failed rounds and probes after
  // 250ms, and 2 attempts per encoder call.
  config.resilience.enable = true;
  config.resilience.llm_max_attempts = 3;
  config.resilience.llm_initial_backoff_ms = 10.0;
  config.resilience.breaker_failure_threshold = 2;
  config.resilience.breaker_open_ms = 250.0;
  config.resilience.breaker_half_open_successes = 1;
  config.resilience.encoder_max_attempts = 2;

  auto coordinator_or = mqa::Coordinator::Create(config);
  if (!coordinator_or.ok()) {
    std::fprintf(stderr, "failed to start MQA: %s\n",
                 coordinator_or.status().ToString().c_str());
    return 1;
  }
  auto coordinator = std::move(coordinator_or).Value();
  auto& faults = mqa::FaultInjector::Global();
  const auto* llm = dynamic_cast<const mqa::ResilientLlm*>(
      coordinator->answer_generator()->llm());

  mqa::UserQuery query;
  query.text =
      "i would like some images of " + coordinator->world().ConceptName(0);

  // Round 1: everything healthy.
  auto turn = coordinator->Ask(query);
  if (!turn.ok()) return 1;
  PrintTurn("round 1: healthy", *turn);

  // Round 2: the LLM fails twice; the retry loop absorbs it silently.
  mqa::FaultSpec transient;
  transient.max_fires = 2;
  faults.Arm("llm/complete", transient);
  turn = coordinator->Ask(query);
  if (!turn.ok()) return 1;
  PrintTurn("round 2: transient LLM fault (absorbed by retries)", *turn);
  std::printf("  retry stats: %d attempts, %.0f ms backoff\n",
              llm->last_retry_stats().attempts,
              llm->last_retry_stats().total_backoff_ms);

  // Rounds 3-5: the LLM goes down hard. The first two rounds exhaust their
  // retries and trip the breaker; round 5 fails fast while it is open.
  // Every round still answers — extractively, from the retrieved results.
  faults.Arm("llm/complete", mqa::FaultSpec{});
  for (int round = 3; round <= 5; ++round) {
    turn = coordinator->Ask(query);
    if (!turn.ok()) return 1;
    char label[64];
    std::snprintf(label, sizeof(label), "round %d: LLM outage (breaker %s)",
                  round, mqa::BreakerStateToString(llm->breaker_state()));
    PrintTurn(label, *turn);
  }

  // The outage ends; after the cool-down a half-open probe heals the
  // breaker and the LLM answers again. (Snapshot the counters first:
  // Disarm discards them.)
  const mqa::FaultPointStats llm_stats = faults.stats("llm/complete");
  faults.Disarm("llm/complete");
  mqa::SystemClock()->SleepForMillis(300.0);
  turn = coordinator->Ask(query);
  if (!turn.ok()) return 1;
  PrintTurn("round 6: LLM recovered through half-open probe", *turn);
  std::printf("  breaker trace:");
  for (mqa::BreakerState s : llm->breaker().transitions()) {
    std::printf(" -> %s", mqa::BreakerStateToString(s));
  }
  std::printf("\n");

  // Round 7: the text encoder goes down mid-dialogue. The user clicked a
  // result, so the image modality carries the search alone.
  faults.Arm("encoder/sim-text", mqa::FaultSpec{});
  mqa::UserQuery refine;
  refine.text = "more like this one please";
  refine.selected_object = turn->items.empty() ? 0 : turn->items[0].id;
  turn = coordinator->Ask(refine);
  if (!turn.ok()) return 1;
  PrintTurn("round 7: text encoder outage (modality dropped)", *turn);
  const mqa::FaultPointStats enc_stats = faults.stats("encoder/sim-text");
  faults.Disarm("encoder/sim-text");

  // Round 8: the rewriter hop fails once; the raw query text is searched.
  mqa::FaultSpec once;
  once.once = true;
  faults.Arm("llm/rewrite", once);
  turn = coordinator->Ask(query);
  if (!turn.ok()) return 1;
  PrintTurn("round 8: rewriter outage (raw query text)", *turn);

  std::printf("\n=== fault-point hit counts ===\n");
  const mqa::FaultPointStats rewrite_stats = faults.stats("llm/rewrite");
  const struct {
    const char* point;
    mqa::FaultPointStats stats;
  } counters[] = {{"llm/complete", llm_stats},
                  {"encoder/sim-text", enc_stats},
                  {"llm/rewrite", rewrite_stats}};
  for (const auto& c : counters) {
    std::printf("  %-20s hits=%llu fires=%llu\n", c.point,
                static_cast<unsigned long long>(c.stats.hits),
                static_cast<unsigned long long>(c.stats.fires));
  }
  faults.DisarmAll();

  std::printf("\n=== status panel (note the [!] degraded events) ===\n%s",
              coordinator->monitor().Render().c_str());
  return 0;
}
