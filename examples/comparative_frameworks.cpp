// The paper's Figure 5 scenario as a runnable program: the same two-round
// query ("foggy clouds", then "more like this one") answered by MUST, MR,
// JE, and the generative baseline, side by side.

#include <cstdio>

#include "core/experiment.h"
#include "llm/sim_image_generator.h"
#include "retrieval/factory.h"
#include "vector/distance.h"

namespace {

void PrintResults(const char* label, const mqa::ExperimentCorpus& corpus,
                  const std::vector<mqa::Neighbor>& results) {
  std::printf("  [%s]\n", label);
  for (size_t i = 0; i < results.size(); ++i) {
    const mqa::Object& obj = corpus.kb->at(results[i].id);
    std::printf("    %zu) %s (concept: %s)\n", i + 1,
                obj.modalities[0].text.c_str(),
                corpus.world->ConceptName(obj.concept_id).c_str());
  }
}

}  // namespace

int main() {
  mqa::WorldConfig wc;
  wc.num_concepts = 48;
  wc.seed = 2025;
  auto corpus_or = mqa::MakeExperimentCorpus(wc, 6000);
  if (!corpus_or.ok()) {
    std::fprintf(stderr, "%s\n", corpus_or.status().ToString().c_str());
    return 1;
  }
  const mqa::ExperimentCorpus& corpus = *corpus_or;

  mqa::IndexConfig index;
  index.algorithm = "mqa-hybrid";
  index.graph.max_degree = 24;
  mqa::SearchParams params;
  params.k = 3;
  params.beam_width = 96;

  // The user's target: concept 1 first, then an attribute change.
  mqa::Rng rng(4);
  const uint32_t concept_id = 1;
  const mqa::TextQuery round1 =
      corpus.world->MakeTextQuery(concept_id, &rng);
  const mqa::ModificationSpec mod =
      corpus.world->MakeModification(concept_id, &rng);

  std::printf("round 1 query: \"%s\"\n", round1.text.c_str());
  std::printf("round 2 query: \"%s\" (+ the selected image)\n\n",
              mod.text.c_str());

  for (const std::string name : {"must", "mr", "je"}) {
    auto fw = mqa::CreateRetrievalFramework(name, corpus.represented.store,
                                            corpus.represented.weights,
                                            index);
    if (!fw.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   fw.status().ToString().c_str());
      return 1;
    }
    std::printf("=== %s ===\n", name.c_str());

    auto q1 = mqa::EncodeTextQuery(corpus, round1.text);
    if (!q1.ok()) return 1;
    auto r1 = (*fw)->Retrieve(*q1, params);
    if (!r1.ok()) return 1;
    PrintResults("round 1", corpus, r1->neighbors);

    if (!r1->neighbors.empty()) {
      // The user selects the first on-concept result (or the top one).
      uint32_t selected = r1->neighbors[0].id;
      for (const mqa::Neighbor& n : r1->neighbors) {
        if (corpus.kb->at(n.id).concept_id == concept_id) {
          selected = n.id;
          break;
        }
      }
      auto q2 = mqa::EncodeImageTextQuery(corpus, corpus.kb->at(selected),
                                          mod.text);
      if (!q2.ok()) return 1;
      auto r2 = (*fw)->Retrieve(*q2, params);
      if (!r2.ok()) return 1;
      std::printf("  (selected object #%u, target now: %s)\n", selected,
                  corpus.world->ConceptName(mod.target_concept).c_str());
      PrintResults("round 2", corpus, r2->neighbors);
    }
    std::printf("\n");
  }

  // Generative baseline: synthesizes images instead of retrieving them.
  std::printf("=== generative (sim-dalle) ===\n");
  mqa::SimImageGenerator gen(corpus.world.get(), 77);
  auto generated = gen.GenerateBatch(round1.text, 3);
  if (!generated.ok()) return 1;
  for (size_t i = 0; i < generated->size(); ++i) {
    std::printf("  %zu) %s [synthetic, not in knowledge base]\n", i + 1,
                (*generated)[i].caption.c_str());
  }
  return 0;
}
