// Live catalog maintenance: objects stream into the knowledge base while
// the user keeps querying — no rebuild, no downtime. Demonstrates
// Coordinator::IngestObject and the status-monitoring trail it leaves.

#include <cstdio>

#include "core/coordinator.h"
#include "core/session.h"

int main() {
  mqa::MqaConfig config;
  config.world.num_concepts = 24;
  config.world.seed = 11;
  config.corpus_size = 2000;
  config.search.k = 5;

  auto coordinator_or = mqa::Coordinator::Create(config);
  if (!coordinator_or.ok()) {
    std::fprintf(stderr, "startup failed: %s\n",
                 coordinator_or.status().ToString().c_str());
    return 1;
  }
  auto coordinator = std::move(coordinator_or).Value();
  const mqa::World& world = coordinator->world();
  mqa::Session session(coordinator.get());

  const std::string topic = world.ConceptName(5);
  std::printf("catalog: %llu objects. user searches for \"%s\".\n\n",
              static_cast<unsigned long long>(coordinator->kb().size()),
              topic.c_str());
  auto before = session.Ask("find " + topic);
  if (!before.ok()) return 1;
  std::printf("%s\n\n", before->answer.c_str());

  // A supplier uploads 20 new items of that concept.
  std::printf(">>> supplier adds 20 new %s items (live, no rebuild)\n\n",
              topic.c_str());
  mqa::Rng rng(3);
  std::vector<uint64_t> new_ids;
  for (int i = 0; i < 20; ++i) {
    auto id = coordinator->IngestObject(world.MakeObject(5, &rng));
    if (!id.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    new_ids.push_back(*id);
  }

  auto after = session.Ask("show me the latest " + topic);
  if (!after.ok()) return 1;
  std::printf("%s\n", after->answer.c_str());

  // A shopper sends one of the new items' photos: the catalog finds it and
  // its fresh siblings without any rebuild.
  const mqa::Payload& fresh_image =
      coordinator->kb().at(new_ids[0]).modalities[0];
  auto similar = session.AskWithImage("find items like this photo",
                                      fresh_image);
  if (!similar.ok()) return 1;
  size_t fresh_in_results = 0;
  for (const mqa::RetrievedItem& item : session.last_results()) {
    for (uint64_t id : new_ids) {
      if (item.id == id) ++fresh_in_results;
    }
  }
  std::printf("\nquerying with a freshly uploaded photo: %zu of %zu "
              "results are newly ingested objects; catalog now holds %llu "
              "objects.\n",
              fresh_in_results, session.last_results().size(),
              static_cast<unsigned long long>(coordinator->kb().size()));
  return fresh_in_results > 0 ? 0 : 1;
}
