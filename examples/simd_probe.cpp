// Tiny CPU-capability probe for the dispatched distance kernels.
//
//   simd_probe               human-readable report of detected/active level
//   simd_probe --supported   machine-readable: one supported level per line
//   simd_probe --check LVL   exit 0 if LVL is supported on this CPU, 3 if
//                            not (used by CI to skip unsupported matrix
//                            legs with an explicit log line)

#include <cstdio>
#include <cstring>

#include "vector/simd/simd.h"

int main(int argc, char** argv) {
  using mqa::CpuSupports;
  using mqa::SimdLevel;
  using mqa::SimdLevelName;

  const SimdLevel levels[] = {SimdLevel::kScalar, SimdLevel::kAvx2,
                              SimdLevel::kAvx512};
  if (argc >= 2 && std::strcmp(argv[1], "--supported") == 0) {
    for (SimdLevel level : levels) {
      if (CpuSupports(level)) std::printf("%s\n", SimdLevelName(level));
    }
    return 0;
  }
  if (argc >= 3 && std::strcmp(argv[1], "--check") == 0) {
    auto parsed = mqa::SimdLevelFromString(argv[2]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "simd_probe: unknown level '%s'\n", argv[2]);
      return 2;
    }
    if (!CpuSupports(*parsed)) {
      std::printf("simd_probe: level %s not supported on this CPU\n",
                  argv[2]);
      return 3;
    }
    std::printf("simd_probe: level %s supported\n", argv[2]);
    return 0;
  }

  std::printf("detected: %s\n", SimdLevelName(mqa::DetectedSimdLevel()));
  std::printf("active:   %s\n", SimdLevelName(mqa::ActiveSimdLevel()));
  for (SimdLevel level : levels) {
    std::printf("%-7s %s\n", SimdLevelName(level),
                CpuSupports(level) ? "supported" : "unsupported");
  }
  return 0;
}
