// Pluggable indexing walkthrough: build every navigation-graph algorithm
// through the unified five-stage pipeline over the same encoded corpus,
// inspect the stage reports, persist a graph to disk and reload it, and
// pack one index into the Starling-style disk-resident format.

#include <cstdio>
#include <sstream>

#include "core/experiment.h"
#include "diskindex/disk_index.h"
#include "graph/index_factory.h"

int main() {
  mqa::WorldConfig wc;
  wc.num_concepts = 24;
  wc.seed = 3;
  auto corpus_or = mqa::MakeExperimentCorpus(wc, 5000);
  if (!corpus_or.ok()) {
    std::fprintf(stderr, "%s\n", corpus_or.status().ToString().c_str());
    return 1;
  }
  const mqa::ExperimentCorpus& corpus = *corpus_or;
  const mqa::VectorStore& store = *corpus.represented.store;

  auto make_dist = [&]() {
    auto wd = mqa::WeightedMultiDistance::Create(
        store.schema(), corpus.represented.weights);
    return std::make_unique<mqa::MultiVectorDistanceComputer>(
        &store, std::move(wd).Value(), /*enable_pruning=*/true);
  };

  // 1) Every algorithm through one factory call.
  std::printf("=== building all index algorithms ===\n");
  for (const std::string& algo : mqa::AllIndexAlgorithms()) {
    mqa::IndexConfig config;
    config.algorithm = algo;
    config.graph.max_degree = 16;
    mqa::BuildReport report;
    auto index = mqa::CreateIndex(config, &store, make_dist(), &report);
    if (!index.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", algo.c_str(),
                   index.status().ToString().c_str());
      return 1;
    }
    std::printf("%-11s built in %.2fs, avg degree %.1f, stages:",
                algo.c_str(), report.total_seconds, report.avg_degree);
    for (const auto& stage : report.stages) {
      std::printf(" %s(%.0fms)", stage.name.c_str(), stage.elapsed_ms);
    }
    std::printf("\n");
  }

  // 2) Build one flat graph, save it, reload it, search both.
  std::printf("\n=== graph persistence ===\n");
  mqa::GraphBuildConfig graph_config;
  graph_config.algorithm = "mqa-hybrid";
  graph_config.max_degree = 16;
  auto built = mqa::BuildGraphIndex(graph_config, &store, make_dist());
  if (!built.ok()) return 1;
  std::stringstream blob;
  if (auto st = (*built)->graph().Save(blob); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serialized graph: %zu bytes\n", blob.str().size());
  auto reloaded_graph = mqa::AdjacencyGraph::Load(blob);
  if (!reloaded_graph.ok()) return 1;
  mqa::GraphIndex reloaded("reloaded", std::move(reloaded_graph).Value(),
                           make_dist(), (*built)->entry_points());

  const mqa::Vector query = store.Row(42);
  mqa::SearchParams params;
  params.k = 5;
  auto original_hits = (*built)->Search(query.data(), params, nullptr);
  auto reloaded_hits = reloaded.Search(query.data(), params, nullptr);
  if (!original_hits.ok() || !reloaded_hits.ok()) return 1;
  std::printf("top hit before/after reload: #%u / #%u (identical: %s)\n",
              (*original_hits)[0].id, (*reloaded_hits)[0].id,
              *original_hits == *reloaded_hits ? "yes" : "no");

  // 3) Pack the same graph into the disk-resident format.
  std::printf("\n=== disk-resident packing ===\n");
  mqa::DiskIndexConfig disk_config;
  auto wd = mqa::WeightedMultiDistance::Create(store.schema(),
                                               corpus.represented.weights);
  auto disk = mqa::DiskGraphIndex::Create(disk_config, **built, store,
                                          std::move(wd).Value());
  if (!disk.ok()) return 1;
  auto disk_hits = (*disk)->Search(query.data(), params, nullptr);
  if (!disk_hits.ok()) return 1;
  std::printf("disk index: %zu pages, %zu nodes/page, top hit #%u, "
              "%llu page reads for this query\n",
              (*disk)->num_pages(), (*disk)->nodes_per_page(),
              (*disk_hits)[0].id,
              static_cast<unsigned long long>(
                  (*disk)->io_stats().page_reads));
  return 0;
}
