// A REPL frontend over the Coordinator — the terminal equivalent of the
// paper's QA panel. Commands:
//
//   ask <text>            submit a query (uses the current selection)
//   select <rank>         click result <rank> (1-based) as feedback
//   weights <img> <txt>   adjust modality weights
//   framework <name>      switch retrieval framework (must | mr | je)
//   status                print the status-monitoring panel
//   concepts              list a few concept names to ask about
//   reset                 start a fresh dialogue
//   quit                  exit
//
// Reads stdin; exits cleanly on EOF, so it can be scripted:
//   printf 'concepts\nask show me moldy cheese\nselect 1\nquit\n' |
//     ./interactive_session

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "core/coordinator.h"
#include "core/session.h"

namespace {

void PrintHelp() {
  std::printf(
      "commands: ask <text> | select <rank> | weights <img> <txt> |\n"
      "          framework <must|mr|je> | status | concepts | reset | "
      "quit\n");
}

}  // namespace

int main() {
  mqa::MqaConfig config;
  config.world.num_concepts = 48;
  config.world.seed = 7;
  config.corpus_size = 6000;
  config.search.k = 5;
  std::printf("starting MQA (6000 objects, 48 concepts)...\n");
  auto coordinator_or = mqa::Coordinator::Create(config);
  if (!coordinator_or.ok()) {
    std::fprintf(stderr, "startup failed: %s\n",
                 coordinator_or.status().ToString().c_str());
    return 1;
  }
  auto coordinator = std::move(coordinator_or).Value();
  mqa::Session session(coordinator.get());
  std::printf("%s\n", coordinator->monitor().Render().c_str());
  PrintHelp();

  std::string line;
  while (std::printf("mqa> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;

    if (command == "ask") {
      std::string text;
      std::getline(in, text);
      auto turn = session.Ask(mqa::Trim(text));
      if (!turn.ok()) {
        std::printf("error: %s\n", turn.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n", turn->answer.c_str());
    } else if (command == "select") {
      size_t rank = 0;
      in >> rank;
      if (rank == 0 || !session.Select(rank - 1).ok()) {
        std::printf("no result at rank %zu\n", rank);
      } else {
        std::printf("selected result %zu (object #%llu); it will augment "
                    "your next query\n",
                    rank,
                    static_cast<unsigned long long>(*session.selection()));
      }
    } else if (command == "weights") {
      float img = 1.0f, txt = 1.0f;
      in >> img >> txt;
      const auto st = coordinator->SetWeights({img, txt});
      std::printf("%s\n", st.ok() ? "weights updated"
                                  : st.ToString().c_str());
    } else if (command == "framework") {
      std::string name;
      in >> name;
      const auto st = coordinator->SetFramework(name);
      std::printf("%s\n", st.ok() ? ("switched to " + name).c_str()
                                  : st.ToString().c_str());
    } else if (command == "status") {
      std::printf("%s", coordinator->monitor().Render().c_str());
    } else if (command == "concepts") {
      const mqa::World& world = coordinator->world();
      for (uint32_t c = 0; c < std::min(8u, world.num_concepts()); ++c) {
        std::printf("  %s\n", world.ConceptName(c).c_str());
      }
    } else if (command == "reset") {
      session.Reset();
      std::printf("dialogue reset\n");
    } else {
      PrintHelp();
    }
  }
  std::printf("\nbye\n");
  return 0;
}
