// Quickstart: build an MQA system over a synthetic multi-modal knowledge
// base, run a two-round interactive dialogue (text query -> select a result
// -> refine), and print the status-monitoring timeline.
//
// This is the minimal end-to-end tour of the public API:
//   MqaConfig -> Coordinator::Create -> Session::Ask/Select/Ask.

#include <cstdio>

#include "core/coordinator.h"
#include "core/session.h"

int main() {
  mqa::MqaConfig config;
  config.world.num_concepts = 40;
  config.world.seed = 7;
  config.corpus_size = 4000;
  config.search.k = 5;
  config.index.algorithm = "mqa-hybrid";

  // Mirror the status-monitoring panel on stdout as milestones complete.
  auto coordinator_or = mqa::Coordinator::Create(config);
  if (!coordinator_or.ok()) {
    std::fprintf(stderr, "failed to start MQA: %s\n",
                 coordinator_or.status().ToString().c_str());
    return 1;
  }
  auto coordinator = std::move(coordinator_or).Value();
  std::printf("=== status panel ===\n%s\n",
              coordinator->monitor().Render().c_str());

  mqa::Session session(coordinator.get());

  // Round 1: text-only query (Figure 4a).
  const mqa::World& world = coordinator->world();
  const std::string concept_name = world.ConceptName(0);
  std::printf("=== round 1 ===\nuser: i would like some images of %s\n",
              concept_name.c_str());
  auto turn1 = session.Ask("i would like some images of " + concept_name);
  if (!turn1.ok()) {
    std::fprintf(stderr, "round 1 failed: %s\n",
                 turn1.status().ToString().c_str());
    return 1;
  }
  std::printf("assistant:\n%s\n", turn1->answer.c_str());

  // The user clicks the first result and refines.
  if (auto st = session.Select(0); !st.ok()) {
    std::fprintf(stderr, "select failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\n=== round 2 (selected result #1) ===\n");
  auto turn2 = session.Ask(
      "i like this one, could you locate more " + concept_name +
      " similar to it?");
  if (!turn2.ok()) {
    std::fprintf(stderr, "round 2 failed: %s\n",
                 turn2.status().ToString().c_str());
    return 1;
  }
  std::printf("assistant:\n%s\n", turn2->answer.c_str());

  // Show retrieval telemetry for the curious.
  std::printf("\nround-2 retrieval: %zu results, %.2f ms, %llu distance "
              "computations\n",
              turn2->items.size(), turn2->retrieval.latency_ms,
              static_cast<unsigned long long>(
                  turn2->retrieval.stats.dist_comps));
  return 0;
}
