#include "dag/dag.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace mqa::dag {
namespace {

Status Noop(DagContext*) { return Status::OK(); }

TEST(DagContextTest, PutGetTyped) {
  DagContext ctx;
  ctx.Put("x", 42);
  auto x = ctx.Get<int>("x");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(**x, 42);
  **x = 7;
  EXPECT_EQ(**ctx.Get<int>("x"), 7);  // mutation is visible
}

TEST(DagContextTest, MissingKeyAndWrongType) {
  DagContext ctx;
  EXPECT_EQ(ctx.Get<int>("missing").status().code(), StatusCode::kNotFound);
  ctx.Put("s", std::string("hello"));
  EXPECT_EQ(ctx.Get<int>("s").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ctx.Contains("s"));
  EXPECT_FALSE(ctx.Contains("missing"));
}

TEST(DagPipelineTest, RejectsDuplicateAndEmptyNames) {
  DagPipeline p;
  ASSERT_TRUE(p.AddNode("a", {}, Noop).ok());
  EXPECT_EQ(p.AddNode("a", {}, Noop).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(p.AddNode("", {}, Noop).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.AddNode("b", {}, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(DagPipelineTest, ValidateCatchesUnknownDepAndSelfLoop) {
  DagPipeline p;
  ASSERT_TRUE(p.AddNode("a", {"ghost"}, Noop).ok());
  EXPECT_FALSE(p.Validate().ok());

  DagPipeline q;
  ASSERT_TRUE(q.AddNode("a", {"a"}, Noop).ok());
  EXPECT_FALSE(q.Validate().ok());
}

TEST(DagPipelineTest, ValidateCatchesCycle) {
  DagPipeline p;
  ASSERT_TRUE(p.AddNode("a", {"b"}, Noop).ok());
  ASSERT_TRUE(p.AddNode("b", {"a"}, Noop).ok());
  EXPECT_FALSE(p.Validate().ok());
}

TEST(DagPipelineTest, RunsInDependencyOrderSequential) {
  DagPipeline p;
  std::vector<std::string> order;
  auto record = [&order](const std::string& name) {
    return [&order, name](DagContext*) {
      order.push_back(name);
      return Status::OK();
    };
  };
  ASSERT_TRUE(p.AddNode("c", {"b"}, record("c")).ok());
  ASSERT_TRUE(p.AddNode("a", {}, record("a")).ok());
  ASSERT_TRUE(p.AddNode("b", {"a"}, record("b")).ok());
  DagContext ctx;
  ASSERT_TRUE(p.Run(&ctx, /*parallel=*/false).ok());
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(p.reports().size(), 3u);
}

TEST(DagPipelineTest, DiamondRunsEveryNodeOnceParallel) {
  DagPipeline p;
  std::atomic<int> count{0};
  auto body = [&count](DagContext*) {
    ++count;
    return Status::OK();
  };
  ASSERT_TRUE(p.AddNode("root", {}, body).ok());
  ASSERT_TRUE(p.AddNode("left", {"root"}, body).ok());
  ASSERT_TRUE(p.AddNode("right", {"root"}, body).ok());
  ASSERT_TRUE(p.AddNode("sink", {"left", "right"}, body).ok());
  DagContext ctx;
  ASSERT_TRUE(p.Run(&ctx, /*parallel=*/true).ok());
  EXPECT_EQ(count.load(), 4);
  // Sink must come after left and right in the completion log.
  const auto& reports = p.reports();
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports.back().name, "sink");
}

TEST(DagPipelineTest, StagesShareDataThroughContext) {
  DagPipeline p;
  ASSERT_TRUE(p.AddNode("produce", {}, [](DagContext* ctx) {
    ctx->Put("value", 21);
    return Status::OK();
  }).ok());
  ASSERT_TRUE(p.AddNode("consume", {"produce"}, [](DagContext* ctx) {
    auto v = ctx->Get<int>("value");
    if (!v.ok()) return v.status();
    **v *= 2;
    return Status::OK();
  }).ok());
  DagContext ctx;
  ASSERT_TRUE(p.Run(&ctx).ok());
  EXPECT_EQ(**ctx.Get<int>("value"), 42);
}

TEST(DagPipelineTest, FailureStopsDownstreamNodes) {
  DagPipeline p;
  std::atomic<bool> downstream_ran{false};
  ASSERT_TRUE(p.AddNode("bad", {}, [](DagContext*) {
    return Status::Internal("stage exploded");
  }).ok());
  ASSERT_TRUE(p.AddNode("after", {"bad"}, [&](DagContext*) {
    downstream_ran = true;
    return Status::OK();
  }).ok());
  DagContext ctx;
  const Status st = p.Run(&ctx, /*parallel=*/false);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_FALSE(downstream_ran.load());
}

TEST(DagPipelineTest, FailureReportedInParallelModeToo) {
  DagPipeline p;
  ASSERT_TRUE(p.AddNode("a", {}, Noop).ok());
  ASSERT_TRUE(p.AddNode("bad", {}, [](DagContext*) {
    return Status::InvalidArgument("nope");
  }).ok());
  ASSERT_TRUE(p.AddNode("after_bad", {"bad"}, Noop).ok());
  DagContext ctx;
  const Status st = p.Run(&ctx, /*parallel=*/true);
  EXPECT_FALSE(st.ok());
}

TEST(DagPipelineTest, EmptyPipelineSucceeds) {
  DagPipeline p;
  DagContext ctx;
  EXPECT_TRUE(p.Run(&ctx).ok());
}

TEST(DagPipelineTest, ReportsIncludeTimings) {
  DagPipeline p;
  ASSERT_TRUE(p.AddNode("a", {}, Noop).ok());
  DagContext ctx;
  ASSERT_TRUE(p.Run(&ctx).ok());
  ASSERT_EQ(p.reports().size(), 1u);
  EXPECT_EQ(p.reports()[0].name, "a");
  EXPECT_GE(p.reports()[0].elapsed_ms, 0.0);
  EXPECT_TRUE(p.reports()[0].status.ok());
}

TEST(DagPipelineTest, NodeNamesInRegistrationOrder) {
  DagPipeline p;
  ASSERT_TRUE(p.AddNode("z", {}, Noop).ok());
  ASSERT_TRUE(p.AddNode("a", {"z"}, Noop).ok());
  EXPECT_EQ(p.NodeNames(), (std::vector<std::string>{"z", "a"}));
  EXPECT_EQ(p.num_nodes(), 2u);
}

}  // namespace
}  // namespace mqa::dag
