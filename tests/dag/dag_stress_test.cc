// Concurrency stress tests for the DAG executor, designed for the TSan
// preset: concurrent parallel Run()s, shared-context publication across
// dependent stages, failure/exception handling under parallel scheduling.

#include "dag/dag.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace mqa::dag {
namespace {

/// Diamond pipeline: source -> {left, right} -> sink. Each node checks its
/// dependencies' outputs through the context, so ordering violations or
/// torn publications surface as test failures (and races as TSan reports).
Status RunDiamondOnce(int tag) {
  DagContext ctx;
  DagPipeline pipeline("diamond-" + std::to_string(tag));
  MQA_RETURN_NOT_OK(pipeline.AddNode("source", {}, [](DagContext* c) {
    c->Put<int>("a", 1);
    return Status::OK();
  }));
  MQA_RETURN_NOT_OK(pipeline.AddNode("left", {"source"}, [](DagContext* c) {
    MQA_ASSIGN_OR_RETURN(int* a, c->Get<int>("a"));
    c->Put<int>("b", *a + 1);
    return Status::OK();
  }));
  MQA_RETURN_NOT_OK(pipeline.AddNode("right", {"source"}, [](DagContext* c) {
    MQA_ASSIGN_OR_RETURN(int* a, c->Get<int>("a"));
    c->Put<int>("c", *a + 2);
    return Status::OK();
  }));
  MQA_RETURN_NOT_OK(
      pipeline.AddNode("sink", {"left", "right"}, [](DagContext* c) {
        MQA_ASSIGN_OR_RETURN(int* b, c->Get<int>("b"));
        MQA_ASSIGN_OR_RETURN(int* cc, c->Get<int>("c"));
        if (*b + *cc != 5) return Status::Internal("lost an update");
        return Status::OK();
      }));
  return pipeline.Run(&ctx, /*parallel=*/true);
}

TEST(DagStressTest, ConcurrentParallelDiamondRuns) {
  constexpr int kThreads = 4;
  constexpr int kItersEach = 10;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      for (int i = 0; i < kItersEach; ++i) {
        if (!RunDiamondOnce(t * kItersEach + i).ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(DagStressTest, WideFanOutIntoSink) {
  constexpr int kWidth = 24;
  DagContext ctx;
  DagPipeline pipeline("fan-out");
  std::atomic<int> sum{0};
  std::vector<std::string> all;
  for (int i = 0; i < kWidth; ++i) {
    const std::string name = "n" + std::to_string(i);
    all.push_back(name);
    ASSERT_TRUE(pipeline
                    .AddNode(name, {},
                             [&sum, i](DagContext*) {
                               sum += i;
                               return Status::OK();
                             })
                    .ok());
  }
  ASSERT_TRUE(pipeline
                  .AddNode("sink", all,
                           [&sum](DagContext*) {
                             // All producers happened-before the sink.
                             return sum.load() == (kWidth * (kWidth - 1)) / 2
                                        ? Status::OK()
                                        : Status::Internal("missing updates");
                           })
                  .ok());
  EXPECT_TRUE(pipeline.Run(&ctx, /*parallel=*/true).ok());
  EXPECT_EQ(pipeline.reports().size(), static_cast<size_t>(kWidth) + 1);
}

TEST(DagStressTest, SharedContextDistinctKeysFromParallelStages) {
  DagContext ctx;
  DagPipeline pipeline("publishers");
  constexpr int kWriters = 16;
  std::vector<std::string> writers;
  for (int i = 0; i < kWriters; ++i) {
    const std::string name = "w" + std::to_string(i);
    writers.push_back(name);
    ASSERT_TRUE(pipeline
                    .AddNode(name, {},
                             [i](DagContext* c) {
                               c->Put<int>("key" + std::to_string(i), i);
                               return Status::OK();
                             })
                    .ok());
  }
  ASSERT_TRUE(pipeline
                  .AddNode("reader", writers,
                           [](DagContext* c) {
                             for (int i = 0; i < kWriters; ++i) {
                               MQA_ASSIGN_OR_RETURN(
                                   int* v,
                                   c->Get<int>("key" + std::to_string(i)));
                               if (*v != i) {
                                 return Status::Internal("torn publication");
                               }
                             }
                             return Status::OK();
                           })
                  .ok());
  EXPECT_TRUE(pipeline.Run(&ctx, /*parallel=*/true).ok());
}

TEST(DagStressTest, FailureStopsSchedulingUnderParallelRun) {
  for (int iter = 0; iter < 5; ++iter) {
    DagContext ctx;
    DagPipeline pipeline("failing");
    std::atomic<bool> downstream_ran{false};
    ASSERT_TRUE(pipeline
                    .AddNode("bad", {},
                             [](DagContext*) {
                               return Status::Internal("stage exploded");
                             })
                    .ok());
    ASSERT_TRUE(pipeline
                    .AddNode("after", {"bad"},
                             [&downstream_ran](DagContext*) {
                               downstream_ran = true;
                               return Status::OK();
                             })
                    .ok());
    const Status st = pipeline.Run(&ctx, /*parallel=*/true);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.message(), "stage exploded");
    EXPECT_FALSE(downstream_ran.load());
  }
}

// Regression test: a stage that throws must surface as a Status instead of
// deadlocking Run() (the pool future was never drained, so an escaping
// exception used to leave `inflight` nonzero forever).
TEST(DagStressTest, ThrowingStageBecomesStatusNotDeadlock) {
  for (const bool parallel : {false, true}) {
    DagContext ctx;
    DagPipeline pipeline("throwing");
    ASSERT_TRUE(pipeline
                    .AddNode("boom", {},
                             [](DagContext*) -> Status {
                               throw std::runtime_error("kapow");
                             })
                    .ok());
    const Status st = pipeline.Run(&ctx, parallel);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInternal);
    EXPECT_NE(st.message().find("kapow"), std::string::npos);
  }
}

TEST(DagStressTest, DeepChainRepeatedRuns) {
  // Re-running the same pipeline object concurrently is NOT supported
  // (reports_ is per-run state); serial re-runs from one thread must work.
  DagContext ctx;
  DagPipeline pipeline("chain");
  constexpr int kDepth = 32;
  std::string prev;
  for (int i = 0; i < kDepth; ++i) {
    const std::string name = "s" + std::to_string(i);
    std::vector<std::string> deps;
    if (!prev.empty()) deps.push_back(prev);
    ASSERT_TRUE(pipeline
                    .AddNode(name, deps,
                             [](DagContext*) { return Status::OK(); })
                    .ok());
    prev = name;
  }
  for (int run = 0; run < 3; ++run) {
    EXPECT_TRUE(pipeline.Run(&ctx, /*parallel=*/true).ok());
    EXPECT_EQ(pipeline.reports().size(), static_cast<size_t>(kDepth));
  }
}

}  // namespace
}  // namespace mqa::dag
