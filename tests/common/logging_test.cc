#include "common/logging.h"

#include <gtest/gtest.h>

namespace mqa {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, EmittingBelowThresholdDoesNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  MQA_LOG(Debug) << "suppressed " << 42;
  MQA_LOG(Info) << "also suppressed";
  SetLogLevel(original);
}

TEST(LoggingTest, EmittingAboveThresholdDoesNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  MQA_LOG(Warning) << "visible " << 3.14 << " mixed " << "types";
  SetLogLevel(original);
}

}  // namespace
}  // namespace mqa
