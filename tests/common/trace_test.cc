#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"

namespace mqa {
namespace {

TEST(TraceTest, SpanNestingAndOrdering) {
  MockClock clock(5'000'000);  // a nonzero epoch must not leak into spans
  Trace trace("turn", &clock);
  {
    ScopedTrace scoped(&trace);
    Span root("coordinator/turn");
    clock.AdvanceMicros(100);
    {
      Span rewrite("llm/rewrite");
      clock.AdvanceMicros(250);
    }
    {
      Span retrieve("query/retrieve");
      clock.AdvanceMicros(600);
      {
        Span search("graph/search");
        clock.AdvanceMicros(50);
      }
    }
  }
  const std::vector<SpanRecord> spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Ids in Begin order; parents form the expected tree.
  EXPECT_EQ(spans[0].name, "coordinator/turn");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "llm/rewrite");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].name, "query/retrieve");
  EXPECT_EQ(spans[2].parent, spans[0].id);
  EXPECT_EQ(spans[3].name, "graph/search");
  EXPECT_EQ(spans[3].parent, spans[2].id);
  // Timestamps are epoch-relative and exact under the MockClock.
  EXPECT_EQ(spans[0].start_micros, 0);
  EXPECT_EQ(spans[0].end_micros, 1000);
  EXPECT_EQ(spans[1].start_micros, 100);
  EXPECT_EQ(spans[1].DurationMicros(), 250);
  EXPECT_EQ(spans[2].DurationMicros(), 650);
  EXPECT_EQ(spans[3].DurationMicros(), 50);
}

TEST(TraceTest, ChildDurationsSumConsistently) {
  // The acceptance check: children of a span account for at most the
  // parent's duration, and exactly when nothing happens between them.
  MockClock clock;
  Trace trace("turn", &clock);
  {
    ScopedTrace scoped(&trace);
    Span root("root");
    {
      Span a("a");
      clock.AdvanceMicros(300);
    }
    {
      Span b("b");
      clock.AdvanceMicros(700);
    }
  }
  const std::vector<SpanRecord> spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);
  int64_t child_sum = 0;
  for (const SpanRecord& s : spans) {
    if (s.parent == spans[0].id) child_sum += s.DurationMicros();
  }
  EXPECT_EQ(child_sum, spans[0].DurationMicros());
  EXPECT_EQ(trace.TotalMicros(), 1000);
}

TEST(TraceTest, NoActiveTraceMakesSpansNoOps) {
  ASSERT_EQ(ActiveTrace(), nullptr);
  Span span("ignored");
  EXPECT_EQ(span.id(), -1);
  EXPECT_EQ(ActiveSpanId(), -1);
}

TEST(TraceTest, ScopedTraceRestoresPreviousAmbient) {
  MockClock clock;
  Trace outer("outer", &clock);
  Trace inner("inner", &clock);
  ScopedTrace outer_scope(&outer);
  EXPECT_EQ(ActiveTrace(), &outer);
  {
    ScopedTrace inner_scope(&inner, 7);
    EXPECT_EQ(ActiveTrace(), &inner);
    EXPECT_EQ(ActiveSpanId(), 7);
  }
  EXPECT_EQ(ActiveTrace(), &outer);
  EXPECT_EQ(ActiveSpanId(), -1);
}

TEST(TraceTest, ExplicitSpanDoesNotTouchAmbientState) {
  MockClock clock;
  Trace trace("t", &clock);
  {
    Span span(&trace, "explicit", -1);
    clock.AdvanceMicros(10);
    EXPECT_EQ(ActiveTrace(), nullptr);  // explicit form leaves TLS alone
  }
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].DurationMicros(), 10);
}

TEST(TraceTest, EndSpanIsIdempotent) {
  MockClock clock;
  Trace trace("t", &clock);
  const int32_t id = trace.BeginSpan("s");
  clock.AdvanceMicros(5);
  trace.EndSpan(id);
  clock.AdvanceMicros(100);
  trace.EndSpan(id);           // second end must not move the timestamp
  trace.EndSpan(999);          // unknown ids are ignored
  trace.EndSpan(-3);
  EXPECT_EQ(trace.spans()[0].DurationMicros(), 5);
}

TEST(TraceTest, ToJsonGolden) {
  MockClock clock;
  Trace trace("turn", &clock);
  const int32_t root = trace.BeginSpan("coordinator/turn");
  clock.AdvanceMicros(100);
  const int32_t child = trace.BeginSpan("query/retrieve", root);
  clock.AdvanceMicros(400);
  trace.EndSpan(child);
  trace.EndSpan(root);
  const int32_t open = trace.BeginSpan("dangling", root);
  (void)open;  // left open on purpose
  const std::string expected =
      R"({"trace":"turn","spans":[)"
      R"({"id":0,"parent":-1,"name":"coordinator/turn","start_us":0,)"
      R"("dur_us":500},)"
      R"({"id":1,"parent":0,"name":"query/retrieve","start_us":100,)"
      R"("dur_us":400},)"
      R"({"id":2,"parent":0,"name":"dangling","start_us":500,)"
      R"("dur_us":-1}]})";
  EXPECT_EQ(trace.ToJson(), expected);
}

TEST(TraceTest, RenderShowsTreeAndShares) {
  MockClock clock;
  Trace trace("turn", &clock);
  {
    ScopedTrace scoped(&trace);
    Span root("coordinator/turn");
    {
      Span retrieve("query/retrieve");
      clock.AdvanceMicros(750);
    }
    {
      Span answer("coordinator/answer");
      clock.AdvanceMicros(250);
    }
  }
  const std::string rendered = trace.Render();
  EXPECT_NE(rendered.find("turn (1.000 ms total)"), std::string::npos);
  EXPECT_NE(rendered.find("  coordinator/turn: 1.000 ms (100.0%)"),
            std::string::npos);
  EXPECT_NE(rendered.find("    query/retrieve: 0.750 ms (75.0%)"),
            std::string::npos);
  EXPECT_NE(rendered.find("    coordinator/answer: 0.250 ms (25.0%)"),
            std::string::npos);
  // Sibling order in the render matches Begin order.
  EXPECT_LT(rendered.find("query/retrieve"),
            rendered.find("coordinator/answer"));
}

TEST(TraceTest, RenderMarksOpenSpans) {
  MockClock clock;
  Trace trace("t", &clock);
  (void)trace.BeginSpan("stuck");
  EXPECT_NE(trace.Render().find("stuck (open)"), std::string::npos);
}

}  // namespace
}  // namespace mqa
