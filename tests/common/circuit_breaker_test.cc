#include "common/circuit_breaker.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace mqa {
namespace {

CircuitBreakerConfig SmallBreaker() {
  CircuitBreakerConfig c;
  c.failure_threshold = 3;
  c.open_duration_ms = 1000.0;
  c.half_open_successes = 2;
  return c;
}

TEST(CircuitBreakerTest, StaysClosedUnderSuccess) {
  MockClock clock;
  CircuitBreaker breaker(SmallBreaker(), &clock);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(breaker.Admit().ok());
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.transitions(),
            (std::vector<BreakerState>{BreakerState::kClosed}));
}

TEST(CircuitBreakerTest, TripsOpenAfterConsecutiveFailures) {
  MockClock clock;
  CircuitBreaker breaker(SmallBreaker(), &clock);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.Admit().ok());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  const Status st = breaker.Admit();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("circuit breaker open"), std::string::npos);
}

TEST(CircuitBreakerTest, SuccessResetsFailureStreak) {
  MockClock clock;
  CircuitBreaker breaker(SmallBreaker(), &clock);
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2u);
}

TEST(CircuitBreakerTest, PermanentErrorsCountAsSuccess) {
  MockClock clock;
  CircuitBreaker breaker(SmallBreaker(), &clock);
  for (int i = 0; i < 10; ++i) {
    breaker.Record(Status::InvalidArgument("the service said no"));
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, FullClosedOpenHalfOpenClosedCycle) {
  MockClock clock;
  CircuitBreaker breaker(SmallBreaker(), &clock);

  // Trip open.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.Admit().ok());
    breaker.Record(Status::Unavailable("down"));
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Admit().ok());

  // Cool-down not yet elapsed: still rejected.
  clock.AdvanceMillis(999.0);
  EXPECT_FALSE(breaker.Admit().ok());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  // Cool-down elapsed: the next Admit rolls to half-open and admits one
  // probe; a second concurrent probe is rejected.
  clock.AdvanceMillis(2.0);
  EXPECT_TRUE(breaker.Admit().ok());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Admit().ok());
  breaker.Record(Status::OK());

  // Second probe success closes the breaker.
  EXPECT_TRUE(breaker.Admit().ok());
  breaker.Record(Status::OK());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  EXPECT_EQ(breaker.transitions(),
            (std::vector<BreakerState>{
                BreakerState::kClosed, BreakerState::kOpen,
                BreakerState::kHalfOpen, BreakerState::kClosed}));
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensAndRestartsCoolDown) {
  MockClock clock;
  CircuitBreaker breaker(SmallBreaker(), &clock);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.AdvanceMillis(1001.0);
  EXPECT_TRUE(breaker.Admit().ok());  // probe admitted (half-open)
  breaker.Record(Status::Unavailable("still down"));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // The cool-down restarted at the failed probe.
  clock.AdvanceMillis(500.0);
  EXPECT_FALSE(breaker.Admit().ok());
  clock.AdvanceMillis(501.0);
  EXPECT_TRUE(breaker.Admit().ok());
}

TEST(CircuitBreakerTest, TransitionCallbackObservesEveryChange) {
  MockClock clock;
  CircuitBreaker breaker(SmallBreaker(), &clock);
  std::vector<std::string> seen;
  breaker.OnTransition([&](BreakerState s) {
    seen.push_back(BreakerStateToString(s));
  });
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.AdvanceMillis(1001.0);
  EXPECT_TRUE(breaker.Admit().ok());
  breaker.RecordSuccess();
  EXPECT_TRUE(breaker.Admit().ok());
  breaker.RecordSuccess();
  EXPECT_EQ(seen,
            (std::vector<std::string>{"open", "half-open", "closed"}));
}

}  // namespace
}  // namespace mqa
