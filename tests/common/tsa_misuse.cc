// NOT part of any test binary. This translation unit deliberately breaks
// the concurrency contracts from common/sync.h; the `common.tsa_enforced`
// ctest (Clang only) compiles it with -Wthread-safety
// -Werror=thread-safety and expects the compile to FAIL (WILL_FAIL),
// proving that the annotations reject (1) reading a guarded field without
// the lock and (2) calling an MQA_REQUIRES method without holding it.

#include "common/sync.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    mqa::MutexLock lock(&mu_);
    balance_ += amount;
  }

  // Violation 1: reads an MQA_GUARDED_BY field with the lock not held.
  int UnsafeRead() { return balance_; }

  void WithdrawLocked(int amount) MQA_REQUIRES(mu_) { balance_ -= amount; }

  // Violation 2: calls an MQA_REQUIRES method without acquiring mu_.
  void BadWithdraw(int amount) { WithdrawLocked(amount); }

 private:
  mqa::Mutex mu_;
  int balance_ MQA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  static_cast<void>(account.UnsafeRead());
  account.BadWithdraw(1);
  return 0;
}
