// NOT part of any test binary. This translation unit deliberately discards
// a Status and a Result; the `common.nodiscard_enforced` ctest compiles it
// with -Werror=unused-result and expects the compile to FAIL (WILL_FAIL),
// proving that the [[nodiscard]] attributes on Status and Result<T> are
// present and enforced.

#include "common/result.h"
#include "common/status.h"

namespace {

mqa::Status MakeStatus() { return mqa::Status::Internal("dropped"); }
mqa::Result<int> MakeResult() { return mqa::Status::NotFound("dropped"); }

}  // namespace

int main() {
  MakeStatus();  // discarded Status: must be a compile error
  MakeResult();  // discarded Result: must be a compile error
  return 0;
}
