#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

namespace mqa {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenZeroRequested) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  auto f = pool.Submit([] {});
  f.get();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(0, [&touched](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&sum](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 3);  // 0 + 1 + 2
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // Pool still usable afterwards.
  auto g = pool.Submit([] {});
  g.get();
}

TEST(ThreadPoolTest, PendingTasksExecuteBeforeShutdown) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Post([&counter] { ++counter; });
    }
  }  // destructor drains
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, PostRunsDetachedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Post([&counter] { ++counter; });
  }
  // Post has no completion channel; rendezvous through a submitted fence
  // per worker is not enough (workers race), so spin on the counter.
  while (counter.load() < 50) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, PostSwallowsExceptions) {
  std::atomic<bool> after{false};
  {
    ThreadPool pool(1);
    pool.Post([] { throw std::runtime_error("detached boom"); });
    pool.Post([&after] { after = true; });
  }  // drains; the throwing task must not take down the worker
  EXPECT_TRUE(after.load());
}

TEST(ThreadPoolTest, DefaultPoolIsSingleton) {
  ThreadPool& a = DefaultThreadPool();
  ThreadPool& b = DefaultThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

}  // namespace
}  // namespace mqa
