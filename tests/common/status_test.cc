#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace mqa {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, FromCodeBuildsArbitraryCodes) {
  const Status st = Status::FromCode(StatusCode::kUnavailable, "try later");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(st.message(), "try later");
  EXPECT_EQ(st.ToString(), "Unavailable: try later");
  // kOk degrades to plain OK regardless of message.
  EXPECT_TRUE(Status::FromCode(StatusCode::kOk, "ignored").ok());
}

TEST(StatusTest, RetryabilityMatchesTaxonomy) {
  EXPECT_TRUE(StatusCodeIsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(StatusCodeIsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(StatusCodeIsRetryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(StatusCodeIsRetryable(StatusCode::kOk));
  EXPECT_FALSE(StatusCodeIsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(StatusCodeIsRetryable(StatusCode::kIoError));
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status st = Status::InvalidArgument("bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
  EXPECT_FALSE(st.ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailsWhenNegative(int x) {
  MQA_RETURN_NOT_OK(x < 0 ? Status::InvalidArgument("negative")
                          : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(FailsWhenNegative(1).ok());
  EXPECT_EQ(FailsWhenNegative(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ConstructingFromOkStatusDegradesToInternal) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).Value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MQA_ASSIGN_OR_RETURN(int h, Half(x));
  MQA_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = Quarter(6);  // 6/2 = 3, odd -> error in second step
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace mqa
