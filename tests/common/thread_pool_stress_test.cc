// Multi-threaded stress tests for ThreadPool, written to run (and stay
// clean) under -fsanitize=thread. Sizes are modest so the TSan preset
// finishes quickly, but every cross-thread edge the pool exposes is
// exercised: concurrent submitters, concurrent ParallelFor callers,
// exception propagation, and shutdown under pressure.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mqa {
namespace {

TEST(ThreadPoolStressTest, ManyExternalSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 200;

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures.push_back(pool.Submit([&counter] { ++counter; }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStressTest, ConcurrentParallelForCallers) {
  ThreadPool pool(4);
  constexpr int kCallers = 3;
  constexpr size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits] {
      pool.ParallelFor(kN, [&hits](size_t i) { ++hits[i]; });
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), kCallers);
}

// Regression test for the ParallelFor exception contract: a throwing
// iteration must propagate to the caller after ALL sibling chunks finished
// (the old behaviour unwound immediately, letting still-running chunks
// touch the caller's destroyed callable — a use-after-free under ASan).
TEST(ThreadPoolStressTest, ParallelForPropagatesExceptionAfterAllChunks) {
  ThreadPool pool(4);
  constexpr size_t kN = 64;
  std::atomic<size_t> executed{0};
  bool caught = false;
  try {
    // The callable owns heap state; if a sibling chunk outlived the call it
    // would touch freed memory.
    auto owned = std::make_shared<std::vector<int>>(kN, 1);
    pool.ParallelFor(kN, [&executed, owned](size_t i) {
      executed += static_cast<size_t>((*owned)[i]);
      if (i == 3) throw std::runtime_error("iteration failed");
      // Give sibling chunks a chance to overlap with the failing one.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "iteration failed");
  }
  EXPECT_TRUE(caught);
  // Every chunk ran to completion or up to its throwing iteration; at
  // minimum all chunks were entered, so most iterations executed.
  EXPECT_GE(executed.load(), kN - kN / 4);

  // The pool survives and stays usable.
  std::atomic<int> after{0};
  pool.ParallelFor(10, [&after](size_t) { ++after; });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPoolStressTest, FirstOfSeveralExceptionsWins) {
  ThreadPool pool(4);
  // Several chunks throw; exactly one exception reaches the caller and the
  // pool does not terminate.
  EXPECT_THROW(
      pool.ParallelFor(256, [](size_t i) {
        if (i % 8 == 0) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ThreadPoolStressTest, ShutdownDrainsWhileSubmitterRaces) {
  std::atomic<int> done{0};
  constexpr int kTasks = 100;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&done] { ++done; });
    }
  }  // ~ThreadPool drains the queue before joining
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolStressTest, SubmitFromWorkerTask) {
  // A task may enqueue follow-up work without blocking on it.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> outer;
  outer.reserve(16);
  for (int i = 0; i < 16; ++i) {
    outer.push_back(pool.Submit([&pool, &counter] {
      ++counter;
      pool.Submit([&counter] { ++counter; });
    }));
  }
  for (auto& f : outer) f.get();
  // Inner tasks are drained at destruction; counter reaches 32 after the
  // pool dies. Wait for them via a flushing barrier task instead.
  pool.ParallelFor(1, [](size_t) {});
  // All inner submissions happened-before the futures resolved; give the
  // queue one more drain cycle.
  while (counter.load() < 32) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(counter.load(), 32);
}

}  // namespace
}  // namespace mqa
