#include "common/check.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/result.h"
#include "common/status.h"

namespace mqa {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  MQA_CHECK(true) << "never shown";
  MQA_CHECK_EQ(2 + 2, 4);
  MQA_CHECK_NE(1, 2);
  MQA_CHECK_LT(1, 2) << "context";
  MQA_CHECK_LE(2, 2);
  MQA_CHECK_GT(3, 2);
  MQA_CHECK_GE(3, 3);
  MQA_DCHECK(true);
  MQA_DCHECK_EQ(0, 0);
}

TEST(CheckTest, OperandsEvaluateExactlyOnce) {
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  MQA_CHECK_LE(next(), 10);
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, WorksInsideUnbracedIfElse) {
  // The statement-shaped CHECK_OP macros must not steal a dangling else.
  bool took_else = false;
  if (false)
    MQA_CHECK_EQ(1, 1);
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

TEST(CheckDeathTest, FailedCheckAbortsWithConditionAndMessage) {
  EXPECT_DEATH(MQA_CHECK(1 == 2) << " while testing",
               "Check failed: 1 == 2 while testing");
}

TEST(CheckDeathTest, ComparisonFailurePrintsBothOperands) {
  const int lhs = 3;
  const int rhs = 7;
  EXPECT_DEATH(MQA_CHECK_EQ(lhs, rhs), "Check failed: lhs == rhs \\(3 vs 7\\)");
}

TEST(CheckDeathTest, FailureMessageCarriesFileAndLine) {
  EXPECT_DEATH(MQA_CHECK(false), "check_test\\.cc:[0-9]+ Check failed");
}

TEST(CheckDeathTest, StreamedContextIsAppended) {
  const uint64_t id = 99;
  EXPECT_DEATH(MQA_CHECK_LT(id, 10u) << " bad id " << id,
               "\\(99 vs 10\\) bad id 99");
}

// Result<T> misuse: taking the value of an error result is a fatal
// invariant violation, not UB — the process aborts with the error status.
TEST(CheckDeathTest, ResultValueOnErrorAborts) {
  Result<int> r = Status::NotFound("no such index");
  EXPECT_DEATH(r.Value(), "Result::Value\\(\\) on error.*no such index");
}

TEST(CheckDeathTest, ResultDereferenceOnErrorAborts) {
  Result<int> r = Status::Internal("exploded");
  EXPECT_DEATH(*r, "Result::Value\\(\\) on error.*exploded");
}

TEST(CheckDeathTest, MovedValueAccessOnErrorAborts) {
  EXPECT_DEATH(
      {
        Result<int> r = Status::InvalidArgument("bad arg");
        int v = std::move(r).Value();
        (void)v;
      },
      "Result::Value\\(\\) on error.*bad arg");
}

}  // namespace
}  // namespace mqa
