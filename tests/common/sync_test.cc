#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mqa {
namespace {

TEST(SyncTest, MutexLockMutualExclusion) {
  Mutex mu;
  int counter = 0;  // deliberately non-atomic: the lock is the protection
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SyncTest, TryLockReflectsHeldState) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{true};
  // TryLock from another thread must fail while this thread holds the
  // lock (same-thread try_lock on a held std::mutex is UB).
  std::thread probe([&] { acquired = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, CondVarHandoff) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread consumer([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = 42;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(SyncTest, CondVarNotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  constexpr int kReaders = 4;
  // Barrier-ish: all readers hold the shared lock until every reader has
  // arrived, proving the holds overlap.
  std::atomic<int> arrived{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      ReaderLock lock(&mu);
      const int now = concurrent.fetch_add(1) + 1;
      int expect = peak.load();
      while (expect < now && !peak.compare_exchange_weak(expect, now)) {
      }
      arrived.fetch_add(1);
      while (arrived.load() < kReaders) std::this_thread::yield();
      concurrent.fetch_sub(1);
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(peak.load(), kReaders);
}

TEST(SyncTest, WriterLockExcludesReaders) {
  SharedMutex mu;
  int value = 0;
  std::atomic<bool> reader_started{false};
  std::atomic<bool> reader_done{false};
  std::thread reader;
  {
    WriterLock lock(&mu);
    value = 7;
    reader = std::thread([&] {
      reader_started = true;
      ReaderLock rlock(&mu);
      // The writer's release happens-before our acquisition: the
      // intermediate value 7 must never be visible here.
      EXPECT_EQ(value, 8);
      reader_done = true;
    });
    while (!reader_started.load()) std::this_thread::yield();
    value = 8;
    // The reader cannot have acquired the shared lock while we hold the
    // exclusive one.
    EXPECT_FALSE(reader_done.load());
  }
  reader.join();
  EXPECT_TRUE(reader_done.load());
}

}  // namespace
}  // namespace mqa
