#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace mqa {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonNumberTest, IntegralValuesPrintWithoutFraction) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-7.0), "-7");
}

TEST(JsonNumberTest, FractionsUseShortestSixDigitForm) {
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(0.25), "0.25");
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriterTest, ObjectWithSiblingsAndNesting) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(1);
  w.Key("b").String("x");
  w.Key("c").BeginArray();
  w.Number(1.5);
  w.Bool(true);
  w.Null();
  w.BeginObject();
  w.Key("d").UInt(9);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":[1.5,true,null,{"d":9}]})");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("o").BeginObject().EndObject();
  w.Key("a").BeginArray().EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"o":{},"a":[]})");
}

TEST(JsonWriterTest, KeysAreEscaped) {
  JsonWriter w;
  w.BeginObject();
  w.Key("we\"ird").Int(1);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"we\"ird":1})");
}

}  // namespace
}  // namespace mqa
