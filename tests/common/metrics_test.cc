#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace mqa {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  // Run under TSan this also proves the relaxed atomics are race-free.
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndRead) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketAssignmentInclusiveUpperEdge) {
  Histogram h({1.0, 2.0, 4.0});
  h.Record(1.0);  // exactly on an edge: belongs to bucket 0 (0, 1]
  h.Record(1.5);  // bucket 1 (1, 2]
  h.Record(4.0);  // bucket 2 (2, 4]
  h.Record(9.0);  // overflow
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 15.5);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 9.0);
}

TEST(HistogramTest, EmptySnapshotIsZeroed) {
  Histogram h({1.0});
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 0.0);
}

TEST(HistogramTest, PercentileExactSmallCase) {
  // One sample per bucket: 0.5 in (0,1], 1.5 in (1,2], 3 in (2,4],
  // 6 in (4,8].
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (double v : {0.5, 1.5, 3.0, 6.0}) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  // p50 -> 2nd smallest: interpolates to the top of bucket (1, 2].
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 2.0);
  // p100 -> 4th: bucket (4, 8] interpolates to 8, clamped to max = 6.
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 6.0);
  // p1 -> 1st: bucket (0, 1] interpolates to 1.0 (within [min, max]).
  EXPECT_DOUBLE_EQ(snap.Percentile(1), 1.0);
}

TEST(HistogramTest, PercentileSingleValueClampsToObserved) {
  Histogram h({10.0});
  h.Record(5.0);
  // Interpolation alone would report the bucket top (10); the clamp to
  // the observed [min, max] recovers the exact value.
  EXPECT_DOUBLE_EQ(h.Snapshot().Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().Percentile(99), 5.0);
}

TEST(HistogramTest, PercentileOverflowBucketReportsMax) {
  Histogram h({1.0});
  h.Record(0.5);
  h.Record(100.0);
  h.Record(200.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().Percentile(99), 200.0);
}

TEST(HistogramTest, MergeCombinesCountsAndExtremes) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.Record(0.5);
  a.Record(1.5);
  b.Record(1.7);
  b.Record(10.0);
  HistogramSnapshot merged = a.Snapshot();
  ASSERT_TRUE(merged.Merge(b.Snapshot()).ok());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_DOUBLE_EQ(merged.sum, 13.7);
  EXPECT_DOUBLE_EQ(merged.min, 0.5);
  EXPECT_DOUBLE_EQ(merged.max, 10.0);
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 2u);
  EXPECT_EQ(merged.counts[2], 1u);
  // Percentiles work on the merged distribution: p50 -> 2nd of 4, in
  // bucket (1, 2] holding ranks 2-3; frac = 1/2 -> 1.5.
  EXPECT_DOUBLE_EQ(merged.Percentile(50), 1.5);
}

TEST(HistogramTest, MergeIntoEmptyAdoptsExtremes) {
  Histogram empty({1.0, 2.0});
  Histogram full({1.0, 2.0});
  full.Record(0.25);
  full.Record(1.25);
  HistogramSnapshot merged = empty.Snapshot();
  ASSERT_TRUE(merged.Merge(full.Snapshot()).ok());
  EXPECT_DOUBLE_EQ(merged.min, 0.25);
  EXPECT_DOUBLE_EQ(merged.max, 1.25);
  EXPECT_EQ(merged.count, 2u);
}

TEST(HistogramTest, MergeRejectsMismatchedBounds) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  HistogramSnapshot snap = a.Snapshot();
  const Status st = snap.Merge(b.Snapshot());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(HistogramTest, ConcurrentRecordsAreExact) {
  Histogram h({1.0, 2.0, 3.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(0.5 + t);  // one bucket per thread
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 3.5);
  EXPECT_EQ(snap.counts[0], static_cast<uint64_t>(kPerThread));  // 0.5
  EXPECT_EQ(snap.counts[1], static_cast<uint64_t>(kPerThread));  // 1.5
  EXPECT_EQ(snap.counts[2], static_cast<uint64_t>(kPerThread));  // 2.5
  EXPECT_EQ(snap.counts[3], static_cast<uint64_t>(kPerThread));  // 3.5 overflows
}

TEST(MetricsRegistryTest, PointersAreStableAndShared) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x/count");
  Counter* b = reg.GetCounter("x/count");
  EXPECT_EQ(a, b);
  a->Increment(7);
  EXPECT_EQ(reg.CounterValue("x/count"), 7u);
  EXPECT_EQ(reg.CounterValue("absent"), 0u);
  Histogram* h = reg.GetHistogram("x/lat", {1.0, 2.0});
  // Later callers get the existing instance regardless of bounds.
  EXPECT_EQ(reg.GetHistogram("x/lat", {99.0}), h);
  EXPECT_EQ(h->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, ResetAllKeepsPointersValid) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("a");
  Histogram* h = reg.GetHistogram("b", {1.0});
  c->Increment(3);
  h->Record(0.5);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.GetCounter("a"), c);
}

TEST(MetricsRegistryTest, ToJsonGoldenEmpty) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.ToJson(), R"({"counters":{},"gauges":{},"histograms":{}})");
}

TEST(MetricsRegistryTest, ToJsonGolden) {
  MetricsRegistry reg;
  reg.GetCounter("a/b")->Increment(3);
  reg.GetGauge("g")->Set(1.5);
  Histogram* h = reg.GetHistogram("h", {1.0, 2.0});
  h->Record(0.5);   // bucket (0, 1]
  h->Record(3.0);   // overflow
  const std::string expected =
      R"({"counters":{"a/b":3},"gauges":{"g":1.5},"histograms":)"
      R"({"h":{"count":2,"sum":3.5,"min":0.5,"max":3,"mean":1.75,)"
      R"("p50":1,"p95":3,"p99":3,"buckets":[[1,1],[null,1]]}}})";
  EXPECT_EQ(reg.ToJson(), expected);
}

TEST(MetricsRegistryTest, ToJsonSortsNames) {
  MetricsRegistry reg;
  reg.GetCounter("z");
  reg.GetCounter("a");
  const std::string json = reg.ToJson();
  EXPECT_LT(json.find("\"a\""), json.find("\"z\""));
  EXPECT_EQ(reg.CounterNames(), (std::vector<std::string>{"a", "z"}));
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(ScopedLatencyTest, RecordsOneSample) {
  Histogram h({1000.0});
  { ScopedLatency latency(&h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, DefaultLatencyBoundsAreSortedAndNonEmpty) {
  const std::vector<double>& bounds = Histogram::DefaultLatencyBoundsMs();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

}  // namespace
}  // namespace mqa
