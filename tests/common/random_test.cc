#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace mqa {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextUint64StaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextUint64(1), 0u);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsLookNormal) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(23);
  const auto perm = rng.Permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::set<uint32_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(29);
  EXPECT_TRUE(rng.Permutation(0).empty());
  const auto one = rng.Permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(31);
  const auto sample = rng.SampleWithoutReplacement(1000, 50);
  ASSERT_EQ(sample.size(), 50u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
  for (uint32_t v : sample) EXPECT_LT(v, 1000u);
}

TEST(RngTest, SampleWithoutReplacementAllWhenKGeqN) {
  Rng rng(37);
  const auto sample = rng.SampleWithoutReplacement(10, 25);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

}  // namespace
}  // namespace mqa
