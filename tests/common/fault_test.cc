#include "common/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace mqa {
namespace {

TEST(FaultInjectorTest, DisarmedCheckIsOkAndCheap) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.Check("any/point").ok());
  EXPECT_EQ(injector.stats("any/point").hits, 0u);
}

TEST(FaultInjectorTest, ArmedPointInjectsCodeAndMessage) {
  FaultInjector injector;
  FaultSpec spec;
  spec.code = StatusCode::kIoError;
  spec.message = "disk on fire";
  injector.Arm("disk/read", spec);
  EXPECT_TRUE(injector.enabled());

  const Status st = injector.Check("disk/read");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("[fault:disk/read]"), std::string::npos);
  EXPECT_NE(st.message().find("disk on fire"), std::string::npos);

  // Unarmed points are unaffected.
  EXPECT_TRUE(injector.Check("other/point").ok());
}

TEST(FaultInjectorTest, OnceFiresExactlyOnceThenDisarms) {
  FaultInjector injector;
  FaultSpec spec;
  spec.once = true;
  injector.Arm("llm/complete", spec);
  EXPECT_FALSE(injector.Check("llm/complete").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.Check("llm/complete").ok());
  }
  EXPECT_EQ(injector.stats("llm/complete").fires, 1u);
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultInjectorTest, MaxFiresDisarmsAfterBudget) {
  FaultInjector injector;
  FaultSpec spec;
  spec.max_fires = 3;
  injector.Arm("p", spec);
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    if (!injector.Check("p").ok()) ++failures;
  }
  EXPECT_EQ(failures, 3);
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultInjectorTest, SkipFirstAndEveryNth) {
  FaultInjector injector;
  FaultSpec spec;
  spec.skip_first = 2;
  spec.every_nth = 3;
  injector.Arm("p", spec);
  // Hits 1,2 skipped; then eligible hits 1..n fire on every 3rd:
  // hits 5, 8, 11, ... fire.
  std::vector<int> fired;
  for (int hit = 1; hit <= 12; ++hit) {
    if (!injector.Check("p").ok()) fired.push_back(hit);
  }
  EXPECT_EQ(fired, (std::vector<int>{5, 8, 11}));
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  auto schedule = [](uint64_t seed) {
    FaultInjector injector;
    injector.Seed(seed);
    FaultSpec spec;
    spec.probability = 0.5;
    injector.Arm("p", spec);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) out.push_back(injector.Check("p").ok());
    return out;
  };
  EXPECT_EQ(schedule(7), schedule(7));
  EXPECT_NE(schedule(7), schedule(8));
}

TEST(FaultInjectorTest, ScheduleIndependentOfOtherPoints) {
  // The same point produces the same schedule whether or not unrelated
  // points are armed and drawing.
  FaultSpec half;
  half.probability = 0.5;

  FaultInjector alone;
  alone.Seed(11);
  alone.Arm("p", half);
  std::vector<bool> schedule_alone;
  for (int i = 0; i < 32; ++i) schedule_alone.push_back(alone.Check("p").ok());

  FaultInjector crowded;
  crowded.Seed(11);
  crowded.Arm("p", half);
  crowded.Arm("q", half);
  std::vector<bool> schedule_crowded;
  for (int i = 0; i < 32; ++i) {
    Status ignored = crowded.Check("q");
    (void)ignored;
    schedule_crowded.push_back(crowded.Check("p").ok());
  }
  EXPECT_EQ(schedule_alone, schedule_crowded);
}

TEST(FaultInjectorTest, LatencySpikeSleepsThroughClock) {
  FaultInjector injector;
  MockClock clock;
  injector.SetClock(&clock);
  FaultSpec spec;
  spec.code = StatusCode::kOk;  // slow but successful
  spec.latency_ms = 250.0;
  injector.Arm("slow/op", spec);
  EXPECT_TRUE(injector.Check("slow/op").ok());
  EXPECT_DOUBLE_EQ(clock.NowMillis(), 250.0);
}

TEST(FaultInjectorTest, RearmResetsCountersDisarmRemoves) {
  FaultInjector injector;
  FaultSpec spec;
  injector.Arm("p", spec);
  Status ignored = injector.Check("p");
  (void)ignored;
  EXPECT_EQ(injector.stats("p").hits, 1u);
  injector.Arm("p", spec);  // re-arm resets counters
  EXPECT_EQ(injector.stats("p").hits, 0u);
  injector.Disarm("p");
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.Check("p").ok());
}

TEST(FaultInjectorTest, ArmedPointsListsActivePoints) {
  FaultInjector injector;
  injector.Arm("b/point", FaultSpec{});
  injector.Arm("a/point", FaultSpec{});
  EXPECT_EQ(injector.ArmedPoints(),
            (std::vector<std::string>{"a/point", "b/point"}));
  injector.DisarmAll();
  EXPECT_TRUE(injector.ArmedPoints().empty());
}

TEST(FaultInjectorTest, ScopedFaultArmsAndDisarmsViaRaii) {
  FaultInjector injector;
  {
    ScopedFault fault("scoped/p", FaultSpec{}, &injector);
    EXPECT_EQ(fault.point(), "scoped/p");
    EXPECT_TRUE(injector.enabled());
    EXPECT_FALSE(injector.Check("scoped/p").ok());
  }
  // Scope exit disarmed the point: later checks pass and cost nothing.
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.Check("scoped/p").ok());
}

TEST(FaultInjectorTest, GlobalInstanceIsProcessWide) {
  FaultInjector::Global().Arm("global/p", FaultSpec{});
  EXPECT_TRUE(FaultInjector::Global().enabled());
  EXPECT_FALSE(FaultInjector::Global().Check("global/p").ok());
  FaultInjector::Global().DisarmAll();
  EXPECT_FALSE(FaultInjector::Global().enabled());
}

TEST(FaultInjectorTest, CheckPartialReportsTornWriteFraction) {
  FaultInjector injector;
  FaultSpec spec;
  spec.code = StatusCode::kIoError;
  spec.partial_fraction = 0.5;
  injector.Arm("torn/p", spec);
  double fraction = -2.0;
  const Status st = injector.CheckPartial("torn/p", &fraction);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_DOUBLE_EQ(fraction, 0.5);
}

TEST(FaultInjectorTest, CheckPartialWithoutTearReportsMinusOne) {
  FaultInjector injector;
  // Disarmed: OK and no tear.
  double fraction = 0.7;
  EXPECT_TRUE(injector.CheckPartial("torn/p", &fraction).ok());
  EXPECT_DOUBLE_EQ(fraction, -1.0);

  // Armed with a plain error (no partial_fraction): the failure is whole,
  // not torn.
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  injector.Arm("torn/p", spec);
  fraction = 0.7;
  EXPECT_FALSE(injector.CheckPartial("torn/p", &fraction).ok());
  EXPECT_DOUBLE_EQ(fraction, -1.0);
}

TEST(FaultInjectorTest, PlainCheckIgnoresPartialFraction) {
  FaultInjector injector;
  FaultSpec spec;
  spec.code = StatusCode::kIoError;
  spec.partial_fraction = 0.25;
  injector.Arm("torn/p", spec);
  // Check() call sites cannot tear; they just see the error.
  EXPECT_EQ(injector.Check("torn/p").code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace mqa
