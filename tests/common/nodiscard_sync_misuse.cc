// NOT part of any test binary. This translation unit deliberately discards
// [[nodiscard]] values from the concurrency layer; the
// `common.nodiscard_sync_enforced` ctest compiles it with
// -Werror=unused-result and expects the compile to FAIL (WILL_FAIL),
// proving that:
//   1. a ThreadPool::Submit future cannot be silently dropped (use Post
//      for fire-and-forget work);
//   2. the classic `MutexLock{&mu};` temporary — which unlocks again
//      before the next statement — is rejected;
//   3. a ScopedFault temporary — which disarms its fault point
//      immediately — is rejected.

#include "common/fault.h"
#include "common/sync.h"
#include "common/thread_pool.h"

int main() {
  mqa::ThreadPool pool(1);
  pool.Submit([] {});  // discarded future: must be a compile error

  mqa::Mutex mu;
  mqa::MutexLock{&mu};  // guard temporary: must be a compile error

  mqa::ScopedFault{"test/point"};  // fault temporary: must be a compile error
  return 0;
}
