#include "common/string_util.h"

#include <gtest/gtest.h>

namespace mqa {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo 123!"), "hello 123!");
  EXPECT_EQ(ToLower(""), "");
}

TEST(TrimTest, StripsWhitespaceBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\na b\n"), "a b");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(TokenizeTest, LowercasesAndSplitsOnPunctuation) {
  EXPECT_EQ(Tokenize("I like Moldy-Cheese!"),
            (std::vector<std::string>{"i", "like", "moldy", "cheese"}));
  EXPECT_EQ(Tokenize("a1 b2"), (std::vector<std::string>{"a1", "b2"}));
  EXPECT_TRUE(Tokenize("...!!!").empty());
  EXPECT_TRUE(Tokenize("").empty());
}

TEST(ContainsIgnoreCaseTest, Matches) {
  EXPECT_TRUE(ContainsIgnoreCase("Foggy Clouds", "foggy"));
  EXPECT_TRUE(ContainsIgnoreCase("Foggy Clouds", "CLOUD"));
  EXPECT_FALSE(ContainsIgnoreCase("Foggy Clouds", "rain"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(FormatDoubleTest, RespectsDecimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace mqa
