#include "common/topk.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace mqa {
namespace {

TEST(TopKTest, KeepsSmallestK) {
  TopK topk(3);
  for (float d : {5.f, 1.f, 4.f, 2.f, 3.f}) {
    topk.Push(d, static_cast<uint32_t>(d));
  }
  const auto sorted = topk.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_FLOAT_EQ(sorted[0].distance, 1.f);
  EXPECT_FLOAT_EQ(sorted[1].distance, 2.f);
  EXPECT_FLOAT_EQ(sorted[2].distance, 3.f);
}

TEST(TopKTest, PushReportsAcceptance) {
  TopK topk(2);
  EXPECT_TRUE(topk.Push(5.f, 0));
  EXPECT_TRUE(topk.Push(3.f, 1));
  EXPECT_FALSE(topk.Push(9.f, 2));  // worse than worst
  EXPECT_TRUE(topk.Push(1.f, 3));   // displaces 5
  const auto sorted = topk.TakeSorted();
  EXPECT_EQ(sorted[0].id, 3u);
  EXPECT_EQ(sorted[1].id, 1u);
}

TEST(TopKTest, WorstDistanceTracksHeapRoot) {
  TopK topk(2);
  topk.Push(4.f, 0);
  EXPECT_FALSE(topk.Full());
  topk.Push(2.f, 1);
  ASSERT_TRUE(topk.Full());
  EXPECT_FLOAT_EQ(topk.WorstDistance(), 4.f);
  topk.Push(1.f, 2);
  EXPECT_FLOAT_EQ(topk.WorstDistance(), 2.f);
}

TEST(TopKTest, TiesBrokenByIdDeterministically) {
  TopK topk(2);
  topk.Push(1.f, 7);
  topk.Push(1.f, 3);
  topk.Push(1.f, 5);  // same distance; only lower ids survive
  const auto sorted = topk.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].id, 3u);
  EXPECT_EQ(sorted[1].id, 5u);
}

TEST(TopKTest, FewerElementsThanK) {
  TopK topk(10);
  topk.Push(2.f, 0);
  topk.Push(1.f, 1);
  const auto sorted = topk.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].id, 1u);
}

TEST(TopKTest, AgreesWithFullSortOnRandomInput) {
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t k = 1 + rng.NextUint64(20);
    std::vector<Neighbor> all;
    TopK topk(k);
    for (uint32_t i = 0; i < 500; ++i) {
      const float d = static_cast<float>(rng.UniformDouble());
      all.push_back({d, i});
      topk.Push(d, i);
    }
    std::sort(all.begin(), all.end(), NeighborLess);
    all.resize(k);
    EXPECT_EQ(topk.TakeSorted(), all);
  }
}

}  // namespace
}  // namespace mqa
