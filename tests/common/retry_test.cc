#include "common/retry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"

namespace mqa {
namespace {

RetryPolicy FastPolicy(int attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.initial_backoff_ms = 10.0;
  p.backoff_multiplier = 2.0;
  p.max_backoff_ms = 1000.0;
  return p;
}

TEST(BackoffScheduleTest, ExactExponentialSchedule) {
  BackoffSchedule schedule(FastPolicy(10));
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 10.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 20.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 40.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 80.0);
  schedule.Reset();
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 10.0);
}

TEST(BackoffScheduleTest, CapsAtMaxBackoff) {
  RetryPolicy p = FastPolicy(20);
  p.max_backoff_ms = 50.0;
  BackoffSchedule schedule(p);
  std::vector<double> delays;
  for (int i = 0; i < 5; ++i) delays.push_back(schedule.NextDelayMs());
  EXPECT_EQ(delays, (std::vector<double>{10.0, 20.0, 40.0, 50.0, 50.0}));
}

TEST(BackoffScheduleTest, JitterIsDeterministicAndBounded) {
  RetryPolicy p = FastPolicy(10);
  p.jitter_fraction = 0.2;
  p.seed = 99;
  BackoffSchedule a(p);
  BackoffSchedule b(p);
  for (int i = 0; i < 8; ++i) {
    const double da = a.NextDelayMs();
    const double db = b.NextDelayMs();
    EXPECT_DOUBLE_EQ(da, db);  // same seed, same stream
    const double base = std::min(10.0 * (1 << i), 1000.0);
    EXPECT_GE(da, base * 0.8);
    EXPECT_LE(da, base * 1.2);
  }
}

TEST(RetrierTest, SucceedsFirstTryNoSleep) {
  MockClock clock;
  Retrier retrier(FastPolicy(3), &clock);
  EXPECT_TRUE(retrier.Run([] { return Status::OK(); }).ok());
  EXPECT_EQ(retrier.stats().attempts, 1);
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(RetrierTest, RetriesTransientThenSucceeds) {
  MockClock clock;
  Retrier retrier(FastPolicy(5), &clock);
  int calls = 0;
  const Status st = retrier.Run([&] {
    ++calls;
    return calls < 3 ? Status::Unavailable("flaky") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retrier.stats().attempts, 3);
  // Two backoffs: 10 + 20 ms of virtual time, zero wall time.
  EXPECT_DOUBLE_EQ(retrier.stats().total_backoff_ms, 30.0);
  EXPECT_DOUBLE_EQ(clock.NowMillis(), 30.0);
}

TEST(RetrierTest, PermanentErrorIsNotRetried) {
  MockClock clock;
  Retrier retrier(FastPolicy(5), &clock);
  int calls = 0;
  const Status st = retrier.Run([&] {
    ++calls;
    return Status::InvalidArgument("bad input");
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(RetrierTest, ExhaustedAttemptsKeepLastCodeAndMentionCount) {
  MockClock clock;
  Retrier retrier(FastPolicy(3), &clock);
  const Status st =
      retrier.Run([] { return Status::ResourceExhausted("overloaded"); });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("gave up after 3 attempts"), std::string::npos);
  EXPECT_DOUBLE_EQ(clock.NowMillis(), 30.0);  // 10 + 20
}

TEST(RetrierTest, PerAttemptDeadlineDiscardsLateSuccess) {
  MockClock clock;
  RetryPolicy p = FastPolicy(2);
  p.per_attempt_deadline_ms = 100.0;
  Retrier retrier(p, &clock);
  const Status st = retrier.Run([&] {
    clock.AdvanceMillis(250.0);  // the call is slow...
    return Status::OK();         // ...and eventually "succeeds"
  });
  // Both attempts blow the budget; the late success is discarded.
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(st.message().find("late success discarded"), std::string::npos);
  EXPECT_EQ(retrier.stats().attempts, 2);
}

TEST(RetrierTest, OverallDeadlineStopsRetrying) {
  MockClock clock;
  RetryPolicy p = FastPolicy(100);
  p.overall_deadline_ms = 35.0;
  Retrier retrier(p, &clock);
  const Status st = retrier.Run([] { return Status::Unavailable("down"); });
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  // Backoffs 10 + 20 fit in 35 ms; the third (40) would not: 3 attempts.
  EXPECT_EQ(retrier.stats().attempts, 3);
  EXPECT_DOUBLE_EQ(clock.NowMillis(), 30.0);
}

TEST(RetrierTest, ResultFlavourReturnsValueAfterRetries) {
  MockClock clock;
  Retrier retrier(FastPolicy(4), &clock);
  int calls = 0;
  Result<std::string> r = retrier.Run<std::string>([&]() -> Result<std::string> {
    ++calls;
    if (calls < 2) return Status::Unavailable("warming up");
    return std::string("hello");
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello");
  EXPECT_EQ(retrier.stats().attempts, 2);
}

TEST(RetrierTest, ResultFlavourPropagatesFinalError) {
  MockClock clock;
  Retrier retrier(FastPolicy(2), &clock);
  Result<int> r =
      retrier.Run<int>([]() -> Result<int> { return Status::Unavailable("x"); });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(StatusRetryabilityTest, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
  EXPECT_FALSE(Status::IoError("x").IsRetryable());
}

}  // namespace
}  // namespace mqa
