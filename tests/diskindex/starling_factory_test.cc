// The "starling" algorithm through the unified index factory: the whole
// retrieval stack running disk-resident.

#include <gtest/gtest.h>

#include "graph/index_factory.h"
#include "../graph/graph_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::ExactKnn;
using ::mqa::testing::MakeClusteredStore;
using ::mqa::testing::Recall;

TEST(StarlingFactoryTest, BuildsFromFlatDistance) {
  std::vector<Vector> queries;
  VectorStore store = MakeClusteredStore(500, 8, 4, 61, &queries, 5);
  IndexConfig config;
  config.algorithm = "starling";
  config.graph.max_degree = 12;
  BuildReport report;
  auto index = CreateIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2), &report);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(report.algorithm, "starling");
  EXPECT_EQ((*index)->name(), "disk-bfs");

  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  double recall = 0;
  for (const Vector& q : queries) {
    auto r = (*index)->Search(q.data(), params, nullptr);
    ASSERT_TRUE(r.ok());
    recall += Recall(*r, ExactKnn(store, q, 10));
  }
  EXPECT_GE(recall / queries.size(), 0.85);

  // I/O actually happened.
  auto* disk = dynamic_cast<DiskGraphIndex*>(index->get());
  ASSERT_NE(disk, nullptr);
  EXPECT_GT(disk->io_stats().page_reads, 0u);
}

TEST(StarlingFactoryTest, BuildsFromMultiVectorDistanceAndReweights) {
  VectorSchema schema;
  schema.dims = {4, 4};
  VectorStore store(schema);
  Rng rng(62);
  for (int i = 0; i < 300; ++i) {
    Vector v(8);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(store.Add(v).ok());
  }
  auto wd = WeightedMultiDistance::Create(schema, {1.5f, 0.5f});
  ASSERT_TRUE(wd.ok());
  IndexConfig config;
  config.algorithm = "starling";
  config.graph.max_degree = 10;
  auto index = CreateIndex(
      config, &store,
      std::make_unique<MultiVectorDistanceComputer>(&store, *wd, true));
  ASSERT_TRUE(index.ok());
  auto* disk = dynamic_cast<DiskGraphIndex*>(index->get());
  ASSERT_NE(disk, nullptr);
  // The on-disk distance carries the source weights and can be changed.
  EXPECT_EQ(disk->weighted_distance().weights(),
            (std::vector<float>{1.5f, 0.5f}));
  ASSERT_TRUE(disk->SetWeights({0.0f, 2.0f}).ok());
  EXPECT_EQ(disk->weighted_distance().weights(),
            (std::vector<float>{0.0f, 2.0f}));
  // Searching with the new weights still works.
  const Vector q = store.Row(0);
  SearchParams params;
  params.k = 5;
  auto r = (*index)->Search(q.data(), params, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
}

TEST(StarlingFactoryTest, RespectsDiskConfig) {
  VectorStore store = MakeClusteredStore(200, 8, 4, 63);
  IndexConfig config;
  config.algorithm = "starling";
  config.graph.max_degree = 8;
  config.disk.layout = "id";
  config.disk.page_size = 2048;
  auto index = CreateIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->name(), "disk-id");
}

}  // namespace
}  // namespace mqa
