#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "diskindex/disk_index.h"
#include "graph/pipeline.h"
#include "../graph/graph_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::ExactKnn;
using ::mqa::testing::MakeClusteredStore;
using ::mqa::testing::Recall;

class DiskFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    store_ = std::make_unique<VectorStore>(
        MakeClusteredStore(800, 8, 8, 21, &queries_, 10));
    GraphBuildConfig config;
    config.algorithm = "mqa-hybrid";
    config.max_degree = 12;
    auto index = BuildGraphIndex(
        config, store_.get(),
        std::make_unique<FlatDistanceComputer>(store_.get(), Metric::kL2));
    ASSERT_TRUE(index.ok());
    mem_index_ = std::move(index).Value();
  }

  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  WeightedMultiDistance MakeDistance() {
    auto wd = WeightedMultiDistance::Create(store_->schema(), {1.0f});
    EXPECT_TRUE(wd.ok());
    return std::move(wd).Value();
  }

  std::unique_ptr<DiskGraphIndex> MakeDisk(const DiskIndexConfig& config) {
    auto disk =
        DiskGraphIndex::Create(config, *mem_index_, *store_, MakeDistance());
    EXPECT_TRUE(disk.ok());
    return std::move(disk).Value();
  }

  std::unique_ptr<VectorStore> store_;
  std::unique_ptr<GraphIndex> mem_index_;
  std::vector<Vector> queries_;
};

TEST_F(DiskFaultTest, OccasionalReadFailuresAreRoutedAround) {
  DiskIndexConfig config;
  config.io_error_budget = 1000;  // never degrade to cache-only
  auto disk = MakeDisk(config);

  FaultSpec spec;
  spec.code = StatusCode::kIoError;
  spec.every_nth = 10;  // every 10th page read fails
  FaultInjector::Global().Arm("diskindex/read_page", spec);

  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  double recall_sum = 0;
  uint64_t io_errors = 0;
  for (const Vector& q : queries_) {
    disk->ClearCache();
    SearchStats stats;
    auto got = disk->Search(q.data(), params, &stats);
    ASSERT_TRUE(got.ok());
    recall_sum += Recall(*got, ExactKnn(*store_, q, 10));
    io_errors += stats.io_errors;
    EXPECT_FALSE(stats.partial);  // within budget: not flagged partial
  }
  EXPECT_GT(io_errors, 0u);
  EXPECT_EQ(disk->io_stats().io_errors, io_errors);
  // Routing around ~10% failed reads must not collapse quality.
  EXPECT_GE(recall_sum / queries_.size(), 0.6);
}

TEST_F(DiskFaultTest, ExceededBudgetServesCacheOnlyPartialResults) {
  DiskIndexConfig config;
  config.io_error_budget = 2;
  config.cache_pages = 4;  // small cache: the failing device gets hit
  auto disk = MakeDisk(config);

  // Warm the cache with one healthy query, then make the device fail hard.
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  ASSERT_TRUE(disk->Search(queries_[0].data(), params, nullptr).ok());

  FaultSpec spec;
  spec.code = StatusCode::kIoError;
  FaultInjector::Global().Arm("diskindex/read_page", spec);

  SearchStats stats;
  auto got = disk->Search(queries_[1].data(), params, &stats);
  ASSERT_TRUE(got.ok());  // degraded, not failed
  EXPECT_TRUE(stats.partial);
  // The budget is consumed and then the query stops paying for reads, so
  // the error count never exceeds budget + 1.
  EXPECT_GE(stats.io_errors, 1u);
  EXPECT_LE(stats.io_errors, config.io_error_budget + 1);
}

TEST_F(DiskFaultTest, DisarmedFaultsAreBitIdentical) {
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  auto a = MakeDisk(DiskIndexConfig{});
  auto b = MakeDisk(DiskIndexConfig{});
  // Arm and disarm: the mere existence of the fault framework must not
  // perturb results.
  FaultInjector::Global().Arm("diskindex/read_page", FaultSpec{});
  FaultInjector::Global().DisarmAll();
  for (const Vector& q : queries_) {
    auto ra = a->Search(q.data(), params, nullptr);
    auto rb = b->Search(q.data(), params, nullptr);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(ra->size(), rb->size());
    for (size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].id, (*rb)[i].id);
      EXPECT_EQ((*ra)[i].distance, (*rb)[i].distance);
    }
  }
}

// Regression test for the DiskIoStats data race: concurrent queries on one
// shared index bump the counters (and mutate the LRU cache) from many
// threads. Run under TSan this fails on the pre-atomic implementation.
TEST_F(DiskFaultTest, ConcurrentSearchesAreRaceFree) {
  DiskIndexConfig config;
  config.cache_pages = 8;  // small cache: constant insert/evict churn
  auto disk = MakeDisk(config);
  SearchParams params;
  params.k = 10;
  params.beam_width = 48;

  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const Vector& q = queries_[(t + round) % queries_.size()];
        SearchStats stats;
        auto got = disk->Search(q.data(), params, &stats);
        EXPECT_TRUE(got.ok());
        EXPECT_FALSE(got->empty());
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const DiskIoStats& stats = disk->io_stats();
  EXPECT_GT(stats.page_reads + stats.cache_hits, 0u);
  EXPECT_EQ(stats.bytes_read, stats.page_reads * config.page_size);
}

}  // namespace
}  // namespace mqa
