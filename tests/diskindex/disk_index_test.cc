#include "diskindex/disk_index.h"

#include <gtest/gtest.h>

#include "graph/pipeline.h"
#include "../graph/graph_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::ExactKnn;
using ::mqa::testing::MakeClusteredStore;
using ::mqa::testing::Recall;

class DiskIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<VectorStore>(
        MakeClusteredStore(800, 8, 8, 21, &queries_, 10));
    GraphBuildConfig config;
    config.algorithm = "mqa-hybrid";
    config.max_degree = 12;
    auto index = BuildGraphIndex(
        config, store_.get(),
        std::make_unique<FlatDistanceComputer>(store_.get(), Metric::kL2));
    ASSERT_TRUE(index.ok());
    mem_index_ = std::move(index).Value();
  }

  WeightedMultiDistance MakeDistance() {
    auto wd = WeightedMultiDistance::Create(store_->schema(), {1.0f});
    EXPECT_TRUE(wd.ok());
    return std::move(wd).Value();
  }

  std::unique_ptr<VectorStore> store_;
  std::unique_ptr<GraphIndex> mem_index_;
  std::vector<Vector> queries_;
};

TEST_F(DiskIndexTest, CreateValidates) {
  DiskIndexConfig config;
  config.layout = "zigzag";
  EXPECT_FALSE(
      DiskGraphIndex::Create(config, *mem_index_, *store_, MakeDistance())
          .ok());
  config = DiskIndexConfig{};
  config.page_size = 16;  // record cannot fit
  EXPECT_FALSE(
      DiskGraphIndex::Create(config, *mem_index_, *store_, MakeDistance())
          .ok());
}

TEST_F(DiskIndexTest, SearchMatchesMemoryIndexQuality) {
  DiskIndexConfig config;
  auto disk =
      DiskGraphIndex::Create(config, *mem_index_, *store_, MakeDistance());
  ASSERT_TRUE(disk.ok());
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  double recall_sum = 0;
  for (const Vector& q : queries_) {
    auto got = (*disk)->Search(q.data(), params, nullptr);
    ASSERT_TRUE(got.ok());
    recall_sum += Recall(*got, ExactKnn(*store_, q, 10));
  }
  EXPECT_GE(recall_sum / queries_.size(), 0.9);
}

TEST_F(DiskIndexTest, CountsPageReadsAndCacheHits) {
  DiskIndexConfig config;
  config.cache_pages = 4;
  auto disk =
      DiskGraphIndex::Create(config, *mem_index_, *store_, MakeDistance());
  ASSERT_TRUE(disk.ok());
  SearchParams params;
  params.k = 5;
  ASSERT_TRUE((*disk)->Search(queries_[0].data(), params, nullptr).ok());
  const DiskIoStats& stats = (*disk)->io_stats();
  EXPECT_GT(stats.page_reads, 0u);
  EXPECT_EQ(stats.bytes_read, stats.page_reads * config.page_size);
  (*disk)->ResetIoStats();
  EXPECT_EQ((*disk)->io_stats().page_reads, 0u);
}

TEST_F(DiskIndexTest, WarmCacheReducesReads) {
  DiskIndexConfig config;
  config.cache_pages = 100000;  // effectively infinite
  auto disk =
      DiskGraphIndex::Create(config, *mem_index_, *store_, MakeDistance());
  ASSERT_TRUE(disk.ok());
  SearchParams params;
  params.k = 5;
  ASSERT_TRUE((*disk)->Search(queries_[0].data(), params, nullptr).ok());
  const uint64_t cold = (*disk)->io_stats().page_reads;
  (*disk)->ResetIoStats();
  ASSERT_TRUE((*disk)->Search(queries_[0].data(), params, nullptr).ok());
  EXPECT_EQ((*disk)->io_stats().page_reads, 0u);  // all cached
  EXPECT_GT((*disk)->io_stats().cache_hits, 0u);
  EXPECT_GT(cold, 0u);
  (*disk)->ClearCache();
  (*disk)->ResetIoStats();
  ASSERT_TRUE((*disk)->Search(queries_[0].data(), params, nullptr).ok());
  EXPECT_GT((*disk)->io_stats().page_reads, 0u);  // cold again
}

TEST_F(DiskIndexTest, BfsLayoutNeedsFewerReadsThanIdLayout) {
  // The corpus interleaves clusters by id (i % clusters), so id order is
  // adversarial and BFS packing should clearly win — Starling's thesis.
  uint64_t reads_by_layout[2] = {0, 0};
  const char* layouts[2] = {"id", "bfs"};
  for (int l = 0; l < 2; ++l) {
    DiskIndexConfig config;
    config.layout = layouts[l];
    config.cache_pages = 8;
    auto disk =
        DiskGraphIndex::Create(config, *mem_index_, *store_, MakeDistance());
    ASSERT_TRUE(disk.ok());
    SearchParams params;
    params.k = 10;
    params.beam_width = 48;
    for (const Vector& q : queries_) {
      (*disk)->ClearCache();
      ASSERT_TRUE((*disk)->Search(q.data(), params, nullptr).ok());
    }
    reads_by_layout[l] = (*disk)->io_stats().page_reads;
  }
  EXPECT_LT(reads_by_layout[1], reads_by_layout[0]);
}

TEST_F(DiskIndexTest, BlockAwareSearchReducesReads) {
  uint64_t reads[2] = {0, 0};
  for (int aware = 0; aware < 2; ++aware) {
    DiskIndexConfig config;
    config.block_aware_search = aware == 1;
    config.cache_pages = 8;
    auto disk =
        DiskGraphIndex::Create(config, *mem_index_, *store_, MakeDistance());
    ASSERT_TRUE(disk.ok());
    SearchParams params;
    params.k = 10;
    params.beam_width = 48;
    for (const Vector& q : queries_) {
      (*disk)->ClearCache();
      ASSERT_TRUE((*disk)->Search(q.data(), params, nullptr).ok());
    }
    reads[aware] = (*disk)->io_stats().page_reads;
  }
  EXPECT_LE(reads[1], reads[0]);
}

TEST_F(DiskIndexTest, RecordGeometryIsConsistent) {
  DiskIndexConfig config;
  auto disk =
      DiskGraphIndex::Create(config, *mem_index_, *store_, MakeDistance());
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->size(), 800u);
  EXPECT_GE((*disk)->nodes_per_page(), 1u);
  EXPECT_EQ((*disk)->num_pages(),
            (800 + (*disk)->nodes_per_page() - 1) / (*disk)->nodes_per_page());
  EXPECT_EQ((*disk)->name(), "disk-bfs");
}

TEST_F(DiskIndexTest, MemoryPivotsReduceColdReads) {
  uint64_t reads[2] = {0, 0};
  double recall[2] = {0, 0};
  const uint32_t pivot_counts[2] = {0, 200};
  for (int v = 0; v < 2; ++v) {
    DiskIndexConfig config;
    config.cache_pages = 16;
    config.memory_pivots = pivot_counts[v];
    auto disk =
        DiskGraphIndex::Create(config, *mem_index_, *store_, MakeDistance());
    ASSERT_TRUE(disk.ok());
    SearchParams params;
    params.k = 10;
    params.beam_width = 48;
    for (const Vector& q : queries_) {
      (*disk)->ClearCache();
      auto r = (*disk)->Search(q.data(), params, nullptr);
      ASSERT_TRUE(r.ok());
      recall[v] += Recall(*r, ExactKnn(*store_, q, 10));
    }
    reads[v] = (*disk)->io_stats().page_reads;
  }
  // On a tiny index the traversal touches most pages either way, so the
  // win can vanish; never worse, and the large-scale effect is measured in
  // bench_disk_index (354 -> 268 reads/query at N = 20k).
  EXPECT_LE(reads[1], reads[0]);
  EXPECT_GE(recall[1], recall[0] - 0.5);  // quality essentially preserved
}

TEST_F(DiskIndexTest, PivotMemoryAccounted) {
  DiskIndexConfig with;
  with.memory_pivots = 100;
  DiskIndexConfig without;
  auto a = DiskGraphIndex::Create(with, *mem_index_, *store_, MakeDistance());
  auto b =
      DiskGraphIndex::Create(without, *mem_index_, *store_, MakeDistance());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->MemoryBytes() - (*b)->MemoryBytes(),
            100u * store_->row_dim() * sizeof(float));
}

TEST(DiskIndexLatencyTest, ModeledLatencyScalesWithReads) {
  EXPECT_DOUBLE_EQ(DiskGraphIndex::ModeledLatencyMs(0), 0.0);
  EXPECT_DOUBLE_EQ(DiskGraphIndex::ModeledLatencyMs(10, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(DiskGraphIndex::ModeledLatencyMs(10, 50.0), 0.5);
}

}  // namespace
}  // namespace mqa
