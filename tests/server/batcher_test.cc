#include "server/batcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace mqa {
namespace {

/// A batch function that doubles each input and remembers every batch it
/// saw, so tests can assert exact batch compositions.
class RecordingFn {
 public:
  std::vector<Result<int>> operator()(const std::vector<int>& batch) {
    {
      MutexLock lock(&mu_);
      batches_.push_back(batch);
    }
    std::vector<Result<int>> out;
    out.reserve(batch.size());
    for (int v : batch) out.push_back(v * 2);
    return out;
  }

  std::vector<std::vector<int>> batches() const {
    MutexLock lock(&mu_);
    return batches_;
  }

 private:
  mutable Mutex mu_;
  std::vector<std::vector<int>> batches_ MQA_GUARDED_BY(mu_);
};

BatcherOptions Options(size_t max_batch, Clock* clock = nullptr,
                       const std::string& name = "test") {
  BatcherOptions options;
  options.max_batch = max_batch;
  options.clock = clock;
  options.name = name;
  return options;
}

TEST(BatcherTest, UnregisteredCallerFlushesImmediately) {
  // With no Enter()'d workers the drain trigger (waiting >= active) holds
  // as soon as one request is pending: direct callers transparently get
  // unbatched semantics.
  auto fn = std::make_shared<RecordingFn>();
  Batcher<int, int> batcher(Options(8, nullptr, "unregistered"),
                            [fn](const std::vector<int>& b) { return (*fn)(b); });
  Result<int> r = batcher.Submit(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Value(), 42);
  BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.items, 1u);
  EXPECT_EQ(stats.drain_flushes, 1u);
  EXPECT_EQ(stats.max_occupancy, 1u);
}

TEST(BatcherTest, FlushesOnSize) {
  // Main registers as a fourth (non-submitting) worker, so the drain
  // trigger cannot fire while the three submitters trickle in; the third
  // submission reaches max_batch and flushes all three in one batch.
  auto fn = std::make_shared<RecordingFn>();
  Batcher<int, int> batcher(Options(3, nullptr, "size"),
                            [fn](const std::vector<int>& b) { return (*fn)(b); });
  batcher.Enter();
  std::vector<std::thread> threads;
  std::atomic<int> sum{0};
  for (int i = 1; i <= 3; ++i) {
    threads.emplace_back([&batcher, &sum, i] {
      batcher.Enter();
      Result<int> r = batcher.Submit(i);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.Value(), i * 2);
      sum.fetch_add(r.Value());
      batcher.Exit();
    });
  }
  for (std::thread& t : threads) t.join();
  batcher.Exit();
  EXPECT_EQ(sum.load(), 12);
  BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.items, 3u);
  EXPECT_EQ(stats.size_flushes, 1u);
  EXPECT_EQ(stats.max_occupancy, 3u);
  ASSERT_EQ(fn->batches().size(), 1u);
  EXPECT_EQ(fn->batches()[0].size(), 3u);
}

TEST(BatcherTest, FlushesOnDrainWhenAllWorkersWait) {
  // Two workers park well below max_batch; once the main thread (the last
  // non-waiting registrant) exits the stage, no further request can join
  // and the drain trigger releases the two-item batch.
  auto fn = std::make_shared<RecordingFn>();
  Batcher<int, int> batcher(Options(8, nullptr, "drain"),
                            [fn](const std::vector<int>& b) { return (*fn)(b); });
  batcher.Enter();
  std::vector<std::thread> threads;
  for (int i = 1; i <= 2; ++i) {
    threads.emplace_back([&batcher, i] {
      batcher.Enter();
      Result<int> r = batcher.Submit(i);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.Value(), i * 2);
      batcher.Exit();
    });
  }
  // Wait (without touching the batcher's clock) until both requests are
  // pending, then leave the stage: active drops to the waiting count.
  while (batcher.waiting_callers() < 2) std::this_thread::yield();
  batcher.Exit();
  for (std::thread& t : threads) t.join();
  BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.items, 2u);
  EXPECT_EQ(stats.drain_flushes, 1u);
  EXPECT_EQ(stats.max_occupancy, 2u);
}

TEST(BatcherTest, FlushesOnDeadlineSlack) {
  // A parked request whose deadline slack runs out is released by the
  // next event (here: a second submission) instead of waiting for the
  // batch to fill.
  MockClock clock;
  auto fn = std::make_shared<RecordingFn>();
  Batcher<int, int> batcher(Options(8, &clock, "slack"),
                            [fn](const std::vector<int>& b) { return (*fn)(b); });
  batcher.Enter();  // main: keeps the drain trigger from firing
  std::thread waiter([&batcher, &clock] {
    batcher.Enter();
    // Deadline 5 ms out; flush_slack_ms = 1, so the slack trigger arms
    // once the clock passes 4 ms.
    Result<int> r = batcher.Submit(7, clock.NowMicros() + 5000);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.Value(), 14);
    batcher.Exit();
  });
  while (batcher.waiting_callers() < 1) std::this_thread::yield();
  clock.AdvanceMillis(4.5);
  // This submission is the event that re-evaluates the triggers; the
  // parked request is now within its slack, so both flush together.
  Result<int> r = batcher.Submit(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Value(), 16);
  waiter.join();
  batcher.Exit();
  BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.items, 2u);
  EXPECT_EQ(stats.slack_flushes, 1u);
  EXPECT_EQ(stats.max_occupancy, 2u);
}

TEST(BatcherTest, MaxBatchOneDisablesCoalescing) {
  // The single-item fallback: every request runs alone even with many
  // concurrent submitters.
  auto fn = std::make_shared<RecordingFn>();
  Batcher<int, int> batcher(Options(1, nullptr, "single"),
                            [fn](const std::vector<int>& b) { return (*fn)(b); });
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&batcher, i] {
      batcher.Enter();
      Result<int> r = batcher.Submit(i);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.Value(), i * 2);
      batcher.Exit();
    });
  }
  for (std::thread& t : threads) t.join();
  BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.items, 8u);
  EXPECT_EQ(stats.batches, 8u);
  EXPECT_EQ(stats.max_occupancy, 1u);
  for (const std::vector<int>& batch : fn->batches()) {
    EXPECT_EQ(batch.size(), 1u);
  }
}

TEST(BatcherTest, ResponsesMatchRequestsPositionally) {
  // Each submitter gets the response derived from its own request, no
  // matter how the requests coalesced into batches.
  auto fn = std::make_shared<RecordingFn>();
  Batcher<int, int> batcher(Options(4, nullptr, "positional"),
                            [fn](const std::vector<int>& b) { return (*fn)(b); });
  batcher.Enter();
  std::vector<std::thread> threads;
  std::vector<int> results(4, -1);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&batcher, &results, i] {
      batcher.Enter();
      Result<int> r = batcher.Submit(i * 100);
      ASSERT_TRUE(r.ok());
      results[static_cast<size_t>(i)] = r.Value();
      batcher.Exit();
    });
  }
  for (std::thread& t : threads) t.join();
  batcher.Exit();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], i * 200);
  }
}

TEST(BatcherTest, ShortResponseVectorFailsOnlyUnansweredSlots) {
  // A batch function that violates the one-response-per-request contract
  // produces kInternal for the unanswered slots instead of hanging them.
  Batcher<int, int> batcher(Options(8, nullptr, "short"),
                            [](const std::vector<int>& batch) {
                              std::vector<Result<int>> out;
                              if (!batch.empty()) out.push_back(batch[0] * 2);
                              return out;  // one response, however many requests
                            });
  batcher.Enter();
  std::thread first([&batcher] {
    batcher.Enter();
    Result<int> r = batcher.Submit(5);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.Value(), 10);
    batcher.Exit();
  });
  while (batcher.waiting_callers() < 1) std::this_thread::yield();
  // Main (the second registered worker) submits: now every worker waits,
  // so the drain trigger flushes [5, 6] as one batch.
  Result<int> second = batcher.Submit(6);
  first.join();
  batcher.Exit();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInternal);
}

TEST(BatcherTest, PerItemErrorsStayWithTheirSlot) {
  Batcher<int, int> batcher(Options(8, nullptr, "erritem"),
                            [](const std::vector<int>& batch) {
                              std::vector<Result<int>> out;
                              for (int v : batch) {
                                if (v < 0) {
                                  out.push_back(
                                      Status::InvalidArgument("negative"));
                                } else {
                                  out.push_back(v * 2);
                                }
                              }
                              return out;
                            });
  batcher.Enter();
  std::thread bad([&batcher] {
    batcher.Enter();
    Result<int> r = batcher.Submit(-1);
    EXPECT_FALSE(r.ok());
    batcher.Exit();
  });
  while (batcher.waiting_callers() < 1) std::this_thread::yield();
  Result<int> good = batcher.Submit(4);  // drains [-1, 4] as one batch
  bad.join();
  batcher.Exit();
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.Value(), 8);
}

TEST(BatcherTest, BatchedEqualsUnbatched) {
  // Equivalence: the same workload through a coalescing batcher and
  // through a single-item batcher produces identical responses — the
  // batch only amortizes dispatch, it never changes per-item results.
  auto run = [](size_t max_batch) {
    auto fn = std::make_shared<RecordingFn>();
    Batcher<int, int> batcher(
        Options(max_batch, nullptr, "equiv" + std::to_string(max_batch)),
        [fn](const std::vector<int>& b) { return (*fn)(b); });
    std::vector<int> results(12, 0);
    std::vector<std::thread> threads;
    for (int i = 0; i < 12; ++i) {
      threads.emplace_back([&batcher, &results, i] {
        batcher.Enter();
        Result<int> r = batcher.Submit(i);
        ASSERT_TRUE(r.ok());
        results[static_cast<size_t>(i)] = r.Value();
        batcher.Exit();
      });
    }
    for (std::thread& t : threads) t.join();
    return results;
  };
  EXPECT_EQ(run(4), run(1));
}

}  // namespace
}  // namespace mqa
