#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "server/server.h"
#include "../core/core_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

/// Overload chaos suite: request bursts and injected latency spikes drive
/// the queue past capacity, and the whole overload ladder — backpressure,
/// breaker trip, cool-down, half-open probing, recovery — plays out on a
/// MockClock with zero real sleeps. Each test builds its own small server
/// so breaker state never leaks between scenarios.
class ServerOverloadTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().DisarmAll(); }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().SetClock(nullptr);
  }

  std::unique_ptr<Server> MakeServer(MockClock* clock, size_t queue_capacity,
                                     int breaker_threshold,
                                     double default_deadline_ms = 0.0) {
    MqaConfig config = SmallConfig();
    config.serving.num_workers = 1;  // deterministic drain order
    config.serving.queue_capacity = queue_capacity;
    config.serving.default_deadline_ms = default_deadline_ms;
    config.serving.breaker_failure_threshold = breaker_threshold;
    config.serving.breaker_open_ms = 500.0;
    config.serving.breaker_half_open_successes = 2;
    config.serving.clock = clock;
    auto server = Server::Create(config);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(server).Value() : nullptr;
  }

  UserQuery Query(Server* server, uint32_t concept_id = 1) {
    UserQuery query;
    query.text =
        "show me " + server->coordinator()->world().ConceptName(concept_id);
    return query;
  }
};

TEST_F(ServerOverloadTest, QueueFullShedsWithResourceExhausted) {
  MockClock clock;
  std::unique_ptr<Server> server =
      MakeServer(&clock, /*queue_capacity=*/2, /*breaker_threshold=*/100);
  ASSERT_NE(server, nullptr);
  const uint64_t session = server->OpenSession();

  server->Suspend();  // park the worker: the queue fills deterministically
  std::atomic<int> completed{0};
  AskCallback on_done = [&completed](Result<AnswerTurn> turn) {
    EXPECT_TRUE(turn.ok()) << turn.status().ToString();
    ++completed;
  };
  ASSERT_TRUE(server->Submit(session, Query(server.get()), on_done).ok());
  ASSERT_TRUE(server->Submit(session, Query(server.get()), on_done).ok());
  EXPECT_EQ(server->queue_depth(), server->queue_capacity());

  // The burst beyond capacity is shed with kResourceExhausted; the two
  // accepted turns are untouched.
  for (int i = 0; i < 3; ++i) {
    Status shed = server->Submit(session, Query(server.get()), on_done);
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(shed.message().find("queue is full"), std::string::npos);
  }
  EXPECT_EQ(server->stats().shed_queue_full, 3u);

  server->Resume();
  server->Shutdown();  // drains the two accepted turns
  EXPECT_EQ(completed.load(), 2);
  EXPECT_EQ(server->stats().completed, 2u);
  EXPECT_EQ(server->stats().failed, 0u);
}

TEST_F(ServerOverloadTest, BreakerTripsOpensAndRecoversOnSchedule) {
  MockClock clock;
  std::unique_ptr<Server> server =
      MakeServer(&clock, /*queue_capacity=*/2, /*breaker_threshold=*/3);
  ASSERT_NE(server, nullptr);
  const uint64_t session = server->OpenSession();

  std::atomic<int> completed{0};
  AskCallback on_done = [&completed](Result<AnswerTurn> turn) {
    EXPECT_TRUE(turn.ok()) << turn.status().ToString();
    ++completed;
  };

  // Fill the queue, then burst: three queue-full sheds reach the breaker
  // threshold and trip it open.
  server->Suspend();
  ASSERT_TRUE(server->Submit(session, Query(server.get()), on_done).ok());
  ASSERT_TRUE(server->Submit(session, Query(server.get()), on_done).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server->Submit(session, Query(server.get()), on_done).code(),
              StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(server->breaker().state(), BreakerState::kOpen);

  // While open, Submit sheds at the door — the queue is not even tried.
  Status at_door = server->Submit(session, Query(server.get()), on_done);
  ASSERT_FALSE(at_door.ok());
  EXPECT_EQ(at_door.code(), StatusCode::kUnavailable);
  EXPECT_NE(at_door.message().find("circuit breaker"), std::string::npos);
  EXPECT_EQ(server->stats().shed_breaker, 1u);
  EXPECT_EQ(server->queue_depth(), 2u);

  // Release the workers; the two accepted turns complete (their successes
  // do not close the breaker — it is open, not half-open).
  server->Resume();
  while (completed.load() < 2) std::this_thread::yield();
  EXPECT_EQ(server->breaker().state(), BreakerState::kOpen);

  // Cool-down elapses on the mock clock: the next submission is admitted
  // as a half-open probe. Two probe successes re-close the breaker.
  clock.AdvanceMillis(501.0);
  ASSERT_TRUE(server->Ask(session, Query(server.get())).ok());
  EXPECT_EQ(server->breaker().state(), BreakerState::kHalfOpen);
  ASSERT_TRUE(server->Ask(session, Query(server.get())).ok());
  EXPECT_EQ(server->breaker().state(), BreakerState::kClosed);

  const std::vector<BreakerState> expected = {
      BreakerState::kClosed, BreakerState::kOpen, BreakerState::kHalfOpen,
      BreakerState::kClosed};
  EXPECT_EQ(server->breaker().transitions(), expected);
}

TEST_F(ServerOverloadTest, LatencySpikeExpiresQueuedDeadlines) {
  // An injected LLM latency spike (through the shared MockClock) makes
  // the first turn eat the whole latency budget; the turns queued behind
  // it expire in the queue and are shed as kDeadlineExceeded, while the
  // slow turn itself still completes.
  MockClock clock;
  FaultInjector::Global().SetClock(&clock);
  std::unique_ptr<Server> server =
      MakeServer(&clock, /*queue_capacity=*/8, /*breaker_threshold=*/2,
                 /*default_deadline_ms=*/50.0);
  ASSERT_NE(server, nullptr);
  const uint64_t session = server->OpenSession();

  FaultSpec slow;
  slow.code = StatusCode::kOk;  // slow but successful
  slow.latency_ms = 100.0;
  slow.max_fires = 1;
  ScopedFault fault("llm/complete", slow);

  std::atomic<int> ok_turns{0};
  std::atomic<int> deadline_sheds{0};
  AskCallback on_done = [&ok_turns, &deadline_sheds](Result<AnswerTurn> turn) {
    if (turn.ok()) {
      EXPECT_FALSE(turn.Value().items.empty());
      ++ok_turns;
    } else {
      EXPECT_EQ(turn.status().code(), StatusCode::kDeadlineExceeded);
      ++deadline_sheds;
    }
  };

  server->Suspend();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server->Submit(session, Query(server.get()), on_done).ok());
  }
  server->Resume();
  server->Shutdown();  // drain all three deterministically

  // Turn 1 started before its deadline and completed despite the spike;
  // turns 2 and 3 found the clock already past their deadlines.
  EXPECT_EQ(ok_turns.load(), 1);
  EXPECT_EQ(deadline_sheds.load(), 2);
  const ServerStatsSnapshot stats = server->stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.shed_deadline, 2u);
  // Two deadline expiries == breaker threshold: the overload signal
  // tripped the breaker open.
  EXPECT_EQ(server->breaker().state(), BreakerState::kOpen);
}

TEST_F(ServerOverloadTest, ShedRequestsNeverCorruptAcceptedOnes) {
  // Interleave accepted turns with shed bursts and deadline expiries,
  // then verify the survivors' retrieval results against an untouched
  // reference system: shedding must never bleed into accepted turns.
  MockClock clock;
  std::unique_ptr<Server> server =
      MakeServer(&clock, /*queue_capacity=*/2, /*breaker_threshold=*/100);
  ASSERT_NE(server, nullptr);
  const uint64_t session = server->OpenSession();

  std::vector<std::vector<uint64_t>> accepted_results;
  Mutex results_mu;
  AskCallback keep = [&accepted_results,
                      &results_mu](Result<AnswerTurn> turn) {
    ASSERT_TRUE(turn.ok()) << turn.status().ToString();
    std::vector<uint64_t> ids;
    for (const RetrievedItem& item : turn.Value().items) {
      ids.push_back(item.id);
    }
    MutexLock lock(&results_mu);
    accepted_results.push_back(std::move(ids));
  };

  for (int round = 0; round < 3; ++round) {
    server->Suspend();
    ASSERT_TRUE(server->Submit(session, Query(server.get(), 4), keep).ok());
    ASSERT_TRUE(server->Submit(session, Query(server.get(), 4), keep).ok());
    // Burst: these are shed at the door and must leave no trace.
    for (int i = 0; i < 4; ++i) {
      EXPECT_FALSE(
          server->Submit(session, Query(server.get(), 4), keep).ok());
    }
    server->Resume();
    // Drain before the next round so the queue is empty again.
    while (server->stats().completed < static_cast<uint64_t>(2 * (round + 1))) {
      std::this_thread::yield();
    }
  }
  server->Shutdown();

  ASSERT_EQ(accepted_results.size(), 6u);
  // Every accepted turn of the same repeated query retrieved the same
  // result set — sheds in between never corrupted session state.
  for (size_t i = 1; i < accepted_results.size(); ++i) {
    EXPECT_EQ(accepted_results[i], accepted_results[0]) << "turn " << i;
  }
  // And the results match an untouched reference system's answer.
  auto reference = Coordinator::Create(SmallConfig());
  ASSERT_TRUE(reference.ok());
  Coordinator::DialogueState state;
  UserQuery query;
  query.text = "show me " + (*reference)->world().ConceptName(4);
  Result<AnswerTurn> ref_turn = (*reference)->AskWithState(query, &state);
  ASSERT_TRUE(ref_turn.ok());
  std::vector<uint64_t> ref_ids;
  for (const RetrievedItem& item : ref_turn.Value().items) {
    ref_ids.push_back(item.id);
  }
  EXPECT_EQ(accepted_results[0], ref_ids);
}

}  // namespace
}  // namespace mqa
