#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "../core/core_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

/// The deterministic multi-session stress proof: N client threads drive M
/// turns each through one Server on a MockClock (no real sleeps anywhere),
/// and every single turn must complete — nothing is shed, nothing hangs,
/// no dialogue state crosses sessions. Runs under tsan and the TSA preset
/// in CI.
class ServerStressTest : public ::testing::Test {
 protected:
  static constexpr size_t kSessions = 6;
  static constexpr size_t kTurns = 4;

  static void SetUpTestSuite() {
    clock_ = new MockClock();
    MqaConfig config = SmallConfig();
    config.serving.num_workers = 4;
    config.serving.queue_capacity = 64;
    config.serving.enable_batching = true;
    config.serving.max_batch = 4;
    config.serving.clock = clock_;
    auto server = Server::Create(config);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = server->release();
  }

  static void TearDownTestSuite() {
    delete server_;
    server_ = nullptr;
    delete clock_;
    clock_ = nullptr;
  }

  static MockClock* clock_;
  static Server* server_;
};

MockClock* ServerStressTest::clock_ = nullptr;
Server* ServerStressTest::server_ = nullptr;

TEST_F(ServerStressTest, EveryTurnOfEverySessionCompletes) {
  const ServerStatsSnapshot before = server_->stats();
  std::vector<uint64_t> sessions(kSessions);
  for (size_t s = 0; s < kSessions; ++s) sessions[s] = server_->OpenSession();

  std::atomic<size_t> completed{0};
  std::atomic<size_t> failed{0};
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    clients.emplace_back([&sessions, &completed, &failed, s] {
      // Each session sticks to its own concept so answers are checkable.
      const uint32_t concept_id = static_cast<uint32_t>(
          s % server_->coordinator()->config().world.num_concepts);
      for (size_t t = 0; t < kTurns; ++t) {
        UserQuery query;
        query.text = "show me " +
                     server_->coordinator()->world().ConceptName(concept_id);
        Result<AnswerTurn> turn = server_->Ask(sessions[s], query);
        if (!turn.ok()) {
          ++failed;
          ADD_FAILURE() << "session " << sessions[s] << " turn " << t << ": "
                        << turn.status().ToString();
          continue;
        }
        ++completed;
        EXPECT_FALSE(turn.Value().answer.empty());
        EXPECT_FALSE(turn.Value().items.empty());
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(completed.load(), kSessions * kTurns);
  EXPECT_EQ(failed.load(), 0u);

  // Server-side accounting agrees: everything admitted, nothing shed.
  const ServerStatsSnapshot after = server_->stats();
  EXPECT_EQ(after.accepted - before.accepted, kSessions * kTurns);
  EXPECT_EQ(after.completed - before.completed, kSessions * kTurns);
  EXPECT_EQ(after.failed, before.failed);
  EXPECT_EQ(after.shed_queue_full, before.shed_queue_full);
  EXPECT_EQ(after.shed_breaker, before.shed_breaker);
  EXPECT_EQ(after.shed_deadline, before.shed_deadline);

  // Per-session dialogue state advanced by exactly this session's turns.
  for (size_t s = 0; s < kSessions; ++s) {
    Result<size_t> history = server_->DialogueHistorySize(sessions[s]);
    ASSERT_TRUE(history.ok());
    EXPECT_EQ(history.Value(), kTurns);
    Result<std::vector<RetrievedItem>> results =
        server_->LastResults(sessions[s]);
    ASSERT_TRUE(results.ok());
    EXPECT_FALSE(results.Value().empty());
    EXPECT_TRUE(server_->CloseSession(sessions[s]).ok());
  }
}

TEST_F(ServerStressTest, CrossQueryBatchingCoalescedWork) {
  // Push 24 concurrent turns through the 4 workers; the batchers must see
  // every encode and search call (all retrieval traffic flows through
  // them). Stats are asserted as deltas so the test is self-contained
  // under ctest's one-process-per-test execution.
  ASSERT_NE(server_->encode_batcher(), nullptr);
  ASSERT_NE(server_->search_batcher(), nullptr);
  const BatcherStats encode_before = server_->encode_batcher()->stats();
  const BatcherStats search_before = server_->search_batcher()->stats();

  std::vector<uint64_t> sessions(kSessions);
  for (size_t s = 0; s < kSessions; ++s) sessions[s] = server_->OpenSession();
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    clients.emplace_back([&sessions, s] {
      for (size_t t = 0; t < kTurns; ++t) {
        UserQuery query;
        query.text = "show me " +
                     server_->coordinator()->world().ConceptName(
                         static_cast<uint32_t>(s) %
                         server_->coordinator()->world().num_concepts());
        Result<AnswerTurn> turn = server_->Ask(sessions[s], query);
        EXPECT_TRUE(turn.ok()) << turn.status().ToString();
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (size_t s = 0; s < kSessions; ++s) {
    EXPECT_TRUE(server_->CloseSession(sessions[s]).ok());
  }

  BatcherStats encode = server_->encode_batcher()->stats();
  BatcherStats search = server_->search_batcher()->stats();
  encode.items -= encode_before.items;
  encode.batches -= encode_before.batches;
  search.items -= search_before.items;
  search.batches -= search_before.batches;
  EXPECT_GE(encode.items, kSessions * kTurns);
  EXPECT_GE(search.items, kSessions * kTurns);
  encode.size_flushes -= encode_before.size_flushes;
  encode.slack_flushes -= encode_before.slack_flushes;
  encode.drain_flushes -= encode_before.drain_flushes;
  search.size_flushes -= search_before.size_flushes;
  search.slack_flushes -= search_before.slack_flushes;
  search.drain_flushes -= search_before.drain_flushes;
  EXPECT_GT(encode.batches, 0u);
  EXPECT_GT(search.batches, 0u);
  // Coalescing never exceeds the configured cap.
  EXPECT_LE(encode.max_occupancy, server_->encode_batcher()->max_batch());
  EXPECT_LE(search.max_occupancy, server_->search_batcher()->max_batch());
  // Every batch accounted exactly one flush trigger.
  EXPECT_EQ(encode.size_flushes + encode.slack_flushes + encode.drain_flushes,
            encode.batches);
  EXPECT_EQ(search.size_flushes + search.slack_flushes + search.drain_flushes,
            search.batches);
}

TEST_F(ServerStressTest, SubmitToUnknownSessionIsNotFound) {
  UserQuery query;
  query.text = "anything";
  Result<AnswerTurn> turn = server_->Ask(999999, query);
  ASSERT_FALSE(turn.ok());
  EXPECT_EQ(turn.status().code(), StatusCode::kNotFound);
}

TEST_F(ServerStressTest, ShutdownIsIdempotentAndDrains) {
  // A dedicated small server: accepted work still completes through
  // Shutdown, and a second Shutdown is a no-op.
  MqaConfig config = SmallConfig();
  config.serving.num_workers = 2;
  config.serving.queue_capacity = 8;
  auto server = Server::Create(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint64_t session = (*server)->OpenSession();

  std::atomic<int> done{0};
  (*server)->Suspend();
  for (int i = 0; i < 3; ++i) {
    UserQuery query;
    query.text = "show me " + (*server)->coordinator()->world().ConceptName(1);
    ASSERT_TRUE((*server)
                    ->Submit(session, query,
                             [&done](Result<AnswerTurn> turn) {
                               EXPECT_TRUE(turn.ok());
                               ++done;
                             })
                    .ok());
  }
  EXPECT_EQ((*server)->queue_depth(), 3u);
  // Shutdown releases the suspended workers and drains the queue before
  // joining: each queued turn's callback fires exactly once.
  (*server)->Shutdown();
  EXPECT_EQ(done.load(), 3);
  (*server)->Shutdown();  // idempotent
  EXPECT_EQ(done.load(), 3);
}

}  // namespace
}  // namespace mqa
