#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "server/server.h"
#include "../core/core_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

std::vector<uint64_t> Ids(const std::vector<RetrievedItem>& items) {
  std::vector<uint64_t> ids;
  ids.reserve(items.size());
  for (const RetrievedItem& item : items) ids.push_back(item.id);
  return ids;
}

/// Regression suite for cross-session leakage: concurrent interleaved
/// sessions must keep their dialogue history, vague-query context and
/// comparative-round selections strictly private.
class SessionIsolationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    clock_ = new MockClock();
    MqaConfig config = SmallConfig();
    config.serving.num_workers = 3;
    config.serving.max_batch = 4;
    config.serving.clock = clock_;
    auto server = Server::Create(config);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = server->release();
  }

  static void TearDownTestSuite() {
    delete server_;
    server_ = nullptr;
    delete clock_;
    clock_ = nullptr;
  }

  static MockClock* clock_;
  static Server* server_;
};

MockClock* SessionIsolationTest::clock_ = nullptr;
Server* SessionIsolationTest::server_ = nullptr;

TEST_F(SessionIsolationTest, InterleavedSessionsKeepPrivateHistory) {
  const uint64_t a = server_->OpenSession();
  const uint64_t b = server_->OpenSession();
  const std::string concept_a = server_->coordinator()->world().ConceptName(0);
  const std::string concept_b = server_->coordinator()->world().ConceptName(3);

  UserQuery qa;
  qa.text = "show me " + concept_a;
  UserQuery qb;
  qb.text = "show me " + concept_b;

  // Interleave: A, B, A, B.
  ASSERT_TRUE(server_->Ask(a, qa).ok());
  ASSERT_TRUE(server_->Ask(b, qb).ok());
  Result<AnswerTurn> a2 = server_->Ask(a, qa);
  Result<AnswerTurn> b2 = server_->Ask(b, qb);
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(b2.ok());

  // Histories advanced independently: two turns each, not four.
  EXPECT_EQ(server_->DialogueHistorySize(a).Value(), 2u);
  EXPECT_EQ(server_->DialogueHistorySize(b).Value(), 2u);

  // A vague follow-up resolves against *this* session's history, even
  // though the other session asked about a different concept in between.
  UserQuery vague;
  vague.text = "show me more";
  Result<AnswerTurn> more_b = server_->Ask(b, vague);
  ASSERT_TRUE(more_b.ok());
  ASSERT_FALSE(more_b.Value().items.empty());
  size_t matching = 0;
  for (const RetrievedItem& item : more_b.Value().items) {
    if (server_->coordinator()->kb().at(item.id).concept_id == 3u) ++matching;
  }
  EXPECT_GE(matching, 3u) << "session B's follow-up drifted to another "
                             "session's topic";

  EXPECT_TRUE(server_->CloseSession(a).ok());
  EXPECT_TRUE(server_->CloseSession(b).ok());
}

TEST_F(SessionIsolationTest, SelectionsDoNotLeakBetweenSessions) {
  const uint64_t a = server_->OpenSession();
  const uint64_t b = server_->OpenSession();
  UserQuery qa;
  qa.text = "show me " + server_->coordinator()->world().ConceptName(1);
  UserQuery qb;
  qb.text = "show me " + server_->coordinator()->world().ConceptName(5);
  ASSERT_TRUE(server_->Ask(a, qa).ok());
  ASSERT_TRUE(server_->Ask(b, qb).ok());

  // A selects (comparative-round feedback); B's next turn must not become
  // image-assisted by A's click.
  ASSERT_TRUE(server_->Select(a, 0).ok());
  const std::vector<uint64_t> b_before = Ids(server_->LastResults(b).Value());
  Result<AnswerTurn> b2 = server_->Ask(b, qb);
  ASSERT_TRUE(b2.ok());
  // Same query, same session state => same results: A's selection did not
  // perturb B's retrieval.
  EXPECT_EQ(Ids(b2.Value().items), b_before);

  // A's selection applies to A's own next turn, and is then consumed.
  const uint64_t selected = server_->LastResults(a).Value()[0].id;
  UserQuery follow;
  follow.text = "more like this one";
  Result<AnswerTurn> a2 = server_->Ask(a, follow);
  ASSERT_TRUE(a2.ok());
  ASSERT_FALSE(a2.Value().items.empty());
  const uint32_t sel_concept =
      server_->coordinator()->kb().at(selected).concept_id;
  size_t matching = 0;
  for (const RetrievedItem& item : a2.Value().items) {
    if (server_->coordinator()->kb().at(item.id).concept_id == sel_concept) {
      ++matching;
    }
  }
  EXPECT_GE(matching, 3u);

  EXPECT_TRUE(server_->CloseSession(a).ok());
  EXPECT_TRUE(server_->CloseSession(b).ok());
}

TEST_F(SessionIsolationTest, ResetSessionClearsOnlyThatSession) {
  const uint64_t a = server_->OpenSession();
  const uint64_t b = server_->OpenSession();
  UserQuery query;
  query.text = "show me " + server_->coordinator()->world().ConceptName(2);
  ASSERT_TRUE(server_->Ask(a, query).ok());
  ASSERT_TRUE(server_->Ask(b, query).ok());
  ASSERT_TRUE(server_->ResetSession(a).ok());
  EXPECT_EQ(server_->DialogueHistorySize(a).Value(), 0u);
  EXPECT_EQ(server_->DialogueHistorySize(b).Value(), 1u);
  EXPECT_TRUE(server_->LastResults(a).Value().empty());
  EXPECT_FALSE(server_->LastResults(b).Value().empty());
  EXPECT_TRUE(server_->CloseSession(a).ok());
  EXPECT_TRUE(server_->CloseSession(b).ok());
}

TEST_F(SessionIsolationTest, ConcurrentSessionsMatchSequentialReference) {
  // Equivalence under concurrency *and* batching: the same per-session
  // query streams produce bit-identical retrieval results whether they
  // run interleaved through the batched server or sequentially against a
  // fresh identically-configured system.
  constexpr size_t kSessions = 4;
  constexpr size_t kTurns = 3;
  std::vector<uint64_t> sessions(kSessions);
  for (size_t s = 0; s < kSessions; ++s) sessions[s] = server_->OpenSession();

  std::vector<std::vector<std::vector<uint64_t>>> concurrent(
      kSessions, std::vector<std::vector<uint64_t>>(kTurns));
  std::vector<std::thread> clients;
  for (size_t s = 0; s < kSessions; ++s) {
    clients.emplace_back([&sessions, &concurrent, s] {
      for (size_t t = 0; t < kTurns; ++t) {
        UserQuery query;
        query.text = "show me " + server_->coordinator()->world().ConceptName(
                                      static_cast<uint32_t>(s + 2));
        Result<AnswerTurn> turn = server_->Ask(sessions[s], query);
        ASSERT_TRUE(turn.ok()) << turn.status().ToString();
        concurrent[s][t] = Ids(turn.Value().items);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (size_t s = 0; s < kSessions; ++s) {
    EXPECT_TRUE(server_->CloseSession(sessions[s]).ok());
  }

  // Sequential reference: a second system built from the same seeded
  // config, one DialogueState per simulated session, no server, no
  // batching, no concurrency.
  auto reference = Coordinator::Create(SmallConfig());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (size_t s = 0; s < kSessions; ++s) {
    Coordinator::DialogueState state;
    for (size_t t = 0; t < kTurns; ++t) {
      UserQuery query;
      query.text = "show me " + (*reference)->world().ConceptName(
                                    static_cast<uint32_t>(s + 2));
      Result<AnswerTurn> turn = (*reference)->AskWithState(query, &state);
      ASSERT_TRUE(turn.ok()) << turn.status().ToString();
      EXPECT_EQ(Ids(turn.Value().items), concurrent[s][t])
          << "batched/concurrent retrieval diverged from the sequential "
             "reference at session "
          << s << " turn " << t;
    }
  }
}

}  // namespace
}  // namespace mqa
