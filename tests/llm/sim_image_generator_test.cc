#include "llm/sim_image_generator.h"

#include <gtest/gtest.h>

#include "vector/distance.h"

namespace mqa {
namespace {

class SimImageGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorldConfig c;
    c.num_concepts = 12;
    c.latent_dim = 16;
    c.raw_image_dim = 32;
    c.seed = 5;
    auto world = World::Create(c);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<World>(std::move(world).Value());
  }

  std::unique_ptr<World> world_;
};

TEST_F(SimImageGeneratorTest, RejectsEmptyPrompt) {
  SimImageGenerator gen(world_.get());
  EXPECT_FALSE(gen.Generate("").ok());
  EXPECT_FALSE(gen.GenerateBatch("x", 0).ok());
}

TEST_F(SimImageGeneratorTest, GeneratesOnTopicImages) {
  SimImageGenerator gen(world_.get());
  const std::string name = world_->ConceptName(0);
  auto img = gen.Generate("please draw " + name);
  ASSERT_TRUE(img.ok());
  EXPECT_FALSE(img->in_knowledge_base);
  EXPECT_EQ(img->features.size(), 32u);
  EXPECT_NE(img->caption.find(name), std::string::npos);
  // The generated latent is closer to the prompted concept than to a
  // different-noun concept.
  const float d_own = L2Sq(img->latent.data(),
                           world_->ConceptPrototype(0).data(), 16);
  const float d_far = L2Sq(img->latent.data(),
                           world_->ConceptPrototype(8).data(), 16);
  EXPECT_LT(d_own, d_far);
}

TEST_F(SimImageGeneratorTest, BatchIsDiverse) {
  SimImageGenerator gen(world_.get());
  auto batch = gen.GenerateBatch("some " + world_->ConceptName(1), 5);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 5u);
  // Generation noise makes latents differ between samples.
  EXPECT_GT(L2Sq((*batch)[0].latent.data(), (*batch)[1].latent.data(), 16),
            0.0f);
  for (const GeneratedImage& img : *batch) {
    EXPECT_FALSE(img.in_knowledge_base);
  }
}

TEST_F(SimImageGeneratorTest, NameIsStable) {
  SimImageGenerator gen(world_.get());
  EXPECT_EQ(gen.name(), "sim-dalle");
}

}  // namespace
}  // namespace mqa
