#include "llm/prompt_builder.h"

#include <gtest/gtest.h>

namespace mqa {
namespace {

TEST(PromptBuilderTest, MinimalPromptHasSystemAndQuery) {
  PromptBuilder builder;
  const std::string prompt = builder.Build("find cheese", {});
  EXPECT_NE(prompt.find("[SYSTEM]"), std::string::npos);
  EXPECT_NE(prompt.find("[QUERY] find cheese"), std::string::npos);
  EXPECT_EQ(prompt.find("[CONTEXT]"), std::string::npos);
  EXPECT_EQ(prompt.find("[HISTORY]"), std::string::npos);
}

TEST(PromptBuilderTest, ContextItemsAreNumbered) {
  PromptBuilder builder;
  std::vector<RetrievedItem> items = {
      {7, "object seven", 0.5f},
      {9, "object nine", 0.75f},
  };
  const std::string prompt = builder.Build("q", items);
  EXPECT_NE(prompt.find("[CONTEXT]"), std::string::npos);
  EXPECT_NE(prompt.find("1. object seven (distance 0.500)"),
            std::string::npos);
  EXPECT_NE(prompt.find("2. object nine (distance 0.750)"),
            std::string::npos);
}

TEST(PromptBuilderTest, HistoryAccumulates) {
  PromptBuilder builder;
  builder.AddTurn("hello", "hi there");
  builder.AddTurn("more", "sure");
  EXPECT_EQ(builder.history_size(), 2u);
  const std::string prompt = builder.Build("q", {});
  EXPECT_NE(prompt.find("[HISTORY]"), std::string::npos);
  EXPECT_NE(prompt.find("user: hello"), std::string::npos);
  EXPECT_NE(prompt.find("assistant: sure"), std::string::npos);
  builder.ClearHistory();
  EXPECT_EQ(builder.history_size(), 0u);
  EXPECT_EQ(builder.Build("q", {}).find("[HISTORY]"), std::string::npos);
}

TEST(PromptBuilderTest, CustomSystemInstruction) {
  PromptBuilder builder;
  builder.SetSystem("be terse");
  EXPECT_NE(builder.Build("q", {}).find("[SYSTEM] be terse"),
            std::string::npos);
}

}  // namespace
}  // namespace mqa
