#include "llm/sim_llm.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "llm/prompt_builder.h"

namespace mqa {
namespace {

std::string GroundedPrompt() {
  PromptBuilder builder;
  std::vector<RetrievedItem> items = {
      {1, "object #1 | an image of moldy cheese", 0.3f},
      {2, "object #2 | an image of foggy clouds", 0.6f},
  };
  return builder.Build("show me moldy cheese", items);
}

TEST(ParsePromptTest, RoundTripsBuilderSections) {
  PromptBuilder builder;
  builder.SetSystem("sys text");
  builder.AddTurn("u1", "a1");
  std::vector<RetrievedItem> items = {{5, "five", 0.1f}};
  const ParsedPrompt parsed = ParsePrompt(builder.Build("the query", items));
  EXPECT_EQ(parsed.system, "sys text");
  EXPECT_EQ(parsed.query, "the query");
  ASSERT_EQ(parsed.context_items.size(), 1u);
  EXPECT_NE(parsed.context_items[0].find("five"), std::string::npos);
  ASSERT_EQ(parsed.history_lines.size(), 2u);
  EXPECT_EQ(parsed.history_lines[0], "user: u1");
}

TEST(SimLlmTest, ValidatesRequest) {
  SimLlm llm;
  LlmRequest empty;
  EXPECT_FALSE(llm.Complete(empty).ok());
  LlmRequest bad_temp;
  bad_temp.prompt = "x";
  bad_temp.temperature = 5.0f;
  EXPECT_FALSE(llm.Complete(bad_temp).ok());
}

TEST(SimLlmTest, GroundedAnswerMentionsOnlyContext) {
  SimLlm llm;
  LlmRequest request;
  request.prompt = GroundedPrompt();
  request.temperature = 0.0f;
  auto response = llm.Complete(request);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->text.find("moldy cheese"), std::string::npos);
  EXPECT_NE(response->text.find("foggy clouds"), std::string::npos);
  // No hallucination disclaimer on the grounded path.
  EXPECT_EQ(response->text.find("cannot verify"), std::string::npos);
}

TEST(SimLlmTest, UngroundedAnswerAdmitsNoKnowledgeBase) {
  SimLlm llm;
  PromptBuilder builder;
  LlmRequest request;
  request.prompt = builder.Build("show me moldy cheese", {});
  request.temperature = 0.0f;
  auto response = llm.Complete(request);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->text.find("cannot verify"), std::string::npos);
}

TEST(SimLlmTest, DeterministicAtTemperatureZero) {
  SimLlm llm(42);
  LlmRequest request;
  request.prompt = GroundedPrompt();
  request.temperature = 0.0f;
  auto a = llm.Complete(request);
  auto b = llm.Complete(request);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->text, b->text);
  // Temperature zero always picks the first phrasing variant.
  EXPECT_EQ(a->text.rfind("Here is what I found", 0), 0u);
}

TEST(SimLlmTest, SamePromptSameOutputEvenWithTemperature) {
  // Replayability: the variant draw is seeded by the prompt, so identical
  // requests give identical answers.
  SimLlm llm(42);
  LlmRequest request;
  request.prompt = GroundedPrompt();
  request.temperature = 1.0f;
  auto a = llm.Complete(request);
  auto b = llm.Complete(request);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->text, b->text);
}

TEST(SimLlmTest, TemperatureVariesPhrasingAcrossPrompts) {
  SimLlm llm(42);
  // At high temperature, different prompts should not all use the same
  // opener.
  std::set<std::string> openers;
  for (int i = 0; i < 20; ++i) {
    PromptBuilder builder;
    std::vector<RetrievedItem> items = {
        {static_cast<uint64_t>(i), "thing " + std::to_string(i), 0.1f}};
    LlmRequest request;
    request.prompt = builder.Build("query " + std::to_string(i), items);
    request.temperature = 1.0f;
    auto response = llm.Complete(request);
    ASSERT_TRUE(response.ok());
    openers.insert(Split(response->text, '\n')[0]);
  }
  EXPECT_GT(openers.size(), 1u);
}

TEST(SimLlmTest, LongContextIsTruncatedWithEllipsis) {
  SimLlm llm;
  PromptBuilder builder;
  std::vector<RetrievedItem> items;
  for (int i = 0; i < 9; ++i) {
    items.push_back({static_cast<uint64_t>(i),
                     "item " + std::to_string(i), 0.1f * i});
  }
  LlmRequest request;
  request.prompt = builder.Build("q", items);
  auto response = llm.Complete(request);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->text.find("and 4 more"), std::string::npos);
}

TEST(SimLlmTest, NameIsStable) {
  SimLlm llm;
  EXPECT_EQ(llm.name(), "sim-llm");
}

}  // namespace
}  // namespace mqa
