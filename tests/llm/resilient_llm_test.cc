#include "llm/resilient_llm.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace mqa {
namespace {

/// A scriptable model: fails the first `failures_` calls with the given
/// code, then succeeds forever.
class FlakyLlm : public LanguageModel {
 public:
  FlakyLlm(int failures, StatusCode code = StatusCode::kUnavailable)
      : failures_(failures), code_(code) {}

  Result<LlmResponse> Complete(const LlmRequest& request) override {
    ++calls_;
    if (calls_ <= failures_) {
      return Status::FromCode(code_, "scripted failure #" +
                                         std::to_string(calls_));
    }
    LlmResponse r;
    r.text = "answer to: " + request.prompt;
    return r;
  }

  std::string name() const override { return "flaky-llm"; }
  int calls() const { return calls_; }

 private:
  int failures_;
  StatusCode code_;
  int calls_ = 0;
};

LlmResilienceConfig FastConfig() {
  LlmResilienceConfig c;
  c.retry.max_attempts = 3;
  c.retry.initial_backoff_ms = 10.0;
  c.breaker.failure_threshold = 2;
  c.breaker.open_duration_ms = 1000.0;
  c.breaker.half_open_successes = 1;
  return c;
}

LlmRequest Req(const std::string& prompt) {
  LlmRequest r;
  r.prompt = prompt;
  return r;
}

TEST(ResilientLlmTest, TransparentOnHealthyModel) {
  MockClock clock;
  auto inner = std::make_unique<FlakyLlm>(0);
  FlakyLlm* raw = inner.get();
  ResilientLlm llm(std::move(inner), FastConfig(), &clock);
  EXPECT_EQ(llm.name(), "flaky-llm");
  auto r = llm.Complete(Req("hi"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->text, "answer to: hi");
  EXPECT_EQ(raw->calls(), 1);
  EXPECT_EQ(clock.NowMicros(), 0);  // no backoff, no sleep
  EXPECT_EQ(llm.breaker_state(), BreakerState::kClosed);
}

TEST(ResilientLlmTest, RetriesAbsorbTransientBurst) {
  MockClock clock;
  auto inner = std::make_unique<FlakyLlm>(2);
  FlakyLlm* raw = inner.get();
  ResilientLlm llm(std::move(inner), FastConfig(), &clock);
  auto r = llm.Complete(Req("hi"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(raw->calls(), 3);
  EXPECT_EQ(llm.last_retry_stats().attempts, 3);
  // The absorbed burst is one breaker success: still closed, streak 0.
  EXPECT_EQ(llm.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(llm.breaker().consecutive_failures(), 0u);
}

TEST(ResilientLlmTest, PermanentErrorPropagatesWithoutRetry) {
  MockClock clock;
  auto inner =
      std::make_unique<FlakyLlm>(100, StatusCode::kInvalidArgument);
  FlakyLlm* raw = inner.get();
  ResilientLlm llm(std::move(inner), FastConfig(), &clock);
  auto r = llm.Complete(Req("hi"));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(raw->calls(), 1);
  // A permanent answer keeps the breaker closed.
  EXPECT_EQ(llm.breaker_state(), BreakerState::kClosed);
}

TEST(ResilientLlmTest, PersistentOutageTripsBreakerThenFailsFast) {
  MockClock clock;
  auto inner = std::make_unique<FlakyLlm>(1000000);
  FlakyLlm* raw = inner.get();
  ResilientLlm llm(std::move(inner), FastConfig(), &clock);

  // Two exhausted retry loops (threshold 2) trip the breaker.
  EXPECT_EQ(llm.Complete(Req("a")).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(llm.Complete(Req("b")).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(llm.breaker_state(), BreakerState::kOpen);
  const int calls_when_open = raw->calls();
  EXPECT_EQ(calls_when_open, 6);  // 2 loops x 3 attempts

  // While open: fail fast, inner model never touched.
  auto r = llm.Complete(Req("c"));
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("circuit breaker"), std::string::npos);
  EXPECT_EQ(raw->calls(), calls_when_open);
}

TEST(ResilientLlmTest, RecoversThroughHalfOpenProbe) {
  MockClock clock;
  auto inner = std::make_unique<FlakyLlm>(6);  // exactly two failed loops
  ResilientLlm llm(std::move(inner), FastConfig(), &clock);
  EXPECT_FALSE(llm.Complete(Req("a")).ok());
  EXPECT_FALSE(llm.Complete(Req("b")).ok());
  EXPECT_EQ(llm.breaker_state(), BreakerState::kOpen);

  clock.AdvanceMillis(1001.0);
  auto r = llm.Complete(Req("c"));  // the half-open probe, now healthy
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(llm.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(llm.breaker().transitions(),
            (std::vector<BreakerState>{
                BreakerState::kClosed, BreakerState::kOpen,
                BreakerState::kHalfOpen, BreakerState::kClosed}));
}

}  // namespace
}  // namespace mqa
