#include "llm/query_rewriter.h"

#include <gtest/gtest.h>

namespace mqa {
namespace {

TEST(QueryRewriterTest, ContentWordsFilterStopWords) {
  EXPECT_EQ(ContextualQueryRewriter::ContentWords(
                "i would like some images of moldy cheese"),
            (std::vector<std::string>{"moldy", "cheese"}));
  EXPECT_TRUE(
      ContextualQueryRewriter::ContentWords("show me more of those").empty());
  EXPECT_EQ(ContextualQueryRewriter::ContentWords("cheese cheese cheese"),
            (std::vector<std::string>{"cheese"}));
}

TEST(QueryRewriterTest, InformativeQueriesPassThrough) {
  ContextualQueryRewriter rewriter;
  rewriter.ObserveTurn("find foggy clouds");
  EXPECT_EQ(rewriter.Rewrite("show me striped dresses"),
            "show me striped dresses");
}

TEST(QueryRewriterTest, VagueFollowUpGainsHistoryTopic) {
  ContextualQueryRewriter rewriter;
  rewriter.ObserveTurn("i would like some images of moldy cheese");
  const std::string rewritten = rewriter.Rewrite("show me more");
  EXPECT_NE(rewritten.find("moldy"), std::string::npos);
  EXPECT_NE(rewritten.find("cheese"), std::string::npos);
  EXPECT_EQ(rewritten.rfind("show me more", 0), 0u);  // original kept
}

TEST(QueryRewriterTest, NoHistoryNoChange) {
  ContextualQueryRewriter rewriter;
  EXPECT_EQ(rewriter.Rewrite("show me more"), "show me more");
}

TEST(QueryRewriterTest, MostRecentTopicWins) {
  ContextualQueryRewriter rewriter;
  rewriter.ObserveTurn("find moldy cheese");
  rewriter.ObserveTurn("now find foggy clouds please");
  const std::string rewritten = rewriter.Rewrite("any more like that?");
  // At most three topical words, most recent turn first.
  EXPECT_NE(rewritten.find("foggy"), std::string::npos);
  EXPECT_NE(rewritten.find("clouds"), std::string::npos);
}

TEST(QueryRewriterTest, HistoryWindowEvictsOldTurns) {
  ContextualQueryRewriter rewriter(1);
  rewriter.ObserveTurn("find moldy cheese");
  rewriter.ObserveTurn("thanks, that is nice");  // pushes cheese out
  const std::string rewritten = rewriter.Rewrite("more of them");
  EXPECT_EQ(rewritten.find("cheese"), std::string::npos);
}

TEST(QueryRewriterTest, ClearForgetsEverything) {
  ContextualQueryRewriter rewriter;
  rewriter.ObserveTurn("find moldy cheese");
  rewriter.Clear();
  EXPECT_EQ(rewriter.history_size(), 0u);
  EXPECT_EQ(rewriter.Rewrite("more"), "more");
}

}  // namespace
}  // namespace mqa
