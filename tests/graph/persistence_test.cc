#include <gtest/gtest.h>

#include <sstream>

#include "graph/pipeline.h"
#include "graph_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::MakeClusteredStore;

TEST(GraphIndexPersistenceTest, SaveLoadPreservesSearchBehaviour) {
  VectorStore store = MakeClusteredStore(300, 8, 4, 51);
  GraphBuildConfig config;
  config.algorithm = "mqa-hybrid";
  config.max_degree = 12;
  auto built = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(built.ok());

  std::stringstream blob;
  ASSERT_TRUE((*built)->Save(blob).ok());

  auto loaded = GraphIndex::Load(
      blob, std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->name(), (*built)->name());
  EXPECT_EQ((*loaded)->entry_points(), (*built)->entry_points());
  EXPECT_EQ((*loaded)->size(), (*built)->size());

  SearchParams params;
  params.k = 10;
  for (uint32_t q : {0u, 50u, 299u}) {
    const Vector query = store.Row(q);
    auto a = (*built)->Search(query.data(), params, nullptr);
    auto b = (*loaded)->Search(query.data(), params, nullptr);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST(GraphIndexPersistenceTest, LoadRejectsGarbageAndSizeMismatch) {
  std::stringstream garbage("nonsense");
  EXPECT_FALSE(GraphIndex::Load(garbage, nullptr).ok());

  VectorStore store = MakeClusteredStore(100, 8, 4, 52);
  GraphBuildConfig config;
  config.algorithm = "kgraph";
  auto built = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(built.ok());
  std::stringstream blob;
  ASSERT_TRUE((*built)->Save(blob).ok());

  VectorStore smaller = MakeClusteredStore(50, 8, 4, 53);
  EXPECT_FALSE(
      GraphIndex::Load(blob, std::make_unique<FlatDistanceComputer>(
                                 &smaller, Metric::kL2))
          .ok());
}

TEST(GraphIndexPersistenceTest, TruncatedBlobFails) {
  VectorStore store = MakeClusteredStore(80, 8, 4, 54);
  GraphBuildConfig config;
  config.algorithm = "kgraph";
  auto built = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(built.ok());
  std::stringstream blob;
  ASSERT_TRUE((*built)->Save(blob).ok());
  std::string data = blob.str();
  data.resize(data.size() - 6);
  std::stringstream cut(data);
  EXPECT_FALSE(
      GraphIndex::Load(cut, std::make_unique<FlatDistanceComputer>(
                                &store, Metric::kL2))
          .ok());
}

// Structural invariants every built navigation graph must satisfy.
class GraphInvariantsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GraphInvariantsTest, NoSelfLoopsNoDuplicatesIdsInRange) {
  VectorStore store = MakeClusteredStore(400, 8, 8, 55);
  GraphBuildConfig config;
  config.algorithm = GetParam();
  config.max_degree = 12;
  auto built = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(built.ok()) << GetParam();
  const AdjacencyGraph& graph = (*built)->graph();
  for (uint32_t u = 0; u < graph.num_nodes(); ++u) {
    std::set<uint32_t> seen;
    for (uint32_t v : graph.neighbors(u)) {
      EXPECT_NE(v, u) << "self loop at " << u;
      EXPECT_LT(v, graph.num_nodes());
      EXPECT_TRUE(seen.insert(v).second) << "duplicate edge " << u << "->"
                                         << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, GraphInvariantsTest,
                         ::testing::Values("kgraph", "nsg", "vamana",
                                           "mqa-hybrid"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace mqa
