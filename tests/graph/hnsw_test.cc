#include "graph/hnsw.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::ExactKnn;
using ::mqa::testing::MakeClusteredStore;
using ::mqa::testing::Recall;

TEST(HnswTest, BuildValidatesInput) {
  VectorStore store = MakeClusteredStore(10, 4, 2, 1);
  HnswConfig config;
  EXPECT_FALSE(HnswIndex::Build(config, &store, nullptr).ok());
  EXPECT_FALSE(HnswIndex::Build(config, nullptr, nullptr).ok());
  config.m = 1;
  EXPECT_FALSE(
      HnswIndex::Build(config, &store,
                       std::make_unique<FlatDistanceComputer>(&store,
                                                              Metric::kL2))
          .ok());
  VectorSchema schema;
  schema.dims = {4};
  VectorStore empty(schema);
  config.m = 16;
  EXPECT_FALSE(
      HnswIndex::Build(config, &empty,
                       std::make_unique<FlatDistanceComputer>(&empty,
                                                              Metric::kL2))
          .ok());
}

TEST(HnswTest, HighRecallOnClusteredData) {
  std::vector<Vector> queries;
  VectorStore store = MakeClusteredStore(1000, 8, 8, 2, &queries, 20);
  HnswConfig config;
  config.m = 12;
  config.ef_construction = 80;
  auto index = HnswIndex::Build(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  double recall_sum = 0;
  for (const Vector& q : queries) {
    SearchStats stats;
    auto got = (*index)->Search(q.data(), params, &stats);
    ASSERT_TRUE(got.ok());
    recall_sum += Recall(*got, ExactKnn(store, q, 10));
    // Far fewer distance computations than brute force.
    EXPECT_LT(stats.dist_comps, 700u);
  }
  EXPECT_GE(recall_sum / queries.size(), 0.95);
}

TEST(HnswTest, SingleElementIndex) {
  VectorSchema schema;
  schema.dims = {4};
  VectorStore store(schema);
  ASSERT_TRUE(store.Add({1, 2, 3, 4}).ok());
  HnswConfig config;
  auto index = HnswIndex::Build(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());
  const Vector q = {0, 0, 0, 0};
  SearchParams params;
  params.k = 5;
  auto got = (*index)->Search(q.data(), params, nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 1u);
  EXPECT_EQ((*got)[0].id, 0u);
}

TEST(HnswTest, LevelsAreAssignedAndLinked) {
  VectorStore store = MakeClusteredStore(800, 8, 4, 3);
  HnswConfig config;
  config.m = 8;
  auto index = HnswIndex::Build(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());
  // With 800 points and m=8, some node should be above layer 0.
  EXPECT_GE((*index)->max_level(), 1);
  EXPECT_EQ((*index)->size(), 800u);
  EXPECT_GT((*index)->MemoryBytes(), 0u);
  EXPECT_EQ((*index)->name(), "hnsw");
}

TEST(HnswTest, DegreeBoundsRespected) {
  VectorStore store = MakeClusteredStore(600, 8, 4, 4);
  HnswConfig config;
  config.m = 6;
  auto index = HnswIndex::Build(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());
  for (uint32_t u = 0; u < 600; ++u) {
    EXPECT_LE((*index)->links(u, 0).size(), config.m * 2);
  }
}

TEST(HnswTest, RejectsZeroK) {
  VectorStore store = MakeClusteredStore(50, 4, 2, 5);
  auto index = HnswIndex::Build(
      HnswConfig{}, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());
  const Vector q(4, 0.0f);
  SearchParams params;
  params.k = 0;
  EXPECT_FALSE((*index)->Search(q.data(), params, nullptr).ok());
}

TEST(HnswTest, SaveLoadPreservesSearchBehaviour) {
  VectorStore store = MakeClusteredStore(400, 8, 4, 91);
  HnswConfig config;
  config.m = 8;
  auto built = HnswIndex::Build(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(built.ok());
  std::stringstream blob;
  ASSERT_TRUE((*built)->Save(blob).ok());
  auto loaded = HnswIndex::Load(
      blob, config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), 400u);
  EXPECT_EQ((*loaded)->max_level(), (*built)->max_level());
  SearchParams params;
  params.k = 10;
  for (uint32_t q : {0u, 111u, 399u}) {
    const Vector query = store.Row(q);
    auto a = (*built)->Search(query.data(), params, nullptr);
    auto b = (*loaded)->Search(query.data(), params, nullptr);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST(HnswTest, LoadRejectsGarbageAndMismatchedStore) {
  std::stringstream garbage("not an index");
  VectorStore store = MakeClusteredStore(50, 8, 4, 92);
  EXPECT_FALSE(
      HnswIndex::Load(garbage, HnswConfig{}, &store,
                      std::make_unique<FlatDistanceComputer>(&store,
                                                             Metric::kL2))
          .ok());
  auto built = HnswIndex::Build(
      HnswConfig{}, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(built.ok());
  std::stringstream blob;
  ASSERT_TRUE((*built)->Save(blob).ok());
  VectorStore other = MakeClusteredStore(60, 8, 4, 93);
  EXPECT_FALSE(
      HnswIndex::Load(blob, HnswConfig{}, &other,
                      std::make_unique<FlatDistanceComputer>(&other,
                                                             Metric::kL2))
          .ok());
}

TEST(HnswTest, InsertAppendedRequiresGrownStore) {
  VectorStore store = MakeClusteredStore(60, 8, 4, 94);
  auto index = HnswIndex::Build(
      HnswConfig{}, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE((*index)->InsertAppended().ok());  // nothing appended yet
  ASSERT_TRUE(store.Add(store.Row(0)).ok());
  ASSERT_TRUE((*index)->InsertAppended().ok());
  EXPECT_EQ((*index)->size(), 61u);
}

TEST(HnswTest, DeterministicGivenSeed) {
  VectorStore store = MakeClusteredStore(300, 8, 4, 6);
  HnswConfig config;
  config.seed = 7;
  auto a = HnswIndex::Build(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  auto b = HnswIndex::Build(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(a.ok() && b.ok());
  const Vector q = store.Row(42);
  SearchParams params;
  params.k = 10;
  auto ra = (*a)->Search(q.data(), params, nullptr);
  auto rb = (*b)->Search(q.data(), params, nullptr);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(*ra, *rb);
}

}  // namespace
}  // namespace mqa
