#include "graph/index_factory.h"

#include <gtest/gtest.h>

#include "graph_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::ExactKnn;
using ::mqa::testing::MakeClusteredStore;
using ::mqa::testing::Recall;

TEST(IndexFactoryTest, AllAlgorithmsAreCreatable) {
  std::vector<Vector> queries;
  VectorStore store = MakeClusteredStore(400, 8, 4, 1, &queries, 5);
  for (const std::string& algo : AllIndexAlgorithms()) {
    IndexConfig config;
    config.algorithm = algo;
    config.graph.max_degree = 12;
    BuildReport report;
    auto index = CreateIndex(
        config, &store,
        std::make_unique<FlatDistanceComputer>(&store, Metric::kL2),
        &report);
    ASSERT_TRUE(index.ok()) << algo << ": " << index.status().ToString();
    EXPECT_EQ(report.algorithm, algo);
    SearchParams params;
    params.k = 5;
    auto got = (*index)->Search(queries[0].data(), params, nullptr);
    ASSERT_TRUE(got.ok()) << algo;
    EXPECT_EQ(got->size(), 5u) << algo;
  }
}

TEST(IndexFactoryTest, UnknownAlgorithmFails) {
  VectorStore store = MakeClusteredStore(50, 4, 2, 2);
  IndexConfig config;
  config.algorithm = "faiss";  // not a thing here
  auto index = CreateIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  EXPECT_FALSE(index.ok());
}

TEST(IndexFactoryTest, GraphIndexesBeatBruteForceOnDistanceCount) {
  std::vector<Vector> queries;
  VectorStore store = MakeClusteredStore(2000, 8, 8, 3, &queries, 10);
  IndexConfig brute;
  brute.algorithm = "bruteforce";
  auto bf = CreateIndex(
      brute, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(bf.ok());
  IndexConfig hnsw;
  hnsw.algorithm = "hnsw";
  auto graph = CreateIndex(
      hnsw, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(graph.ok());

  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  SearchStats bf_stats, graph_stats;
  double graph_recall = 0;
  for (const Vector& q : queries) {
    ASSERT_TRUE((*bf)->Search(q.data(), params, &bf_stats).ok());
    auto got = (*graph)->Search(q.data(), params, &graph_stats);
    ASSERT_TRUE(got.ok());
    graph_recall += Recall(*got, ExactKnn(store, q, 10));
  }
  EXPECT_LT(graph_stats.dist_comps, bf_stats.dist_comps / 2);
  EXPECT_GE(graph_recall / queries.size(), 0.9);
}

}  // namespace
}  // namespace mqa
