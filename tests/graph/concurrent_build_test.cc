// Concurrency audit tests for the graph-build and search paths, written to
// run clean under -fsanitize=thread:
//
//  * independent builds racing on different stores (shared DefaultThreadPool
//    through the DAG engine and shared process-wide statics),
//  * concurrent read-only searches on one shared index — including the MUST
//    multi-vector path, whose DistanceStats counters are shared mutable
//    state across queries (now atomic),
//  * builds overlapping with searches on other indexes.
//
// Single-writer mutation (InsertAppended / InsertIntoGraphIndex) is NOT
// exercised concurrently with searches: indexes are externally synchronized
// by design (see DESIGN.md "Correctness tooling").

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "graph/hnsw.h"
#include "graph/pipeline.h"
#include "graph/search.h"
#include "graph_test_util.h"
#include "vector/multi_distance.h"
#include "vector/vector_store.h"

namespace mqa {
namespace {

using ::mqa::testing::MakeClusteredStore;

GraphBuildConfig SmallConfig(const std::string& algorithm, uint64_t seed) {
  GraphBuildConfig config;
  config.algorithm = algorithm;
  config.max_degree = 12;
  config.build_beam = 24;
  config.nn_descent_k = 12;
  config.nn_descent_iters = 4;
  config.seed = seed;
  return config;
}

TEST(ConcurrentBuildTest, IndependentBuildsRaceOnSharedProcessState) {
  constexpr int kBuilders = 4;
  const char* algorithms[kBuilders] = {"mqa-hybrid", "vamana", "nsg",
                                       "kgraph"};
  std::vector<VectorStore> stores;
  stores.reserve(kBuilders);
  for (int b = 0; b < kBuilders; ++b) {
    stores.push_back(MakeClusteredStore(150, 8, 4, /*seed=*/100 + b));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> builders;
  builders.reserve(kBuilders);
  for (int b = 0; b < kBuilders; ++b) {
    builders.emplace_back([b, &stores, &algorithms, &failures] {
      auto dist = std::make_unique<FlatDistanceComputer>(&stores[b],
                                                         Metric::kL2);
      auto built = BuildGraphIndex(SmallConfig(algorithms[b], 7 * b + 1),
                                   &stores[b], std::move(dist));
      if (!built.ok() || (*built)->size() != stores[b].size()) ++failures;
    });
  }
  for (auto& t : builders) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrentBuildTest, ConcurrentSearchesOnSharedGraphIndex) {
  std::vector<Vector> queries;
  VectorStore store =
      MakeClusteredStore(300, 8, 4, /*seed=*/7, &queries, /*num_queries=*/8);
  auto dist = std::make_unique<FlatDistanceComputer>(&store, Metric::kL2);
  auto built =
      BuildGraphIndex(SmallConfig("mqa-hybrid", 42), &store, std::move(dist));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  GraphIndex* index = built->get();

  // Single-thread baseline results per query.
  SearchParams params;
  params.k = 5;
  params.beam_width = 32;
  std::vector<std::vector<Neighbor>> baseline;
  for (const Vector& q : queries) {
    auto r = index->Search(q.data(), params, nullptr);
    ASSERT_TRUE(r.ok());
    baseline.push_back(*std::move(r));
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> searchers;
  searchers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    searchers.emplace_back([&, t] {
      SearchParams p;
      p.k = 5;
      p.beam_width = 32;
      for (int round = 0; round < kRounds; ++round) {
        const size_t qi = (t + round) % queries.size();
        SearchStats stats;
        auto r = index->Search(queries[qi].data(), p, &stats);
        if (!r.ok() || stats.dist_comps == 0) {
          ++mismatches;
          continue;
        }
        const std::vector<Neighbor>& expected = baseline[qi];
        if (r->size() != expected.size()) {
          ++mismatches;
          continue;
        }
        for (size_t i = 0; i < expected.size(); ++i) {
          if ((*r)[i].id != expected[i].id) ++mismatches;
        }
      }
    });
  }
  for (auto& t : searchers) t.join();
  // Read-only searches are deterministic: racing readers must agree with
  // the single-thread baseline exactly.
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentBuildTest, SharedMustDistanceStatsStayConsistent) {
  // The MUST serving path: one index, one MultiVectorDistanceComputer,
  // many concurrent queries hammering the shared pruning counters.
  VectorSchema schema;
  schema.dims = {4, 4};
  VectorStore store(schema);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Vector v(8);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(store.Add(v).ok());
  }
  auto weighted = WeightedMultiDistance::Create(schema, {0.7f, 0.3f});
  ASSERT_TRUE(weighted.ok());
  auto dist = std::make_unique<MultiVectorDistanceComputer>(
      &store, *std::move(weighted), /*enable_pruning=*/true);
  MultiVectorDistanceComputer* raw_dist = dist.get();
  auto built =
      BuildGraphIndex(SmallConfig("mqa-hybrid", 11), &store, std::move(dist));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  GraphIndex* index = built->get();
  raw_dist->ResetStats();

  constexpr int kThreads = 4;
  constexpr int kQueriesEach = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> searchers;
  searchers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    searchers.emplace_back([&, t] {
      Rng qrng(100 + t);
      SearchParams p;
      p.k = 3;
      p.beam_width = 16;
      for (int i = 0; i < kQueriesEach; ++i) {
        Vector q(8);
        for (auto& x : q) x = static_cast<float>(qrng.Gaussian());
        if (!index->Search(q.data(), p, nullptr).ok()) ++failures;
      }
    });
  }
  for (auto& t : searchers) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Counters quiesced: totals are exact now and must reflect real work.
  EXPECT_GT(raw_dist->stats().TotalComputations(), 0u);
  EXPECT_GT(raw_dist->stats().dims_scanned.load(), 0u);
}

TEST(ConcurrentBuildTest, ConcurrentHnswSearchesMatchBaseline) {
  std::vector<Vector> queries;
  VectorStore store =
      MakeClusteredStore(250, 8, 4, /*seed=*/21, &queries, /*num_queries=*/6);
  HnswConfig config;
  config.m = 8;
  config.ef_construction = 40;
  auto built = HnswIndex::Build(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  HnswIndex* index = built->get();

  SearchParams params;
  params.k = 5;
  params.beam_width = 32;
  std::vector<std::vector<Neighbor>> baseline;
  for (const Vector& q : queries) {
    auto r = index->Search(q.data(), params, nullptr);
    ASSERT_TRUE(r.ok());
    baseline.push_back(*std::move(r));
  }

  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> searchers;
  searchers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    searchers.emplace_back([&] {
      SearchParams p;
      p.k = 5;
      p.beam_width = 32;
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        auto r = index->Search(queries[qi].data(), p, nullptr);
        if (!r.ok() || r->size() != baseline[qi].size()) {
          ++mismatches;
          continue;
        }
        for (size_t i = 0; i < baseline[qi].size(); ++i) {
          if ((*r)[i].id != baseline[qi][i].id) ++mismatches;
        }
      }
    });
  }
  for (auto& t : searchers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentBuildTest, BuildOverlapsWithSearchOnOtherIndex) {
  std::vector<Vector> queries;
  VectorStore search_store =
      MakeClusteredStore(200, 8, 4, /*seed=*/31, &queries, /*num_queries=*/4);
  auto built = BuildGraphIndex(
      SmallConfig("nsg", 5), &search_store,
      std::make_unique<FlatDistanceComputer>(&search_store, Metric::kL2));
  ASSERT_TRUE(built.ok());
  GraphIndex* index = built->get();

  VectorStore build_store = MakeClusteredStore(200, 8, 4, /*seed=*/32);
  std::atomic<int> failures{0};

  std::thread builder([&build_store, &failures] {
    for (int i = 0; i < 3; ++i) {
      auto b = BuildGraphIndex(SmallConfig("vamana", 60 + i), &build_store,
                               std::make_unique<FlatDistanceComputer>(
                                   &build_store, Metric::kL2));
      if (!b.ok()) ++failures;
    }
  });
  std::thread searcher([index, &queries, &failures] {
    SearchParams p;
    p.k = 4;
    p.beam_width = 24;
    for (int round = 0; round < 30; ++round) {
      for (const Vector& q : queries) {
        if (!index->Search(q.data(), p, nullptr).ok()) ++failures;
      }
    }
  });
  builder.join();
  searcher.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mqa
