// Attribute-constrained (filtered) search across every index type: the
// filter restricts results while the graph remains navigable.

#include <gtest/gtest.h>

#include "graph/index_factory.h"
#include "graph_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::MakeClusteredStore;

class FilteredSearchTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    store_ = std::make_unique<VectorStore>(
        MakeClusteredStore(600, 8, 6, 71, &queries_, 5));
    IndexConfig config;
    config.algorithm = GetParam();
    config.graph.max_degree = 12;
    auto index = CreateIndex(
        config, store_.get(),
        std::make_unique<FlatDistanceComputer>(store_.get(), Metric::kL2));
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = std::move(index).Value();
  }

  std::unique_ptr<VectorStore> store_;
  std::unique_ptr<VectorIndex> index_;
  std::vector<Vector> queries_;
};

TEST_P(FilteredSearchTest, OnlyAdmittedIdsReturned) {
  SearchParams params;
  params.k = 10;
  params.beam_width = 96;
  // The store interleaves 6 clusters by id, so use a modulus coprime with
  // 6: the filter then admits ~20% of every cluster. (A filter that
  // anti-correlates with the query's cluster can legitimately return
  // nothing — the known selectivity limitation of filtered graph search.)
  params.filter = [](uint32_t id) { return id % 5 == 0; };
  for (const Vector& q : queries_) {
    auto results = index_->Search(q.data(), params, nullptr);
    ASSERT_TRUE(results.ok());
    EXPECT_FALSE(results->empty());
    for (const Neighbor& n : *results) {
      EXPECT_EQ(n.id % 5, 0u) << GetParam();
    }
  }
}

TEST_P(FilteredSearchTest, FilteredMatchesExactFilteredScan) {
  SearchParams params;
  params.k = 5;
  params.beam_width = 128;
  params.filter = [](uint32_t id) { return id % 7 == 0; };
  const Vector& q = queries_[0];
  auto results = index_->Search(q.data(), params, nullptr);
  ASSERT_TRUE(results.ok());
  // Exact filtered answer by linear scan.
  TopK exact(5);
  for (uint32_t i = 0; i < store_->size(); i += 7) {
    exact.Push(L2Sq(q.data(), store_->data(i), 8), i);
  }
  const auto expected = exact.TakeSorted();
  size_t hits = 0;
  for (const Neighbor& e : expected) {
    for (const Neighbor& g : *results) {
      if (g.id == e.id) {
        ++hits;
        break;
      }
    }
  }
  // Graph-filtered search is approximate, but with a wide beam it should
  // recover most of the exact filtered answer (bruteforce: all of it).
  if (std::string(GetParam()) == "bruteforce") {
    EXPECT_EQ(hits, expected.size());
  } else {
    EXPECT_GE(hits, expected.size() / 2) << GetParam();
  }
}

TEST_P(FilteredSearchTest, RejectAllFilterGivesEmpty) {
  SearchParams params;
  params.k = 5;
  params.filter = [](uint32_t) { return false; };
  auto results = index_->Search(queries_[0].data(), params, nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST_P(FilteredSearchTest, NoFilterUnchanged) {
  SearchParams params;
  params.k = 5;
  params.beam_width = 64;
  auto a = index_->Search(queries_[0].data(), params, nullptr);
  params.filter = [](uint32_t) { return true; };
  auto b = index_->Search(queries_[0].data(), params, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(Indexes, FilteredSearchTest,
                         ::testing::Values("mqa-hybrid", "hnsw",
                                           "bruteforce", "starling"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace mqa
