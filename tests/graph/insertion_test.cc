// Incremental ingestion: inserting new vectors into a live graph index.

#include <gtest/gtest.h>

#include "graph/pipeline.h"
#include "graph_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::ExactKnn;
using ::mqa::testing::MakeClusteredStore;
using ::mqa::testing::Recall;

TEST(InsertionTest, ValidatesArguments) {
  VectorStore store = MakeClusteredStore(100, 8, 4, 81);
  GraphBuildConfig config;
  config.algorithm = "mqa-hybrid";
  config.max_degree = 10;
  auto index = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(InsertIntoGraphIndex(nullptr, &store, 100, config).ok());
  // Wrong id (not dense).
  EXPECT_FALSE(InsertIntoGraphIndex(index->get(), &store, 101, config).ok());
  // Vector not in the store yet.
  EXPECT_FALSE(InsertIntoGraphIndex(index->get(), &store, 100, config).ok());
}

TEST(InsertionTest, InsertedVectorsAreFindable) {
  // Build over the first 300 vectors, then stream in 100 more.
  std::vector<Vector> all_queries;
  VectorStore full = MakeClusteredStore(400, 8, 4, 82);
  VectorStore store(full.schema());
  for (uint32_t i = 0; i < 300; ++i) ASSERT_TRUE(store.Add(full.Row(i)).ok());

  GraphBuildConfig config;
  config.algorithm = "mqa-hybrid";
  config.max_degree = 12;
  auto index = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());

  for (uint32_t i = 300; i < 400; ++i) {
    ASSERT_TRUE(store.Add(full.Row(i)).ok());
    ASSERT_TRUE(InsertIntoGraphIndex(index->get(), &store, i, config).ok());
  }
  EXPECT_EQ((*index)->size(), 400u);

  // Every inserted vector finds itself at rank 1.
  SearchParams params;
  params.k = 1;
  params.beam_width = 48;
  for (uint32_t i = 300; i < 400; ++i) {
    const Vector q = store.Row(i);
    auto r = (*index)->Search(q.data(), params, nullptr);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->empty());
    EXPECT_EQ((*r)[0].id, i);
  }
}

TEST(InsertionTest, RecallComparableToFullRebuild) {
  std::vector<Vector> queries;
  VectorStore full = MakeClusteredStore(600, 8, 6, 83, &queries, 20);
  GraphBuildConfig config;
  config.algorithm = "mqa-hybrid";
  config.max_degree = 14;

  // Reference: built over everything at once.
  auto rebuilt = BuildGraphIndex(
      config, &full,
      std::make_unique<FlatDistanceComputer>(&full, Metric::kL2));
  ASSERT_TRUE(rebuilt.ok());

  // Incremental: 70% built, 30% streamed.
  VectorStore store(full.schema());
  for (uint32_t i = 0; i < 420; ++i) ASSERT_TRUE(store.Add(full.Row(i)).ok());
  auto incremental = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(incremental.ok());
  for (uint32_t i = 420; i < 600; ++i) {
    ASSERT_TRUE(store.Add(full.Row(i)).ok());
    ASSERT_TRUE(
        InsertIntoGraphIndex(incremental->get(), &store, i, config).ok());
  }

  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  double rebuilt_recall = 0;
  double incremental_recall = 0;
  for (const Vector& q : queries) {
    const auto expected = ExactKnn(full, q, 10);
    auto a = (*rebuilt)->Search(q.data(), params, nullptr);
    auto b = (*incremental)->Search(q.data(), params, nullptr);
    ASSERT_TRUE(a.ok() && b.ok());
    rebuilt_recall += Recall(*a, expected);
    incremental_recall += Recall(*b, expected);
  }
  // Incremental maintenance should stay within a few points of a rebuild.
  EXPECT_GE(incremental_recall / queries.size(),
            rebuilt_recall / queries.size() - 0.1);
  EXPECT_GE(incremental_recall / queries.size(), 0.8);
}

TEST(InsertionTest, DegreeBoundRespectedAfterManyInserts) {
  VectorStore full = MakeClusteredStore(300, 8, 4, 84);
  VectorStore store(full.schema());
  for (uint32_t i = 0; i < 100; ++i) ASSERT_TRUE(store.Add(full.Row(i)).ok());
  GraphBuildConfig config;
  config.algorithm = "vamana";
  config.max_degree = 8;
  auto index = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());
  for (uint32_t i = 100; i < 300; ++i) {
    ASSERT_TRUE(store.Add(full.Row(i)).ok());
    ASSERT_TRUE(InsertIntoGraphIndex(index->get(), &store, i, config).ok());
  }
  // Backlink pruning keeps degrees bounded (connectivity repair from the
  // original build may keep a handful slightly above).
  EXPECT_LE((*index)->graph().MaxDegree(), config.max_degree + 4);
}

}  // namespace
}  // namespace mqa
