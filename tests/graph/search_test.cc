#include "graph/search.h"

#include <gtest/gtest.h>

#include "graph_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::ExactKnn;
using ::mqa::testing::MakeClusteredStore;
using ::mqa::testing::Recall;

TEST(BeamSearchTest, FindsExactNeighborsOnCompleteGraph) {
  std::vector<Vector> queries;
  VectorStore store = MakeClusteredStore(200, 8, 4, 1, &queries, 5);
  // Complete graph: beam search must find the exact answer.
  AdjacencyGraph g(store.size());
  for (uint32_t u = 0; u < store.size(); ++u) {
    for (uint32_t v = 0; v < store.size(); ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  FlatDistanceComputer dist(&store, Metric::kL2);
  for (const Vector& q : queries) {
    const auto got = BeamSearch(g, &dist, q.data(), {0}, 10, 32, nullptr);
    const auto expected = ExactKnn(store, q, 10);
    EXPECT_DOUBLE_EQ(Recall(got, expected), 1.0);
  }
}

TEST(BeamSearchTest, EmptyEntriesOrGraphGivesEmpty) {
  VectorStore store = MakeClusteredStore(10, 4, 2, 2);
  AdjacencyGraph g(store.size());
  FlatDistanceComputer dist(&store, Metric::kL2);
  const Vector q(4, 0.0f);
  EXPECT_TRUE(BeamSearch(g, &dist, q.data(), {}, 5, 16, nullptr).empty());
  AdjacencyGraph empty;
  EXPECT_TRUE(
      BeamSearch(empty, &dist, q.data(), {0}, 5, 16, nullptr).empty());
}

TEST(BeamSearchTest, IsolatedEntryReturnsJustEntry) {
  VectorStore store = MakeClusteredStore(10, 4, 2, 3);
  AdjacencyGraph g(store.size());  // no edges at all
  FlatDistanceComputer dist(&store, Metric::kL2);
  const Vector q(4, 0.0f);
  const auto got = BeamSearch(g, &dist, q.data(), {3}, 5, 16, nullptr);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 3u);
}

TEST(BeamSearchTest, StatsCountHopsAndDistances) {
  VectorStore store = MakeClusteredStore(50, 4, 2, 4);
  AdjacencyGraph g(store.size());
  for (uint32_t u = 0; u < store.size(); ++u) {
    g.AddEdge(u, (u + 1) % store.size());  // ring
  }
  FlatDistanceComputer dist(&store, Metric::kL2);
  SearchStats stats;
  const Vector q(4, 0.0f);
  BeamSearch(g, &dist, q.data(), {0}, 5, 8, &stats);
  EXPECT_GT(stats.hops, 0u);
  EXPECT_GT(stats.dist_comps, 0u);
}

TEST(SearchStatsTest, MergeAddsCountersAndOrsFlags) {
  SearchStats a;
  a.hops = 3;
  a.dist_comps = 10;
  a.io_errors = 1;
  a.partial = false;
  a.shards_total = 2;
  a.shards_ok = 2;
  SearchStats b;
  b.hops = 4;
  b.dist_comps = 5;
  b.io_errors = 2;
  b.partial = true;
  b.shards_total = 1;
  b.shards_ok = 0;
  a.Merge(b);
  EXPECT_EQ(a.hops, 7u);
  EXPECT_EQ(a.dist_comps, 15u);
  EXPECT_EQ(a.io_errors, 3u);
  EXPECT_TRUE(a.partial);
  EXPECT_EQ(a.shards_total, 3u);
  EXPECT_EQ(a.shards_ok, 2u);
  // Merging the empty stats is the identity.
  SearchStats before = a;
  a.Merge(SearchStats{});
  EXPECT_EQ(a.hops, before.hops);
  EXPECT_EQ(a.dist_comps, before.dist_comps);
  EXPECT_TRUE(a.partial);
  a.Reset();
  EXPECT_EQ(a.hops, 0u);
  EXPECT_EQ(a.shards_total, 0u);
  EXPECT_FALSE(a.partial);
}

TEST(BeamSearchTest, EvaluatedCollectsScoredNodes) {
  VectorStore store = MakeClusteredStore(30, 4, 2, 5);
  AdjacencyGraph g(store.size());
  for (uint32_t u = 0; u + 1 < store.size(); ++u) g.AddEdge(u, u + 1);
  FlatDistanceComputer dist(&store, Metric::kL2);
  std::vector<Neighbor> evaluated;
  const Vector q(4, 0.0f);
  BeamSearch(g, &dist, q.data(), {0}, 3, 8, nullptr, &evaluated);
  EXPECT_GE(evaluated.size(), 3u);
  // No duplicates.
  std::set<uint32_t> ids;
  for (const auto& n : evaluated) ids.insert(n.id);
  EXPECT_EQ(ids.size(), evaluated.size());
}

TEST(BeamSearchTest, WiderBeamNeverHurtsRecall) {
  std::vector<Vector> queries;
  VectorStore store = MakeClusteredStore(500, 8, 8, 6, &queries, 10);
  // A modest random graph.
  Rng rng(7);
  AdjacencyGraph g(store.size());
  for (uint32_t u = 0; u < store.size(); ++u) {
    for (int e = 0; e < 8; ++e) {
      g.AddEdge(u, static_cast<uint32_t>(rng.NextUint64(store.size())));
    }
  }
  FlatDistanceComputer dist(&store, Metric::kL2);
  double narrow_total = 0, wide_total = 0;
  for (const Vector& q : queries) {
    const auto expected = ExactKnn(store, q, 10);
    narrow_total += Recall(
        BeamSearch(g, &dist, q.data(), {0}, 10, 10, nullptr), expected);
    wide_total += Recall(
        BeamSearch(g, &dist, q.data(), {0}, 10, 200, nullptr), expected);
  }
  EXPECT_GE(wide_total, narrow_total);
}

TEST(ApproximateMedoidTest, PicksCentralPoint) {
  // 1D store: values 0..99; medoid should be near 50.
  VectorSchema schema;
  schema.dims = {1};
  VectorStore store(schema);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Add({static_cast<float>(i)}).ok());
  }
  FlatDistanceComputer dist(&store, Metric::kL2);
  Rng rng(8);
  const uint32_t medoid = ApproximateMedoid(&dist, &rng, 100);
  EXPECT_GE(medoid, 30u);
  EXPECT_LE(medoid, 70u);
}

TEST(GraphIndexTest, SearchValidatesParams) {
  VectorStore store = MakeClusteredStore(20, 4, 2, 9);
  AdjacencyGraph g(store.size());
  for (uint32_t u = 0; u + 1 < store.size(); ++u) g.AddEdge(u, u + 1);
  auto dist = std::make_unique<FlatDistanceComputer>(&store, Metric::kL2);
  GraphIndex index("test", std::move(g), std::move(dist), {0});
  const Vector q(4, 0.0f);
  SearchParams params;
  params.k = 0;
  EXPECT_FALSE(index.Search(q.data(), params, nullptr).ok());
  params.k = 5;
  auto results = index.Search(q.data(), params, nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 5u);
  EXPECT_EQ(index.name(), "test");
  EXPECT_EQ(index.size(), 20u);
  EXPECT_GT(index.MemoryBytes(), 0u);
}

TEST(BruteForceIndexTest, ExactAndSorted) {
  std::vector<Vector> queries;
  VectorStore store = MakeClusteredStore(300, 8, 4, 10, &queries, 5);
  BruteForceIndex index(
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  SearchParams params;
  params.k = 10;
  for (const Vector& q : queries) {
    SearchStats stats;
    auto got = index.Search(q.data(), params, &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Recall(*got, ExactKnn(store, q, 10)), 1.0);
    EXPECT_EQ(stats.dist_comps, 300u);
    for (size_t i = 1; i < got->size(); ++i) {
      EXPECT_LE((*got)[i - 1].distance, (*got)[i].distance);
    }
  }
}

TEST(BruteForceIndexTest, RejectsZeroK) {
  VectorStore store = MakeClusteredStore(10, 4, 2, 11);
  BruteForceIndex index(
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  const Vector q(4, 0.0f);
  SearchParams params;
  params.k = 0;
  EXPECT_FALSE(index.Search(q.data(), params, nullptr).ok());
}

}  // namespace
}  // namespace mqa
