#include "graph/pipeline.h"

#include <gtest/gtest.h>

#include "graph/nn_descent.h"
#include "graph_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::ExactKnn;
using ::mqa::testing::MakeClusteredStore;
using ::mqa::testing::Recall;

TEST(RobustPruneTest, KeepsClosestAndDiversifies) {
  // 1D points: node at 0; candidates at 1, 1.1, 1.2 (one direction) and -5
  // (the other). Distances are squared L2, as used by every builder.
  VectorSchema schema;
  schema.dims = {1};
  VectorStore store(schema);
  for (float x : {0.f, 1.f, 1.1f, 1.2f, -5.f}) {
    ASSERT_TRUE(store.Add({x}).ok());
  }
  FlatDistanceComputer dist(&store, Metric::kL2);
  std::vector<Neighbor> candidates;
  for (uint32_t id = 1; id < 5; ++id) {
    candidates.push_back({dist.DistanceBetween(0, id), id});
  }
  // alpha = 1 (MRNG rule): 1.1 and 1.2 are occluded by 1 (they are closer
  // to 1 than to the node); -5 lies on the other side and survives
  // (d(1,-5)^2 = 36 > d(0,-5)^2 = 25).
  const auto selected = RobustPrune(0, candidates, 1.0f, 8, &dist);
  EXPECT_EQ(selected, (std::vector<uint32_t>{1, 4}));
}

TEST(RobustPruneTest, RespectsMaxDegreeAndRemovesSelfDuplicates) {
  VectorSchema schema;
  schema.dims = {1};
  VectorStore store(schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Add({static_cast<float>(i * i)}).ok());
  }
  FlatDistanceComputer dist(&store, Metric::kL2);
  std::vector<Neighbor> candidates;
  for (uint32_t id = 0; id < 10; ++id) {
    candidates.push_back({dist.DistanceBetween(3, id), id});
    candidates.push_back({dist.DistanceBetween(3, id), id});  // duplicate
  }
  const auto selected = RobustPrune(3, candidates, 1.2f, 3, &dist);
  EXPECT_LE(selected.size(), 3u);
  for (uint32_t id : selected) EXPECT_NE(id, 3u);
  // No duplicates.
  std::set<uint32_t> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), selected.size());
}

TEST(RobustPruneTest, LargerAlphaKeepsMoreNeighbors) {
  VectorStore store = MakeClusteredStore(100, 8, 4, 12);
  FlatDistanceComputer dist(&store, Metric::kL2);
  std::vector<Neighbor> candidates;
  for (uint32_t id = 1; id < 100; ++id) {
    candidates.push_back({dist.DistanceBetween(0, id), id});
  }
  const auto tight = RobustPrune(0, candidates, 1.0f, 64, &dist);
  const auto loose = RobustPrune(0, candidates, 1.5f, 64, &dist);
  EXPECT_GE(loose.size(), tight.size());
}

TEST(NNDescentTest, ValidatesInput) {
  VectorSchema schema;
  schema.dims = {2};
  VectorStore empty(schema);
  FlatDistanceComputer dist(&empty, Metric::kL2);
  Rng rng(1);
  EXPECT_FALSE(BuildNNDescentGraph(&dist, 8, 4, &rng).ok());
}

TEST(NNDescentTest, ApproximatesExactKnnGraph) {
  VectorStore store = MakeClusteredStore(400, 8, 4, 13);
  FlatDistanceComputer dist(&store, Metric::kL2);
  Rng rng(2);
  auto graph = BuildNNDescentGraph(&dist, 10, 8, &rng);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->num_nodes(), 400u);
  // Compare each node's list against the true 10-NN.
  double recall_sum = 0;
  for (uint32_t u = 0; u < 100; ++u) {  // sample
    const auto exact = ExactKnn(store, store.Row(u), 11);  // incl. self
    std::vector<Neighbor> got;
    for (uint32_t v : graph->neighbors(u)) got.push_back({0.0f, v});
    std::vector<Neighbor> expected;
    for (const auto& e : exact) {
      if (e.id != u) expected.push_back(e);
    }
    expected.resize(10);
    recall_sum += Recall(got, expected);
  }
  EXPECT_GT(recall_sum / 100, 0.9);
}

TEST(NNDescentTest, TinyStoreHandled) {
  VectorSchema schema;
  schema.dims = {2};
  VectorStore store(schema);
  ASSERT_TRUE(store.Add({0, 0}).ok());
  ASSERT_TRUE(store.Add({1, 1}).ok());
  FlatDistanceComputer dist(&store, Metric::kL2);
  Rng rng(3);
  auto graph = BuildNNDescentGraph(&dist, 8, 4, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 2u);
  EXPECT_EQ(graph->neighbors(0), (std::vector<uint32_t>{1}));
}

TEST(BuildGraphIndexTest, ValidatesConfig) {
  VectorStore store = MakeClusteredStore(50, 4, 2, 14);
  GraphBuildConfig config;
  config.algorithm = "no-such-algo";
  auto dist = std::make_unique<FlatDistanceComputer>(&store, Metric::kL2);
  EXPECT_FALSE(BuildGraphIndex(config, &store, std::move(dist)).ok());

  config.algorithm = "nsg";
  config.max_degree = 0;
  dist = std::make_unique<FlatDistanceComputer>(&store, Metric::kL2);
  EXPECT_FALSE(BuildGraphIndex(config, &store, std::move(dist)).ok());

  config.max_degree = 8;
  EXPECT_FALSE(BuildGraphIndex(config, &store, nullptr).ok());
}

struct AlgoParam {
  const char* algorithm;
  double min_recall;
};

class PipelineAlgorithmTest : public ::testing::TestWithParam<AlgoParam> {};

TEST_P(PipelineAlgorithmTest, BuildsSearchableIndexWithGoodRecall) {
  const AlgoParam param = GetParam();
  std::vector<Vector> queries;
  VectorStore store = MakeClusteredStore(1000, 8, 8, 15, &queries, 20);
  GraphBuildConfig config;
  config.algorithm = param.algorithm;
  config.max_degree = 16;
  config.build_beam = 48;
  config.nn_descent_k = 16;
  BuildReport report;
  auto index = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2), &report);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  EXPECT_EQ(report.algorithm, param.algorithm);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_FALSE(report.stages.empty());
  EXPECT_GT(report.avg_degree, 1.0);

  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  double recall_sum = 0;
  for (const Vector& q : queries) {
    auto got = (*index)->Search(q.data(), params, nullptr);
    ASSERT_TRUE(got.ok());
    recall_sum += Recall(*got, ExactKnn(store, q, 10));
  }
  EXPECT_GE(recall_sum / queries.size(), param.min_recall)
      << param.algorithm;
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, PipelineAlgorithmTest,
    ::testing::Values(AlgoParam{"kgraph", 0.60}, AlgoParam{"nsg", 0.90},
                      AlgoParam{"vamana", 0.90},
                      AlgoParam{"mqa-hybrid", 0.90}),
    [](const ::testing::TestParamInfo<AlgoParam>& info) {
      std::string name = info.param.algorithm;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BuildGraphIndexTest, RefinedGraphsAreConnectedAndDegreeBounded) {
  VectorStore store = MakeClusteredStore(500, 8, 16, 16);
  for (const char* algo : {"nsg", "vamana", "mqa-hybrid"}) {
    GraphBuildConfig config;
    config.algorithm = algo;
    config.max_degree = 12;
    BuildReport report;
    auto index = BuildGraphIndex(
        config, &store,
        std::make_unique<FlatDistanceComputer>(&store, Metric::kL2),
        &report);
    ASSERT_TRUE(index.ok()) << algo;
    EXPECT_TRUE(report.connected) << algo;
    // Connectivity repair may push a few nodes slightly over max_degree.
    EXPECT_LE((*index)->graph().MaxDegree(), config.max_degree + 4) << algo;
  }
}

TEST(BuildGraphIndexTest, StageNamesFollowThePipelineDecomposition) {
  VectorStore store = MakeClusteredStore(200, 4, 4, 17);
  GraphBuildConfig config;
  config.algorithm = "mqa-hybrid";
  BuildReport report;
  auto index = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2), &report);
  ASSERT_TRUE(index.ok());
  std::vector<std::string> names;
  for (const auto& stage : report.stages) names.push_back(stage.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"initialization", "seed_acquisition",
                                      "refinement", "connectivity"}));
}

TEST(BuildGraphIndexTest, DeterministicGivenSeed) {
  VectorStore store = MakeClusteredStore(300, 8, 4, 18);
  GraphBuildConfig config;
  config.algorithm = "vamana";
  config.seed = 99;
  auto a = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  auto b = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(a.ok() && b.ok());
  for (uint32_t u = 0; u < 300; ++u) {
    EXPECT_EQ((*a)->graph().neighbors(u), (*b)->graph().neighbors(u));
  }
}

TEST(GraphAlgorithmsTest, ListsFourPipelineAlgorithms) {
  const auto algos = GraphAlgorithms();
  EXPECT_EQ(algos.size(), 4u);
}

}  // namespace
}  // namespace mqa
