#ifndef MQA_TESTS_GRAPH_GRAPH_TEST_UTIL_H_
#define MQA_TESTS_GRAPH_GRAPH_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/topk.h"
#include "vector/vector_store.h"

namespace mqa::testing {

/// Gaussian-mixture vectors: `num_clusters` centers, unit-ish spread —
/// realistic enough for navigation graphs to shine over brute force.
inline VectorStore MakeClusteredStore(uint32_t n, uint32_t dim,
                                      uint32_t num_clusters, uint64_t seed,
                                      std::vector<Vector>* queries = nullptr,
                                      uint32_t num_queries = 0) {
  Rng rng(seed);
  std::vector<Vector> centers(num_clusters, Vector(dim));
  for (auto& c : centers) {
    for (auto& x : c) x = static_cast<float>(rng.Gaussian()) * 3.0f;
  }
  VectorSchema schema;
  schema.dims = {dim};
  VectorStore store(schema);
  store.Reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const Vector& c = centers[i % num_clusters];
    Vector v(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      v[d] = c[d] + static_cast<float>(rng.Gaussian()) * 0.5f;
    }
    (void)store.Add(v);
  }
  if (queries != nullptr) {
    for (uint32_t q = 0; q < num_queries; ++q) {
      const Vector& c = centers[q % num_clusters];
      Vector v(dim);
      for (uint32_t d = 0; d < dim; ++d) {
        v[d] = c[d] + static_cast<float>(rng.Gaussian()) * 0.5f;
      }
      queries->push_back(std::move(v));
    }
  }
  return store;
}

/// Exact k-nearest neighbors by linear scan (L2).
inline std::vector<Neighbor> ExactKnn(const VectorStore& store,
                                      const Vector& query, size_t k) {
  TopK topk(k);
  for (uint32_t i = 0; i < store.size(); ++i) {
    topk.Push(L2Sq(query.data(), store.data(i), store.row_dim()), i);
  }
  return topk.TakeSorted();
}

/// recall@k of `got` against exact `expected` (id-set overlap).
inline double Recall(const std::vector<Neighbor>& got,
                     const std::vector<Neighbor>& expected) {
  if (expected.empty()) return 1.0;
  size_t hits = 0;
  for (const Neighbor& e : expected) {
    for (const Neighbor& g : got) {
      if (g.id == e.id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / expected.size();
}

}  // namespace mqa::testing

#endif  // MQA_TESTS_GRAPH_GRAPH_TEST_UTIL_H_
