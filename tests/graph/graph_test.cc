#include "graph/graph.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mqa {
namespace {

TEST(AdjacencyGraphTest, BasicConstruction) {
  AdjacencyGraph g(3);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.neighbors(0), (std::vector<uint32_t>{1, 2}));
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
  EXPECT_EQ(g.MaxDegree(), 2u);
}

TEST(AdjacencyGraphTest, SetNeighborsReplaces) {
  AdjacencyGraph g(2);
  g.AddEdge(0, 1);
  g.SetNeighbors(0, {1, 1, 1});
  EXPECT_EQ(g.neighbors(0).size(), 3u);
  g.mutable_neighbors(0)->clear();
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(AdjacencyGraphTest, ReachabilityAndConnectivity) {
  AdjacencyGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.ReachableFrom(0), 3u);  // node 3 unreachable
  EXPECT_FALSE(g.IsConnectedFrom(0));
  g.AddEdge(2, 3);
  EXPECT_TRUE(g.IsConnectedFrom(0));
  // Directed: from 3 nothing is reachable but itself.
  EXPECT_EQ(g.ReachableFrom(3), 1u);
  EXPECT_EQ(g.ReachableFrom(99), 0u);  // out of range start
}

TEST(AdjacencyGraphTest, EmptyGraph) {
  AdjacencyGraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(AdjacencyGraphTest, SaveLoadRoundTrip) {
  AdjacencyGraph g(5);
  g.SetNeighbors(0, {1, 2, 3});
  g.SetNeighbors(3, {4});
  g.SetNeighbors(4, {0});
  std::stringstream buf;
  ASSERT_TRUE(g.Save(buf).ok());
  auto loaded = AdjacencyGraph::Load(buf);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), 5u);
  for (uint32_t u = 0; u < 5; ++u) {
    EXPECT_EQ(loaded->neighbors(u), g.neighbors(u));
  }
}

TEST(AdjacencyGraphTest, LoadRejectsGarbage) {
  std::stringstream buf("definitely not a graph");
  EXPECT_FALSE(AdjacencyGraph::Load(buf).ok());
}

TEST(AdjacencyGraphTest, MemoryBytesCountsEdges) {
  AdjacencyGraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_EQ(g.MemoryBytes(), 2 * sizeof(uint32_t));
}

}  // namespace
}  // namespace mqa
