#include "learning/weight_learner.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace mqa {
namespace {

TEST(WeightLearnerTest, FitRejectsEmptyAndRagged) {
  WeightLearner wl(WeightLearnerConfig{}, 2);
  EXPECT_FALSE(wl.Fit({}).ok());
  TripletDistances ragged;
  ragged.pos = {1.0f};
  ragged.neg = {1.0f, 2.0f};
  EXPECT_FALSE(wl.Fit({ragged}).ok());
}

TEST(WeightLearnerTest, PerModalityDistancesSplitsBlocks) {
  VectorSchema schema;
  schema.dims = {2, 3};
  const Vector a = {0, 0, 0, 0, 0};
  const Vector b = {1, 1, 2, 0, 0};
  const auto d =
      WeightLearner::PerModalityDistances(schema, a.data(), b.data());
  ASSERT_EQ(d.size(), 2u);
  EXPECT_FLOAT_EQ(d[0], 2.0f);
  EXPECT_FLOAT_EQ(d[1], 4.0f);
}

// Builds triplets where modality `informative` separates positives from
// negatives and the other modality is pure noise.
std::vector<TripletDistances> SkewedTriplets(size_t informative, size_t count,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<TripletDistances> out;
  for (size_t i = 0; i < count; ++i) {
    TripletDistances t;
    t.pos.resize(2);
    t.neg.resize(2);
    for (size_t m = 0; m < 2; ++m) {
      if (m == informative) {
        t.pos[m] = static_cast<float>(0.1 + 0.1 * rng.UniformDouble());
        t.neg[m] = static_cast<float>(0.6 + 0.2 * rng.UniformDouble());
      } else {
        // Noise: indistinguishable on average but with high variance, so
        // uniform weights misrank a fraction of triplets.
        t.pos[m] = static_cast<float>(0.5 + 1.0 * rng.UniformDouble());
        t.neg[m] = static_cast<float>(0.5 + 1.0 * rng.UniformDouble());
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

TEST(WeightLearnerTest, LearnsToUpweightInformativeModality) {
  for (size_t informative : {size_t{0}, size_t{1}}) {
    WeightLearnerConfig config;
    config.epochs = 100;
    WeightLearner wl(config, 2);
    auto report = wl.Fit(SkewedTriplets(informative, 500, 7));
    ASSERT_TRUE(report.ok());
    const auto& w = report->weights;
    ASSERT_EQ(w.size(), 2u);
    EXPECT_GT(w[informative], w[1 - informative])
        << "informative modality should get the larger weight";
    EXPECT_GT(report->triplet_accuracy, 0.95);
  }
}

TEST(WeightLearnerTest, WeightsStayNonnegativeAndNormalized) {
  WeightLearnerConfig config;
  config.epochs = 200;
  config.learning_rate = 0.5f;  // aggressive; projection must hold
  WeightLearner wl(config, 2);
  auto report = wl.Fit(SkewedTriplets(0, 300, 11));
  ASSERT_TRUE(report.ok());
  float sum = 0.0f;
  for (float w : report->weights) {
    EXPECT_GE(w, 0.0f);
    sum += w;
  }
  EXPECT_NEAR(sum, 2.0f, 1e-3);
}

TEST(WeightLearnerTest, LossDecreasesOverTraining) {
  WeightLearnerConfig config;
  config.epochs = 50;
  WeightLearner wl(config, 2);
  auto report = wl.Fit(SkewedTriplets(1, 400, 13));
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->loss_per_epoch.size(), 2u);
  EXPECT_LT(report->loss_per_epoch.back(), report->loss_per_epoch.front());
}

TEST(WeightLearnerTest, EarlyStopsWhenSeparable) {
  WeightLearnerConfig config;
  config.epochs = 1000;
  WeightLearner wl(config, 2);
  auto report = wl.Fit(SkewedTriplets(0, 200, 17));
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->epochs_run, 1000u);  // converged early
}

TEST(WeightLearnerTest, BalancedModalitiesGetSimilarWeights) {
  // Both modalities equally informative -> roughly uniform weights.
  Rng rng(19);
  std::vector<TripletDistances> data;
  for (int i = 0; i < 400; ++i) {
    TripletDistances t;
    for (size_t m = 0; m < 2; ++m) {
      t.pos.push_back(static_cast<float>(0.2 + 0.1 * rng.UniformDouble()));
      t.neg.push_back(static_cast<float>(1.0 + 0.3 * rng.UniformDouble()));
    }
    data.push_back(std::move(t));
  }
  WeightLearner wl(WeightLearnerConfig{}, 2);
  auto report = wl.Fit(data);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->weights[0], report->weights[1], 0.4);
}

TEST(SampleTripletsTest, ValidatesInput) {
  VectorSchema schema;
  schema.dims = {2};
  VectorStore store(schema);
  Rng rng(1);
  // Size mismatch.
  ASSERT_TRUE(store.Add({0, 0}).ok());
  EXPECT_FALSE(SampleTriplets(store, {0, 1}, 10, &rng).ok());
  // Too small.
  EXPECT_FALSE(SampleTriplets(store, {0}, 10, &rng).ok());
}

TEST(SampleTripletsTest, RequiresTwoLabels) {
  VectorSchema schema;
  schema.dims = {2};
  VectorStore store(schema);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store.Add({0, 0}).ok());
  Rng rng(2);
  EXPECT_FALSE(SampleTriplets(store, {7, 7, 7, 7, 7}, 10, &rng).ok());
}

TEST(SampleTripletsTest, ProducesRequestedCountWithCorrectGeometry) {
  VectorSchema schema;
  schema.dims = {1, 1};
  VectorStore store(schema);
  std::vector<uint32_t> labels;
  Rng data_rng(3);
  // Two clusters separated in modality 0 only.
  for (int i = 0; i < 40; ++i) {
    const uint32_t label = i % 2;
    const float base = label == 0 ? 0.0f : 5.0f;
    ASSERT_TRUE(store
                    .Add({base + static_cast<float>(
                                     data_rng.Gaussian(0, 0.1)),
                          static_cast<float>(data_rng.Gaussian(0, 0.1))})
                    .ok());
    labels.push_back(label);
  }
  Rng rng(4);
  auto triplets = SampleTriplets(store, labels, 100, &rng);
  ASSERT_TRUE(triplets.ok());
  EXPECT_EQ(triplets->size(), 100u);
  // In modality 0, positives are closer than negatives almost always.
  size_t correct = 0;
  for (const auto& t : *triplets) {
    if (t.pos[0] < t.neg[0]) ++correct;
  }
  EXPECT_GT(correct, 95u);
}

TEST(SampleTripletsTest, EndToEndLearningOnStoreData) {
  // Full path: store with informative modality 1 -> sampled triplets ->
  // learned weights favour modality 1.
  VectorSchema schema;
  schema.dims = {2, 2};
  VectorStore store(schema);
  std::vector<uint32_t> labels;
  Rng data_rng(5);
  for (int i = 0; i < 60; ++i) {
    const uint32_t label = i % 3;
    Vector v(4);
    v[0] = static_cast<float>(data_rng.Gaussian());  // noise dims
    v[1] = static_cast<float>(data_rng.Gaussian());
    v[2] = label * 2.0f + static_cast<float>(data_rng.Gaussian(0, 0.1));
    v[3] = label * -1.5f + static_cast<float>(data_rng.Gaussian(0, 0.1));
    ASSERT_TRUE(store.Add(v).ok());
    labels.push_back(label);
  }
  Rng rng(6);
  auto triplets = SampleTriplets(store, labels, 300, &rng);
  ASSERT_TRUE(triplets.ok());
  WeightLearnerConfig config;
  config.epochs = 100;
  WeightLearner wl(config, 2);
  auto report = wl.Fit(*triplets);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->weights[1], report->weights[0]);
  EXPECT_GT(report->triplet_accuracy, 0.9);
}

}  // namespace
}  // namespace mqa
