#include <gtest/gtest.h>

#include "learning/weight_learner.h"

namespace mqa {
namespace {

// A store whose modality 0 mirrors the ground-truth positions and whose
// modality 1 is noise: instance-level learning must upweight modality 0.
struct NeighborhoodFixture {
  VectorStore store{[] {
    VectorSchema s;
    s.dims = {2, 2};
    return s;
  }()};
  std::vector<std::vector<float>> positions;

  explicit NeighborhoodFixture(uint32_t n, uint64_t seed) {
    Rng rng(seed);
    for (uint32_t i = 0; i < n; ++i) {
      const float x = static_cast<float>(rng.Gaussian());
      const float y = static_cast<float>(rng.Gaussian());
      positions.push_back({x, y});
      Vector row = {x + 0.01f * static_cast<float>(rng.Gaussian()),
                    y + 0.01f * static_cast<float>(rng.Gaussian()),
                    static_cast<float>(rng.Gaussian()),
                    static_cast<float>(rng.Gaussian())};
      (void)store.Add(row);
    }
  }
};

TEST(SampleTripletsByNeighborhoodTest, ValidatesInput) {
  NeighborhoodFixture fx(20, 1);
  Rng rng(2);
  // positions size mismatch
  std::vector<std::vector<float>> wrong(fx.positions.begin(),
                                        fx.positions.end() - 1);
  EXPECT_FALSE(
      SampleTripletsByNeighborhood(fx.store, wrong, 10, 3, &rng).ok());
  // positive_k = 0
  EXPECT_FALSE(
      SampleTripletsByNeighborhood(fx.store, fx.positions, 10, 0, &rng)
          .ok());
  // ragged positions
  std::vector<std::vector<float>> ragged = fx.positions;
  ragged[5] = {1.0f};
  EXPECT_FALSE(
      SampleTripletsByNeighborhood(fx.store, ragged, 10, 3, &rng).ok());
}

TEST(SampleTripletsByNeighborhoodTest, PositivesCloserInInformativeModality) {
  NeighborhoodFixture fx(100, 3);
  Rng rng(4);
  auto triplets =
      SampleTripletsByNeighborhood(fx.store, fx.positions, 200, 5, &rng);
  ASSERT_TRUE(triplets.ok());
  EXPECT_EQ(triplets->size(), 200u);
  size_t informative_correct = 0;
  for (const auto& t : *triplets) {
    ASSERT_EQ(t.pos.size(), 2u);
    if (t.pos[0] < t.neg[0]) ++informative_correct;
  }
  // Modality 0 mirrors positions, so positives are closer there almost
  // always; modality 1 is pure noise.
  EXPECT_GT(informative_correct, 190u);
}

TEST(SampleTripletsByNeighborhoodTest, LearnerUpweightsInformativeModality) {
  NeighborhoodFixture fx(200, 5);
  Rng rng(6);
  auto triplets =
      SampleTripletsByNeighborhood(fx.store, fx.positions, 400, 5, &rng);
  ASSERT_TRUE(triplets.ok());
  WeightLearnerConfig config;
  config.epochs = 100;
  WeightLearner learner(config, 2);
  auto report = learner.Fit(*triplets);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->weights[0], report->weights[1]);
  EXPECT_GT(report->triplet_accuracy, 0.9);
}

}  // namespace
}  // namespace mqa
