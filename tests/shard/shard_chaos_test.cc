#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "core/coordinator.h"
#include "shard/sharded_retrieval.h"
#include "shard_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::BruteForceIndex;
using ::mqa::testing::MakeSharded;
using ::mqa::testing::PrepareShardCorpus;

/// Chaos suite of the sharded fan-out. Every test runs on a MockClock —
/// injected latency spikes, deadline slices, hedges and breaker cool-downs
/// all advance virtual time only; the suite performs zero real sleeps.
///
/// The soak job (chaos-soak.yml) cranks the iteration count and rotates
/// the fault schedule through MQA_CHAOS_ITERS / MQA_CHAOS_SEED.
class ShardChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new ExperimentCorpus(PrepareShardCorpus());
    ASSERT_NE(corpus_->kb, nullptr);
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().Seed(ChaosSeed());
    FaultInjector::Global().SetClock(&clock_);
  }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().SetClock(nullptr);
  }

  static uint64_t ChaosSeed() {
    const char* s = std::getenv("MQA_CHAOS_SEED");
    return s != nullptr ? std::strtoull(s, nullptr, 10) : 42;
  }
  static int ChaosIters(int base) {
    const char* s = std::getenv("MQA_CHAOS_ITERS");
    const int mult = s != nullptr ? std::atoi(s) : 1;
    return base * std::max(1, mult);
  }

  /// Deterministic chaos baseline: sequential fan-out (one pool thread)
  /// driven by the suite's MockClock.
  ShardOptions ChaosOptions(size_t num_shards, size_t quorum) {
    ShardOptions options;
    options.num_shards = num_shards;
    options.quorum = quorum;
    options.fanout_threads = 1;
    options.clock = &clock_;
    options.hedge_percentile = 0.0;  // tests opt in explicitly
    return options;
  }

  RetrievalQuery Query(uint32_t concept_id, uint64_t seed = 1) {
    Rng rng(seed);
    const TextQuery q = corpus_->world->MakeTextQuery(concept_id, &rng);
    auto rq = EncodeTextQuery(*corpus_, q.text);
    EXPECT_TRUE(rq.ok());
    return std::move(rq).Value();
  }

  static SearchParams Params(uint32_t k = 10) {
    SearchParams params;
    params.k = k;
    params.beam_width = 64;
    return params;
  }

  MockClock clock_;
  static ExperimentCorpus* corpus_;
};

ExperimentCorpus* ShardChaosTest::corpus_ = nullptr;

TEST_F(ShardChaosTest, KillingKOfNShardsDegradesWithExactAccounting) {
  auto fw = MakeSharded(*corpus_, ChaosOptions(4, 2), BruteForceIndex());
  ASSERT_TRUE(fw.ok());
  ScopedFault f0("shard/0/search");
  ScopedFault f1("shard/1/search");

  auto result = (*fw)->Retrieve(Query(0), Params());
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->stats.shards_total, 4u);
  EXPECT_EQ(result->stats.shards_ok, 2u);

  const FanoutReport& report = (*fw)->last_report();
  ASSERT_EQ(report.shards.size(), 4u);
  EXPECT_EQ(report.ok_count, 2u);
  EXPECT_EQ(report.shards[0].kind, ShardOutcomeKind::kError);
  EXPECT_EQ(report.shards[1].kind, ShardOutcomeKind::kError);
  EXPECT_EQ(report.shards[2].kind, ShardOutcomeKind::kOk);
  EXPECT_EQ(report.shards[3].kind, ShardOutcomeKind::kOk);
  EXPECT_EQ(FaultInjector::Global().stats("shard/0/search").fires, 1u);

  // Every merged id comes from a surviving shard.
  std::vector<uint32_t> survivors;
  for (size_t s : {size_t{2}, size_t{3}}) {
    const auto& gids = (*fw)->shard_global_ids(s);
    survivors.insert(survivors.end(), gids.begin(), gids.end());
  }
  for (const Neighbor& n : result->neighbors) {
    EXPECT_NE(std::find(survivors.begin(), survivors.end(), n.id),
              survivors.end())
        << "id " << n.id << " came from a killed shard";
  }
}

TEST_F(ShardChaosTest, MissedQuorumFailsWithUnavailable) {
  auto fw = MakeSharded(*corpus_, ChaosOptions(3, 2), BruteForceIndex());
  ASSERT_TRUE(fw.ok());
  ScopedFault f0("shard/0/search");
  ScopedFault f1("shard/1/search");
  ScopedFault f2("shard/2/search");

  auto result = (*fw)->Retrieve(Query(1), Params());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("quorum"), std::string::npos);
  EXPECT_EQ((*fw)->last_report().ok_count, 0u);
}

TEST_F(ShardChaosTest, BreakerIsolatesFlappingShardAndRecovers) {
  ShardOptions options = ChaosOptions(3, 1);
  options.breaker_failure_threshold = 2;
  options.breaker_open_ms = 100.0;
  options.breaker_half_open_successes = 1;
  auto fw = MakeSharded(*corpus_, options, BruteForceIndex());
  ASSERT_TRUE(fw.ok());

  {
    ScopedFault flap("shard/1/search");
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE((*fw)->Retrieve(Query(2), Params()).ok());
      EXPECT_EQ((*fw)->last_report().shards[1].kind,
                ShardOutcomeKind::kError);
    }
    EXPECT_EQ((*fw)->shard_breaker_state(1), BreakerState::kOpen);

    // While open the shard is skipped outright: the fault point is not
    // even consulted — no retry pressure on the known-bad domain.
    ASSERT_TRUE((*fw)->Retrieve(Query(2), Params()).ok());
    EXPECT_EQ((*fw)->last_report().shards[1].kind,
              ShardOutcomeKind::kBreakerOpen);
    EXPECT_EQ(FaultInjector::Global().stats("shard/1/search").fires, 2u);
  }

  // Shard healed + cool-down elapsed: the half-open probe succeeds and the
  // shard rejoins the merge.
  clock_.AdvanceMillis(150.0);
  auto result = (*fw)->Retrieve(Query(2), Params());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*fw)->last_report().shards[1].kind, ShardOutcomeKind::kOk);
  EXPECT_EQ((*fw)->shard_breaker_state(1), BreakerState::kClosed);
  EXPECT_EQ(result->stats.shards_ok, 3u);
}

TEST_F(ShardChaosTest, HedgeFiresOnInjectedLatencySpike) {
  ShardOptions options = ChaosOptions(2, 1);
  options.hedge_percentile = 90.0;
  options.hedge_min_samples = 4;
  auto fw = MakeSharded(*corpus_, options, BruteForceIndex());
  ASSERT_TRUE(fw.ok());

  // Warm the per-shard latency histograms past hedge_min_samples; on the
  // MockClock every clean attempt takes exactly 0 virtual ms.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*fw)->Retrieve(Query(3), Params()).ok());
    EXPECT_FALSE((*fw)->last_report().shards[0].hedged);
  }

  // One 500 virtual-ms spike on shard 0's primary attempt. The hedge —
  // modeled as launched at the threshold crossing — completes first and
  // wins; no real time passes.
  FaultSpec spike;
  spike.code = StatusCode::kOk;
  spike.latency_ms = 500.0;
  spike.max_fires = 1;
  ScopedFault slow("shard/0/search", spike);

  auto result = (*fw)->Retrieve(Query(3), Params());
  ASSERT_TRUE(result.ok());
  const ShardOutcome& outcome = (*fw)->last_report().shards[0];
  EXPECT_EQ(outcome.kind, ShardOutcomeKind::kOk);
  EXPECT_TRUE(outcome.hedged);
  EXPECT_TRUE(outcome.hedge_won);
  EXPECT_LT(outcome.latency_ms, 500.0);
  EXPECT_EQ(result->stats.shards_ok, 2u);
  EXPECT_EQ(result->neighbors.size(), 10u);
}

TEST_F(ShardChaosTest, DeadlineSliceDropsSlowShard) {
  ShardOptions options = ChaosOptions(2, 1);
  options.deadline_fraction = 0.5;
  auto fw = MakeSharded(*corpus_, options, BruteForceIndex());
  ASSERT_TRUE(fw.ok());

  FaultSpec slow;
  slow.code = StatusCode::kOk;
  slow.latency_ms = 500.0;  // way past the 50ms slice
  ScopedFault fault("shard/0/search", slow);

  RetrievalQuery rq = Query(4);
  rq.deadline_micros = clock_.NowMicros() + 100'000;
  auto result = (*fw)->Retrieve(rq, Params());
  ASSERT_TRUE(result.ok());
  const FanoutReport& report = (*fw)->last_report();
  EXPECT_EQ(report.shards[0].kind, ShardOutcomeKind::kTimeout);
  EXPECT_EQ(report.shards[1].kind, ShardOutcomeKind::kOk);
  EXPECT_EQ(result->stats.shards_ok, 1u);
  EXPECT_EQ(result->stats.shards_total, 2u);
  // The late shard's rows are absent from the merge.
  const auto& dropped = (*fw)->shard_global_ids(0);
  for (const Neighbor& n : result->neighbors) {
    EXPECT_EQ(std::find(dropped.begin(), dropped.end(), n.id), dropped.end())
        << "id " << n.id << " leaked from the timed-out shard";
  }
}

TEST_F(ShardChaosTest, FaultScheduleIsDeterministicUnderSeed) {
  const int iters = ChaosIters(20);
  auto run_schedule = [&](std::vector<std::string>* kinds) {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().Seed(ChaosSeed());
    ShardOptions options = ChaosOptions(4, 1);
    options.breaker_failure_threshold = 3;
    options.breaker_open_ms = 5.0;
    auto fw = MakeSharded(*corpus_, options, BruteForceIndex());
    ASSERT_TRUE(fw.ok());
    FaultSpec flaky;
    flaky.probability = 0.4;
    std::vector<std::unique_ptr<ScopedFault>> faults;
    for (int s = 0; s < 4; ++s) {
      faults.push_back(std::make_unique<ScopedFault>(
          "shard/" + std::to_string(s) + "/search", flaky));
    }
    for (int i = 0; i < iters; ++i) {
      auto result = (*fw)->Retrieve(Query(i % 8, /*seed=*/i), Params());
      std::string row = result.ok() ? "ok" : "quorum-miss";
      for (const ShardOutcome& o : (*fw)->last_report().shards) {
        row += std::string(":") + ShardOutcomeKindToString(o.kind);
      }
      kinds->push_back(std::move(row));
      clock_.AdvanceMillis(1.0);
    }
  };
  std::vector<std::string> first, second;
  run_schedule(&first);
  run_schedule(&second);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first, second) << "same seed must give the same fault schedule";
}

/// End-to-end (satellite): every shard down -> the coordinator still
/// answers, degraded, with the retrieval outage and shard coverage on the
/// turn's degradation notes (the "[!]" status-event path).
class ShardCoordinatorChaosTest : public ShardChaosTest {
 protected:
  MqaConfig ShardedConfig() {
    MqaConfig config;
    config.world.num_concepts = 12;
    config.world.latent_dim = 16;
    config.world.raw_image_dim = 32;
    config.world.seed = 5;
    config.corpus_size = 400;
    config.embedding_dim = 16;
    config.num_training_triplets = 300;
    config.index.algorithm = "mqa-hybrid";
    config.index.graph.max_degree = 12;
    config.search.k = 5;
    config.search.beam_width = 48;
    config.shard.enable = true;
    config.shard.num_shards = 3;
    config.shard.quorum = 2;
    config.shard.fanout_threads = 1;
    config.shard.hedge_percentile = 0.0;
    config.resilience.enable = true;
    return config;
  }
};

TEST_F(ShardCoordinatorChaosTest, AllShardsDownStillAnswersDegraded) {
  auto coordinator = Coordinator::Create(ShardedConfig());
  ASSERT_TRUE(coordinator.ok());
  ScopedFault f0("shard/0/search");
  ScopedFault f1("shard/1/search");
  ScopedFault f2("shard/2/search");

  UserQuery query;
  query.text = "a red object";
  auto turn = (*coordinator)->Ask(query);
  ASSERT_TRUE(turn.ok()) << turn.status().message();
  EXPECT_TRUE(turn->degraded);
  EXPECT_TRUE(turn->items.empty());
  EXPECT_FALSE(turn->answer.empty());
  bool noted = false;
  for (const std::string& note : turn->degradation_notes) {
    if (note.find("retrieval unavailable") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted) << "missing retrieval-outage degradation note";
}

TEST_F(ShardCoordinatorChaosTest, PartialCoverageSurfacesOnTheTurn) {
  auto coordinator = Coordinator::Create(ShardedConfig());
  ASSERT_TRUE(coordinator.ok());
  ScopedFault f0("shard/0/search");

  UserQuery query;
  query.text = "a red object";
  auto turn = (*coordinator)->Ask(query);
  ASSERT_TRUE(turn.ok()) << turn.status().message();
  EXPECT_TRUE(turn->degraded);
  EXPECT_FALSE(turn->items.empty());
  bool noted = false;
  for (const std::string& note : turn->degradation_notes) {
    if (note.find("shard coverage 2/3") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted) << "missing shard-coverage degradation note";
}

}  // namespace
}  // namespace mqa
