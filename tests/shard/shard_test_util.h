#ifndef MQA_TESTS_SHARD_SHARD_TEST_UTIL_H_
#define MQA_TESTS_SHARD_SHARD_TEST_UTIL_H_

#include <memory>
#include <utility>

#include "core/experiment.h"
#include "shard/sharded_retrieval.h"

namespace mqa::testing {

/// A small, fast corpus shared by the shard tests (16-dim embeddings).
inline ExperimentCorpus PrepareShardCorpus(uint64_t corpus_size = 600,
                                           uint32_t num_concepts = 12,
                                           uint64_t seed = 11) {
  WorldConfig wc;
  wc.num_concepts = num_concepts;
  wc.latent_dim = 16;
  wc.raw_image_dim = 32;
  wc.seed = seed;
  auto corpus = MakeExperimentCorpus(wc, corpus_size, "sim-clip", 16,
                                     /*learn_weights=*/true, 500);
  if (!corpus.ok()) return ExperimentCorpus{};
  return std::move(corpus).Value();
}

/// Exact search: brute-force single index — the oracle the sharded merge
/// is compared against.
inline IndexConfig BruteForceIndex() {
  IndexConfig config;
  config.algorithm = "bruteforce";
  return config;
}

inline IndexConfig SmallGraphIndex() {
  IndexConfig config;
  config.algorithm = "mqa-hybrid";
  config.graph.max_degree = 16;
  return config;
}

inline Result<std::unique_ptr<ShardedRetrieval>> MakeSharded(
    const ExperimentCorpus& corpus, const ShardOptions& options,
    const IndexConfig& index_config, const std::string& framework = "must") {
  return ShardedRetrieval::Create(framework, corpus.represented.store,
                                  corpus.represented.weights, index_config,
                                  options);
}

}  // namespace mqa::testing

#endif  // MQA_TESTS_SHARD_SHARD_TEST_UTIL_H_
