// Live mutation under sharding: deletes tombstone across the fan-out
// merge, inserts route to the least-loaded shard, and the merged
// SearchStats stay truthful.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/coordinator.h"
#include "shard/sharded_retrieval.h"

namespace mqa {
namespace {

MqaConfig ShardedConfig(size_t num_shards = 4) {
  MqaConfig config;
  config.world.num_concepts = 12;
  config.world.latent_dim = 16;
  config.world.raw_image_dim = 32;
  config.world.seed = 5;
  config.corpus_size = 320;
  config.embedding_dim = 16;
  config.num_training_triplets = 400;
  config.index.algorithm = "mqa-hybrid";
  config.index.graph.max_degree = 12;
  config.search.k = 5;
  config.search.beam_width = 48;
  config.shard.enable = true;
  config.shard.num_shards = num_shards;
  config.compaction.auto_compact = false;
  return config;
}

std::vector<size_t> ShardLiveSizes(const ShardedRetrieval& sharded) {
  std::vector<size_t> sizes;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    sizes.push_back(const_cast<ShardedRetrieval&>(sharded).shard_live_size(s));
  }
  return sizes;
}

TEST(SearchStatsMergeTest, CountersAddAndFlagsCombine) {
  SearchStats a;
  a.hops = 10;
  a.dist_comps = 100;
  a.io_errors = 1;
  a.shards_total = 2;
  a.shards_ok = 2;
  SearchStats b;
  b.hops = 5;
  b.dist_comps = 40;
  b.partial = true;
  b.shards_total = 2;
  b.shards_ok = 1;
  a.Merge(b);
  EXPECT_EQ(a.hops, 15u);
  EXPECT_EQ(a.dist_comps, 140u);
  EXPECT_EQ(a.io_errors, 1u);
  EXPECT_TRUE(a.partial);
  EXPECT_EQ(a.shards_total, 4u);
  EXPECT_EQ(a.shards_ok, 3u);

  // Merging an empty block changes nothing.
  a.Merge(SearchStats{});
  EXPECT_EQ(a.hops, 15u);
  EXPECT_EQ(a.dist_comps, 140u);
  EXPECT_TRUE(a.partial);
}

TEST(ShardMutationTest, RemovedIdsNeverSurfaceInMergedTopK) {
  auto c = Coordinator::Create(ShardedConfig());
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  auto* sharded = dynamic_cast<ShardedRetrieval*>((*c)->framework());
  ASSERT_NE(sharded, nullptr);

  UserQuery query;
  query.text = "find " + (*c)->world().ConceptName(3);
  auto before = (*c)->Ask(query);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->items.empty());

  // Delete the entire first page of results — they span several shards.
  std::set<uint64_t> victims;
  for (const RetrievedItem& item : before->items) {
    ASSERT_TRUE((*c)->RemoveObject(item.id).ok());
    victims.insert(item.id);
  }
  EXPECT_EQ(sharded->num_tombstones(), victims.size());

  (*c)->ResetDialogue();
  auto after = (*c)->Ask(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->items.size(), before->items.size())
      << "tombstones must not shrink the merged result set";
  for (const RetrievedItem& item : after->items) {
    EXPECT_EQ(victims.count(item.id), 0u)
        << "deleted id " << item.id << " resurfaced through the merge";
  }
}

TEST(ShardMutationTest, LiveInsertsRouteToSmallestShard) {
  auto c = Coordinator::Create(ShardedConfig(4));
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  auto* sharded = dynamic_cast<ShardedRetrieval*>((*c)->framework());
  ASSERT_NE(sharded, nullptr);
  ASSERT_TRUE(sharded->SupportsLiveIngestion());

  // Round-robin partition: 320 / 4 = 80 per shard. Deleting ids that all
  // live on shard 0 (global id % 4 == 0) unbalances it.
  for (uint64_t id = 0; id < 48; id += 4) {
    ASSERT_TRUE((*c)->RemoveObject(id).ok());
  }
  std::vector<size_t> sizes = ShardLiveSizes(*sharded);
  EXPECT_EQ(sizes[0], 68u);
  EXPECT_EQ(sizes[1], 80u);

  // New objects must flow into the emptiest shard until the fleet levels
  // out, then spread evenly.
  Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    auto id = (*c)->IngestObject(
        (*c)->world().MakeObject(static_cast<uint32_t>(i % 12), &rng));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  sizes = ShardLiveSizes(*sharded);
  const auto [min_it, max_it] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*max_it - *min_it, 1u)
      << "shard live sizes diverged: " << sizes[0] << "/" << sizes[1] << "/"
      << sizes[2] << "/" << sizes[3];
  // 12 of the 16 inserts back-filled shard 0 to parity (68 + 12 == 80).
  EXPECT_GE(sizes[0], 80u);

  // Inserted objects are retrievable through the fan-out.
  UserQuery query;
  query.selected_object = (*c)->kb().size() - 1;
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok());
  bool found = false;
  for (const RetrievedItem& item : turn->items) {
    found = found || item.id == (*c)->kb().size() - 1;
  }
  EXPECT_TRUE(found);
}

TEST(ShardMutationTest, CompactionRebuildsShardedFrameworkDense) {
  MqaConfig config = ShardedConfig(3);
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  for (uint64_t id = 0; id < 80; ++id) {
    ASSERT_TRUE((*c)->RemoveObject(id).ok());
  }
  ASSERT_TRUE((*c)->CompactNow().ok());
  EXPECT_EQ((*c)->kb().size(), 240u);
  auto* sharded = dynamic_cast<ShardedRetrieval*>((*c)->framework());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->num_tombstones(), 0u);
  std::vector<size_t> sizes = ShardLiveSizes(*sharded);
  size_t total = 0;
  for (size_t s : sizes) total += s;
  EXPECT_EQ(total, 240u);

  UserQuery query;
  query.text = "find " + (*c)->world().ConceptName(6);
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok());
  EXPECT_EQ(turn->items.size(), 5u);
}

TEST(ShardMutationTest, RemoveValidatesAgainstGlobalIdSpace) {
  auto c = Coordinator::Create(ShardedConfig(2));
  ASSERT_TRUE(c.ok());
  auto* sharded = dynamic_cast<ShardedRetrieval*>((*c)->framework());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->Remove(320).code(), StatusCode::kNotFound);
  ASSERT_TRUE(sharded->Remove(11).ok());
  EXPECT_EQ(sharded->Remove(11).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace mqa
