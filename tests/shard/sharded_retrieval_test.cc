#include "shard/sharded_retrieval.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/clock.h"
#include "retrieval/factory.h"
#include "shard_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::BruteForceIndex;
using ::mqa::testing::MakeSharded;
using ::mqa::testing::PrepareShardCorpus;
using ::mqa::testing::SmallGraphIndex;

class ShardedRetrievalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new ExperimentCorpus(PrepareShardCorpus());
    ASSERT_NE(corpus_->kb, nullptr);
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static RetrievalQuery TextQueryFor(uint32_t concept_id, Rng* rng) {
    const TextQuery q = corpus_->world->MakeTextQuery(concept_id, rng);
    auto rq = EncodeTextQuery(*corpus_, q.text);
    EXPECT_TRUE(rq.ok());
    return std::move(rq).Value();
  }

  static ExperimentCorpus* corpus_;
};

ExperimentCorpus* ShardedRetrievalTest::corpus_ = nullptr;

TEST_F(ShardedRetrievalTest, PartitionCoversCorpusDisjointly) {
  for (const char* scheme : {"round-robin", "hash"}) {
    ShardOptions options;
    options.num_shards = 5;
    options.partition = scheme;
    auto fw = MakeSharded(*corpus_, options, BruteForceIndex());
    ASSERT_TRUE(fw.ok()) << scheme;
    std::set<uint32_t> seen;
    size_t total = 0;
    for (size_t s = 0; s < (*fw)->num_shards(); ++s) {
      for (uint32_t id : (*fw)->shard_global_ids(s)) {
        EXPECT_TRUE(seen.insert(id).second)
            << "id " << id << " in two shards (" << scheme << ")";
        ++total;
      }
    }
    EXPECT_EQ(total, corpus_->represented.store->size()) << scheme;
    EXPECT_EQ(*seen.rbegin(), corpus_->represented.store->size() - 1);
  }
}

TEST_F(ShardedRetrievalTest, ShardedMatchesUnshardedExactTopK) {
  ShardOptions options;
  options.num_shards = 4;
  auto sharded = MakeSharded(*corpus_, options, BruteForceIndex());
  ASSERT_TRUE(sharded.ok());
  auto single = CreateRetrievalFramework("must", corpus_->represented.store,
                                         corpus_->represented.weights,
                                         BruteForceIndex());
  ASSERT_TRUE(single.ok());

  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  Rng rng(3);
  for (uint32_t c = 0; c < 8; ++c) {
    const RetrievalQuery rq = TextQueryFor(c, &rng);
    auto got = (*sharded)->Retrieve(rq, params);
    auto want = (*single)->Retrieve(rq, params);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->neighbors.size(), want->neighbors.size());
    for (size_t i = 0; i < want->neighbors.size(); ++i) {
      EXPECT_EQ(got->neighbors[i].id, want->neighbors[i].id) << "rank " << i;
      EXPECT_FLOAT_EQ(got->neighbors[i].distance,
                      want->neighbors[i].distance);
    }
    EXPECT_EQ(got->stats.shards_total, 4u);
    EXPECT_EQ(got->stats.shards_ok, 4u);
    EXPECT_GT(got->stats.dist_comps, 0u);
  }
}

TEST_F(ShardedRetrievalTest, GraphIndexShardingKeepsRecall) {
  ShardOptions options;
  options.num_shards = 3;
  auto sharded = MakeSharded(*corpus_, options, SmallGraphIndex());
  ASSERT_TRUE(sharded.ok());
  auto exact = CreateRetrievalFramework("must", corpus_->represented.store,
                                        corpus_->represented.weights,
                                        BruteForceIndex());
  ASSERT_TRUE(exact.ok());

  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  Rng rng(7);
  double recall_sum = 0;
  constexpr int kQueries = 8;
  for (uint32_t c = 0; c < kQueries; ++c) {
    const RetrievalQuery rq = TextQueryFor(c, &rng);
    auto got = (*sharded)->Retrieve(rq, params);
    auto want = (*exact)->Retrieve(rq, params);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    std::vector<uint32_t> truth;
    for (const Neighbor& n : want->neighbors) truth.push_back(n.id);
    recall_sum += GroundTruthHitRate(got->neighbors, truth);
  }
  EXPECT_GT(recall_sum / kQueries, 0.6);
}

TEST_F(ShardedRetrievalTest, WeightsForwardToEveryShard) {
  ShardOptions options;
  options.num_shards = 3;
  auto fw = MakeSharded(*corpus_, options, BruteForceIndex());
  ASSERT_TRUE(fw.ok());
  const size_t m = corpus_->represented.store->schema().num_modalities();
  std::vector<float> skewed(m, 0.1f);
  skewed[0] = 2.0f;
  ASSERT_TRUE((*fw)->SetWeights(skewed).ok());
  // Normalized weights sum to the modality count.
  float sum = 0;
  for (float w : (*fw)->weights()) sum += w;
  EXPECT_NEAR(sum, static_cast<float>(m), 1e-4);
  // Wrong arity is rejected without touching any shard.
  EXPECT_FALSE((*fw)->SetWeights(std::vector<float>(m + 1, 1.0f)).ok());

  Rng rng(5);
  SearchParams params;
  params.k = 5;
  params.beam_width = 32;
  auto result = (*fw)->Retrieve(TextQueryFor(0, &rng), params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->neighbors.size(), 5u);
}

TEST_F(ShardedRetrievalTest, FilterSeesGlobalIds) {
  ShardOptions options;
  options.num_shards = 4;
  auto fw = MakeSharded(*corpus_, options, BruteForceIndex());
  ASSERT_TRUE(fw.ok());
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  // Only even *corpus* ids may be returned; under sharding the filter must
  // be consulted with global ids, not shard-local row ids.
  params.filter = [](uint32_t id) { return id % 2 == 0; };
  Rng rng(9);
  auto result = (*fw)->Retrieve(TextQueryFor(1, &rng), params);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->neighbors.empty());
  for (const Neighbor& n : result->neighbors) {
    EXPECT_EQ(n.id % 2, 0u) << "odd id passed the filter";
  }
}

TEST_F(ShardedRetrievalTest, ClampsShardCountAndQuorum) {
  ShardOptions options;
  options.num_shards = 1 << 20;  // far more shards than objects
  options.quorum = 1 << 20;
  auto fw = MakeSharded(*corpus_, options, BruteForceIndex());
  ASSERT_TRUE(fw.ok());
  EXPECT_LE((*fw)->num_shards(), corpus_->represented.store->size());
  EXPECT_LE((*fw)->quorum(), (*fw)->num_shards());
  EXPECT_GE((*fw)->quorum(), 1u);
}

TEST_F(ShardedRetrievalTest, RejectsBadOptions) {
  ShardOptions zero;
  zero.num_shards = 0;
  EXPECT_FALSE(MakeSharded(*corpus_, zero, BruteForceIndex()).ok());
  ShardOptions bad_scheme;
  bad_scheme.partition = "alphabetical";
  EXPECT_FALSE(MakeSharded(*corpus_, bad_scheme, BruteForceIndex()).ok());
  EXPECT_FALSE(ShardedRetrieval::Create("must", nullptr, {},
                                        BruteForceIndex(), ShardOptions{})
                   .ok());
}

TEST_F(ShardedRetrievalTest, NameSchemaAndBuildReport) {
  ShardOptions options;
  options.num_shards = 2;
  BuildReport report;
  auto fw = ShardedRetrieval::Create(
      "must", corpus_->represented.store, corpus_->represented.weights,
      BruteForceIndex(), options, &report);
  ASSERT_TRUE(fw.ok());
  EXPECT_EQ((*fw)->name(), "sharded:must");
  EXPECT_EQ((*fw)->schema().num_modalities(),
            corpus_->represented.store->schema().num_modalities());
  EXPECT_NE(report.algorithm.find("2 shards"), std::string::npos)
      << report.algorithm;
}

TEST_F(ShardedRetrievalTest, ExpiredDeadlineShedsBeforeFanout) {
  MockClock clock(1'000'000);
  ShardOptions options;
  options.num_shards = 2;
  options.clock = &clock;
  auto fw = MakeSharded(*corpus_, options, BruteForceIndex());
  ASSERT_TRUE(fw.ok());
  Rng rng(2);
  RetrievalQuery rq = TextQueryFor(0, &rng);
  rq.deadline_micros = 500'000;  // already in the past
  SearchParams params;
  params.k = 5;
  params.beam_width = 32;
  auto result = (*fw)->Retrieve(rq, params);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace mqa
