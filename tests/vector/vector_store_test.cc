#include "vector/vector_store.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.h"

namespace mqa {
namespace {

VectorSchema TwoModality() {
  VectorSchema s;
  s.dims = {2, 3};
  return s;
}

TEST(VectorStoreTest, AddAndRead) {
  VectorStore store(TwoModality());
  auto id0 = store.Add({1, 2, 3, 4, 5});
  auto id1 = store.Add({6, 7, 8, 9, 10});
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id0, 0u);
  EXPECT_EQ(*id1, 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Row(1), (Vector{6, 7, 8, 9, 10}));
  EXPECT_FLOAT_EQ(store.data(0)[4], 5.0f);
}

TEST(VectorStoreTest, RejectsWrongLength) {
  VectorStore store(TwoModality());
  EXPECT_FALSE(store.Add({1, 2, 3}).ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST(VectorStoreTest, AddMultiVectorFlattens) {
  VectorStore store(TwoModality());
  MultiVector mv;
  mv.parts = {{1, 2}, {3, 4, 5}};
  ASSERT_TRUE(store.AddMultiVector(mv).ok());
  EXPECT_EQ(store.Row(0), (Vector{1, 2, 3, 4, 5}));
  MultiVector bad;
  bad.parts = {{1}, {3, 4, 5}};
  EXPECT_FALSE(store.AddMultiVector(bad).ok());
}

TEST(VectorStoreTest, SaveLoadRoundTrip) {
  VectorStore store(TwoModality());
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    Vector v(5);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(store.Add(v).ok());
  }
  std::stringstream buf;
  ASSERT_TRUE(store.Save(buf).ok());
  auto loaded = VectorStore::Load(buf);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), store.size());
  EXPECT_EQ(loaded->schema(), store.schema());
  for (uint32_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(loaded->Row(i), store.Row(i));
  }
}

TEST(VectorStoreTest, LoadRejectsGarbage) {
  std::stringstream buf("not a store");
  EXPECT_FALSE(VectorStore::Load(buf).ok());
}

TEST(VectorStoreTest, LoadRejectsTruncated) {
  VectorStore store(TwoModality());
  ASSERT_TRUE(store.Add({1, 2, 3, 4, 5}).ok());
  std::stringstream buf;
  ASSERT_TRUE(store.Save(buf).ok());
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::stringstream cut(data);
  EXPECT_FALSE(VectorStore::Load(cut).ok());
}

TEST(FlatDistanceComputerTest, ComputesMetricDistances) {
  VectorSchema s;
  s.dims = {2};
  VectorStore store(s);
  ASSERT_TRUE(store.Add({0, 0}).ok());
  ASSERT_TRUE(store.Add({3, 4}).ok());
  FlatDistanceComputer dist(&store, Metric::kL2);
  const Vector q = {0, 0};
  EXPECT_FLOAT_EQ(dist.Distance(q.data(), 1), 25.0f);
  EXPECT_FLOAT_EQ(dist.DistanceBetween(0, 1), 25.0f);
  EXPECT_EQ(dist.size(), 2u);
  EXPECT_EQ(dist.dim(), 2u);
}

TEST(MultiVectorDistanceComputerTest, TracksStatsAndHonorsPruningFlag) {
  VectorStore store(TwoModality());
  ASSERT_TRUE(store.Add({0, 0, 0, 0, 0}).ok());
  ASSERT_TRUE(store.Add({10, 10, 10, 10, 10}).ok());
  auto wd = WeightedMultiDistance::Create(TwoModality(), {1.0f, 1.0f});
  ASSERT_TRUE(wd.ok());

  MultiVectorDistanceComputer pruned(&store, *wd, /*enable_pruning=*/true);
  const Vector q(5, 0.0f);
  const float d = pruned.DistanceWithBound(q.data(), 1, 1.0f);
  EXPECT_GT(d, 1.0f);
  EXPECT_EQ(pruned.stats().pruned_computations, 1u);
  pruned.ResetStats();
  EXPECT_EQ(pruned.stats().TotalComputations(), 0u);

  MultiVectorDistanceComputer unpruned(&store, *wd, /*enable_pruning=*/false);
  const float full = unpruned.DistanceWithBound(q.data(), 1, 1.0f);
  EXPECT_FLOAT_EQ(full, 500.0f);
  EXPECT_EQ(unpruned.stats().full_computations, 1u);
  EXPECT_EQ(unpruned.stats().pruned_computations, 0u);
}

TEST(VectorStoreLayoutTest, RowsAreSimdAligned) {
  VectorStore store(TwoModality());  // row_dim 5, not a stride multiple
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(store.Add({1.0f * i, 2, 3, 4, 5}).ok());
  }
  EXPECT_GE(store.row_stride(), store.row_dim());
  EXPECT_EQ(store.row_stride() % VectorStore::kRowAlignFloats, 0u);
  for (uint32_t id = 0; id < store.size(); ++id) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(store.data(id)) % kSimdAlignment,
              0u)
        << "row " << id;
  }
}

TEST(VectorStoreLayoutTest, PaddingIsZeroed) {
  VectorStore store(TwoModality());
  ASSERT_TRUE(store.Add({1, 2, 3, 4, 5}).ok());
  ASSERT_TRUE(store.Add({6, 7, 8, 9, 10}).ok());
  for (uint32_t id = 0; id < store.size(); ++id) {
    const float* row = store.data(id);
    for (size_t j = store.row_dim(); j < store.row_stride(); ++j) {
      EXPECT_EQ(row[j], 0.0f) << "row " << id << " pad " << j;
    }
  }
  // Rows themselves are untouched by the padding.
  EXPECT_EQ(store.Row(1), (Vector{6, 7, 8, 9, 10}));
}

TEST(MultiVectorDistanceComputerTest, SetWeightsChangesDistances) {
  VectorStore store(TwoModality());
  ASSERT_TRUE(store.Add({1, 0, 0, 0, 0}).ok());
  auto wd = WeightedMultiDistance::Create(TwoModality(), {1.0f, 1.0f});
  ASSERT_TRUE(wd.ok());
  MultiVectorDistanceComputer dist(&store, *wd, true);
  const Vector q(5, 0.0f);
  EXPECT_FLOAT_EQ(dist.Distance(q.data(), 0), 1.0f);
  ASSERT_TRUE(dist.SetWeights({4.0f, 1.0f}).ok());
  EXPECT_FLOAT_EQ(dist.Distance(q.data(), 0), 4.0f);
}

}  // namespace
}  // namespace mqa
