#include "vector/simd/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "vector/distance.h"

namespace mqa {
namespace {

/// Restores the process-wide dispatch level on scope exit, so these tests
/// never leak an override into the rest of the suite (which may be pinned
/// by MQA_SIMD_LEVEL in the CI dispatch matrix).
class ScopedSimdLevel {
 public:
  ScopedSimdLevel() : saved_(ActiveSimdLevel()) {}
  ~ScopedSimdLevel() { (void)SetSimdLevel(saved_); }

 private:
  SimdLevel saved_;
};

TEST(SimdLevelTest, NamesRoundTrip) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    auto parsed = SimdLevelFromString(SimdLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
}

TEST(SimdLevelTest, ParseIsCaseInsensitiveAndRejectsGarbage) {
  auto upper = SimdLevelFromString("AVX2");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(*upper, SimdLevel::kAvx2);
  EXPECT_FALSE(SimdLevelFromString("sse9").ok());
  EXPECT_FALSE(SimdLevelFromString("").ok());
}

TEST(SimdLevelTest, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(CpuSupports(SimdLevel::kScalar));
  EXPECT_GE(static_cast<int>(DetectedSimdLevel()),
            static_cast<int>(SimdLevel::kScalar));
}

TEST(SimdResolveTest, AutoAndEmptyUseDetected) {
  std::string note;
  EXPECT_EQ(ResolveSimdLevel("auto", SimdLevel::kAvx2, &note),
            SimdLevel::kAvx2);
  EXPECT_EQ(ResolveSimdLevel("", SimdLevel::kScalar, &note),
            SimdLevel::kScalar);
  EXPECT_TRUE(note.empty());
}

TEST(SimdResolveTest, SupportedRequestIsHonoredSilently) {
  std::string note;
  EXPECT_EQ(ResolveSimdLevel("scalar", SimdLevel::kAvx512, &note),
            SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel("avx2", SimdLevel::kAvx2, &note),
            SimdLevel::kAvx2);
  EXPECT_TRUE(note.empty());
}

TEST(SimdResolveTest, UnsupportedRequestClampsWithNote) {
  std::string note;
  EXPECT_EQ(ResolveSimdLevel("avx512", SimdLevel::kScalar, &note),
            SimdLevel::kScalar);
  EXPECT_NE(note.find("avx512"), std::string::npos);
  EXPECT_NE(note.find("scalar"), std::string::npos);
}

TEST(SimdResolveTest, GarbageRequestClampsWithNote) {
  std::string note;
  EXPECT_EQ(ResolveSimdLevel("turbo9000", SimdLevel::kAvx2, &note),
            SimdLevel::kAvx2);
  EXPECT_FALSE(note.empty());
}

TEST(SimdDispatchTest, SetLevelRejectsUnsupportedTier) {
  ScopedSimdLevel restore;
  if (DetectedSimdLevel() == SimdLevel::kAvx512) {
    GTEST_SKIP() << "every tier is supported on this CPU";
  }
  EXPECT_FALSE(SetSimdLevel(SimdLevel::kAvx512).ok());
}

TEST(SimdDispatchTest, SetLevelSwitchesActiveKernels) {
  ScopedSimdLevel restore;
  ASSERT_TRUE(SetSimdLevel(SimdLevel::kScalar).ok());
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  EXPECT_EQ(&ActiveKernels(), &KernelsFor(SimdLevel::kScalar));
  const SimdLevel top = DetectedSimdLevel();
  ASSERT_TRUE(SetSimdLevel(top).ok());
  EXPECT_EQ(ActiveSimdLevel(), top);
}

TEST(SimdDispatchTest, ScalarKernelsComputeKnownValues) {
  const DistanceKernels& k = KernelsFor(SimdLevel::kScalar);
  const float a[] = {1, 2, 3, 4, 5};
  const float b[] = {0, 2, 1, 4, 2};
  EXPECT_FLOAT_EQ(k.l2sq(a, b, 5), 1.0f + 4.0f + 9.0f);
  EXPECT_FLOAT_EQ(k.dot(a, b, 5), 0 + 4 + 3 + 16 + 10);
  EXPECT_FLOAT_EQ(k.l2sq(a, b, 0), 0.0f);
}

TEST(SimdDispatchTest, EveryTierFallsBackToSomethingExecutable) {
  // KernelsFor never returns a table the current binary/CPU cannot run:
  // unsupported tiers degrade (avx512 -> avx2 -> scalar). All tables must
  // agree closely on a smoke input.
  Rng rng(11);
  std::vector<float> a(67), b(67);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.Gaussian());
    b[i] = static_cast<float>(rng.Gaussian());
  }
  const float ref = KernelsFor(SimdLevel::kScalar).l2sq(a.data(), b.data(),
                                                        a.size());
  for (SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (!CpuSupports(level)) continue;
    const float got = KernelsFor(level).l2sq(a.data(), b.data(), a.size());
    EXPECT_NEAR(got, ref, 1e-4f * std::abs(ref) + 1e-6f)
        << "level=" << SimdLevelName(level);
  }
}

TEST(SimdDispatchTest, PublicEntryPointsUseActiveKernels) {
  ScopedSimdLevel restore;
  ASSERT_TRUE(SetSimdLevel(SimdLevel::kScalar).ok());
  const float a[] = {3, 0, 0, 0};
  const float b[] = {0, 4, 0, 0};
  EXPECT_FLOAT_EQ(L2Sq(a, b, 4), 25.0f);
  EXPECT_FLOAT_EQ(Dot(a, a, 4), 9.0f);
}

}  // namespace
}  // namespace mqa
