#include "vector/distance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace mqa {
namespace {

TEST(DistanceTest, L2SqBasic) {
  const float a[] = {0, 0, 0};
  const float b[] = {1, 2, 2};
  EXPECT_FLOAT_EQ(L2Sq(a, b, 3), 9.0f);
  EXPECT_FLOAT_EQ(L2Sq(a, a, 3), 0.0f);
}

TEST(DistanceTest, L2SqHandlesNonMultipleOfFourDims) {
  // The kernel unrolls by 4; check the scalar tail for every residual length.
  Rng rng(1);
  for (size_t dim = 1; dim <= 9; ++dim) {
    std::vector<float> a(dim), b(dim);
    for (size_t i = 0; i < dim; ++i) {
      a[i] = static_cast<float>(rng.Gaussian());
      b[i] = static_cast<float>(rng.Gaussian());
    }
    float expected = 0;
    for (size_t i = 0; i < dim; ++i) {
      expected += (a[i] - b[i]) * (a[i] - b[i]);
    }
    EXPECT_NEAR(L2Sq(a.data(), b.data(), dim), expected, 1e-4);
  }
}

TEST(DistanceTest, DotBasic) {
  const float a[] = {1, 2, 3, 4, 5};
  const float b[] = {5, 4, 3, 2, 1};
  EXPECT_FLOAT_EQ(Dot(a, b, 5), 35.0f);
}

TEST(DistanceTest, NormBasic) {
  const float a[] = {3, 4};
  EXPECT_FLOAT_EQ(Norm(a, 2), 5.0f);
}

TEST(DistanceTest, CosineDistanceRange) {
  const float a[] = {1, 0};
  const float b[] = {0, 1};
  const float c[] = {-1, 0};
  EXPECT_NEAR(CosineDistance(a, b, 2), 1.0f, 1e-6);   // orthogonal
  EXPECT_NEAR(CosineDistance(a, a, 2), 0.0f, 1e-6);   // identical
  EXPECT_NEAR(CosineDistance(a, c, 2), 2.0f, 1e-6);   // opposite
}

TEST(DistanceTest, CosineDistanceZeroVectorIsNeutral) {
  const float a[] = {0, 0};
  const float b[] = {1, 1};
  EXPECT_FLOAT_EQ(CosineDistance(a, b, 2), 1.0f);
}

TEST(DistanceTest, ComputeDistanceDispatch) {
  const float a[] = {1, 0};
  const float b[] = {0, 1};
  EXPECT_FLOAT_EQ(ComputeDistance(Metric::kL2, a, b, 2), 2.0f);
  EXPECT_FLOAT_EQ(ComputeDistance(Metric::kInnerProduct, a, b, 2), 0.0f);
  EXPECT_FLOAT_EQ(ComputeDistance(Metric::kCosine, a, b, 2), 1.0f);
}

TEST(DistanceTest, InnerProductSmallerIsCloser) {
  const float q[] = {1, 1};
  const float near[] = {2, 2};
  const float far[] = {0.1f, 0.1f};
  EXPECT_LT(ComputeDistance(Metric::kInnerProduct, q, near, 2),
            ComputeDistance(Metric::kInnerProduct, q, far, 2));
}

TEST(DistanceTest, MetricStringRoundTrip) {
  EXPECT_EQ(MetricFromString("l2"), Metric::kL2);
  EXPECT_EQ(MetricFromString("IP"), Metric::kInnerProduct);
  EXPECT_EQ(MetricFromString("Cosine"), Metric::kCosine);
  EXPECT_EQ(MetricFromString("unknown"), Metric::kL2);
  for (Metric m :
       {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    EXPECT_EQ(MetricFromString(MetricToString(m)), m);
  }
}

TEST(DistanceTest, EarlyAbandonMatchesExactWhenUnderBound) {
  Rng rng(3);
  std::vector<float> a(64), b(64);
  for (size_t i = 0; i < 64; ++i) {
    a[i] = static_cast<float>(rng.Gaussian());
    b[i] = static_cast<float>(rng.Gaussian());
  }
  const float exact = L2Sq(a.data(), b.data(), 64);
  size_t scanned = 0;
  const float pruned =
      L2SqEarlyAbandon(a.data(), b.data(), 64, exact + 1.0f, &scanned);
  EXPECT_FLOAT_EQ(pruned, exact);
  EXPECT_EQ(scanned, 64u);
}

TEST(DistanceTest, EarlyAbandonStopsEarlyOnTightBound) {
  std::vector<float> a(128, 0.0f), b(128, 1.0f);  // distance = 128
  size_t scanned = 0;
  const float d = L2SqEarlyAbandon(a.data(), b.data(), 128, 10.0f, &scanned);
  EXPECT_GT(d, 10.0f);
  EXPECT_LT(scanned, 128u);  // abandoned before the end
}

TEST(DistanceTest, NormalizeVectorMakesUnitNorm) {
  Vector v = {3, 4};
  NormalizeVector(&v);
  EXPECT_NEAR(Norm(v.data(), 2), 1.0f, 1e-6);
  EXPECT_NEAR(v[0], 0.6f, 1e-6);
}

TEST(DistanceTest, NormalizeZeroVectorIsNoop) {
  Vector v = {0, 0, 0};
  NormalizeVector(&v);
  EXPECT_EQ(v, (Vector{0, 0, 0}));
}

// Property sweep: pruned distance never underestimates and agrees with the
// exact kernel whenever it completes.
class EarlyAbandonSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(EarlyAbandonSweep, NeverUnderestimates) {
  const size_t dim = GetParam();
  Rng rng(dim * 7919);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> a(dim), b(dim);
    for (size_t i = 0; i < dim; ++i) {
      a[i] = static_cast<float>(rng.Gaussian());
      b[i] = static_cast<float>(rng.Gaussian());
    }
    const float exact = L2Sq(a.data(), b.data(), dim);
    const float bound = static_cast<float>(rng.UniformDouble() * 2 * dim);
    const float pruned =
        L2SqEarlyAbandon(a.data(), b.data(), dim, bound, nullptr);
    if (exact <= bound) {
      EXPECT_NEAR(pruned, exact, 1e-3) << "dim=" << dim;
    } else {
      EXPECT_GT(pruned, bound) << "dim=" << dim;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, EarlyAbandonSweep,
                         ::testing::Values(1, 3, 16, 17, 32, 64, 100, 256));

}  // namespace
}  // namespace mqa
