#include "vector/multi_distance.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "vector/distance.h"

namespace mqa {
namespace {

VectorSchema TwoModality() {
  VectorSchema s;
  s.dims = {4, 3};
  return s;
}

TEST(WeightedMultiDistanceTest, CreateValidation) {
  EXPECT_FALSE(
      WeightedMultiDistance::Create(VectorSchema{}, {}).ok());
  EXPECT_FALSE(
      WeightedMultiDistance::Create(TwoModality(), {1.0f}).ok());
  EXPECT_FALSE(
      WeightedMultiDistance::Create(TwoModality(), {1.0f, -0.5f}).ok());
  EXPECT_TRUE(
      WeightedMultiDistance::Create(TwoModality(), {1.0f, 2.0f}).ok());
}

TEST(WeightedMultiDistanceTest, ExactIsWeightedSumOfBlocks) {
  auto dist = WeightedMultiDistance::Create(TwoModality(), {2.0f, 0.5f});
  ASSERT_TRUE(dist.ok());
  // q differs in block 0 by (1,0,0,0) and block 1 by (0,2,0).
  const Vector q = {1, 0, 0, 0, 0, 2, 0};
  const Vector o = {0, 0, 0, 0, 0, 0, 0};
  EXPECT_FLOAT_EQ(dist->Exact(q.data(), o.data()), 2.0f * 1 + 0.5f * 4);
}

TEST(WeightedMultiDistanceTest, ZeroWeightIgnoresModality) {
  auto dist = WeightedMultiDistance::Create(TwoModality(), {1.0f, 0.0f});
  ASSERT_TRUE(dist.ok());
  const Vector q = {0, 0, 0, 0, 100, 100, 100};
  const Vector o = {0, 0, 0, 0, 0, 0, 0};
  EXPECT_FLOAT_EQ(dist->Exact(q.data(), o.data()), 0.0f);
}

TEST(WeightedMultiDistanceTest, PrunedMatchesExactUnderLooseBound) {
  Rng rng(5);
  auto dist = WeightedMultiDistance::Create(TwoModality(), {1.5f, 0.7f});
  ASSERT_TRUE(dist.ok());
  for (int t = 0; t < 100; ++t) {
    Vector q(7), o(7);
    for (auto& x : q) x = static_cast<float>(rng.Gaussian());
    for (auto& x : o) x = static_cast<float>(rng.Gaussian());
    const float exact = dist->Exact(q.data(), o.data());
    DistanceStats stats;
    const float pruned =
        dist->Pruned(q.data(), o.data(), exact + 1.0f, &stats);
    EXPECT_NEAR(pruned, exact, 1e-4);
    EXPECT_EQ(stats.full_computations, 1u);
    EXPECT_EQ(stats.pruned_computations, 0u);
  }
}

TEST(WeightedMultiDistanceTest, PrunedAbandonsAndCounts) {
  VectorSchema schema;
  schema.dims = {32, 32};
  auto dist = WeightedMultiDistance::Create(schema, {1.0f, 1.0f});
  ASSERT_TRUE(dist.ok());
  Vector q(64, 0.0f), o(64, 1.0f);  // true distance = 64
  DistanceStats stats;
  const float d = dist->Pruned(q.data(), o.data(), 5.0f, &stats);
  EXPECT_GT(d, 5.0f);
  EXPECT_EQ(stats.pruned_computations, 1u);
  EXPECT_EQ(stats.full_computations, 0u);
  EXPECT_LT(stats.dims_scanned, 64u);
}

TEST(WeightedMultiDistanceTest, SetWeightsValidatesAndApplies) {
  auto dist = WeightedMultiDistance::Create(TwoModality(), {1.0f, 1.0f});
  ASSERT_TRUE(dist.ok());
  EXPECT_FALSE(dist->SetWeights({1.0f}).ok());
  EXPECT_FALSE(dist->SetWeights({1.0f, -1.0f}).ok());
  ASSERT_TRUE(dist->SetWeights({0.0f, 3.0f}).ok());
  const Vector q = {1, 1, 1, 1, 0, 0, 1};
  const Vector o = {0, 0, 0, 0, 0, 0, 0};
  EXPECT_FLOAT_EQ(dist->Exact(q.data(), o.data()), 3.0f);
}

TEST(FlattenMultiVectorTest, ConcatenatesInSchemaOrder) {
  MultiVector mv;
  mv.parts = {{1, 2, 3, 4}, {5, 6, 7}};
  auto flat = FlattenMultiVector(TwoModality(), mv);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(*flat, (Vector{1, 2, 3, 4, 5, 6, 7}));
}

TEST(FlattenMultiVectorTest, RejectsMismatchedShapes) {
  MultiVector wrong_count;
  wrong_count.parts = {{1, 2, 3, 4}};
  EXPECT_FALSE(FlattenMultiVector(TwoModality(), wrong_count).ok());
  MultiVector wrong_dim;
  wrong_dim.parts = {{1, 2, 3}, {5, 6, 7}};
  EXPECT_FALSE(FlattenMultiVector(TwoModality(), wrong_dim).ok());
}

TEST(ApplyWeightScalingTest, MakesPlainL2EqualWeightedDistance) {
  Rng rng(11);
  const VectorSchema schema = TwoModality();
  const std::vector<float> weights = {2.0f, 0.25f};
  auto dist = WeightedMultiDistance::Create(schema, weights);
  ASSERT_TRUE(dist.ok());
  for (int t = 0; t < 20; ++t) {
    Vector a(7), b(7);
    for (auto& x : a) x = static_cast<float>(rng.Gaussian());
    for (auto& x : b) x = static_cast<float>(rng.Gaussian());
    const float weighted = dist->Exact(a.data(), b.data());
    Vector sa = a, sb = b;
    ASSERT_TRUE(ApplyWeightScaling(schema, weights, sa.data()).ok());
    ASSERT_TRUE(ApplyWeightScaling(schema, weights, sb.data()).ok());
    EXPECT_NEAR(L2Sq(sa.data(), sb.data(), 7), weighted, 1e-4);
  }
}

TEST(ApplyWeightScalingTest, RejectsBadWeights) {
  Vector v(7, 1.0f);
  EXPECT_FALSE(ApplyWeightScaling(TwoModality(), {1.0f}, v.data()).ok());
  EXPECT_FALSE(
      ApplyWeightScaling(TwoModality(), {1.0f, -2.0f}, v.data()).ok());
}

TEST(DistanceStatsTest, ResetClears) {
  DistanceStats stats;
  stats.full_computations = 5;
  stats.pruned_computations = 3;
  stats.dims_scanned = 100;
  EXPECT_EQ(stats.TotalComputations(), 8u);
  stats.Reset();
  EXPECT_EQ(stats.TotalComputations(), 0u);
  EXPECT_EQ(stats.dims_scanned, 0u);
}

// Property: for any weights and vectors, Pruned with an infinite bound
// equals Exact; with any bound it never returns less than min(exact,bound).
class MultiDistanceSweep
    : public ::testing::TestWithParam<std::tuple<int, float>> {};

TEST_P(MultiDistanceSweep, PrunedIsSound) {
  const int num_m = std::get<0>(GetParam());
  const float w0 = std::get<1>(GetParam());
  VectorSchema schema;
  std::vector<float> weights;
  for (int m = 0; m < num_m; ++m) {
    schema.dims.push_back(8);
    weights.push_back(m == 0 ? w0 : 1.0f);
  }
  auto dist = WeightedMultiDistance::Create(schema, weights);
  ASSERT_TRUE(dist.ok());
  Rng rng(num_m * 31 + static_cast<int>(w0 * 10));
  const size_t dim = schema.TotalDim();
  for (int t = 0; t < 30; ++t) {
    Vector a(dim), b(dim);
    for (auto& x : a) x = static_cast<float>(rng.Gaussian());
    for (auto& x : b) x = static_cast<float>(rng.Gaussian());
    const float exact = dist->Exact(a.data(), b.data());
    const float bound = static_cast<float>(rng.UniformDouble() * dim);
    const float pruned = dist->Pruned(a.data(), b.data(), bound, nullptr);
    if (exact <= bound) {
      EXPECT_NEAR(pruned, exact, 1e-3);
    } else {
      EXPECT_GT(pruned, bound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiDistanceSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(0.0f, 0.5f, 1.0f, 3.0f)));

}  // namespace
}  // namespace mqa
