#include "vector/sketch.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"
#include "vector/multi_distance.h"
#include "vector/vector_store.h"

namespace mqa {
namespace {

VectorSchema TwoModality() {
  VectorSchema schema;
  schema.dims = {4, 6};
  return schema;
}

Vector RandomRow(size_t dim, Rng* rng) {
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian());
  return v;
}

TEST(BitSketchTest, SampledIndexCoversSmallAndLargeDims) {
  // dim <= 64: identity — every component gets its own bit.
  EXPECT_EQ(BitSketchIndex::SampledIndex(0, 10), 0u);
  EXPECT_EQ(BitSketchIndex::SampledIndex(9, 10), 9u);
  EXPECT_EQ(BitSketchIndex::BitsFor(10), 10u);
  // dim > 64: strided sampling, strictly increasing, in range.
  size_t prev = 0;
  for (size_t j = 0; j < 64; ++j) {
    const size_t idx = BitSketchIndex::SampledIndex(j, 130);
    EXPECT_LT(idx, 130u);
    if (j > 0) {
      EXPECT_GT(idx, prev);
    }
    prev = idx;
  }
  EXPECT_EQ(BitSketchIndex::BitsFor(130), 64u);
}

TEST(BitSketchTest, SketchModalitySetsSignBits) {
  const float x[] = {1.0f, -2.0f, 0.0f, 3.0f};
  const uint64_t w = BitSketchIndex::SketchModality(x, 4);
  EXPECT_EQ(w & 1u, 1u);         // positive
  EXPECT_EQ((w >> 1) & 1u, 0u);  // negative
  EXPECT_EQ((w >> 2) & 1u, 0u);  // zero is not > 0
  EXPECT_EQ((w >> 3) & 1u, 1u);
}

TEST(BitSketchTest, AppendAndRebuildAgree) {
  const VectorSchema schema = TwoModality();
  VectorStore store(schema);
  Rng rng(21);
  BitSketchIndex appended(schema);
  for (int i = 0; i < 17; ++i) {
    const Vector v = RandomRow(schema.TotalDim(), &rng);
    ASSERT_TRUE(store.Add(v).ok());
    appended.Append(store.data(static_cast<uint32_t>(i)));
  }
  ASSERT_EQ(appended.size(), 17u);
  EXPECT_EQ(appended.words_per_object(), 2u);

  BitSketchIndex rebuilt(schema);
  rebuilt.Rebuild(store);
  ASSERT_EQ(rebuilt.size(), 17u);
  for (uint32_t id = 0; id < 17; ++id) {
    for (size_t m = 0; m < 2; ++m) {
      EXPECT_EQ(appended.words(id)[m], rebuilt.words(id)[m])
          << "id=" << id << " modality=" << m;
    }
  }
}

TEST(QuerySketchTest, LowerBoundNeverExceedsExactDistance) {
  const VectorSchema schema = TwoModality();
  const std::vector<float> weights = {1.5f, 0.5f};
  auto wd = WeightedMultiDistance::Create(schema, weights);
  VectorStore store(schema);
  Rng rng(22);
  const uint32_t n = 200;
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store.Add(RandomRow(schema.TotalDim(), &rng)).ok());
  }
  BitSketchIndex sketches(schema);
  sketches.Rebuild(store);

  for (int trial = 0; trial < 10; ++trial) {
    const Vector q = RandomRow(schema.TotalDim(), &rng);
    QuerySketch qs;
    qs.Prepare(sketches, q.data(), weights);
    for (uint32_t i = 0; i < n; ++i) {
      const float lb = qs.LowerBound(sketches.words(i));
      const float exact = wd->Exact(q.data(), store.data(i));
      EXPECT_LE(lb, exact * (1.0f + 1e-5f) + 1e-6f) << "id=" << i;
    }
  }
}

TEST(QuerySketchTest, IdenticalVectorsHaveZeroLowerBound) {
  const VectorSchema schema = TwoModality();
  VectorStore store(schema);
  Rng rng(23);
  const Vector v = RandomRow(schema.TotalDim(), &rng);
  ASSERT_TRUE(store.Add(v).ok());
  BitSketchIndex sketches(schema);
  sketches.Rebuild(store);
  QuerySketch qs;
  qs.Prepare(sketches, v.data(), {1.0f, 1.0f});
  EXPECT_EQ(qs.LowerBound(sketches.words(0)), 0.0f);
}

TEST(MultiVectorComputerSketchTest, PrefilterInactiveWithoutBeginQuery) {
  const VectorSchema schema = TwoModality();
  const std::vector<float> weights = {1.0f, 1.0f};
  auto wd = WeightedMultiDistance::Create(schema, weights);
  VectorStore store(schema);
  Rng rng(24);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(store.Add(RandomRow(schema.TotalDim(), &rng)).ok());
  }
  BitSketchIndex sketches(schema);
  sketches.Rebuild(store);
  MultiVectorDistanceComputer dist(&store, *wd, /*enable_pruning=*/true);
  dist.SetSketches(&sketches);

  const Vector q = RandomRow(schema.TotalDim(), &rng);
  // No BeginQuery: the per-thread sketch cache does not match this
  // (computer, query) pair, so every distance is computed for real.
  for (uint32_t i = 0; i < 32; ++i) {
    (void)dist.DistanceWithBound(q.data(), i, 0.0f);
  }
  EXPECT_EQ(dist.stats().sketch_rejects.load(), 0u);
}

TEST(MultiVectorComputerSketchTest, TightBoundProducesSketchRejects) {
  const VectorSchema schema = TwoModality();
  const std::vector<float> weights = {1.0f, 1.0f};
  auto wd = WeightedMultiDistance::Create(schema, weights);
  VectorStore store(schema);
  Rng rng(25);
  const uint32_t n = 512;
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store.Add(RandomRow(schema.TotalDim(), &rng)).ok());
  }
  BitSketchIndex sketches(schema);
  sketches.Rebuild(store);
  MultiVectorDistanceComputer dist(&store, *wd, /*enable_pruning=*/true);
  dist.SetSketches(&sketches);

  const Vector q = RandomRow(schema.TotalDim(), &rng);
  dist.BeginQuery(q.data());
  // A bound of zero is below every lower bound with at least one sign
  // mismatch, so the sketch should reject a healthy fraction outright.
  for (uint32_t i = 0; i < n; ++i) {
    const float d = dist.DistanceWithBound(q.data(), i, 0.0f);
    EXPECT_GT(d, 0.0f);
  }
  EXPECT_GT(dist.stats().sketch_rejects.load(), 0u);
  EXPECT_LE(dist.stats().sketch_rejects.load(), n);
}

TEST(MultiVectorComputerSketchTest, ScaleOneIsDecisionIdentical) {
  const VectorSchema schema = TwoModality();
  const std::vector<float> weights = {2.0f, 1.0f};
  auto wd = WeightedMultiDistance::Create(schema, weights);
  VectorStore store(schema);
  Rng rng(26);
  const uint32_t n = 300;
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store.Add(RandomRow(schema.TotalDim(), &rng)).ok());
  }
  BitSketchIndex sketches(schema);
  sketches.Rebuild(store);

  MultiVectorDistanceComputer plain(&store, *wd, /*enable_pruning=*/true);
  MultiVectorDistanceComputer filtered(&store, *wd, /*enable_pruning=*/true);
  filtered.SetSketches(&sketches, /*scale=*/1.0f);

  const Vector q = RandomRow(schema.TotalDim(), &rng);
  plain.BeginQuery(q.data());
  filtered.BeginQuery(q.data());
  float best_p = std::numeric_limits<float>::max();
  float best_f = std::numeric_limits<float>::max();
  for (uint32_t i = 0; i < n; ++i) {
    const float dp = plain.DistanceWithBound(q.data(), i, best_p);
    const float df = filtered.DistanceWithBound(q.data(), i, best_f);
    if (dp < best_p) best_p = dp;
    if (df < best_f) best_f = df;
    // Accepted candidates (distance within bound) must agree bitwise; a
    // sketch reject only happens when both paths would reject.
    EXPECT_EQ(dp <= best_p, df <= best_f) << "id=" << i;
  }
  EXPECT_EQ(best_p, best_f);
}

TEST(MultiVectorComputerSketchTest, ObjectsPastSketchEndAreNotFiltered) {
  const VectorSchema schema = TwoModality();
  const std::vector<float> weights = {1.0f, 1.0f};
  auto wd = WeightedMultiDistance::Create(schema, weights);
  VectorStore store(schema);
  Rng rng(27);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.Add(RandomRow(schema.TotalDim(), &rng)).ok());
  }
  BitSketchIndex sketches(schema);
  sketches.Rebuild(store);
  // Two more rows appended after the sketch build (e.g. live ingest
  // before the catch-up loop runs).
  ASSERT_TRUE(store.Add(RandomRow(schema.TotalDim(), &rng)).ok());
  ASSERT_TRUE(store.Add(RandomRow(schema.TotalDim(), &rng)).ok());

  MultiVectorDistanceComputer dist(&store, *wd, /*enable_pruning=*/true);
  dist.SetSketches(&sketches);
  const Vector q = RandomRow(schema.TotalDim(), &rng);
  dist.BeginQuery(q.data());
  const uint64_t before = dist.stats().sketch_rejects.load();
  // ids 8 and 9 are beyond the sketch index: must compute, never reject.
  // An infinite bound keeps the incremental scan from abandoning, so the
  // returned distances are exact.
  const float inf = std::numeric_limits<float>::max();
  const float d8 = dist.DistanceWithBound(q.data(), 8, inf);
  const float d9 = dist.DistanceWithBound(q.data(), 9, inf);
  EXPECT_EQ(dist.stats().sketch_rejects.load(), before);
  EXPECT_FLOAT_EQ(d8, wd->Exact(q.data(), store.data(8)));
  EXPECT_FLOAT_EQ(d9, wd->Exact(q.data(), store.data(9)));
}

}  // namespace
}  // namespace mqa
