// Fuzz gate for the runtime-dispatched SIMD kernels: every compiled tier
// must agree with the scalar reference within a ulp-scaled tolerance on
// adversarial inputs (remainder tails 1..15, denormals, mixed magnitudes),
// and the bit-sketch prefilter must never reject an object the incremental
// scanning bound would keep. Seeded via MQA_CHAOS_SEED so the nightly soak
// rotates inputs; MQA_CHAOS_ITERS multiplies the round count.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/random.h"
#include "vector/multi_distance.h"
#include "vector/simd/simd.h"
#include "vector/sketch.h"
#include "vector/vector_store.h"

namespace mqa {
namespace {

class KernelParityTest : public ::testing::Test {
 protected:
  static uint64_t ChaosSeed() {
    const char* s = std::getenv("MQA_CHAOS_SEED");
    return s != nullptr ? std::strtoull(s, nullptr, 10) : 42;
  }
  static int ChaosIters(int base) {
    const char* s = std::getenv("MQA_CHAOS_ITERS");
    const int mult = s != nullptr ? std::atoi(s) : 1;
    return base * std::max(1, mult);
  }

  /// Random vector mixing regular values, denormals, exact zeros, and
  /// large magnitudes — the inputs where lane-order FP summation differs
  /// most from the scalar loop.
  static std::vector<float> AdversarialVector(size_t dim, Rng* rng) {
    std::vector<float> v(dim);
    for (auto& x : v) {
      switch (rng->UniformInt(0, 8 - 1)) {
        case 0:
          x = 0.0f;
          break;
        case 1:  // denormal range
          x = static_cast<float>(rng->Gaussian()) * 1e-40f;
          break;
        case 2:  // large magnitude
          x = static_cast<float>(rng->Gaussian()) * 1e4f;
          break;
        default:
          x = static_cast<float>(rng->Gaussian());
      }
    }
    return v;
  }

  /// Double-precision reference; used to scale the tolerance so it tracks
  /// the magnitude of the accumulated terms (a ulp-style bound) instead of
  /// a fixed epsilon that would be meaningless across 1e-40..1e4 inputs.
  static double RefL2Sq(const float* a, const float* b, size_t dim,
                        double* mag) {
    double sum = 0, m = 0;
    for (size_t i = 0; i < dim; ++i) {
      const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
      sum += d * d;
      m += std::abs(d * d);
    }
    *mag = m;
    return sum;
  }
  static double RefDot(const float* a, const float* b, size_t dim,
                       double* mag) {
    double sum = 0, m = 0;
    for (size_t i = 0; i < dim; ++i) {
      const double p = static_cast<double>(a[i]) * static_cast<double>(b[i]);
      sum += p;
      m += std::abs(p);
    }
    *mag = m;
    return sum;
  }

  /// Tolerance scaled by the accumulated magnitude: float has ~2^-23
  /// relative precision per operation; dim accumulations with different
  /// association orders can diverge by O(dim * eps * magnitude).
  static double Tolerance(size_t dim, double mag) {
    const double eps = 1.1920929e-7;  // 2^-23
    return (static_cast<double>(dim) + 8.0) * eps * mag + 1e-30;
  }
};

TEST_F(KernelParityTest, AllTiersMatchScalarOnFuzzedInputs) {
  Rng rng(ChaosSeed());
  const int rounds = ChaosIters(200);
  const DistanceKernels& scalar = KernelsFor(SimdLevel::kScalar);
  int checked_levels = 0;
  for (int r = 0; r < rounds; ++r) {
    // Dims chosen to exercise every remainder-tail path: 1..15 plus the
    // wide main-loop strides.
    size_t dim;
    if (r % 3 == 0) {
      dim = 1 + static_cast<size_t>(rng.UniformInt(0, 15 - 1));
    } else {
      dim = 16 + static_cast<size_t>(rng.UniformInt(0, 512 - 1));
    }
    const auto a = AdversarialVector(dim, &rng);
    const auto b = AdversarialVector(dim, &rng);
    double mag_l2 = 0, mag_dot = 0;
    const double ref_l2 = RefL2Sq(a.data(), b.data(), dim, &mag_l2);
    const double ref_dot = RefDot(a.data(), b.data(), dim, &mag_dot);

    const float s_l2 = scalar.l2sq(a.data(), b.data(), dim);
    const float s_dot = scalar.dot(a.data(), b.data(), dim);
    EXPECT_NEAR(s_l2, ref_l2, Tolerance(dim, mag_l2)) << "dim=" << dim;
    EXPECT_NEAR(s_dot, ref_dot, Tolerance(dim, mag_dot)) << "dim=" << dim;

    for (SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
      if (!CpuSupports(level)) continue;
      const DistanceKernels& k = KernelsFor(level);
      if (&k == &scalar) continue;  // tier compiled out
      if (r == 0) ++checked_levels;
      const float v_l2 = k.l2sq(a.data(), b.data(), dim);
      const float v_dot = k.dot(a.data(), b.data(), dim);
      EXPECT_NEAR(v_l2, ref_l2, Tolerance(dim, mag_l2))
          << "level=" << SimdLevelName(level) << " dim=" << dim;
      EXPECT_NEAR(v_dot, ref_dot, Tolerance(dim, mag_dot))
          << "level=" << SimdLevelName(level) << " dim=" << dim;
      // SIMD vs scalar directly: both are float sums of the same terms,
      // so they must sit inside the same magnitude-scaled band.
      EXPECT_NEAR(v_l2, s_l2, Tolerance(dim, mag_l2))
          << "level=" << SimdLevelName(level) << " dim=" << dim;
    }
  }
  if (checked_levels == 0) {
    std::fprintf(stderr,
                 "kernel_parity: no SIMD tier supported on this host; "
                 "scalar-vs-double reference only\n");
  }
}

TEST_F(KernelParityTest, WeightedMultiDistanceMatchesAcrossTiers) {
  Rng rng(ChaosSeed() + 1);
  const int rounds = ChaosIters(50);
  const SimdLevel saved = ActiveSimdLevel();
  for (int r = 0; r < rounds; ++r) {
    VectorSchema schema;
    std::vector<float> weights;
    const size_t num_m = 1 + static_cast<size_t>(rng.UniformInt(0, 4 - 1));
    for (size_t m = 0; m < num_m; ++m) {
      schema.dims.push_back(1 + static_cast<size_t>(rng.UniformInt(0, 96 - 1)));
      weights.push_back(static_cast<float>(rng.UniformDouble(0.1, 4.0)));
    }
    auto dist = WeightedMultiDistance::Create(schema, weights);
    const auto a = AdversarialVector(schema.TotalDim(), &rng);
    const auto b = AdversarialVector(schema.TotalDim(), &rng);

    // Double-precision weighted reference for the tolerance scale.
    double ref = 0, mag = 0;
    size_t off = 0;
    for (size_t m = 0; m < num_m; ++m) {
      double part = 0;
      for (size_t i = 0; i < schema.dims[m]; ++i) {
        const double d = static_cast<double>(a[off + i]) -
                         static_cast<double>(b[off + i]);
        part += d * d;
      }
      ref += weights[m] * part;
      mag += weights[m] * part;
      off += schema.dims[m];
    }

    std::vector<float> got;
    for (SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
      if (!CpuSupports(level)) continue;
      ASSERT_TRUE(SetSimdLevel(level).ok());
      got.push_back(dist->Exact(a.data(), b.data()));
    }
    ASSERT_TRUE(SetSimdLevel(saved).ok());
    const double tol = Tolerance(schema.TotalDim(), mag);
    for (float v : got) {
      EXPECT_NEAR(v, ref, tol) << "round=" << r;
    }
  }
}

TEST_F(KernelParityTest, BatchIsBitwiseIdenticalToPerRow) {
  Rng rng(ChaosSeed() + 2);
  const int rounds = ChaosIters(10);
  for (int r = 0; r < rounds; ++r) {
    VectorSchema schema;
    schema.dims = {1 + static_cast<uint32_t>(rng.UniformInt(0, 39)),
                   1 + static_cast<uint32_t>(rng.UniformInt(0, 39))};
    auto wd = WeightedMultiDistance::Create(
        schema, {static_cast<float>(rng.UniformDouble(0.1, 2.0)),
                 static_cast<float>(rng.UniformDouble(0.1, 2.0))});
    VectorStore store(schema);
    const uint32_t n = 64;
    for (uint32_t i = 0; i < n; ++i) {
      (void)store.Add(AdversarialVector(schema.TotalDim(), &rng));
    }
    const auto q = AdversarialVector(schema.TotalDim(), &rng);

    std::vector<float> batch(n);
    wd->ExactBatch(q.data(), store.data(0), store.row_stride(), n,
                   batch.data());
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(batch[i], wd->Exact(q.data(), store.data(i)))
          << "row " << i << " must be bitwise identical";
    }

    MultiVectorDistanceComputer dist(&store, *wd, /*enable_pruning=*/false);
    std::vector<uint32_t> ids(n);
    for (uint32_t i = 0; i < n; ++i) ids[i] = i;
    std::vector<float> out(n);
    dist.DistanceBatch(q.data(), ids.data(), n, out.data());
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], dist.Distance(q.data(), i));
    }
  }
}

// The prefilter's contract: its lower bound never exceeds the exact
// distance, so `lb > bound` (reject) implies `D > bound` — the pruning
// bound would have rejected too. Checked on fuzzed stores and queries.
TEST_F(KernelParityTest, PrefilterNeverRejectsWhatPruningKeeps) {
  Rng rng(ChaosSeed() + 3);
  const int rounds = ChaosIters(20);
  for (int r = 0; r < rounds; ++r) {
    VectorSchema schema;
    std::vector<float> weights;
    const size_t num_m = 1 + static_cast<size_t>(rng.UniformInt(0, 3 - 1));
    for (size_t m = 0; m < num_m; ++m) {
      schema.dims.push_back(2 + static_cast<size_t>(rng.UniformInt(0, 120 - 1)));
      weights.push_back(static_cast<float>(rng.UniformDouble(0.1, 3.0)));
    }
    auto wd = WeightedMultiDistance::Create(schema, weights);
    VectorStore store(schema);
    const uint32_t n = 128;
    for (uint32_t i = 0; i < n; ++i) {
      (void)store.Add(AdversarialVector(schema.TotalDim(), &rng));
    }
    BitSketchIndex sketches(schema);
    sketches.Rebuild(store);

    const auto q = AdversarialVector(schema.TotalDim(), &rng);
    QuerySketch qs;
    qs.Prepare(sketches, q.data(), weights);
    for (uint32_t i = 0; i < n; ++i) {
      const float lb = qs.LowerBound(sketches.words(i));
      const float exact = wd->Exact(q.data(), store.data(i));
      EXPECT_LE(lb, exact * (1.0f + 1e-5f) + 1e-6f)
          << "round=" << r << " id=" << i
          << ": sketch bound exceeds the exact distance";
    }
  }
}

// End-to-end decision identity at the default scale: a bounded scan with
// the prefilter attached returns exactly the same accepted distances and
// the same running best as the plain pruned path.
TEST_F(KernelParityTest, PrefilteredScanMatchesPlainScan) {
  Rng rng(ChaosSeed() + 4);
  const int rounds = ChaosIters(5);
  for (int r = 0; r < rounds; ++r) {
    VectorSchema schema;
    schema.dims = {24, 40};
    auto wd = WeightedMultiDistance::Create(schema, {1.0f, 0.5f});
    VectorStore store(schema);
    const uint32_t n = 256;
    for (uint32_t i = 0; i < n; ++i) {
      (void)store.Add(AdversarialVector(schema.TotalDim(), &rng));
    }
    BitSketchIndex sketches(schema);
    sketches.Rebuild(store);
    const auto q = AdversarialVector(schema.TotalDim(), &rng);

    MultiVectorDistanceComputer plain(&store, *wd, /*enable_pruning=*/true);
    MultiVectorDistanceComputer filtered(&store, *wd,
                                         /*enable_pruning=*/true);
    filtered.SetSketches(&sketches);
    plain.BeginQuery(q.data());
    filtered.BeginQuery(q.data());

    float best_plain = std::numeric_limits<float>::max();
    float best_filtered = std::numeric_limits<float>::max();
    uint32_t arg_plain = 0, arg_filtered = 0;
    for (uint32_t i = 0; i < n; ++i) {
      const float dp = plain.DistanceWithBound(q.data(), i, best_plain);
      if (dp < best_plain) {
        best_plain = dp;
        arg_plain = i;
      }
      const float df =
          filtered.DistanceWithBound(q.data(), i, best_filtered);
      if (df < best_filtered) {
        best_filtered = df;
        arg_filtered = i;
      }
    }
    EXPECT_EQ(best_plain, best_filtered) << "round=" << r;
    EXPECT_EQ(arg_plain, arg_filtered) << "round=" << r;
  }
}

}  // namespace
}  // namespace mqa
