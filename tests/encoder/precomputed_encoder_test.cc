// The universal vector support function: plugging precomputed embeddings
// (from any external model) straight into the representation pipeline.

#include <gtest/gtest.h>

#include "core/represent.h"
#include "encoder/encoder.h"
#include "retrieval/factory.h"
#include "vector/distance.h"

namespace mqa {
namespace {

Payload FeaturePayload(std::vector<float> v) {
  Payload p;
  p.type = ModalityType::kImage;
  p.features = std::move(v);
  return p;
}

TEST(PrecomputedEncoderTest, PassesThroughAndNormalizes) {
  PrecomputedEncoder enc(2);
  auto v = enc.Encode(FeaturePayload({3.0f, 4.0f}));
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR((*v)[0], 0.6f, 1e-6);
  EXPECT_NEAR((*v)[1], 0.8f, 1e-6);

  PrecomputedEncoder raw(2, /*normalize=*/false, "raw");
  auto u = raw.Encode(FeaturePayload({3.0f, 4.0f}));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(*u, (Vector{3.0f, 4.0f}));
  EXPECT_EQ(raw.name(), "raw");
}

TEST(PrecomputedEncoderTest, RejectsWrongDimension) {
  PrecomputedEncoder enc(4);
  EXPECT_FALSE(enc.Encode(FeaturePayload({1.0f})).ok());
  Payload text;
  text.type = ModalityType::kText;
  text.text = "no features";
  EXPECT_FALSE(enc.Encode(text).ok());
}

TEST(PrecomputedEncoderTest, DrivesTheFullRetrievalPipeline) {
  // A knowledge base whose payload features ARE the external embeddings:
  // two clusters in two "modalities".
  ModalitySchema schema;
  schema.types = {ModalityType::kImage, ModalityType::kAudio};
  KnowledgeBase kb(schema);
  Rng rng(1);
  for (int i = 0; i < 120; ++i) {
    const uint32_t label = i % 2;
    const float base = label == 0 ? 0.0f : 4.0f;
    Object obj;
    obj.concept_id = label;
    obj.latent = {base, base};
    Payload a = FeaturePayload({base + static_cast<float>(rng.Gaussian(0, 0.2)),
                                static_cast<float>(rng.Gaussian(0, 0.2))});
    Payload b = a;
    b.type = ModalityType::kAudio;
    obj.modalities = {a, b};
    ASSERT_TRUE(kb.Ingest(std::move(obj)).ok());
  }

  std::vector<std::unique_ptr<ModalityEncoder>> encoders;
  encoders.push_back(std::make_unique<PrecomputedEncoder>(2));
  encoders.push_back(std::make_unique<PrecomputedEncoder>(2));
  EncoderSet set(std::move(encoders));

  auto rep = RepresentCorpus(kb, set, /*learn_weights=*/true,
                             WeightLearnerConfig{}, 200);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->store->size(), 120u);

  IndexConfig index;
  index.algorithm = "bruteforce";
  auto fw = CreateRetrievalFramework("must", rep->store, rep->weights, index);
  ASSERT_TRUE(fw.ok());

  // Query with an external embedding near cluster 1.
  RetrievalQuery query;
  query.modalities.parts.resize(2);
  auto q = set.EncodeModality(0, FeaturePayload({4.0f, 0.1f}));
  ASSERT_TRUE(q.ok());
  query.modalities.parts[0] = *q;
  SearchParams params;
  params.k = 10;
  auto r = (*fw)->Retrieve(query, params);
  ASSERT_TRUE(r.ok());
  size_t cluster1 = 0;
  for (const Neighbor& n : r->neighbors) {
    if (kb.at(n.id).concept_id == 1u) ++cluster1;
  }
  EXPECT_GE(cluster1, 8u);
}

}  // namespace
}  // namespace mqa
