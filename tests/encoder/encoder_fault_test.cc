#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/fault.h"
#include "encoder/sim_encoders.h"

namespace mqa {
namespace {

class EncoderFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    WorldConfig c;
    c.num_concepts = 12;
    c.latent_dim = 16;
    c.raw_image_dim = 32;
    c.seed = 5;
    auto world = World::Create(c);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<World>(std::move(world).Value());
    auto set = MakeSimEncoderSet(world_.get(), "sim-clip", 16);
    ASSERT_TRUE(set.ok());
    encoders_ = std::make_unique<EncoderSet>(std::move(set).Value());
  }

  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  Payload TextPayload(const std::string& text) {
    Payload p;
    p.type = ModalityType::kText;
    p.text = text;
    return p;
  }

  std::unique_ptr<World> world_;
  std::unique_ptr<EncoderSet> encoders_;
};

TEST_F(EncoderFaultTest, TextEncoderOutageInjectsWithoutAffectingImage) {
  FaultSpec spec;
  spec.message = "text encoder down";
  FaultInjector::Global().Arm("encoder/sim-text", spec);

  // The text slot (slot 1 in the sim world: image=0, text=1) fails...
  auto text = encoders_->EncodeModality(1, TextPayload("a red apple"));
  EXPECT_EQ(text.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(text.status().message().find("encoder/sim-text"),
            std::string::npos);

  // ...while the image encoder keeps working.
  Rng rng(1);
  const Object obj = world_->MakeObject(0, &rng);
  auto image = encoders_->EncodeModality(0, obj.modalities[0]);
  EXPECT_TRUE(image.ok());
}

TEST_F(EncoderFaultTest, TransientFaultRecoversAfterMaxFires) {
  FaultSpec spec;
  spec.max_fires = 2;
  FaultInjector::Global().Arm("encoder/sim-text", spec);
  EXPECT_FALSE(encoders_->EncodeModality(1, TextPayload("x")).ok());
  EXPECT_FALSE(encoders_->EncodeModality(1, TextPayload("x")).ok());
  EXPECT_TRUE(encoders_->EncodeModality(1, TextPayload("x")).ok());
}

TEST_F(EncoderFaultTest, DisarmedEncodingIsBitIdentical) {
  auto before = encoders_->EncodeModality(1, TextPayload("moldy cheese"));
  ASSERT_TRUE(before.ok());
  // Arm and fire a fault, then disarm: subsequent encodings are identical.
  FaultInjector::Global().Arm("encoder/sim-text", FaultSpec{});
  auto ignored = encoders_->EncodeModality(1, TextPayload("moldy cheese"));
  (void)ignored;
  FaultInjector::Global().DisarmAll();
  auto after = encoders_->EncodeModality(1, TextPayload("moldy cheese"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

}  // namespace
}  // namespace mqa
