#include "encoder/sim_encoders.h"

#include <gtest/gtest.h>

#include "vector/distance.h"

namespace mqa {
namespace {

class SimEncodersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorldConfig c;
    c.num_concepts = 12;
    c.latent_dim = 16;
    c.raw_image_dim = 32;
    c.seed = 5;
    auto world = World::Create(c);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<World>(std::move(world).Value());
  }

  std::unique_ptr<World> world_;
};

TEST_F(SimEncodersTest, PresetListMatchesFactory) {
  for (const std::string& preset : SimEncoderPresets()) {
    EXPECT_TRUE(MakeSimEncoderSet(world_.get(), preset).ok()) << preset;
  }
  EXPECT_FALSE(MakeSimEncoderSet(world_.get(), "gpt-42").ok());
}

TEST_F(SimEncodersTest, EncoderSetSchemaMatchesWorld) {
  auto set = MakeSimEncoderSet(world_.get(), "sim-clip", 24);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->num_modalities(), 2u);
  const VectorSchema schema = set->Schema();
  EXPECT_EQ(schema.dims, (std::vector<uint32_t>{24, 24}));
}

TEST_F(SimEncodersTest, EncodeObjectProducesUnitVectors) {
  auto set = MakeSimEncoderSet(world_.get(), "sim-clip");
  ASSERT_TRUE(set.ok());
  Rng rng(1);
  const Object obj = world_->MakeObject(0, &rng);
  auto mv = set->EncodeObject(obj);
  ASSERT_TRUE(mv.ok());
  ASSERT_EQ(mv->num_modalities(), 2u);
  for (const Vector& part : mv->parts) {
    EXPECT_GT(Norm(part.data(), part.size()), 0.8f);
    EXPECT_LE(Norm(part.data(), part.size()), 1.0001f);
  }
}

TEST_F(SimEncodersTest, EncodingIsDeterministicPerInput) {
  auto set = MakeSimEncoderSet(world_.get(), "sim-clip");
  ASSERT_TRUE(set.ok());
  Payload p;
  p.type = ModalityType::kText;
  p.text = "a photo of moldy cheese";
  auto a = set->EncodeModality(1, p);
  auto b = set->EncodeModality(1, p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(SimEncodersTest, TextEncoderRejectsNonText) {
  auto set = MakeSimEncoderSet(world_.get(), "sim-clip");
  ASSERT_TRUE(set.ok());
  Payload img;
  img.type = ModalityType::kImage;
  img.features = {1.0f};
  EXPECT_FALSE(set->EncodeModality(1, img).ok());
}

TEST_F(SimEncodersTest, FeatureEncoderRejectsEmptyFeatures) {
  auto set = MakeSimEncoderSet(world_.get(), "sim-clip");
  ASSERT_TRUE(set.ok());
  Payload empty;
  empty.type = ModalityType::kImage;
  EXPECT_FALSE(set->EncodeModality(0, empty).ok());
  EXPECT_FALSE(set->EncodeModality(5, empty).ok());  // out of range
}

TEST_F(SimEncodersTest, SameConceptEmbeddingsCloserThanDifferent) {
  auto set = MakeSimEncoderSet(world_.get(), "sim-clip");
  ASSERT_TRUE(set.ok());
  Rng rng(2);
  const Object a1 = world_->MakeObject(0, &rng);
  const Object a2 = world_->MakeObject(0, &rng);
  // Pick a concept with a different noun for clear separation.
  const Object b = world_->MakeObject(8, &rng);
  for (size_t slot : {size_t{0}, size_t{1}}) {
    auto ea1 = set->EncodeModality(slot, a1.modalities[slot]);
    auto ea2 = set->EncodeModality(slot, a2.modalities[slot]);
    auto eb = set->EncodeModality(slot, b.modalities[slot]);
    ASSERT_TRUE(ea1.ok() && ea2.ok() && eb.ok());
    const float same = L2Sq(ea1->data(), ea2->data(), ea1->size());
    const float diff = L2Sq(ea1->data(), eb->data(), ea1->size());
    EXPECT_LT(same, diff) << "slot " << slot;
  }
}

TEST_F(SimEncodersTest, AlignedPresetPutsModalitiesInSharedSpace) {
  // For sim-clip, an object's image and text embeddings should be close
  // (CLIP-style alignment): both approximately encode the object latent.
  auto set = MakeSimEncoderSet(world_.get(), "sim-clip");
  ASSERT_TRUE(set.ok());
  Rng rng(3);
  const Object obj = world_->MakeObject(0, &rng);
  const Object other = world_->MakeObject(9, &rng);
  auto img = set->EncodeModality(0, obj.modalities[0]);
  auto txt = set->EncodeModality(1, obj.modalities[1]);
  auto other_txt = set->EncodeModality(1, other.modalities[1]);
  ASSERT_TRUE(img.ok() && txt.ok() && other_txt.ok());
  const float aligned = L2Sq(img->data(), txt->data(), img->size());
  const float cross = L2Sq(img->data(), other_txt->data(), img->size());
  EXPECT_LT(aligned, cross);
}

TEST_F(SimEncodersTest, PerfectPresetIsLessNoisyThanDefault) {
  auto noisy = MakeSimEncoderSet(world_.get(), "sim-resnet-lstm");
  auto clean = MakeSimEncoderSet(world_.get(), "sim-perfect");
  ASSERT_TRUE(noisy.ok() && clean.ok());
  // Two objects of the same concept should embed closer under the perfect
  // encoder on average.
  Rng rng(4);
  double noisy_sum = 0, clean_sum = 0;
  for (int t = 0; t < 20; ++t) {
    const Object a = world_->MakeObject(1, &rng);
    const Object b = world_->MakeObject(1, &rng);
    auto na = noisy->EncodeModality(0, a.modalities[0]);
    auto nb = noisy->EncodeModality(0, b.modalities[0]);
    auto ca = clean->EncodeModality(0, a.modalities[0]);
    auto cb = clean->EncodeModality(0, b.modalities[0]);
    ASSERT_TRUE(na.ok() && nb.ok() && ca.ok() && cb.ok());
    noisy_sum += L2Sq(na->data(), nb->data(), na->size());
    clean_sum += L2Sq(ca->data(), cb->data(), ca->size());
  }
  EXPECT_LT(clean_sum, noisy_sum);
}

TEST_F(SimEncodersTest, EncodeObjectChecksModalityCount) {
  auto set = MakeSimEncoderSet(world_.get(), "sim-clip");
  ASSERT_TRUE(set.ok());
  Object obj;
  obj.modalities.resize(1);
  EXPECT_FALSE(set->EncodeObject(obj).ok());
}

TEST(FuseJointTest, AveragesAndNormalizes) {
  MultiVector mv;
  mv.parts = {{1, 0}, {0, 1}};
  const Vector fused = FuseJoint(mv);
  ASSERT_EQ(fused.size(), 2u);
  EXPECT_NEAR(fused[0], fused[1], 1e-6);
  EXPECT_NEAR(Norm(fused.data(), 2), 1.0f, 1e-6);
}

TEST(FuseJointTest, SkipsAbsentParts) {
  MultiVector mv;
  mv.parts = {{}, {0, 2}};
  const Vector fused = FuseJoint(mv);
  ASSERT_EQ(fused.size(), 2u);
  EXPECT_NEAR(fused[1], 1.0f, 1e-6);
}

TEST(FuseJointTest, AllAbsentGivesEmpty) {
  MultiVector mv;
  mv.parts = {{}, {}};
  EXPECT_TRUE(FuseJoint(mv).empty());
}

}  // namespace
}  // namespace mqa
