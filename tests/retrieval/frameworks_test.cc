#include <gtest/gtest.h>

#include "retrieval/factory.h"
#include "retrieval/je.h"
#include "retrieval/mr.h"
#include "retrieval/must.h"
#include "retrieval_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::HitRate;
using ::mqa::testing::PrepareCorpus;
using ::mqa::testing::PreparedCorpus;

class FrameworksTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new PreparedCorpus(PrepareCorpus());
    ASSERT_NE(corpus_->kb, nullptr);
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static IndexConfig SmallIndex() {
    IndexConfig config;
    config.algorithm = "mqa-hybrid";
    config.graph.max_degree = 16;
    return config;
  }

  /// Encodes a text query into a RetrievalQuery (cross-modal filled, as
  /// the query executor does).
  static RetrievalQuery TextQueryFor(uint32_t concept_id, Rng* rng) {
    const TextQuery q = corpus_->world->MakeTextQuery(concept_id, rng);
    auto rq = EncodeTextQuery(*corpus_, q.text);
    EXPECT_TRUE(rq.ok());
    return std::move(rq).Value();
  }

  static PreparedCorpus* corpus_;
};

PreparedCorpus* FrameworksTest::corpus_ = nullptr;

TEST_F(FrameworksTest, FactoryCreatesAllAndRejectsUnknown) {
  for (const std::string& name : RetrievalFrameworkNames()) {
    auto fw = CreateRetrievalFramework(name, corpus_->represented.store,
                                       corpus_->represented.weights,
                                       SmallIndex());
    ASSERT_TRUE(fw.ok()) << name;
    EXPECT_EQ((*fw)->name(), name);
  }
  EXPECT_FALSE(CreateRetrievalFramework("colbert",
                                        corpus_->represented.store,
                                        corpus_->represented.weights,
                                        SmallIndex())
                   .ok());
}

TEST_F(FrameworksTest, MustRetrievesQueryConcept) {
  auto fw = MustFramework::Create(corpus_->represented.store,
                                  corpus_->represented.weights, SmallIndex());
  ASSERT_TRUE(fw.ok());
  Rng rng(1);
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  double precision_sum = 0;
  for (uint32_t c = 0; c < 8; ++c) {
    const RetrievalQuery rq = TextQueryFor(c, &rng);
    auto result = (*fw)->Retrieve(rq, params);
    ASSERT_TRUE(result.ok());
    precision_sum += ConceptPrecision(result->neighbors, *corpus_->kb, c);
  }
  EXPECT_GT(precision_sum / 8, 0.8);
}

TEST_F(FrameworksTest, MustRejectsMalformedQueries) {
  auto fw = MustFramework::Create(corpus_->represented.store,
                                  corpus_->represented.weights, SmallIndex());
  ASSERT_TRUE(fw.ok());
  SearchParams params;
  RetrievalQuery empty;
  empty.modalities.parts.resize(2);  // both absent
  EXPECT_FALSE((*fw)->Retrieve(empty, params).ok());
  RetrievalQuery wrong_count;
  wrong_count.modalities.parts.resize(3);
  EXPECT_FALSE((*fw)->Retrieve(wrong_count, params).ok());
  RetrievalQuery wrong_dim;
  wrong_dim.modalities.parts.resize(2);
  wrong_dim.modalities.parts[1] = Vector(5, 0.1f);
  EXPECT_FALSE((*fw)->Retrieve(wrong_dim, params).ok());
}

TEST_F(FrameworksTest, MustQueryWeightOverrideChangesResults) {
  auto fw = MustFramework::Create(corpus_->represented.store,
                                  corpus_->represented.weights, SmallIndex());
  ASSERT_TRUE(fw.ok());
  Rng rng(2);
  RetrievalQuery rq = TextQueryFor(0, &rng);
  // Add an image part from an object of a DIFFERENT concept.
  const Object& other = corpus_->kb->at(1);  // concept 1
  auto img = corpus_->encoders->EncodeModality(0, other.modalities[0]);
  ASSERT_TRUE(img.ok());
  rq.modalities.parts[0] = std::move(img).Value();

  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  // Weight fully on text -> results match concept 0; fully on image ->
  // results match the other object's concept.
  rq.weights = {0.0f, 2.0f};
  auto text_only = (*fw)->Retrieve(rq, params);
  rq.weights = {2.0f, 0.0f};
  auto image_only = (*fw)->Retrieve(rq, params);
  ASSERT_TRUE(text_only.ok() && image_only.ok());
  size_t text_c0 = 0, image_other = 0;
  for (const Neighbor& n : text_only->neighbors) {
    if (corpus_->kb->at(n.id).concept_id == 0u) ++text_c0;
  }
  for (const Neighbor& n : image_only->neighbors) {
    if (corpus_->kb->at(n.id).concept_id == other.concept_id) ++image_other;
  }
  EXPECT_GT(text_c0, 5u);
  EXPECT_GT(image_other, 5u);
  // After the overrides, the framework's default weights are restored.
  EXPECT_EQ((*fw)->weights().size(), 2u);
}

TEST_F(FrameworksTest, MustDistanceStatsAccumulateWithPruning) {
  auto fw = MustFramework::Create(corpus_->represented.store,
                                  corpus_->represented.weights, SmallIndex(),
                                  /*enable_pruning=*/true);
  ASSERT_TRUE(fw.ok());
  (*fw)->ResetDistanceStats();
  Rng rng(3);
  SearchParams params;
  params.k = 10;
  ASSERT_TRUE((*fw)->Retrieve(TextQueryFor(0, &rng), params).ok());
  const DistanceStats& stats = (*fw)->distance_stats();
  EXPECT_GT(stats.TotalComputations(), 0u);
  EXPECT_GT(stats.pruned_computations, 0u);  // pruning actually fired
}

TEST_F(FrameworksTest, MrRetrievesAndMerges) {
  auto fw = MrFramework::Create(corpus_->represented.store,
                                corpus_->represented.weights, SmallIndex());
  ASSERT_TRUE(fw.ok());
  Rng rng(4);
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  double precision_sum = 0;
  for (uint32_t c = 0; c < 6; ++c) {
    auto result = (*fw)->Retrieve(TextQueryFor(c, &rng), params);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->neighbors.size(), 10u);
    // Results sorted by fused distance.
    for (size_t i = 1; i < result->neighbors.size(); ++i) {
      EXPECT_LE(result->neighbors[i - 1].distance,
                result->neighbors[i].distance);
    }
    precision_sum += ConceptPrecision(result->neighbors, *corpus_->kb, c);
  }
  EXPECT_GT(precision_sum / 6, 0.7);
}

TEST_F(FrameworksTest, MrSetWeightsValidates) {
  auto fw = MrFramework::Create(corpus_->represented.store,
                                corpus_->represented.weights, SmallIndex());
  ASSERT_TRUE(fw.ok());
  EXPECT_FALSE((*fw)->SetWeights({1.0f}).ok());
  EXPECT_TRUE((*fw)->SetWeights({1.0f, 1.0f}).ok());
}

TEST_F(FrameworksTest, JeRetrievesAndHasNoWeights) {
  auto fw = JeFramework::Create(corpus_->represented.store, SmallIndex());
  ASSERT_TRUE(fw.ok());
  Rng rng(5);
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  auto result = (*fw)->Retrieve(TextQueryFor(3, &rng), params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->neighbors.size(), 10u);
  EXPECT_EQ((*fw)->SetWeights({1.0f, 1.0f}).code(),
            StatusCode::kUnimplemented);
}

TEST_F(FrameworksTest, CreateRejectsEmptyCorpus) {
  auto empty = std::make_shared<VectorStore>(
      corpus_->represented.store->schema());
  EXPECT_FALSE(
      MustFramework::Create(empty, {1.0f, 1.0f}, SmallIndex()).ok());
  EXPECT_FALSE(MrFramework::Create(empty, {1.0f, 1.0f}, SmallIndex()).ok());
  EXPECT_FALSE(JeFramework::Create(empty, SmallIndex()).ok());
}

}  // namespace
}  // namespace mqa
