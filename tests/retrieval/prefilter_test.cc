// End-to-end recall safety for the bit-sketch prefilter: at the default
// scale of 1 the prefilter composes with the incremental-scanning bound
// without changing a single retrieval decision, so MUST results with the
// prefilter on and off must be identical, id for id.

#include <gtest/gtest.h>

#include <memory>

#include "retrieval/must.h"
#include "retrieval_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::PrepareCorpus;
using ::mqa::testing::PreparedCorpus;

class PrefilterEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new PreparedCorpus(PrepareCorpus());
    ASSERT_NE(corpus_->kb, nullptr);
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static IndexConfig IndexWithPrefilter(bool enabled) {
    IndexConfig config;
    config.algorithm = "mqa-hybrid";
    config.graph.max_degree = 16;
    config.sketch_prefilter = enabled;
    return config;
  }

  static RetrievalQuery TextQueryFor(uint32_t concept_id, Rng* rng) {
    const TextQuery q = corpus_->world->MakeTextQuery(concept_id, rng);
    auto rq = EncodeTextQuery(*corpus_, q.text);
    EXPECT_TRUE(rq.ok());
    return std::move(rq).Value();
  }

  static PreparedCorpus* corpus_;
};

PreparedCorpus* PrefilterEquivalenceTest::corpus_ = nullptr;

TEST_F(PrefilterEquivalenceTest, MustResultsIdenticalWithAndWithout) {
  auto with = MustFramework::Create(corpus_->represented.store,
                                    corpus_->represented.weights,
                                    IndexWithPrefilter(true));
  auto without = MustFramework::Create(corpus_->represented.store,
                                       corpus_->represented.weights,
                                       IndexWithPrefilter(false));
  ASSERT_TRUE(with.ok() && without.ok());

  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  Rng rng(3);
  for (uint32_t c = 0; c < 8; ++c) {
    const RetrievalQuery rq = TextQueryFor(c, &rng);
    auto a = (*with)->Retrieve(rq, params);
    auto b = (*without)->Retrieve(rq, params);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->neighbors.size(), b->neighbors.size()) << "concept " << c;
    for (size_t i = 0; i < a->neighbors.size(); ++i) {
      EXPECT_EQ(a->neighbors[i].id, b->neighbors[i].id)
          << "concept " << c << " rank " << i;
      EXPECT_EQ(a->neighbors[i].distance, b->neighbors[i].distance)
          << "concept " << c << " rank " << i;
    }
  }
}

TEST_F(PrefilterEquivalenceTest, PrefilterSurvivesLiveIngestion) {
  // Both frameworks share one mutable corpus; the last rows arrive via
  // live ingestion so the sketch catch-up path is exercised too.
  const VectorStore& full = *corpus_->represented.store;
  auto store = std::make_shared<VectorStore>(full.schema());
  const uint32_t initial = full.size() - 8;
  for (uint32_t id = 0; id < initial; ++id) {
    ASSERT_TRUE(store->Add(full.Row(id)).ok());
  }
  const IndexConfig config = IndexWithPrefilter(true);
  auto with = MustFramework::Create(store, corpus_->represented.weights,
                                    config);
  auto without = MustFramework::Create(store, corpus_->represented.weights,
                                       IndexWithPrefilter(false));
  ASSERT_TRUE(with.ok() && without.ok());
  for (uint32_t id = initial; id < full.size(); ++id) {
    ASSERT_TRUE(store->Add(full.Row(id)).ok());
    ASSERT_TRUE((*with)->IngestAppended(config.graph).ok());
    ASSERT_TRUE((*without)->IngestAppended(config.graph).ok());
  }

  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  Rng rng(4);
  for (uint32_t c = 0; c < 4; ++c) {
    const RetrievalQuery rq = TextQueryFor(c, &rng);
    auto a = (*with)->Retrieve(rq, params);
    auto b = (*without)->Retrieve(rq, params);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->neighbors.size(), b->neighbors.size()) << "concept " << c;
    for (size_t i = 0; i < a->neighbors.size(); ++i) {
      EXPECT_EQ(a->neighbors[i].id, b->neighbors[i].id)
          << "concept " << c << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace mqa
