// Integration test reproducing the *shape* of the paper's Figure 5
// comparison on a small corpus: over two-round dialogues, MUST matches or
// beats MR and JE in round 1 (text-only) and beats both in round 2
// (image + text feedback), where MR's independent per-modality candidate
// lists and JE's fixed fusion fall behind. The full-size run is
// bench_comparative_rounds.

#include <gtest/gtest.h>

#include <map>

#include "retrieval/factory.h"
#include "retrieval_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::PrepareCorpus;
using ::mqa::testing::PreparedCorpus;

TEST(ComparativeTest, MustBeatsBaselinesAcrossTwoRounds) {
  WorldConfig wc;
  wc.num_concepts = 24;
  wc.latent_dim = 16;
  wc.raw_image_dim = 32;
  wc.seed = 31;
  auto corpus = MakeExperimentCorpus(wc, 2400, "sim-clip", 16, true, 800);
  ASSERT_TRUE(corpus.ok());

  IndexConfig index;
  index.algorithm = "mqa-hybrid";
  index.graph.max_degree = 16;
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;

  std::map<std::string, DialogueOutcome> scores;
  for (const std::string name : {"must", "mr", "je"}) {
    auto fw = CreateRetrievalFramework(name, corpus->represented.store,
                                       corpus->represented.weights, index);
    ASSERT_TRUE(fw.ok()) << name;
    auto outcome = RunDialogueSuite(*corpus, fw->get(), 48, 777, params);
    ASSERT_TRUE(outcome.ok()) << name;
    scores[name] = *outcome;
  }

  // Round 1 (text-only): MUST at least matches the baselines.
  EXPECT_GE(scores["must"].round1_precision + 0.03,
            scores["mr"].round1_precision);
  EXPECT_GE(scores["must"].round1_precision + 0.03,
            scores["je"].round1_precision);
  // Round 2 (multi-modal feedback): MR fails the attribute switch
  // (concept-level), the paper's "MR fails to maintain alignment".
  EXPECT_GT(scores["must"].round2_precision, scores["mr"].round2_precision);
  // JE's failure is fine-grained alignment ("images that do not align with
  // the user's selection"): MUST finds the actual nearest objects far more
  // often, in both rounds.
  EXPECT_GT(scores["must"].round1_hit, scores["je"].round1_hit);
  EXPECT_GE(scores["must"].round2_hit, scores["je"].round2_hit);
  // Absolute sanity: round-1 retrieval is strong, round-2 nontrivial.
  EXPECT_GT(scores["must"].round1_precision, 0.8);
  EXPECT_GT(scores["must"].round2_precision, 0.25);
}

}  // namespace
}  // namespace mqa
