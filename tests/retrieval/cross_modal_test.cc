#include <gtest/gtest.h>

#include "retrieval/framework.h"

namespace mqa {
namespace {

TEST(CrossModalFillTest, SinglePresentPartIsCopiedExactly) {
  MultiVector mv;
  mv.parts = {{}, {0.5f, -0.5f}};
  CrossModalFill(&mv);
  EXPECT_EQ(mv.parts[0], (Vector{0.5f, -0.5f}));
  EXPECT_EQ(mv.parts[1], (Vector{0.5f, -0.5f}));
}

TEST(CrossModalFillTest, MeanOfMultiplePresentParts) {
  MultiVector mv;
  mv.parts = {{1.0f, 0.0f}, {0.0f, 1.0f}, {}};
  CrossModalFill(&mv);
  EXPECT_EQ(mv.parts[2], (Vector{0.5f, 0.5f}));
  // Present parts untouched.
  EXPECT_EQ(mv.parts[0], (Vector{1.0f, 0.0f}));
}

TEST(CrossModalFillTest, NothingPresentIsNoop) {
  MultiVector mv;
  mv.parts = {{}, {}};
  CrossModalFill(&mv);
  EXPECT_TRUE(mv.parts[0].empty());
  EXPECT_TRUE(mv.parts[1].empty());
}

TEST(CrossModalFillTest, NothingAbsentIsNoop) {
  MultiVector mv;
  mv.parts = {{1.0f}, {2.0f}};
  CrossModalFill(&mv);
  EXPECT_EQ(mv.parts[0], (Vector{1.0f}));
  EXPECT_EQ(mv.parts[1], (Vector{2.0f}));
}

TEST(CrossModalFillTest, MisalignedDimsLeaveAbsentPartsEmpty) {
  MultiVector mv;
  mv.parts = {{1.0f, 2.0f}, {3.0f}, {}};
  CrossModalFill(&mv);
  EXPECT_TRUE(mv.parts[2].empty());
}

TEST(CrossModalFillTest, LowEnergySignalIsNotInflated) {
  // A weak (junk-text) part fills with the same weak magnitude — no
  // normalization to unit length.
  MultiVector mv;
  mv.parts = {{}, {0.1f, 0.0f}};
  CrossModalFill(&mv);
  EXPECT_FLOAT_EQ(mv.parts[0][0], 0.1f);
}

}  // namespace
}  // namespace mqa
