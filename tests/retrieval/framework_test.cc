#include "retrieval/framework.h"

#include <gtest/gtest.h>

#include "vector/distance.h"

namespace mqa {
namespace {

VectorStore MakeMultiStore() {
  VectorSchema schema;
  schema.dims = {2, 2};
  VectorStore store(schema);
  (void)store.Add({1, 0, 0, 1});
  (void)store.Add({0, 1, 1, 0});
  (void)store.Add({1, 1, 1, 1});
  return store;
}

TEST(SlicePerModalityTest, ExtractsBlocks) {
  const VectorStore multi = MakeMultiStore();
  auto slice0 = SlicePerModality(multi, 0);
  auto slice1 = SlicePerModality(multi, 1);
  ASSERT_TRUE(slice0.ok() && slice1.ok());
  EXPECT_EQ(slice0->Row(0), (Vector{1, 0}));
  EXPECT_EQ(slice1->Row(0), (Vector{0, 1}));
  EXPECT_EQ(slice0->Row(2), (Vector{1, 1}));
  EXPECT_EQ(slice0->size(), 3u);
  EXPECT_FALSE(SlicePerModality(multi, 2).ok());
}

TEST(FuseJointStoreTest, FusesAlignedBlocks) {
  const VectorStore multi = MakeMultiStore();
  auto fused = FuseJointStore(multi);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused->size(), 3u);
  EXPECT_EQ(fused->row_dim(), 2u);
  // Row 2 is (1,1)+(1,1) -> normalized (1/sqrt2, 1/sqrt2).
  EXPECT_NEAR(fused->Row(2)[0], 0.7071f, 1e-3);
}

TEST(FuseJointStoreTest, RejectsMisalignedDims) {
  VectorSchema schema;
  schema.dims = {2, 3};
  VectorStore store(schema);
  (void)store.Add({1, 0, 0, 1, 0});
  EXPECT_FALSE(FuseJointStore(store).ok());
}

TEST(NormalizeWeightsTest, SumsToModalityCount) {
  const auto w = NormalizeWeights({1.0f, 3.0f});
  EXPECT_NEAR(w[0] + w[1], 2.0f, 1e-5);
  EXPECT_NEAR(w[1] / w[0], 3.0f, 1e-4);
}

TEST(NormalizeWeightsTest, ClampsNegativesAndHandlesZeroSum) {
  const auto w = NormalizeWeights({-1.0f, 2.0f});
  EXPECT_FLOAT_EQ(w[0], 0.0f);
  EXPECT_NEAR(w[1], 2.0f, 1e-5);
  const auto zero = NormalizeWeights({0.0f, 0.0f});
  EXPECT_FLOAT_EQ(zero[0], 1.0f);
  EXPECT_FLOAT_EQ(zero[1], 1.0f);
}

}  // namespace
}  // namespace mqa
