#ifndef MQA_TESTS_RETRIEVAL_RETRIEVAL_TEST_UTIL_H_
#define MQA_TESTS_RETRIEVAL_RETRIEVAL_TEST_UTIL_H_

#include <memory>

#include "core/experiment.h"

namespace mqa::testing {

using PreparedCorpus = ::mqa::ExperimentCorpus;

/// A small, fast corpus for framework tests (16-dim embeddings).
inline PreparedCorpus PrepareCorpus(uint64_t corpus_size = 1200,
                                    uint32_t num_concepts = 16,
                                    uint64_t seed = 9,
                                    bool learn_weights = true) {
  WorldConfig wc;
  wc.num_concepts = num_concepts;
  wc.latent_dim = 16;
  wc.raw_image_dim = 32;
  wc.seed = seed;
  auto corpus = MakeExperimentCorpus(wc, corpus_size, "sim-clip", 16,
                                     learn_weights, 800);
  if (!corpus.ok()) return PreparedCorpus{};
  return std::move(corpus).Value();
}

/// Fraction of `neighbors` whose ids appear in the ground-truth id list.
inline double HitRate(const std::vector<Neighbor>& neighbors,
                      const std::vector<uint32_t>& ground_truth) {
  if (neighbors.empty()) return 0.0;
  size_t hits = 0;
  for (const Neighbor& n : neighbors) {
    for (uint32_t id : ground_truth) {
      if (n.id == id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / neighbors.size();
}

}  // namespace mqa::testing

#endif  // MQA_TESTS_RETRIEVAL_RETRIEVAL_TEST_UTIL_H_
