#include <gtest/gtest.h>

#include "storage/world.h"
#include "vector/distance.h"

namespace mqa {
namespace {

WorldConfig SmallConfig() {
  WorldConfig c;
  c.num_concepts = 12;
  c.latent_dim = 16;
  c.raw_image_dim = 32;
  c.seed = 5;
  return c;
}

TEST(ReobserveTest, KeepsIdentityChangesObservations) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  Rng rng(1);
  const Object original = world->MakeObject(3, &rng);
  const Object observed = world->ReobserveObject(original, &rng);
  EXPECT_EQ(observed.concept_id, original.concept_id);
  EXPECT_EQ(observed.latent, original.latent);
  EXPECT_EQ(observed.id, original.id);
  // Fresh renderings: image features differ but stay correlated.
  EXPECT_NE(observed.modalities[0].features, original.modalities[0].features);
  const float cross =
      L2Sq(observed.modalities[0].features.data(),
           original.modalities[0].features.data(), 32);
  // Compare against an unrelated object's image features.
  const Object other = world->MakeObject(9, &rng);
  const float unrelated =
      L2Sq(observed.modalities[0].features.data(),
           other.modalities[0].features.data(), 32);
  EXPECT_LT(cross, unrelated);
}

TEST(ReobserveTest, CaptionStillNamesTheConceptAtLowNoise) {
  WorldConfig c = SmallConfig();
  c.modality_noise = {0.05f, 0.05f};
  auto world = World::Create(c);
  ASSERT_TRUE(world.ok());
  Rng rng(2);
  const Object obj = world->MakeObject(0, &rng);
  const Object observed = world->ReobserveObject(obj, &rng);
  const std::string name = world->ConceptName(0);
  const std::string noun = name.substr(name.find(' ') + 1);
  EXPECT_NE(observed.modalities[1].text.find(noun), std::string::npos);
}

TEST(ReobserveTest, SevereTextNoiseMislabelsSomeCaptions) {
  WorldConfig c = SmallConfig();
  c.modality_noise = {0.05f, 0.9f};
  auto world = World::Create(c);
  ASSERT_TRUE(world.ok());
  Rng rng(3);
  const std::string name = world->ConceptName(0);
  const std::string noun = name.substr(name.find(' ') + 1);
  size_t wrong = 0;
  for (int i = 0; i < 100; ++i) {
    const Object obj = world->MakeObject(0, &rng);
    if (obj.modalities[1].text.find(noun) == std::string::npos) ++wrong;
  }
  // mislabel prob = noise - 0.4 = 0.5, but the random replacement noun can
  // coincide with the true one (few nouns in a small world), so roughly a
  // quarter to a third of captions end up wrong.
  EXPECT_GT(wrong, 12u);
  EXPECT_LT(wrong, 75u);
}

TEST(ReobserveTest, LowTextNoiseNeverMislabels) {
  WorldConfig c = SmallConfig();
  c.modality_noise = {0.05f, 0.2f};  // below the 0.4 mislabel threshold
  auto world = World::Create(c);
  ASSERT_TRUE(world.ok());
  Rng rng(4);
  const std::string name = world->ConceptName(0);
  const std::string noun = name.substr(name.find(' ') + 1);
  for (int i = 0; i < 50; ++i) {
    const Object obj = world->MakeObject(0, &rng);
    EXPECT_NE(obj.modalities[1].text.find(noun), std::string::npos);
  }
}

}  // namespace
}  // namespace mqa
