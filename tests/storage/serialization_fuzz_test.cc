// Corruption robustness: every persisted format must reject truncated and
// bit-flipped inputs with an error — never crash, never return garbage
// silently. The loaders are exercised at every truncation point and under
// random byte flips.

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.h"
#include "graph/hnsw.h"
#include "graph/pipeline.h"
#include "storage/world.h"
#include "vector/vector_store.h"

namespace mqa {
namespace {

// Runs `load` against every prefix of `blob` (stepping to keep runtime
// sane) and against random single-byte corruptions; the loader must
// return (not crash), and must fail on strict prefixes.
template <typename LoadFn>
void FuzzBlob(const std::string& blob, LoadFn load, uint64_t seed) {
  const size_t step = std::max<size_t>(1, blob.size() / 64);
  for (size_t cut = 0; cut < blob.size(); cut += step) {
    std::stringstream in(blob.substr(0, cut));
    EXPECT_FALSE(load(in)) << "accepted a truncated blob at " << cut;
  }
  // Bit flips: loaders may legitimately accept some (flipping payload
  // bytes changes data, not structure), so only require "no crash".
  Rng rng(seed);
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupted = blob;
    corrupted[rng.NextUint64(corrupted.size())] ^=
        static_cast<char>(1 + rng.NextUint64(255));
    std::stringstream in(corrupted);
    (void)load(in);
  }
}

TEST(SerializationFuzzTest, VectorStoreSurvivesCorruption) {
  VectorSchema schema;
  schema.dims = {3, 2};
  VectorStore store(schema);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    Vector v(5);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(store.Add(v).ok());
  }
  std::stringstream out;
  ASSERT_TRUE(store.Save(out).ok());
  FuzzBlob(out.str(),
           [](std::istream& in) { return VectorStore::Load(in).ok(); }, 2);
}

TEST(SerializationFuzzTest, KnowledgeBaseSurvivesCorruption) {
  WorldConfig wc;
  wc.num_concepts = 6;
  wc.latent_dim = 8;
  wc.raw_image_dim = 16;
  auto world = World::Create(wc);
  ASSERT_TRUE(world.ok());
  auto kb = world->GenerateCorpus(24);
  ASSERT_TRUE(kb.ok());
  std::stringstream out;
  ASSERT_TRUE(kb->Save(out).ok());
  FuzzBlob(out.str(),
           [](std::istream& in) { return KnowledgeBase::Load(in).ok(); }, 3);
}

TEST(SerializationFuzzTest, GraphIndexSurvivesCorruption) {
  VectorSchema schema;
  schema.dims = {4};
  VectorStore store(schema);
  Rng rng(4);
  for (int i = 0; i < 80; ++i) {
    Vector v(4);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(store.Add(v).ok());
  }
  GraphBuildConfig config;
  config.algorithm = "mqa-hybrid";
  config.max_degree = 8;
  auto index = BuildGraphIndex(
      config, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());
  std::stringstream out;
  ASSERT_TRUE((*index)->Save(out).ok());
  FuzzBlob(out.str(),
           [](std::istream& in) {
             return GraphIndex::Load(in, nullptr).ok();
           },
           5);
}

TEST(SerializationFuzzTest, HnswSurvivesCorruption) {
  VectorSchema schema;
  schema.dims = {4};
  VectorStore store(schema);
  Rng rng(6);
  for (int i = 0; i < 80; ++i) {
    Vector v(4);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(store.Add(v).ok());
  }
  auto index = HnswIndex::Build(
      HnswConfig{}, &store,
      std::make_unique<FlatDistanceComputer>(&store, Metric::kL2));
  ASSERT_TRUE(index.ok());
  std::stringstream out;
  ASSERT_TRUE((*index)->Save(out).ok());
  FuzzBlob(out.str(),
           [&store](std::istream& in) {
             return HnswIndex::Load(
                        in, HnswConfig{}, &store,
                        std::make_unique<FlatDistanceComputer>(&store,
                                                               Metric::kL2))
                 .ok();
           },
           7);
}

}  // namespace
}  // namespace mqa
