// Atomic file writes: a crash (injected) mid-save never clobbers the
// previous good file, and a completed write is fully visible.

#include "storage/durable_file.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "common/fault.h"

namespace mqa {
namespace {

class DurableFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mqa_durable_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(DurableFileTest, RoundTripsContents) {
  const std::string path = Path("a.bin");
  const std::string contents(1 << 16, 'x');
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, contents);
  // No temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(DurableFileTest, ProducerOverloadSerializesThroughStream) {
  const std::string path = Path("b.bin");
  ASSERT_TRUE(WriteFileAtomic(path, [](std::ostream& out) {
                out << "line one\n" << 42 << "\n";
                return Status::OK();
              }).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "line one\n42\n");
}

TEST_F(DurableFileTest, ProducerErrorWritesNothing) {
  const std::string path = Path("c.bin");
  EXPECT_FALSE(WriteFileAtomic(path, [](std::ostream&) {
                 return Status::Internal("serializer exploded");
               }).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(DurableFileTest, ReadMissingFileIsNotFound) {
  auto read = ReadFileToString(Path("missing.bin"));
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(DurableFileTest, InjectedCrashPreservesPreviousFile) {
  const std::string path = Path("state.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "previous good state").ok());

  FaultSpec crash;
  crash.code = StatusCode::kIoError;
  crash.once = true;
  FaultInjector::Global().Arm("snapshot/write", crash);
  EXPECT_FALSE(WriteFileAtomic(path, "half-written replacement").ok());

  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "previous good state");

  // The injector is exhausted (once): the next save goes through.
  ASSERT_TRUE(WriteFileAtomic(path, "new state").ok());
  EXPECT_EQ(*ReadFileToString(path), "new state");
}

TEST_F(DurableFileTest, TornTempFileNeverShadowsTheRealFile) {
  const std::string path = Path("state.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "previous good state").ok());

  FaultSpec torn;
  torn.code = StatusCode::kIoError;
  torn.partial_fraction = 0.5;
  torn.once = true;
  FaultInjector::Global().Arm("snapshot/write", torn);
  EXPECT_FALSE(WriteFileAtomic(path, "0123456789").ok());

  // The torn bytes landed in the temp file only; the real file is intact.
  EXPECT_EQ(*ReadFileToString(path), "previous good state");
  auto tmp = ReadFileToString(path + ".tmp");
  ASSERT_TRUE(tmp.ok());
  EXPECT_EQ(*tmp, "01234");
}

}  // namespace
}  // namespace mqa
