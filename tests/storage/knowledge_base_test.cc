#include "storage/knowledge_base.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mqa {
namespace {

ModalitySchema ImageTextSchema() {
  ModalitySchema s;
  s.types = {ModalityType::kImage, ModalityType::kText};
  return s;
}

Object MakeObject(uint32_t concept_id) {
  Object obj;
  obj.concept_id = concept_id;
  obj.latent = {0.1f, 0.2f};
  Payload img;
  img.type = ModalityType::kImage;
  img.features = {1.0f, 2.0f, 3.0f};
  img.text = "an image";
  Payload txt;
  txt.type = ModalityType::kText;
  txt.text = "a caption";
  obj.modalities = {img, txt};
  return obj;
}

TEST(KnowledgeBaseTest, IngestAssignsDenseIds) {
  KnowledgeBase kb(ImageTextSchema(), "test");
  auto id0 = kb.Ingest(MakeObject(0));
  auto id1 = kb.Ingest(MakeObject(1));
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id0, 0u);
  EXPECT_EQ(*id1, 1u);
  EXPECT_EQ(kb.size(), 2u);
  EXPECT_FALSE(kb.empty());
  EXPECT_EQ(kb.name(), "test");
}

TEST(KnowledgeBaseTest, IngestValidatesSchema) {
  KnowledgeBase kb(ImageTextSchema());
  Object wrong_count = MakeObject(0);
  wrong_count.modalities.pop_back();
  EXPECT_FALSE(kb.Ingest(wrong_count).ok());

  Object wrong_type = MakeObject(0);
  wrong_type.modalities[0].type = ModalityType::kAudio;
  EXPECT_FALSE(kb.Ingest(wrong_type).ok());
  EXPECT_EQ(kb.size(), 0u);
}

TEST(KnowledgeBaseTest, GetChecksRange) {
  KnowledgeBase kb(ImageTextSchema());
  ASSERT_TRUE(kb.Ingest(MakeObject(5)).ok());
  auto obj = kb.Get(0);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->concept_id, 5u);
  EXPECT_EQ(kb.Get(1).status().code(), StatusCode::kNotFound);
}

TEST(KnowledgeBaseTest, SaveLoadRoundTrip) {
  KnowledgeBase kb(ImageTextSchema(), "roundtrip");
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(kb.Ingest(MakeObject(i)).ok());
  }
  std::stringstream buf;
  ASSERT_TRUE(kb.Save(buf).ok());
  auto loaded = KnowledgeBase::Load(buf);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), kb.size());
  EXPECT_EQ(loaded->name(), "roundtrip");
  EXPECT_EQ(loaded->schema(), kb.schema());
  for (uint64_t i = 0; i < kb.size(); ++i) {
    const Object& a = kb.at(i);
    const Object& b = loaded->at(i);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.concept_id, b.concept_id);
    EXPECT_EQ(a.latent, b.latent);
    ASSERT_EQ(a.modalities.size(), b.modalities.size());
    for (size_t m = 0; m < a.modalities.size(); ++m) {
      EXPECT_EQ(a.modalities[m].type, b.modalities[m].type);
      EXPECT_EQ(a.modalities[m].text, b.modalities[m].text);
      EXPECT_EQ(a.modalities[m].features, b.modalities[m].features);
    }
  }
}

TEST(KnowledgeBaseTest, LoadRejectsGarbageAndTruncation) {
  std::stringstream garbage("garbage bytes");
  EXPECT_FALSE(KnowledgeBase::Load(garbage).ok());

  KnowledgeBase kb(ImageTextSchema());
  ASSERT_TRUE(kb.Ingest(MakeObject(0)).ok());
  std::stringstream buf;
  ASSERT_TRUE(kb.Save(buf).ok());
  std::string data = buf.str();
  data.resize(data.size() - 8);
  std::stringstream cut(data);
  EXPECT_FALSE(KnowledgeBase::Load(cut).ok());
}

TEST(KnowledgeBaseTest, RemoveTombstonesAndCompactLiveRedensifies) {
  KnowledgeBase kb(ImageTextSchema(), "tomb");
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(kb.Ingest(MakeObject(i)).ok());
  }
  ASSERT_TRUE(kb.Remove(2).ok());
  ASSERT_TRUE(kb.Remove(7).ok());
  EXPECT_EQ(kb.Remove(2).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(kb.Remove(10).code(), StatusCode::kNotFound);
  EXPECT_EQ(kb.num_deleted(), 2u);
  EXPECT_EQ(kb.live_size(), 8u);
  EXPECT_DOUBLE_EQ(kb.GarbageRatio(), 0.2);
  EXPECT_FALSE(kb.Get(2).ok());
  EXPECT_TRUE(kb.Get(3).ok());

  std::vector<uint32_t> remap;
  const uint32_t live = kb.BuildRemap(&remap);
  EXPECT_EQ(live, 8u);
  EXPECT_EQ(remap[2], kTombstonedId);
  EXPECT_EQ(remap[3], 2u);

  const KnowledgeBase compacted = kb.CompactLive(remap, live);
  EXPECT_EQ(compacted.size(), 8u);
  EXPECT_EQ(compacted.num_deleted(), 0u);
  // Object previously at id 3 now sits at dense id 2, with its id field
  // rewritten to match.
  EXPECT_EQ(compacted.at(2).concept_id, 3u);
  EXPECT_EQ(compacted.at(2).id, 2u);
  EXPECT_EQ(compacted.at(7).concept_id, 9u);
}

TEST(KnowledgeBaseTest, SaveLoadRoundTripsTombstones) {
  KnowledgeBase kb(ImageTextSchema(), "tomb");
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(kb.Ingest(MakeObject(i)).ok());
  }
  ASSERT_TRUE(kb.Remove(1).ok());
  ASSERT_TRUE(kb.Remove(4).ok());

  std::stringstream buffer;
  ASSERT_TRUE(kb.Save(buffer).ok());
  auto loaded = KnowledgeBase::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 5u);
  EXPECT_EQ(loaded->num_deleted(), 2u);
  EXPECT_TRUE(loaded->IsDeleted(1));
  EXPECT_TRUE(loaded->IsDeleted(4));
  EXPECT_FALSE(loaded->IsDeleted(0));
  EXPECT_FALSE(loaded->Get(1).ok());
}

TEST(ObjectCodecTest, SerializeDeserializeRoundTripsWithoutId) {
  Object obj = MakeObject(6);
  obj.id = 123;  // must NOT round-trip: replay re-assigns dense ids
  std::string bytes;
  SerializeObject(obj, &bytes);
  auto back = DeserializeObject(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->id, 0u);
  EXPECT_EQ(back->concept_id, 6u);
  EXPECT_EQ(back->latent, obj.latent);
  ASSERT_EQ(back->modalities.size(), obj.modalities.size());
  EXPECT_EQ(back->modalities[0].type, ModalityType::kImage);
  EXPECT_EQ(back->modalities[0].features, obj.modalities[0].features);
  EXPECT_EQ(back->modalities[0].text, obj.modalities[0].text);
  EXPECT_EQ(back->modalities[1].text, obj.modalities[1].text);
}

TEST(ObjectCodecTest, DeserializeRejectsGarbageAndTruncation) {
  EXPECT_FALSE(DeserializeObject("").ok());
  EXPECT_FALSE(DeserializeObject("not an object").ok());
  Object obj = MakeObject(1);
  std::string bytes;
  SerializeObject(obj, &bytes);
  EXPECT_FALSE(DeserializeObject(
                   std::string_view(bytes.data(), bytes.size() / 2))
                   .ok());
}

TEST(ModalityTypeTest, ToStringNames) {
  EXPECT_STREQ(ModalityTypeToString(ModalityType::kText), "text");
  EXPECT_STREQ(ModalityTypeToString(ModalityType::kImage), "image");
  EXPECT_STREQ(ModalityTypeToString(ModalityType::kAudio), "audio");
}

}  // namespace
}  // namespace mqa
