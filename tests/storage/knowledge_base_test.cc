#include "storage/knowledge_base.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mqa {
namespace {

ModalitySchema ImageTextSchema() {
  ModalitySchema s;
  s.types = {ModalityType::kImage, ModalityType::kText};
  return s;
}

Object MakeObject(uint32_t concept_id) {
  Object obj;
  obj.concept_id = concept_id;
  obj.latent = {0.1f, 0.2f};
  Payload img;
  img.type = ModalityType::kImage;
  img.features = {1.0f, 2.0f, 3.0f};
  img.text = "an image";
  Payload txt;
  txt.type = ModalityType::kText;
  txt.text = "a caption";
  obj.modalities = {img, txt};
  return obj;
}

TEST(KnowledgeBaseTest, IngestAssignsDenseIds) {
  KnowledgeBase kb(ImageTextSchema(), "test");
  auto id0 = kb.Ingest(MakeObject(0));
  auto id1 = kb.Ingest(MakeObject(1));
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id0, 0u);
  EXPECT_EQ(*id1, 1u);
  EXPECT_EQ(kb.size(), 2u);
  EXPECT_FALSE(kb.empty());
  EXPECT_EQ(kb.name(), "test");
}

TEST(KnowledgeBaseTest, IngestValidatesSchema) {
  KnowledgeBase kb(ImageTextSchema());
  Object wrong_count = MakeObject(0);
  wrong_count.modalities.pop_back();
  EXPECT_FALSE(kb.Ingest(wrong_count).ok());

  Object wrong_type = MakeObject(0);
  wrong_type.modalities[0].type = ModalityType::kAudio;
  EXPECT_FALSE(kb.Ingest(wrong_type).ok());
  EXPECT_EQ(kb.size(), 0u);
}

TEST(KnowledgeBaseTest, GetChecksRange) {
  KnowledgeBase kb(ImageTextSchema());
  ASSERT_TRUE(kb.Ingest(MakeObject(5)).ok());
  auto obj = kb.Get(0);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->concept_id, 5u);
  EXPECT_EQ(kb.Get(1).status().code(), StatusCode::kNotFound);
}

TEST(KnowledgeBaseTest, SaveLoadRoundTrip) {
  KnowledgeBase kb(ImageTextSchema(), "roundtrip");
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(kb.Ingest(MakeObject(i)).ok());
  }
  std::stringstream buf;
  ASSERT_TRUE(kb.Save(buf).ok());
  auto loaded = KnowledgeBase::Load(buf);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), kb.size());
  EXPECT_EQ(loaded->name(), "roundtrip");
  EXPECT_EQ(loaded->schema(), kb.schema());
  for (uint64_t i = 0; i < kb.size(); ++i) {
    const Object& a = kb.at(i);
    const Object& b = loaded->at(i);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.concept_id, b.concept_id);
    EXPECT_EQ(a.latent, b.latent);
    ASSERT_EQ(a.modalities.size(), b.modalities.size());
    for (size_t m = 0; m < a.modalities.size(); ++m) {
      EXPECT_EQ(a.modalities[m].type, b.modalities[m].type);
      EXPECT_EQ(a.modalities[m].text, b.modalities[m].text);
      EXPECT_EQ(a.modalities[m].features, b.modalities[m].features);
    }
  }
}

TEST(KnowledgeBaseTest, LoadRejectsGarbageAndTruncation) {
  std::stringstream garbage("garbage bytes");
  EXPECT_FALSE(KnowledgeBase::Load(garbage).ok());

  KnowledgeBase kb(ImageTextSchema());
  ASSERT_TRUE(kb.Ingest(MakeObject(0)).ok());
  std::stringstream buf;
  ASSERT_TRUE(kb.Save(buf).ok());
  std::string data = buf.str();
  data.resize(data.size() - 8);
  std::stringstream cut(data);
  EXPECT_FALSE(KnowledgeBase::Load(cut).ok());
}

TEST(ModalityTypeTest, ToStringNames) {
  EXPECT_STREQ(ModalityTypeToString(ModalityType::kText), "text");
  EXPECT_STREQ(ModalityTypeToString(ModalityType::kImage), "image");
  EXPECT_STREQ(ModalityTypeToString(ModalityType::kAudio), "audio");
}

}  // namespace
}  // namespace mqa
