// The write-ahead log: CRC-framed records, torn-tail recovery, group
// fsync, and the broken-writer fail-stop contract.

#include "storage/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/fault.h"
#include "storage/durable_file.h"

namespace mqa {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mqa_wal_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "wal.log").string();
  }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(WalTest, AppendReadRoundTrip) {
  auto wal = WalWriter::Open(path_);
  ASSERT_TRUE(wal.ok());
  auto s1 = (*wal)->Append(WalRecordType::kInsert, "object-one");
  auto s2 = (*wal)->Append(WalRecordType::kRemove, "\x07\0\0\0\0\0\0\0");
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(*s1, 1u);
  EXPECT_EQ(*s2, 2u);
  // sync_every == 1: durable on return.
  EXPECT_EQ((*wal)->last_synced_seq(), 2u);

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0].seq, 1u);
  EXPECT_EQ(read->records[0].type, WalRecordType::kInsert);
  EXPECT_EQ(read->records[0].payload, "object-one");
  EXPECT_EQ(read->records[1].seq, 2u);
  EXPECT_EQ(read->records[1].type, WalRecordType::kRemove);
  EXPECT_EQ(read->last_seq, 2u);
}

TEST_F(WalTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadWal(path_).status().code(), StatusCode::kNotFound);
}

TEST_F(WalTest, TornTailIsDiscardedAndSequenceContinues) {
  {
    auto wal = WalWriter::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "alpha").ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "beta").ok());
  }
  // Crash mid-append: chop bytes off the last frame.
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 3);

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->torn_tail);
  EXPECT_GT(read->torn_bytes, 0u);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "alpha");

  // Reopening truncates the tear and continues numbering after the last
  // intact record — the lost record's seq is reused, never skipped.
  auto wal = WalWriter::Open(path_);
  ASSERT_TRUE(wal.ok());
  auto seq = (*wal)->Append(WalRecordType::kInsert, "beta-again");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 2u);
  auto reread = ReadWal(path_);
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE(reread->torn_tail);
  ASSERT_EQ(reread->records.size(), 2u);
  EXPECT_EQ(reread->records[1].payload, "beta-again");
}

TEST_F(WalTest, CorruptedByteInvalidatesFrameCrc) {
  {
    auto wal = WalWriter::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "alpha").ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "beta").ok());
  }
  // Flip one payload byte in the second frame.
  const auto size = std::filesystem::file_size(path_);
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size - 2));
    f.put('!');
  }
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "alpha");
}

TEST_F(WalTest, GroupCommitSyncsEveryN) {
  WalWriterOptions options;
  options.sync_every = 3;
  auto wal = WalWriter::Open(path_, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "a").ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "b").ok());
  EXPECT_EQ((*wal)->last_synced_seq(), 0u);  // below the group width
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "c").ok());
  EXPECT_EQ((*wal)->last_synced_seq(), 3u);  // auto group fsync
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "d").ok());
  EXPECT_EQ((*wal)->last_synced_seq(), 3u);
  ASSERT_TRUE((*wal)->Sync().ok());  // explicit barrier
  EXPECT_EQ((*wal)->last_synced_seq(), 4u);
}

TEST_F(WalTest, CrashDiscardsUnsyncedRecords) {
  WalWriterOptions options;
  options.sync_every = 10;
  auto wal = WalWriter::Open(path_, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "durable").ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "volatile-1").ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "volatile-2").ok());
  ASSERT_TRUE((*wal)->CrashDiscardUnsynced().ok());
  EXPECT_TRUE((*wal)->broken());
  EXPECT_EQ((*wal)
                ->Append(WalRecordType::kInsert, "after crash")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "durable");
}

TEST_F(WalTest, TruncateEmptiesLogButKeepsNumbering) {
  auto wal = WalWriter::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "a").ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "b").ok());
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_EQ(std::filesystem::file_size(path_), 0u);
  auto seq = (*wal)->Append(WalRecordType::kInsert, "c");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 3u);
}

TEST_F(WalTest, FirstSeqKeepsNumberingMonotoneAcrossReopen) {
  // A truncated (checkpointed) log scans as empty; the owner passes its
  // checkpoint seq so new records never reuse covered numbers.
  {
    auto wal = WalWriter::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "a").ok());
    ASSERT_TRUE((*wal)->Truncate().ok());
  }
  WalWriterOptions options;
  options.first_seq = 2;
  auto wal = WalWriter::Open(path_, options);
  ASSERT_TRUE(wal.ok());
  auto seq = (*wal)->Append(WalRecordType::kInsert, "b");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 2u);
}

TEST_F(WalTest, InjectedAppendFailureLeavesWriterUsable) {
  auto wal = WalWriter::Open(path_);
  ASSERT_TRUE(wal.ok());
  FaultSpec spec;
  spec.code = StatusCode::kIoError;
  spec.once = true;
  FaultInjector::Global().Arm("wal/append", spec);
  // Fails before any byte is written: the log tail is still known-good.
  EXPECT_FALSE((*wal)->Append(WalRecordType::kInsert, "dropped").ok());
  EXPECT_FALSE((*wal)->broken());
  auto seq = (*wal)->Append(WalRecordType::kInsert, "kept");
  ASSERT_TRUE(seq.ok());
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "kept");
}

TEST_F(WalTest, InjectedTornWriteBreaksWriterAndRecoversOnReopen) {
  auto wal = WalWriter::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "intact").ok());

  FaultSpec torn;
  torn.code = StatusCode::kIoError;
  torn.partial_fraction = 0.4;
  torn.once = true;
  FaultInjector::Global().Arm("wal/torn_write", torn);
  EXPECT_FALSE(
      (*wal)->Append(WalRecordType::kInsert, "this frame tears").ok());
  EXPECT_TRUE((*wal)->broken());
  EXPECT_EQ((*wal)->Append(WalRecordType::kInsert, "refused").status().code(),
            StatusCode::kFailedPrecondition);

  // The torn frame is on disk; recovery cuts it and keeps the prefix.
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "intact");

  auto reopened = WalWriter::Open(path_);
  ASSERT_TRUE(reopened.ok());
  auto seq = (*reopened)->Append(WalRecordType::kInsert, "after recovery");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 2u);
}

TEST_F(WalTest, InjectedFsyncFailureBreaksWriter) {
  WalWriterOptions options;
  options.sync_every = 2;
  auto wal = WalWriter::Open(path_, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "a").ok());
  FaultSpec spec;
  spec.code = StatusCode::kIoError;
  spec.once = true;
  FaultInjector::Global().Arm("wal/fsync", spec);
  // The second append triggers the group fsync, which fails: the bytes
  // may or may not be durable, so the writer fail-stops.
  EXPECT_FALSE((*wal)->Append(WalRecordType::kInsert, "b").ok());
  EXPECT_TRUE((*wal)->broken());
}

}  // namespace
}  // namespace mqa
