#include "storage/world.h"

#include <gtest/gtest.h>

#include <set>

#include "vector/distance.h"

namespace mqa {
namespace {

WorldConfig SmallConfig() {
  WorldConfig c;
  c.num_concepts = 12;
  c.latent_dim = 16;
  c.raw_image_dim = 32;
  c.seed = 5;
  return c;
}

TEST(WorldTest, CreateValidatesConfig) {
  WorldConfig c = SmallConfig();
  c.num_concepts = 0;
  EXPECT_FALSE(World::Create(c).ok());
  c = SmallConfig();
  c.latent_dim = 2;
  EXPECT_FALSE(World::Create(c).ok());
  c = SmallConfig();
  c.raw_image_dim = 8;  // < latent_dim: rendering not invertible
  EXPECT_FALSE(World::Create(c).ok());
  c = SmallConfig();
  c.adjectives_per_noun = 0;
  EXPECT_FALSE(World::Create(c).ok());
  EXPECT_TRUE(World::Create(SmallConfig()).ok());
}

TEST(WorldTest, ConceptNamesAreDistinctAndReadable) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  std::set<std::string> names;
  for (uint32_t c = 0; c < world->num_concepts(); ++c) {
    names.insert(world->ConceptName(c));
  }
  EXPECT_EQ(names.size(), world->num_concepts());
}

TEST(WorldTest, SiblingConceptsShareNoun) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  const auto& siblings = world->SiblingConcepts(0);
  EXPECT_GE(siblings.size(), 2u);  // adjectives_per_noun = 4 by default
  // All siblings end with the same noun word.
  const std::string name0 = world->ConceptName(siblings[0]);
  const std::string noun = name0.substr(name0.find(' ') + 1);
  for (uint32_t s : siblings) {
    const std::string name = world->ConceptName(s);
    EXPECT_EQ(name.substr(name.find(' ') + 1), noun);
  }
}

TEST(WorldTest, PrototypesAreUnitNormAndDistinct) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  for (uint32_t c = 0; c < world->num_concepts(); ++c) {
    const Vector& p = world->ConceptPrototype(c);
    EXPECT_NEAR(Norm(p.data(), p.size()), 1.0f, 1e-5);
  }
  // Different concepts are farther apart than zero.
  EXPECT_GT(L2Sq(world->ConceptPrototype(0).data(),
                 world->ConceptPrototype(5).data(), 16),
            0.1f);
}

TEST(WorldTest, MakeObjectStructure) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  Rng rng(1);
  const Object obj = world->MakeObject(3, &rng);
  EXPECT_EQ(obj.concept_id, 3u);
  ASSERT_EQ(obj.modalities.size(), 2u);
  EXPECT_EQ(obj.modalities[0].type, ModalityType::kImage);
  EXPECT_EQ(obj.modalities[0].features.size(), 32u);
  EXPECT_EQ(obj.modalities[1].type, ModalityType::kText);
  EXPECT_FALSE(obj.modalities[1].text.empty());
  EXPECT_NEAR(Norm(obj.latent.data(), obj.latent.size()), 1.0f, 1e-5);
  // Caption mentions the concept's noun.
  const std::string name = world->ConceptName(3);
  const std::string noun = name.substr(name.find(' ') + 1);
  EXPECT_NE(obj.modalities[1].text.find(noun), std::string::npos);
}

TEST(WorldTest, ObjectsOfSameConceptClusterInLatentSpace) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  Rng rng(2);
  const Object a = world->MakeObject(0, &rng);
  const Object b = world->MakeObject(0, &rng);
  const Object c = world->MakeObject(7, &rng);
  const float same = L2Sq(a.latent.data(), b.latent.data(), 16);
  const float diff = L2Sq(a.latent.data(), c.latent.data(), 16);
  EXPECT_LT(same, diff);
}

TEST(WorldTest, ExtraModalitiesAppearInSchemaAndObjects) {
  WorldConfig c = SmallConfig();
  c.num_extra_modalities = 2;
  auto world = World::Create(c);
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->num_modalities(), 4u);
  const ModalitySchema schema = world->Schema();
  ASSERT_EQ(schema.types.size(), 4u);
  EXPECT_EQ(schema.types[2], ModalityType::kAudio);
  Rng rng(3);
  const Object obj = world->MakeObject(0, &rng);
  EXPECT_EQ(obj.modalities.size(), 4u);
  EXPECT_FALSE(obj.modalities[3].features.empty());
}

TEST(WorldTest, GenerateCorpusCoversAllConcepts) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  auto kb = world->GenerateCorpus(120, "corpus");
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(kb->size(), 120u);
  std::set<uint32_t> concepts;
  for (const Object& obj : kb->objects()) concepts.insert(obj.concept_id);
  EXPECT_EQ(concepts.size(), world->num_concepts());
}

TEST(WorldTest, GenerateCorpusIsDeterministic) {
  auto w1 = World::Create(SmallConfig());
  auto w2 = World::Create(SmallConfig());
  ASSERT_TRUE(w1.ok() && w2.ok());
  auto kb1 = w1->GenerateCorpus(30);
  auto kb2 = w2->GenerateCorpus(30);
  ASSERT_TRUE(kb1.ok() && kb2.ok());
  for (uint64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(kb1->at(i).latent, kb2->at(i).latent);
    EXPECT_EQ(kb1->at(i).modalities[1].text, kb2->at(i).modalities[1].text);
  }
}

TEST(WorldTest, TextToLatentRecoversConceptDirection) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  // A query naming concept 0 should land closer to prototype 0 than to a
  // non-sibling concept's prototype.
  const std::string name = world->ConceptName(0);
  const Vector latent = world->TextToLatent("show me " + name + " please");
  float d_own = L2Sq(latent.data(), world->ConceptPrototype(0).data(), 16);
  // Find a concept with a different noun.
  uint32_t other = 0;
  const auto& siblings = world->SiblingConcepts(0);
  for (uint32_t c = 0; c < world->num_concepts(); ++c) {
    if (std::find(siblings.begin(), siblings.end(), c) == siblings.end()) {
      other = c;
      break;
    }
  }
  float d_other =
      L2Sq(latent.data(), world->ConceptPrototype(other).data(), 16);
  EXPECT_LT(d_own, d_other);
}

TEST(WorldTest, FeaturesToLatentInvertsRendering) {
  WorldConfig c = SmallConfig();
  c.modality_noise = {0.0f, 0.0f};  // noise-free rendering
  auto world = World::Create(c);
  ASSERT_TRUE(world.ok());
  Rng rng(4);
  const Object obj = world->MakeObject(2, &rng);
  const Vector recovered =
      world->FeaturesToLatent(obj.modalities[0].features, 0);
  EXPECT_NEAR(L2Sq(recovered.data(), obj.latent.data(), 16), 0.0f, 1e-4);
}

TEST(WorldTest, FeaturesToLatentWrongSizeGivesZeroVector) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  const Vector out = world->FeaturesToLatent({1.0f, 2.0f}, 0);
  EXPECT_EQ(out.size(), 16u);
  EXPECT_FLOAT_EQ(Norm(out.data(), out.size()), 0.0f);
}

TEST(WorldTest, MakeTextQueryTargetsConcept) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  Rng rng(6);
  const TextQuery q = world->MakeTextQuery(4, &rng);
  EXPECT_EQ(q.concept_id, 4u);
  EXPECT_EQ(q.target_latent, world->ConceptPrototype(4));
  const std::string name = world->ConceptName(4);
  EXPECT_NE(q.text.find(name), std::string::npos);
}

TEST(WorldTest, ModificationChangeAdjectiveKeepsNounIdentity) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  Rng rng(8);
  // Force a change-adjective modification by retrying.
  ModificationSpec mod;
  for (int i = 0; i < 100; ++i) {
    mod = world->MakeModification(0, &rng);
    if (mod.kind == ModificationKind::kChangeAdjective) break;
  }
  ASSERT_EQ(mod.kind, ModificationKind::kChangeAdjective);
  EXPECT_NE(mod.target_concept, 0u);
  // Target concept is a sibling (same noun).
  const auto& siblings = world->SiblingConcepts(0);
  EXPECT_NE(std::find(siblings.begin(), siblings.end(), mod.target_concept),
            siblings.end());

  const Object obj = world->MakeObject(0, &rng);
  const Vector target = world->ModifiedTarget(obj, mod);
  EXPECT_NEAR(Norm(target.data(), target.size()), 1.0f, 1e-5);
  // Modified target is closer to the new concept's prototype than the old.
  const float d_new =
      L2Sq(target.data(), world->ConceptPrototype(mod.target_concept).data(),
           16);
  const float d_old =
      L2Sq(target.data(), world->ConceptPrototype(0).data(), 16);
  EXPECT_LT(d_new, d_old);
}

TEST(WorldTest, ModificationRefineSameReturnsSelectedLatent) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  Rng rng(9);
  ModificationSpec mod;
  mod.kind = ModificationKind::kRefineSame;
  mod.target_concept = 3;
  const Object obj = world->MakeObject(3, &rng);
  EXPECT_EQ(world->ModifiedTarget(obj, mod), obj.latent);
}

TEST(WorldTest, GroundTruthIsSortedExactAndExcludes) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  auto kb = world->GenerateCorpus(100);
  ASSERT_TRUE(kb.ok());
  const Vector& target = world->ConceptPrototype(0);
  const auto gt = world->GroundTruth(*kb, target, 10);
  ASSERT_EQ(gt.size(), 10u);
  // Distances are non-decreasing.
  float prev = -1.0f;
  for (uint32_t id : gt) {
    const float d = L2Sq(target.data(), kb->at(id).latent.data(), 16);
    EXPECT_GE(d, prev);
    prev = d;
  }
  // Exclusion removes the excluded id.
  const auto gt_ex = world->GroundTruth(*kb, target, 10, gt[0]);
  EXPECT_EQ(std::find(gt_ex.begin(), gt_ex.end(), gt[0]), gt_ex.end());
}

TEST(WorldTest, GroundTruthMostlyMatchesQueryConcept) {
  auto world = World::Create(SmallConfig());
  ASSERT_TRUE(world.ok());
  auto kb = world->GenerateCorpus(600);
  ASSERT_TRUE(kb.ok());
  const auto gt = world->GroundTruth(*kb, world->ConceptPrototype(2), 10);
  const auto& siblings = world->SiblingConcepts(2);
  size_t exact = 0;
  size_t same_noun = 0;
  for (uint32_t id : gt) {
    const uint32_t c = kb->at(id).concept_id;
    if (c == 2u) ++exact;
    if (std::find(siblings.begin(), siblings.end(), c) != siblings.end()) {
      ++same_noun;
    }
  }
  // The exact concept dominates, and everything close at least shares the
  // noun (sibling concepts overlap by construction: half the latent space).
  EXPECT_GE(exact, 4u);
  EXPECT_GE(same_noun, 9u);
}

TEST(WorldTest, RenderFeaturesRoundTripsThroughInverse) {
  WorldConfig c = SmallConfig();
  c.modality_noise = {0.0f, 0.0f};
  auto world = World::Create(c);
  ASSERT_TRUE(world.ok());
  Rng rng(10);
  const Vector& latent = world->ConceptPrototype(1);
  const auto features = world->RenderFeatures(latent, 0, &rng);
  EXPECT_EQ(features.size(), 32u);
  const Vector back = world->FeaturesToLatent(features, 0);
  EXPECT_NEAR(L2Sq(back.data(), latent.data(), 16), 0.0f, 1e-4);
}

}  // namespace
}  // namespace mqa
