#include "core/session.h"

#include <gtest/gtest.h>

#include "core_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto c = Coordinator::Create(SmallConfig());
    ASSERT_TRUE(c.ok());
    coordinator_ = c->release();
  }
  static void TearDownTestSuite() {
    delete coordinator_;
    coordinator_ = nullptr;
  }

  static Coordinator* coordinator_;
};

Coordinator* SessionTest::coordinator_ = nullptr;

TEST_F(SessionTest, TwoRoundRefinementFlow) {
  Session session(coordinator_);
  const std::string concept_name = coordinator_->world().ConceptName(0);
  auto t1 = session.Ask("i would like some images of " + concept_name);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(session.rounds(), 1u);
  ASSERT_FALSE(session.last_results().empty());
  EXPECT_FALSE(session.selection().has_value());

  ASSERT_TRUE(session.Select(0).ok());
  EXPECT_EQ(session.selection(), session.last_results()[0].id);

  auto t2 = session.Ask("more like this one please");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(session.rounds(), 2u);
  EXPECT_FALSE(t2->items.empty());
  session.Reset();
}

TEST_F(SessionTest, SelectValidatesRank) {
  Session session(coordinator_);
  EXPECT_FALSE(session.Select(0).ok());  // nothing retrieved yet
  auto t1 = session.Ask("find " + coordinator_->world().ConceptName(1));
  ASSERT_TRUE(t1.ok());
  EXPECT_TRUE(session.Select(t1->items.size() - 1).ok());
  EXPECT_FALSE(session.Select(t1->items.size()).ok());
  session.Reset();
}

TEST_F(SessionTest, AskWithImageUsesUpload) {
  Session session(coordinator_);
  // "Upload" an image taken from a knowledge-base object of concept 2.
  uint64_t source = 0;
  for (const Object& obj : coordinator_->kb().objects()) {
    if (obj.concept_id == 2u) {
      source = obj.id;
      break;
    }
  }
  const Payload image = coordinator_->kb().at(source).modalities[0];
  auto turn = session.AskWithImage("find more items like this", image);
  ASSERT_TRUE(turn.ok());
  ASSERT_FALSE(turn->items.empty());
  size_t matching = 0;
  for (const RetrievedItem& item : turn->items) {
    if (coordinator_->kb().at(item.id).concept_id == 2u) ++matching;
  }
  EXPECT_GE(matching, 3u);
  session.Reset();
}

TEST_F(SessionTest, ResetClearsEverything) {
  Session session(coordinator_);
  ASSERT_TRUE(
      session.Ask("find " + coordinator_->world().ConceptName(3)).ok());
  ASSERT_TRUE(session.Select(0).ok());
  session.Reset();
  EXPECT_EQ(session.rounds(), 0u);
  EXPECT_TRUE(session.last_results().empty());
  EXPECT_FALSE(session.selection().has_value());
}

TEST_F(SessionTest, SelectionPersistsAcrossRounds) {
  Session session(coordinator_);
  ASSERT_TRUE(
      session.Ask("find " + coordinator_->world().ConceptName(4)).ok());
  ASSERT_TRUE(session.Select(0).ok());
  const uint64_t selected = *session.selection();
  ASSERT_TRUE(session.Ask("make it different").ok());
  EXPECT_EQ(session.selection(), selected);  // still active
  session.Reset();
}

}  // namespace
}  // namespace mqa
