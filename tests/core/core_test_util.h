#ifndef MQA_TESTS_CORE_CORE_TEST_UTIL_H_
#define MQA_TESTS_CORE_CORE_TEST_UTIL_H_

#include "core/config.h"

namespace mqa::testing {

/// A small, fast system configuration shared by the core tests.
inline MqaConfig SmallConfig() {
  MqaConfig config;
  config.world.num_concepts = 12;
  config.world.latent_dim = 16;
  config.world.raw_image_dim = 32;
  config.world.seed = 5;
  config.corpus_size = 600;
  config.embedding_dim = 16;
  config.num_training_triplets = 400;
  config.index.algorithm = "mqa-hybrid";
  config.index.graph.max_degree = 12;
  config.search.k = 5;
  config.search.beam_width = 48;
  return config;
}

}  // namespace mqa::testing

#endif  // MQA_TESTS_CORE_CORE_TEST_UTIL_H_
