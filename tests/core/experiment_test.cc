#include "core/experiment.h"

#include <gtest/gtest.h>

#include "retrieval/factory.h"

namespace mqa {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig wc;
    wc.num_concepts = 12;
    wc.latent_dim = 16;
    wc.raw_image_dim = 32;
    wc.seed = 21;
    auto corpus = MakeExperimentCorpus(wc, 600, "sim-clip", 16, true, 400);
    ASSERT_TRUE(corpus.ok());
    corpus_ = new ExperimentCorpus(std::move(corpus).Value());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static ExperimentCorpus* corpus_;
};

ExperimentCorpus* ExperimentTest::corpus_ = nullptr;

TEST_F(ExperimentTest, CorpusIsFullyPopulated) {
  EXPECT_EQ(corpus_->kb->size(), 600u);
  EXPECT_EQ(corpus_->represented.store->size(), 600u);
  EXPECT_EQ(corpus_->represented.labels.size(), 600u);
  EXPECT_EQ(corpus_->represented.weights.size(), 2u);
}

TEST_F(ExperimentTest, EncodeTextQueryFillsCrossModally) {
  auto filled = EncodeTextQuery(*corpus_, "hello", true);
  auto unfilled = EncodeTextQuery(*corpus_, "hello", false);
  ASSERT_TRUE(filled.ok() && unfilled.ok());
  EXPECT_FALSE(filled->modalities.parts[0].empty());
  EXPECT_TRUE(unfilled->modalities.parts[0].empty());
}

TEST_F(ExperimentTest, MetricsBehave) {
  std::vector<Neighbor> results = {{0.1f, 0}, {0.2f, 1}};
  // Objects 0 and 1 have concepts 0 and 1 (round-robin corpus).
  EXPECT_DOUBLE_EQ(ConceptPrecision(results, *corpus_->kb, 0), 0.5);
  EXPECT_DOUBLE_EQ(ConceptPrecision({}, *corpus_->kb, 0), 0.0);
  EXPECT_DOUBLE_EQ(GroundTruthHitRate(results, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(GroundTruthHitRate(results, {5, 6}), 0.0);
  EXPECT_DOUBLE_EQ(GroundTruthHitRate(results, {1, 7}), 0.5);
}

TEST_F(ExperimentTest, NdcgRewardsEarlyHits) {
  const std::vector<uint32_t> gt = {1, 2, 3};
  // Perfect ordering.
  EXPECT_DOUBLE_EQ(Ndcg({{0.1f, 1}, {0.2f, 2}, {0.3f, 3}}, gt), 1.0);
  // Hits later in the list score less than hits at the top.
  const double top = Ndcg({{0.1f, 1}, {0.2f, 8}, {0.3f, 9}}, gt);
  const double tail = Ndcg({{0.1f, 8}, {0.2f, 9}, {0.3f, 1}}, gt);
  EXPECT_GT(top, tail);
  EXPECT_GT(tail, 0.0);
  // No hits, or empty inputs.
  EXPECT_DOUBLE_EQ(Ndcg({{0.1f, 7}}, gt), 0.0);
  EXPECT_DOUBLE_EQ(Ndcg({}, gt), 0.0);
  EXPECT_DOUBLE_EQ(Ndcg({{0.1f, 1}}, {}), 0.0);
}

TEST_F(ExperimentTest, ReciprocalRankFindsFirstHit) {
  const std::vector<uint32_t> gt = {4, 5};
  EXPECT_DOUBLE_EQ(ReciprocalRank({{0.1f, 4}}, gt), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({{0.1f, 9}, {0.2f, 5}}, gt), 0.5);
  EXPECT_DOUBLE_EQ(
      ReciprocalRank({{0.1f, 9}, {0.2f, 8}, {0.3f, 4}}, gt), 1.0 / 3);
  EXPECT_DOUBLE_EQ(ReciprocalRank({{0.1f, 9}}, gt), 0.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({}, gt), 0.0);
}

TEST_F(ExperimentTest, DialogueSuiteProducesSaneMetrics) {
  IndexConfig index;
  index.algorithm = "mqa-hybrid";
  index.graph.max_degree = 12;
  auto fw = CreateRetrievalFramework("must", corpus_->represented.store,
                                     corpus_->represented.weights, index);
  ASSERT_TRUE(fw.ok());
  SearchParams params;
  params.k = 5;
  params.beam_width = 48;
  auto outcome = RunDialogueSuite(*corpus_, fw->get(), 12, 1, params);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->round1_precision, 0.5);
  EXPECT_GE(outcome->round2_precision, 0.0);
  EXPECT_LE(outcome->round1_precision, 1.0);
  EXPECT_LE(outcome->round2_precision, 1.0);
  EXPECT_GT(outcome->dist_comps, 0u);
  EXPECT_GT(outcome->round1_ms, 0.0);
}

TEST_F(ExperimentTest, DialogueIsDeterministicGivenSeed) {
  IndexConfig index;
  index.algorithm = "bruteforce";
  auto fw = CreateRetrievalFramework("must", corpus_->represented.store,
                                     corpus_->represented.weights, index);
  ASSERT_TRUE(fw.ok());
  SearchParams params;
  params.k = 5;
  auto a = RunDialogueSuite(*corpus_, fw->get(), 6, 7, params);
  auto b = RunDialogueSuite(*corpus_, fw->get(), 6, 7, params);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->round1_precision, b->round1_precision);
  EXPECT_DOUBLE_EQ(a->round2_precision, b->round2_precision);
  EXPECT_DOUBLE_EQ(a->round2_hit, b->round2_hit);
}

}  // namespace
}  // namespace mqa
