// Layout-migration golden tests: snapshots written by the old contiguous
// (unpadded) VectorStore layout must load into the padded, SIMD-aligned
// layout with byte-identical row contents and identical distances. The
// on-disk format is the contract; the in-memory stride is private.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/random.h"
#include "core/persistence.h"
#include "core_test_util.h"
#include "vector/multi_distance.h"
#include "vector/vector_store.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Serializes rows exactly as the pre-padding VectorStore::Save did:
/// magic, modality count, dims, row count, then tightly packed float rows
/// with no alignment padding. This is the golden v2 byte layout.
std::string LegacyStoreBytes(const VectorSchema& schema,
                             const std::vector<Vector>& rows) {
  std::ostringstream out(std::ios::binary);
  WritePod(out, static_cast<uint32_t>(0x4d514156));  // "MQAV"
  WritePod(out, static_cast<uint32_t>(schema.num_modalities()));
  for (uint32_t d : schema.dims) WritePod(out, d);
  WritePod(out, static_cast<uint64_t>(rows.size()));
  for (const Vector& row : rows) {
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
  return out.str();
}

TEST(LayoutMigrationTest, LegacyBytesLoadIntoPaddedStore) {
  VectorSchema schema;
  schema.dims = {5, 11};  // deliberately not multiples of the row stride
  Rng rng(31);
  std::vector<Vector> rows;
  for (int i = 0; i < 37; ++i) {
    Vector v(schema.TotalDim());
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    rows.push_back(v);
  }
  std::istringstream in(LegacyStoreBytes(schema, rows), std::ios::binary);
  auto loaded = VectorStore::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->size(), rows.size());
  EXPECT_EQ(loaded->row_dim(), 16u);
  EXPECT_GE(loaded->row_stride(), loaded->row_dim());
  for (uint32_t id = 0; id < rows.size(); ++id) {
    // Byte-identical row contents despite the new in-memory stride.
    EXPECT_EQ(std::memcmp(loaded->data(id), rows[id].data(),
                          rows[id].size() * sizeof(float)),
              0)
        << "row " << id;
    // Rows land on the SIMD alignment boundary.
    EXPECT_EQ(reinterpret_cast<uintptr_t>(loaded->data(id)) %
                  kSimdAlignment,
              0u)
        << "row " << id;
  }

  // Distances through the padded layout match a store built by Add().
  VectorStore fresh(schema);
  for (const Vector& row : rows) ASSERT_TRUE(fresh.Add(row).ok());
  auto wd = WeightedMultiDistance::Create(schema, {1.0f, 2.0f});
  const Vector& q = rows[0];
  for (uint32_t id = 0; id < rows.size(); ++id) {
    EXPECT_EQ(wd->Exact(q.data(), loaded->data(id)),
              wd->Exact(q.data(), fresh.data(id)))
        << "row " << id;
  }
}

TEST(LayoutMigrationTest, SaveIsByteIdenticalToLegacyFormat) {
  VectorSchema schema;
  schema.dims = {3, 7};
  Rng rng(32);
  std::vector<Vector> rows;
  VectorStore store(schema);
  for (int i = 0; i < 9; ++i) {
    Vector v(schema.TotalDim());
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    rows.push_back(v);
    ASSERT_TRUE(store.Add(v).ok());
  }
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(store.Save(out).ok());
  // The padded store writes exactly the unpadded legacy bytes: old
  // binaries can read new snapshots and vice versa.
  EXPECT_EQ(out.str(), LegacyStoreBytes(schema, rows));
}

class SystemMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mqa_layout_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(SystemMigrationTest, SnapshotRoundTripPreservesDistances) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 300;
  auto original = Coordinator::Create(config);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveSystemState(**original, dir_.string()).ok());
  auto restored = LoadSystemState(dir_.string());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  const VectorStore& before = (*original)->store();
  const VectorStore& after = (*restored)->store();
  ASSERT_EQ(before.size(), after.size());
  ASSERT_EQ(before.row_dim(), after.row_dim());

  auto wd = WeightedMultiDistance::Create(before.schema(),
                                          (*original)->weights());
  const float* q = before.data(0);
  for (uint32_t id = 0; id < before.size(); ++id) {
    EXPECT_EQ(std::memcmp(before.data(id), after.data(id),
                          before.row_dim() * sizeof(float)),
              0)
        << "row " << id;
    EXPECT_EQ(wd->Exact(q, before.data(id)), wd->Exact(q, after.data(id)))
        << "row " << id;
  }
}

}  // namespace
}  // namespace mqa
