// Live deletion through the coordinator: tombstoned objects vanish from
// retrieval immediately, compaction physically evicts them, and the
// compaction breaker contains a persistently failing compactor.

#include <gtest/gtest.h>

#include "common/fault.h"
#include "core/coordinator.h"
#include "core/persistence.h"
#include "core_test_util.h"

#include <filesystem>
#include <set>
#include <unistd.h>

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

std::set<uint64_t> RetrievedIds(const AnswerTurn& turn) {
  std::set<uint64_t> ids;
  for (const RetrievedItem& item : turn.items) ids.insert(item.id);
  return ids;
}

TEST(DeletionTest, RemovedObjectVanishesFromRetrieval) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 300;
  config.compaction.auto_compact = false;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());

  UserQuery query;
  query.text = "find " + (*c)->world().ConceptName(3);
  auto before = (*c)->Ask(query);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->items.empty());
  const uint64_t victim = before->items[0].id;

  ASSERT_TRUE((*c)->RemoveObject(victim).ok());
  EXPECT_EQ((*c)->kb().num_deleted(), 1u);
  EXPECT_FALSE((*c)->kb().Get(victim).ok());

  (*c)->ResetDialogue();
  auto after = (*c)->Ask(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->items.size(), before->items.size())
      << "tombstones must not shrink the result set";
  EXPECT_EQ(RetrievedIds(*after).count(victim), 0u);
}

TEST(DeletionTest, RemoveValidatesIdAndDoubleDelete) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 200;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->RemoveObject(200).code(), StatusCode::kNotFound);
  ASSERT_TRUE((*c)->RemoveObject(7).ok());
  EXPECT_EQ((*c)->RemoveObject(7).code(), StatusCode::kFailedPrecondition);
}

TEST(DeletionTest, CompactNowEvictsTombstonesInPlace) {
  MqaConfig config = SmallConfig();  // mqa-hybrid: the in-place splice path
  config.corpus_size = 300;
  config.compaction.auto_compact = false;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());

  for (uint64_t id = 0; id < 60; ++id) {
    ASSERT_TRUE((*c)->RemoveObject(id * 5).ok());
  }
  EXPECT_NEAR((*c)->GarbageRatio(), 0.2, 1e-9);

  ASSERT_TRUE((*c)->CompactNow().ok());
  EXPECT_EQ((*c)->kb().size(), 240u);
  EXPECT_EQ((*c)->kb().num_deleted(), 0u);
  EXPECT_EQ((*c)->store().size(), 240u);
  EXPECT_EQ((*c)->GarbageRatio(), 0.0);
  EXPECT_EQ((*c)->compactions(), 1u);

  // The compacted system still answers with full result sets.
  for (uint32_t concept_id = 0; concept_id < 4; ++concept_id) {
    UserQuery query;
    query.text = "find " + (*c)->world().ConceptName(concept_id);
    auto turn = (*c)->Ask(query);
    ASSERT_TRUE(turn.ok()) << turn.status().ToString();
    EXPECT_EQ(turn->items.size(), static_cast<size_t>(config.search.k));
    (*c)->ResetDialogue();
  }
  // A second compaction with nothing deleted is a no-op.
  ASSERT_TRUE((*c)->CompactNow().ok());
  EXPECT_EQ((*c)->compactions(), 1u);
}

TEST(DeletionTest, CompactNowRebuildsNonFlatIndexes) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 250;
  config.index.algorithm = "hnsw";  // no flat graph: the rebuild path
  config.compaction.auto_compact = false;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  for (uint64_t id = 0; id < 50; ++id) {
    ASSERT_TRUE((*c)->RemoveObject(id).ok());
  }
  ASSERT_TRUE((*c)->CompactNow().ok());
  EXPECT_EQ((*c)->kb().size(), 200u);
  UserQuery query;
  query.text = "find " + (*c)->world().ConceptName(1);
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok());
  EXPECT_EQ(turn->items.size(), static_cast<size_t>(config.search.k));
}

TEST(DeletionTest, AutoCompactTriggersAtGarbageThreshold) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 200;
  config.compaction.garbage_ratio = 0.1;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  for (uint64_t id = 0; id < 20; ++id) {
    ASSERT_TRUE((*c)->RemoveObject(id).ok());
  }
  // Crossing 10% garbage kicked compaction in automatically.
  EXPECT_GE((*c)->compactions(), 1u);
  EXPECT_EQ((*c)->kb().num_deleted(), 0u);
  EXPECT_EQ((*c)->kb().size(), 180u);
}

TEST(DeletionTest, CompactionBreakerContainsPersistentFailure) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 200;
  config.compaction.garbage_ratio = 0.01;
  config.compaction.breaker_failure_threshold = 3;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());

  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  FaultInjector::Global().Arm("compaction/step", spec);
  for (uint64_t id = 0; id < 6; ++id) {
    // Deletes keep succeeding: auto-compaction failure only degrades.
    ASSERT_TRUE((*c)->RemoveObject(id).ok());
  }
  EXPECT_EQ((*c)->compactions(), 0u);
  EXPECT_EQ((*c)->kb().num_deleted(), 6u);
  EXPECT_EQ((*c)->compaction_breaker_state(), BreakerState::kOpen);
  EXPECT_NE((*c)->monitor().Render().find("auto-compaction failed"),
            std::string::npos);

  // Retrieval kept working through the whole episode (tombstones only).
  UserQuery query;
  query.text = "find " + (*c)->world().ConceptName(2);
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok());
  EXPECT_EQ(turn->items.size(), static_cast<size_t>(config.search.k));

  // Once the fault clears, a manual compaction (not breaker-gated)
  // drains the backlog.
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE((*c)->CompactNow().ok());
  EXPECT_EQ((*c)->kb().size(), 194u);
}

TEST(DeletionTest, FailedCompactionIsErrorAtomic) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 200;
  config.compaction.auto_compact = false;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  for (uint64_t id = 0; id < 40; ++id) {
    ASSERT_TRUE((*c)->RemoveObject(id).ok());
  }
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.skip_first = 1;  // survive the plan step, fail the staging step
  spec.once = true;
  FaultInjector::Global().Arm("compaction/step", spec);
  EXPECT_FALSE((*c)->CompactNow().ok());
  FaultInjector::Global().DisarmAll();

  // Nothing committed: sizes and tombstones exactly as before the attempt.
  EXPECT_EQ((*c)->kb().size(), 200u);
  EXPECT_EQ((*c)->kb().num_deleted(), 40u);
  EXPECT_EQ((*c)->store().size(), 200u);
  UserQuery query;
  query.text = "find " + (*c)->world().ConceptName(0);
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok());
  EXPECT_EQ(turn->items.size(), static_cast<size_t>(config.search.k));

  // And the interrupted compaction is retryable.
  ASSERT_TRUE((*c)->CompactNow().ok());
  EXPECT_EQ((*c)->kb().size(), 160u);
}

TEST(DeletionTest, TombstonesSurvivePersistenceRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("mqa_tombstone_persist_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  MqaConfig config = SmallConfig();
  config.corpus_size = 250;
  config.compaction.auto_compact = false;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());

  UserQuery query;
  query.text = "find " + (*c)->world().ConceptName(5);
  auto before = (*c)->Ask(query);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->items.empty());
  const uint64_t victim = before->items[0].id;
  ASSERT_TRUE((*c)->RemoveObject(victim).ok());

  ASSERT_TRUE(SaveSystemState(**c, dir.string()).ok());
  auto restored = LoadSystemState(dir.string());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->kb().num_deleted(), 1u);
  EXPECT_FALSE((*restored)->kb().Get(victim).ok());

  auto after = (*restored)->Ask(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(RetrievedIds(*after).count(victim), 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mqa
