#include "core/represent.h"

#include <gtest/gtest.h>

#include "encoder/sim_encoders.h"

namespace mqa {
namespace {

class RepresentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorldConfig c;
    c.num_concepts = 10;
    c.latent_dim = 16;
    c.raw_image_dim = 32;
    c.seed = 3;
    auto world = World::Create(c);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<World>(std::move(world).Value());
    auto kb = world_->GenerateCorpus(300);
    ASSERT_TRUE(kb.ok());
    kb_ = std::make_unique<KnowledgeBase>(std::move(kb).Value());
    auto encoders = MakeSimEncoderSet(world_.get(), "sim-clip", 16);
    ASSERT_TRUE(encoders.ok());
    encoders_ = std::make_unique<EncoderSet>(std::move(encoders).Value());
  }

  std::unique_ptr<World> world_;
  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<EncoderSet> encoders_;
};

TEST_F(RepresentTest, EncodesEveryObject) {
  auto rep = RepresentCorpus(*kb_, *encoders_, /*learn_weights=*/false,
                             WeightLearnerConfig{}, 0);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->store->size(), kb_->size());
  EXPECT_EQ(rep->labels.size(), kb_->size());
  EXPECT_EQ(rep->store->schema().dims, (std::vector<uint32_t>{16, 16}));
  EXPECT_EQ(rep->weights, (std::vector<float>{1.0f, 1.0f}));
  EXPECT_EQ(rep->labels[0], kb_->at(0).concept_id);
}

TEST_F(RepresentTest, LearnsNonUniformWeightsOnSkewedWorld) {
  auto rep = RepresentCorpus(*kb_, *encoders_, /*learn_weights=*/true,
                             WeightLearnerConfig{}, 600);
  ASSERT_TRUE(rep.ok());
  ASSERT_EQ(rep->weights.size(), 2u);
  EXPECT_NE(rep->weights[0], rep->weights[1]);
  EXPECT_GT(rep->train_report.triplet_accuracy, 0.7);
  EXPECT_GT(rep->train_report.epochs_run, 0u);
  // Weights sum preserved by projection.
  EXPECT_NEAR(rep->weights[0] + rep->weights[1], 2.0f, 1e-3);
}

TEST_F(RepresentTest, RejectsEmptyKb) {
  KnowledgeBase empty(kb_->schema());
  EXPECT_FALSE(RepresentCorpus(empty, *encoders_, false,
                               WeightLearnerConfig{}, 0)
                   .ok());
}

TEST_F(RepresentTest, RejectsMismatchedEncoderSet) {
  // An encoder set from a 3-modality world does not match a 2-modality kb.
  WorldConfig c;
  c.num_concepts = 4;
  c.latent_dim = 16;
  c.raw_image_dim = 32;
  c.num_extra_modalities = 1;
  auto other_world = World::Create(c);
  ASSERT_TRUE(other_world.ok());
  auto other_encoders = MakeSimEncoderSet(&*other_world, "sim-clip", 16);
  ASSERT_TRUE(other_encoders.ok());
  EXPECT_FALSE(RepresentCorpus(*kb_, *other_encoders, false,
                               WeightLearnerConfig{}, 0)
                   .ok());
}

}  // namespace
}  // namespace mqa
