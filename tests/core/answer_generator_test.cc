#include "core/answer_generator.h"

#include <gtest/gtest.h>

#include "llm/sim_llm.h"

namespace mqa {
namespace {

std::vector<RetrievedItem> SomeItems() {
  return {{1, "object #1 | moldy cheese", 0.2f},
          {2, "object #2 | foggy clouds", 0.4f}};
}

TEST(AnswerGeneratorTest, GroundedAnswerWithLlm) {
  AnswerGenerator gen(std::make_unique<SimLlm>(1), 0.0f);
  EXPECT_TRUE(gen.has_llm());
  auto answer = gen.Generate("show me cheese", SomeItems());
  ASSERT_TRUE(answer.ok());
  EXPECT_NE(answer->find("moldy cheese"), std::string::npos);
  EXPECT_EQ(gen.history_size(), 1u);
  // The assembled prompt is observable.
  EXPECT_NE(gen.last_prompt().find("[CONTEXT]"), std::string::npos);
  EXPECT_NE(gen.last_prompt().find("[QUERY] show me cheese"),
            std::string::npos);
}

TEST(AnswerGeneratorTest, HistoryFlowsIntoNextPrompt) {
  AnswerGenerator gen(std::make_unique<SimLlm>(1), 0.0f);
  ASSERT_TRUE(gen.Generate("first question", SomeItems()).ok());
  ASSERT_TRUE(gen.Generate("second question", SomeItems()).ok());
  EXPECT_NE(gen.last_prompt().find("[HISTORY]"), std::string::npos);
  EXPECT_NE(gen.last_prompt().find("user: first question"),
            std::string::npos);
  gen.ClearHistory();
  EXPECT_EQ(gen.history_size(), 0u);
}

TEST(AnswerGeneratorTest, NoLlmFallsBackToFormattedListing) {
  AnswerGenerator gen(nullptr, 0.0f);
  EXPECT_FALSE(gen.has_llm());
  auto answer = gen.Generate("anything", SomeItems());
  ASSERT_TRUE(answer.ok());
  EXPECT_NE(answer->find("Retrieved 2 results"), std::string::npos);
  EXPECT_NE(answer->find("1) object #1"), std::string::npos);
}

TEST(AnswerGeneratorTest, NoLlmNoResults) {
  AnswerGenerator gen(nullptr, 0.0f);
  auto answer = gen.Generate("anything", {});
  ASSERT_TRUE(answer.ok());
  EXPECT_NE(answer->find("No results"), std::string::npos);
}

}  // namespace
}  // namespace mqa
