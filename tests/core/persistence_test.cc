// Full-system persistence: save a built system, reopen it without
// re-encoding or rebuilding, and keep answering identically.

#include "core/persistence.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/config_parser.h"
#include "core_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mqa_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, SaveLoadRoundTripsAnswers) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 400;
  auto original = Coordinator::Create(config);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveSystemState(**original, dir_.string()).ok());
  for (const char* file : {"config.txt", "kb.bin", "store.bin",
                           "weights.txt", "index.bin"}) {
    EXPECT_TRUE(std::filesystem::exists(dir_ / file)) << file;
  }

  auto restored = LoadSystemState(dir_.string());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->kb().size(), 400u);
  EXPECT_EQ((*restored)->weights(), (*original)->weights());
  // The index was restored, not rebuilt.
  EXPECT_NE((*restored)->monitor().Render().find("restored index from disk"),
            std::string::npos);

  // Identical queries produce identical retrievals.
  UserQuery query;
  query.text = "find " + (*original)->world().ConceptName(2);
  auto a = (*original)->Ask(query);
  auto b = (*restored)->Ask(query);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->items.size(), b->items.size());
  for (size_t i = 0; i < a->items.size(); ++i) {
    EXPECT_EQ(a->items[i].id, b->items[i].id);
  }
}

TEST_F(PersistenceTest, RestoredSystemSupportsLiveIngestion) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 300;
  auto original = Coordinator::Create(config);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveSystemState(**original, dir_.string()).ok());
  auto restored = LoadSystemState(dir_.string());
  ASSERT_TRUE(restored.ok());
  Rng rng(1);
  auto id =
      (*restored)->IngestObject((*restored)->world().MakeObject(0, &rng));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ((*restored)->kb().size(), 301u);
}

TEST_F(PersistenceTest, HnswSystemsRebuildOnLoad) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 300;
  config.index.algorithm = "hnsw";
  auto original = Coordinator::Create(config);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveSystemState(**original, dir_.string()).ok());
  EXPECT_FALSE(std::filesystem::exists(dir_ / "index.bin"));
  auto restored = LoadSystemState(dir_.string());
  ASSERT_TRUE(restored.ok());
  EXPECT_NE((*restored)->monitor().Render().find("rebuilt index hnsw"),
            std::string::npos);
  UserQuery query;
  query.text = "find " + (*restored)->world().ConceptName(1);
  EXPECT_TRUE((*restored)->Ask(query).ok());
}

TEST_F(PersistenceTest, LoadRejectsMissingOrCorruptedFiles) {
  EXPECT_FALSE(LoadSystemState((dir_ / "nonexistent").string()).ok());

  MqaConfig config = SmallConfig();
  config.corpus_size = 200;
  auto original = Coordinator::Create(config);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveSystemState(**original, dir_.string()).ok());
  // Corrupt the store.
  {
    std::ofstream out(dir_ / "store.bin", std::ios::binary);
    out << "corrupted";
  }
  EXPECT_FALSE(LoadSystemState(dir_.string()).ok());
}

TEST_F(PersistenceTest, ConfigTextRoundTrips) {
  MqaConfig config = SmallConfig();
  config.framework = "je";
  config.temperature = 0.75f;
  config.rewrite_vague_queries = false;
  auto parsed = ParseMqaConfigText(MqaConfigToText(config));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->framework, "je");
  EXPECT_NEAR(parsed->temperature, 0.75f, 1e-3);
  EXPECT_FALSE(parsed->rewrite_vague_queries);
  EXPECT_EQ(parsed->corpus_size, config.corpus_size);
  EXPECT_EQ(parsed->world.num_concepts, config.world.num_concepts);
}

}  // namespace
}  // namespace mqa
