// Crash-safe mutation: every acknowledged insert/delete survives a crash
// and replays on reopen; unacknowledged tail records are allowed to
// vanish; injected faults at every durability point leave the directory
// recoverable.

#include "core/durable_system.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/fault.h"
#include "core_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

MqaConfig DurableConfig() {
  MqaConfig config = SmallConfig();
  config.corpus_size = 200;
  return config;
}

class DurableRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mqa_durable_sys_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
};

Object FreshObject(DurableSystem& sys, uint32_t concept_id, Rng* rng) {
  return sys.coordinator()->world().MakeObject(concept_id, rng);
}

TEST_F(DurableRecoveryTest, BootstrapWritesInitialCheckpoint) {
  auto sys = DurableSystem::Open(DurableConfig(), dir_.string());
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_FALSE((*sys)->recovery_report().recovered);
  EXPECT_TRUE(std::filesystem::exists(dir_ / "CURRENT"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "snapshot-0" / "kb.bin"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "wal.log"));
  EXPECT_EQ((*sys)->applied_seq(), 0u);
}

TEST_F(DurableRecoveryTest, AckedMutationsSurviveCrash) {
  const MqaConfig config = DurableConfig();
  Rng rng(17);
  {
    auto sys = DurableSystem::Open(config, dir_.string());
    ASSERT_TRUE(sys.ok());
    for (int i = 0; i < 5; ++i) {
      auto id = (*sys)->Ingest(FreshObject(**sys, i % 12, &rng));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      EXPECT_EQ(*id, 200u + static_cast<uint64_t>(i));
    }
    ASSERT_TRUE((*sys)->Remove(3).ok());
    ASSERT_TRUE((*sys)->Remove(202).ok());
    // sync_every == 1: everything acked is already durable.
    EXPECT_EQ((*sys)->last_durable_seq(), 7u);
    ASSERT_TRUE((*sys)->CrashForTest().ok());
    EXPECT_EQ((*sys)->Ingest(FreshObject(**sys, 0, &rng)).status().code(),
              StatusCode::kFailedPrecondition);
  }

  auto sys = DurableSystem::Open(config, dir_.string());
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  const RecoveryReport& report = (*sys)->recovery_report();
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.snapshot_seq, 0u);
  EXPECT_EQ(report.replayed_inserts, 5u);
  EXPECT_EQ(report.replayed_removes, 2u);
  const Coordinator& c = *(*sys)->coordinator();
  EXPECT_EQ(c.kb().size(), 205u);
  EXPECT_EQ(c.kb().num_deleted(), 2u);
  EXPECT_TRUE(c.kb().IsDeleted(3));
  EXPECT_TRUE(c.kb().IsDeleted(202));

  // Recovered system serves and keeps mutating; seqs stay monotone.
  UserQuery query;
  query.text = "find " + c.world().ConceptName(1);
  auto turn = (*sys)->coordinator()->Ask(query);
  ASSERT_TRUE(turn.ok());
  auto id = (*sys)->Ingest(FreshObject(**sys, 2, &rng));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*sys)->applied_seq(), 8u);
}

TEST_F(DurableRecoveryTest, UnsyncedTailIsLostButDurablePrefixSurvives) {
  const MqaConfig config = DurableConfig();
  DurabilityOptions options;
  options.wal_sync_every = 4;  // group commit: acks lag the fsync
  Rng rng(23);
  {
    auto sys = DurableSystem::Open(config, dir_.string(), options);
    ASSERT_TRUE(sys.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*sys)->Ingest(FreshObject(**sys, i, &rng)).ok());
    }
    ASSERT_TRUE((*sys)->Flush().ok());  // seqs 1..3 now durable
    ASSERT_TRUE((*sys)->Ingest(FreshObject(**sys, 3, &rng)).ok());
    ASSERT_TRUE((*sys)->Ingest(FreshObject(**sys, 4, &rng)).ok());
    EXPECT_EQ((*sys)->applied_seq(), 5u);
    EXPECT_EQ((*sys)->last_durable_seq(), 3u);
    ASSERT_TRUE((*sys)->CrashForTest().ok());  // seqs 4, 5 vanish
  }

  auto sys = DurableSystem::Open(config, dir_.string(), options);
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ((*sys)->recovery_report().replayed_inserts, 3u);
  EXPECT_EQ((*sys)->coordinator()->kb().size(), 203u);
  // The next mutation reuses the discarded numbers (they were never
  // durable) and keeps going.
  auto id = (*sys)->Ingest(FreshObject(**sys, 5, &rng));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*sys)->applied_seq(), 4u);
}

TEST_F(DurableRecoveryTest, CompactionCheckpointsAndRecoversDenseIds) {
  const MqaConfig config = DurableConfig();
  DurabilityOptions options;
  options.checkpoint_garbage_ratio = 0.1;
  {
    auto sys = DurableSystem::Open(config, dir_.string(), options);
    ASSERT_TRUE(sys.ok());
    for (uint64_t id = 0; id < 20; ++id) {
      ASSERT_TRUE((*sys)->Remove(id).ok());
    }
    // Crossing 10% garbage compacted and checkpointed: ids re-densified,
    // WAL truncated, CURRENT pointing at the post-compaction snapshot.
    EXPECT_EQ((*sys)->coordinator()->kb().size(), 180u);
    EXPECT_EQ((*sys)->coordinator()->kb().num_deleted(), 0u);
    EXPECT_EQ(std::filesystem::file_size(dir_ / "wal.log"), 0u);
    ASSERT_TRUE((*sys)->CrashForTest().ok());
  }

  auto sys = DurableSystem::Open(config, dir_.string(), options);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_EQ((*sys)->recovery_report().replayed_inserts, 0u);
  EXPECT_EQ((*sys)->recovery_report().replayed_removes, 0u);
  EXPECT_EQ((*sys)->coordinator()->kb().size(), 180u);
  // Mutations in the new id space work immediately.
  ASSERT_TRUE((*sys)->Remove(0).ok());
  EXPECT_TRUE((*sys)->coordinator()->kb().IsDeleted(0));
  UserQuery query;
  query.text = "find " + (*sys)->coordinator()->world().ConceptName(4);
  auto turn = (*sys)->coordinator()->Ask(query);
  ASSERT_TRUE(turn.ok());
  EXPECT_EQ(turn->items.size(), static_cast<size_t>(config.search.k));
}

TEST_F(DurableRecoveryTest, TornWalWriteFailStopsAndRecovers) {
  const MqaConfig config = DurableConfig();
  Rng rng(31);
  {
    auto sys = DurableSystem::Open(config, dir_.string());
    ASSERT_TRUE(sys.ok());
    ASSERT_TRUE((*sys)->Ingest(FreshObject(**sys, 0, &rng)).ok());

    FaultSpec torn;
    torn.code = StatusCode::kIoError;
    torn.partial_fraction = 0.6;
    torn.once = true;
    FaultInjector::Global().Arm("wal/torn_write", torn);
    EXPECT_FALSE((*sys)->Ingest(FreshObject(**sys, 1, &rng)).ok());
    EXPECT_TRUE((*sys)->broken());
    EXPECT_EQ((*sys)->Remove(0).code(), StatusCode::kFailedPrecondition);
    // Reads stay up while mutations fail-stop.
    UserQuery query;
    query.text = "find " + (*sys)->coordinator()->world().ConceptName(0);
    EXPECT_TRUE((*sys)->coordinator()->Ask(query).ok());
  }

  auto sys = DurableSystem::Open(config, dir_.string());
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_GT((*sys)->recovery_report().torn_wal_bytes, 0u);
  EXPECT_EQ((*sys)->recovery_report().replayed_inserts, 1u);
  EXPECT_EQ((*sys)->coordinator()->kb().size(), 201u);
}

TEST_F(DurableRecoveryTest, FailedCheckpointAfterCompactionFailStops) {
  const MqaConfig config = DurableConfig();
  DurabilityOptions options;
  options.checkpoint_garbage_ratio = 0.1;
  {
    auto sys = DurableSystem::Open(config, dir_.string(), options);
    ASSERT_TRUE(sys.ok());
    FaultSpec spec;
    spec.code = StatusCode::kIoError;
    FaultInjector::Global().Arm("snapshot/write", spec);
    for (uint64_t id = 0; id < 20; ++id) {
      // Every delete is logged + applied, so every ack stands — including
      // the one whose post-compaction checkpoint failed.
      ASSERT_TRUE((*sys)->Remove(id).ok()) << id;
    }
    // The delete crossing the threshold compacted in memory, then could
    // not checkpoint: ids on disk and in memory diverged, so the system
    // fail-stopped further mutations.
    EXPECT_TRUE((*sys)->broken());
    EXPECT_EQ((*sys)->Remove(50).code(), StatusCode::kFailedPrecondition);
    EXPECT_NE((*sys)->coordinator()->monitor().Render().find(
                  "checkpoint failed after compaction"),
              std::string::npos);
    FaultInjector::Global().DisarmAll();
  }

  // Recovery: old snapshot + the logged removes reproduce the state in
  // the pre-compaction id space; nothing acknowledged is lost.
  auto sys = DurableSystem::Open(config, dir_.string(), options);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_EQ((*sys)->recovery_report().replayed_removes, 20u);
  EXPECT_EQ((*sys)->coordinator()->kb().live_size(), 180u);
  // The next delete crosses the threshold again and can compact +
  // checkpoint now that the disk is healthy.
  ASSERT_TRUE((*sys)->Remove(180).ok());
  EXPECT_EQ((*sys)->coordinator()->kb().num_deleted(), 0u);
  EXPECT_EQ((*sys)->coordinator()->kb().size(), 179u);
}

TEST_F(DurableRecoveryTest, CheckpointGarbageCollectsOldSnapshots) {
  const MqaConfig config = DurableConfig();
  DurabilityOptions options;
  options.keep_snapshots = 1;
  auto sys = DurableSystem::Open(config, dir_.string(), options);
  ASSERT_TRUE(sys.ok());
  Rng rng(41);
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE((*sys)->Ingest(FreshObject(**sys, round, &rng)).ok());
    ASSERT_TRUE((*sys)->Checkpoint().ok());
  }
  size_t snapshots = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0) ++snapshots;
  }
  // The live snapshot plus keep_snapshots == 1 predecessor.
  EXPECT_EQ(snapshots, 2u);
}

// The acceptance property: crash at *every* durability fault point, under
// a mixed insert/delete workload, and verify acknowledged mutations all
// survive recovery. MQA_CHAOS_SEED / MQA_CHAOS_ITERS widen the schedule
// in the nightly chaos soak.
TEST_F(DurableRecoveryTest, CrashAtEveryFaultPointLosesNoAckedMutation) {
  uint64_t seed = 97;
  if (const char* s = std::getenv("MQA_CHAOS_SEED")) {
    seed = std::strtoull(s, nullptr, 10);
  }
  int iters_per_point = 2;
  if (const char* s = std::getenv("MQA_CHAOS_ITERS")) {
    iters_per_point = std::max(1, std::atoi(s));
  }

  const MqaConfig config = DurableConfig();
  DurabilityOptions options;
  options.checkpoint_garbage_ratio = 0.15;
  auto sys = DurableSystem::Open(config, dir_.string(), options);
  ASSERT_TRUE(sys.ok());
  // The in-test oracle: live object count across acked mutations.
  uint64_t live = (*sys)->coordinator()->kb().live_size();

  const char* kPoints[] = {"wal/append", "wal/torn_write", "wal/fsync",
                           "snapshot/write", "compaction/step"};
  Rng rng(seed);
  for (const char* point : kPoints) {
    for (int iter = 0; iter < iters_per_point; ++iter) {
      FaultSpec spec;
      spec.code = StatusCode::kIoError;
      spec.skip_first = rng.NextUint64(4);  // vary the crash position
      spec.once = true;
      if (std::string(point) == "wal/torn_write") {
        spec.partial_fraction = 0.25 + 0.5 * rng.UniformDouble();
      }
      FaultInjector::Global().Arm(point, spec);

      for (int op = 0; op < 10; ++op) {
        if ((*sys)->broken()) break;
        if (op % 3 == 2) {
          const uint64_t kb_size = (*sys)->coordinator()->kb().size();
          const uint64_t victim = rng.NextUint64(kb_size);
          if ((*sys)->coordinator()->kb().IsDeleted(victim)) continue;
          if ((*sys)->Remove(victim).ok()) --live;
        } else {
          const uint32_t concept_id = static_cast<uint32_t>(rng.NextUint64(12));
          if ((*sys)->Ingest(FreshObject(**sys, concept_id, &rng)).ok()) {
            ++live;
          }
        }
      }
      FaultInjector::Global().DisarmAll();

      // Crash (conservatively dropping any unsynced tail — there is none
      // with sync_every == 1) and recover.
      (void)(*sys)->CrashForTest();
      sys = DurableSystem::Open(config, dir_.string(), options);
      ASSERT_TRUE(sys.ok())
          << "recovery failed after faulting " << point << ": "
          << sys.status().ToString();
      EXPECT_EQ((*sys)->coordinator()->kb().live_size(), live)
          << "acked mutations lost or resurrected after faulting " << point;

      // The recovered system must serve immediately.
      UserQuery query;
      query.text =
          "find " + (*sys)->coordinator()->world().ConceptName(
                        static_cast<uint32_t>(rng.NextUint64(12)));
      auto turn = (*sys)->coordinator()->Ask(query);
      ASSERT_TRUE(turn.ok()) << turn.status().ToString();
    }
  }
}

}  // namespace
}  // namespace mqa
