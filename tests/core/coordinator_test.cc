#include "core/coordinator.h"

#include <gtest/gtest.h>

#include "core_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

class CoordinatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto c = Coordinator::Create(SmallConfig());
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    coordinator_ = c->release();
  }
  static void TearDownTestSuite() {
    delete coordinator_;
    coordinator_ = nullptr;
  }

  void SetUp() override { coordinator_->ResetDialogue(); }

  static Coordinator* coordinator_;
};

Coordinator* CoordinatorTest::coordinator_ = nullptr;

TEST_F(CoordinatorTest, CreateEmitsAllOfflineMilestones) {
  const auto& history = coordinator_->monitor().history();
  ASSERT_GE(history.size(), 4u);
  EXPECT_EQ(history[0].stage, ComponentStage::kDataPreprocessing);
  EXPECT_EQ(history[1].stage, ComponentStage::kVectorRepresentation);
  EXPECT_EQ(history[2].stage, ComponentStage::kIndexConstruction);
  EXPECT_NE(coordinator_->monitor().Render().find("ingested 600 objects"),
            std::string::npos);
}

TEST_F(CoordinatorTest, WeightsWereLearned) {
  const auto& weights = coordinator_->weights();
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_GT(coordinator_->train_report().triplet_accuracy, 0.7);
  // Learned weights deviate from uniform on the skewed default world.
  EXPECT_NE(weights[0], weights[1]);
}

TEST_F(CoordinatorTest, AskTextQueryReturnsAnswerAndResults) {
  UserQuery query;
  query.text = "i would like some images of " +
               coordinator_->world().ConceptName(0);
  auto turn = coordinator_->Ask(query);
  ASSERT_TRUE(turn.ok()) << turn.status().ToString();
  EXPECT_EQ(turn->items.size(), 5u);
  EXPECT_FALSE(turn->answer.empty());
  // The grounded answer quotes retrieved descriptions.
  EXPECT_NE(turn->answer.find("object #"), std::string::npos);
  // Most results match the concept.
  size_t matching = 0;
  for (const RetrievedItem& item : turn->items) {
    if (coordinator_->kb().at(item.id).concept_id == 0u) ++matching;
  }
  EXPECT_GE(matching, 3u);
}

TEST_F(CoordinatorTest, AskWithSelectedObjectUsesItsImage) {
  UserQuery q1;
  q1.text = "show me " + coordinator_->world().ConceptName(3);
  auto t1 = coordinator_->Ask(q1);
  ASSERT_TRUE(t1.ok());
  ASSERT_FALSE(t1->items.empty());

  UserQuery q2;
  q2.text = "more like this one";
  q2.selected_object = t1->items[0].id;
  auto t2 = coordinator_->Ask(q2);
  ASSERT_TRUE(t2.ok());
  ASSERT_FALSE(t2->items.empty());
  // Results align with the selected object's concept.
  const uint32_t sel_concept =
      coordinator_->kb().at(t1->items[0].id).concept_id;
  size_t matching = 0;
  for (const RetrievedItem& item : t2->items) {
    if (coordinator_->kb().at(item.id).concept_id == sel_concept) ++matching;
  }
  EXPECT_GE(matching, 3u);
}

TEST_F(CoordinatorTest, AskRejectsEmptyQuery) {
  UserQuery empty;
  EXPECT_FALSE(coordinator_->Ask(empty).ok());
}

TEST_F(CoordinatorTest, AskRejectsUnknownSelection) {
  UserQuery query;
  query.text = "anything";
  query.selected_object = 999999;
  EXPECT_FALSE(coordinator_->Ask(query).ok());
}

TEST_F(CoordinatorTest, SetFrameworkSwitchesAndStillAnswers) {
  ASSERT_TRUE(coordinator_->SetFramework("mr").ok());
  EXPECT_EQ(coordinator_->framework()->name(), "mr");
  UserQuery query;
  query.text = "find " + coordinator_->world().ConceptName(1);
  EXPECT_TRUE(coordinator_->Ask(query).ok());
  ASSERT_TRUE(coordinator_->SetFramework("je").ok());
  EXPECT_TRUE(coordinator_->Ask(query).ok());
  EXPECT_FALSE(coordinator_->SetFramework("nope").ok());
  ASSERT_TRUE(coordinator_->SetFramework("must").ok());
}

TEST_F(CoordinatorTest, SetWeightsPropagatesToFramework) {
  ASSERT_TRUE(coordinator_->SetWeights({0.5f, 1.5f}).ok());
  EXPECT_NEAR(coordinator_->framework()->weights()[1], 1.5f, 1e-4);
  EXPECT_FALSE(coordinator_->SetWeights({1.0f}).ok());
  ASSERT_TRUE(coordinator_->SetWeights({1.0f, 1.0f}).ok());
}

TEST_F(CoordinatorTest, DialogueHistoryResets) {
  UserQuery query;
  query.text = "find " + coordinator_->world().ConceptName(2);
  ASSERT_TRUE(coordinator_->Ask(query).ok());
  EXPECT_GT(coordinator_->answer_generator()->history_size(), 0u);
  coordinator_->ResetDialogue();
  EXPECT_EQ(coordinator_->answer_generator()->history_size(), 0u);
}

TEST(CoordinatorConfigTest, RejectsBadConfigs) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 0;
  EXPECT_FALSE(Coordinator::Create(config).ok());
  config = SmallConfig();
  config.llm = "gpt-99";
  EXPECT_FALSE(Coordinator::Create(config).ok());
  config = SmallConfig();
  config.framework = "wrong";
  EXPECT_FALSE(Coordinator::Create(config).ok());
  config = SmallConfig();
  config.encoder_preset = "wrong";
  EXPECT_FALSE(Coordinator::Create(config).ok());
}

TEST(CoordinatorNoKbTest, AnswersFromLlmAloneWhenKbDisabled) {
  MqaConfig config = SmallConfig();
  config.enable_knowledge_base = false;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  UserQuery query;
  query.text = "show me moldy cheese";
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok());
  EXPECT_TRUE(turn->items.empty());
  // The ungrounded SimLlm admits it cannot verify.
  EXPECT_NE(turn->answer.find("cannot verify"), std::string::npos);
}

TEST(CoordinatorNoLlmTest, FormatsPlainResultsWithoutLlm) {
  MqaConfig config = SmallConfig();
  config.llm = "none";
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  UserQuery query;
  query.text = "find " + (*c)->world().ConceptName(0);
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok());
  EXPECT_NE(turn->answer.find("Retrieved 5 results"), std::string::npos);
}

TEST(CoordinatorNoLearningTest, UniformWeightsWhenLearningDisabled) {
  MqaConfig config = SmallConfig();
  config.learn_weights = false;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->weights(), (std::vector<float>{1.0f, 1.0f}));
}

}  // namespace
}  // namespace mqa
