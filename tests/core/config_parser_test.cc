#include "core/config_parser.h"

#include <gtest/gtest.h>

namespace mqa {
namespace {

TEST(ConfigParserTest, EmptyGivesDefaults) {
  auto config = ParseMqaConfig({});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->framework, "must");
  EXPECT_EQ(config->index.algorithm, "mqa-hybrid");
  EXPECT_TRUE(config->enable_knowledge_base);
}

TEST(ConfigParserTest, ParsesAllKeyKinds) {
  auto config = ParseMqaConfigText(
      "# a comment\n"
      "\n"
      "corpus_size = 1234\n"
      "framework = je\n"
      "index.algorithm = hnsw\n"
      "index.max_degree = 20\n"
      "search.k = 7\n"
      "temperature = 0.8\n"
      "learn_weights = false\n"
      "llm = none\n"
      "world.num_concepts = 9\n"
      "world.text_noise = 0.5\n"
      "kb_name = my-kb\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->corpus_size, 1234u);
  EXPECT_EQ(config->framework, "je");
  EXPECT_EQ(config->index.algorithm, "hnsw");
  EXPECT_EQ(config->index.graph.max_degree, 20u);
  EXPECT_EQ(config->index.hnsw.m, 10u);
  EXPECT_EQ(config->search.k, 7u);
  EXPECT_FLOAT_EQ(config->temperature, 0.8f);
  EXPECT_FALSE(config->learn_weights);
  EXPECT_EQ(config->llm, "none");
  EXPECT_EQ(config->world.num_concepts, 9u);
  EXPECT_FLOAT_EQ(config->world.modality_noise[1], 0.5f);
  EXPECT_EQ(config->kb_name, "my-kb");
}

TEST(ConfigParserTest, BooleanSpellings) {
  for (const char* t : {"true", "1", "yes", "on"}) {
    auto c = ParseMqaConfigText(std::string("learn_weights = ") + t);
    ASSERT_TRUE(c.ok());
    EXPECT_TRUE(c->learn_weights) << t;
  }
  for (const char* f : {"false", "0", "no", "off"}) {
    auto c = ParseMqaConfigText(std::string("learn_weights = ") + f);
    ASSERT_TRUE(c.ok());
    EXPECT_FALSE(c->learn_weights) << f;
  }
}

TEST(ConfigParserTest, ParsesObservabilityKeys) {
  auto config = ParseMqaConfigText(
      "observability.trace_turns = false\n"
      "observability.explain_turns = true\n"
      "observability.trace_build = false\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_FALSE(config->observability.trace_turns);
  EXPECT_TRUE(config->observability.explain_turns);
  EXPECT_FALSE(config->observability.trace_build);
  // Defaults: tracing on, the explain view opt-in.
  auto defaults = ParseMqaConfig({});
  ASSERT_TRUE(defaults.ok());
  EXPECT_TRUE(defaults->observability.trace_turns);
  EXPECT_FALSE(defaults->observability.explain_turns);
  EXPECT_TRUE(defaults->observability.trace_build);
}

TEST(ConfigParserTest, ParsesServingKeys) {
  auto config = ParseMqaConfigText(
      "serving.num_workers = 8\n"
      "serving.queue_capacity = 128\n"
      "serving.default_deadline_ms = 250\n"
      "serving.enable_batching = false\n"
      "serving.max_batch = 16\n"
      "serving.batch_flush_slack_ms = 2.5\n"
      "serving.breaker_threshold = 4\n"
      "serving.breaker_open_ms = 750\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->serving.num_workers, 8u);
  EXPECT_EQ(config->serving.queue_capacity, 128u);
  EXPECT_DOUBLE_EQ(config->serving.default_deadline_ms, 250.0);
  EXPECT_FALSE(config->serving.enable_batching);
  EXPECT_EQ(config->serving.max_batch, 16u);
  EXPECT_DOUBLE_EQ(config->serving.batch_flush_slack_ms, 2.5);
  EXPECT_EQ(config->serving.breaker_failure_threshold, 4);
  EXPECT_DOUBLE_EQ(config->serving.breaker_open_ms, 750.0);
  // Defaults: batching on, no default deadline.
  auto defaults = ParseMqaConfig({});
  ASSERT_TRUE(defaults.ok());
  EXPECT_TRUE(defaults->serving.enable_batching);
  EXPECT_DOUBLE_EQ(defaults->serving.default_deadline_ms, 0.0);
}

TEST(ConfigParserTest, ParsesShardKeys) {
  auto config = ParseMqaConfigText(
      "shard.enable = true\n"
      "shard.num_shards = 8\n"
      "shard.quorum = 5\n"
      "shard.partition = hash\n"
      "shard.hedge_percentile = 99\n"
      "shard.hedge_min_samples = 32\n"
      "shard.deadline_fraction = 0.75\n"
      "shard.fanout_threads = 2\n"
      "shard.breaker_threshold = 3\n"
      "shard.breaker_open_ms = 250\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_TRUE(config->shard.enable);
  EXPECT_EQ(config->shard.num_shards, 8u);
  EXPECT_EQ(config->shard.quorum, 5u);
  EXPECT_EQ(config->shard.partition, "hash");
  EXPECT_DOUBLE_EQ(config->shard.hedge_percentile, 99.0);
  EXPECT_EQ(config->shard.hedge_min_samples, 32u);
  EXPECT_NEAR(config->shard.deadline_fraction, 0.75, 1e-6);
  EXPECT_EQ(config->shard.fanout_threads, 2u);
  EXPECT_EQ(config->shard.breaker_failure_threshold, 3);
  EXPECT_DOUBLE_EQ(config->shard.breaker_open_ms, 250.0);
  // Default: sharding off — the single-index path, exactly as before.
  auto defaults = ParseMqaConfig({});
  ASSERT_TRUE(defaults.ok());
  EXPECT_FALSE(defaults->shard.enable);
}

TEST(ConfigParserTest, RejectsUnknownKey) {
  auto config = ParseMqaConfigText("not_a_key = 5");
  EXPECT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("not_a_key"), std::string::npos);
}

TEST(ConfigParserTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseMqaConfigText("corpus_size").ok());
  EXPECT_FALSE(ParseMqaConfigText("corpus_size =").ok());
  EXPECT_FALSE(ParseMqaConfigText("= 5").ok());
  EXPECT_FALSE(ParseMqaConfigText("corpus_size = banana").ok());
  EXPECT_FALSE(ParseMqaConfigText("temperature = warm").ok());
  EXPECT_FALSE(ParseMqaConfigText("learn_weights = maybe").ok());
}

TEST(ConfigParserTest, SeedPropagatesToWorld) {
  auto config = ParseMqaConfigText("seed = 777");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->seed, 777u);
  EXPECT_EQ(config->world.seed, 777u);
}

TEST(ConfigParserTest, LatentDimGrowsRawImageDim) {
  auto config = ParseMqaConfigText("world.latent_dim = 128");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->world.latent_dim, 128u);
  EXPECT_GE(config->world.raw_image_dim, 128u);
}

TEST(ConfigParserTest, ParsedConfigBootsTheSystem) {
  auto config = ParseMqaConfigText(
      "corpus_size = 300\n"
      "world.num_concepts = 8\n"
      "world.latent_dim = 16\n"
      "embedding_dim = 16\n"
      "training_triplets = 200\n"
      "index.max_degree = 10\n"
      "search.k = 3\n");
  ASSERT_TRUE(config.ok());
  // (Coordinator creation is covered in coordinator_test; here we only
  // check the values compose into a bootable config shape.)
  EXPECT_EQ(config->corpus_size, 300u);
  EXPECT_EQ(config->embedding_dim, 16u);
  EXPECT_EQ(config->num_training_triplets, 200u);
}

}  // namespace
}  // namespace mqa
