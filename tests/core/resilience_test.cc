#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "core/coordinator.h"
#include "core_test_util.h"
#include "llm/resilient_llm.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

/// The chaos suite: a live system under injected faults on every
/// failure-prone hop (LLM, encoders, rewriter), asserting graceful
/// degradation instead of hard failure. Time flows through a MockClock, so
/// backoff and breaker cool-downs are exact and nothing sleeps.
class ResilienceTest : public ::testing::Test {
 protected:
  static MqaConfig ChaosConfig() {
    MqaConfig config = SmallConfig();
    config.resilience.enable = true;
    config.resilience.llm_max_attempts = 3;
    config.resilience.llm_initial_backoff_ms = 10.0;
    config.resilience.breaker_failure_threshold = 2;
    config.resilience.breaker_open_ms = 1000.0;
    config.resilience.breaker_half_open_successes = 1;
    config.resilience.encoder_max_attempts = 2;
    config.resilience.clock = &clock_;
    return config;
  }

  static void SetUpTestSuite() {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().SetClock(&clock_);
    auto c = Coordinator::Create(ChaosConfig());
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    coordinator_ = c->release();
  }
  static void TearDownTestSuite() {
    delete coordinator_;
    coordinator_ = nullptr;
    FaultInjector::Global().SetClock(nullptr);
  }

  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    coordinator_->ResetDialogue();
  }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  static const ResilientLlm* resilient_llm() {
    return dynamic_cast<const ResilientLlm*>(
        coordinator_->answer_generator()->llm());
  }

  static UserQuery ConceptQuery(uint32_t concept_id) {
    UserQuery q;
    q.text = "i would like some images of " +
             coordinator_->world().ConceptName(concept_id);
    return q;
  }

  static MockClock clock_;
  static Coordinator* coordinator_;
};

MockClock ResilienceTest::clock_;
Coordinator* ResilienceTest::coordinator_ = nullptr;

TEST_F(ResilienceTest, LlmIsWrappedInResilienceDecorator) {
  ASSERT_NE(resilient_llm(), nullptr);
  EXPECT_EQ(resilient_llm()->name(), "sim-llm");  // transparent name
}

TEST_F(ResilienceTest, TransientLlmFaultIsAbsorbedByRetries) {
  FaultSpec spec;
  spec.max_fires = 2;  // fail twice, then recover: attempt 3 succeeds
  FaultInjector::Global().Arm("llm/complete", spec);

  auto turn = coordinator_->Ask(ConceptQuery(0));
  ASSERT_TRUE(turn.ok()) << turn.status().ToString();
  EXPECT_FALSE(turn->degraded);
  EXPECT_TRUE(turn->degradation_notes.empty());
  EXPECT_FALSE(turn->answer.empty());
  EXPECT_EQ(turn->items.size(), 5u);
  EXPECT_EQ(resilient_llm()->last_retry_stats().attempts, 3);
  EXPECT_EQ(resilient_llm()->breaker_state(), BreakerState::kClosed);
}

TEST_F(ResilienceTest, LlmHardOutageFallsBackAndBreakerCycles) {
  const size_t base_transitions = resilient_llm()->breaker().transitions().size();
  FaultInjector::Global().Arm("llm/complete", FaultSpec{});  // always fail

  // Round 1: retries exhausted -> extractive fallback, round still works.
  auto t1 = coordinator_->Ask(ConceptQuery(1));
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  EXPECT_TRUE(t1->degraded);
  EXPECT_EQ(t1->items.size(), 5u);
  EXPECT_NE(t1->answer.find("language model is currently unavailable"),
            std::string::npos);
  EXPECT_NE(t1->answer.find("object #"), std::string::npos);
  ASSERT_FALSE(t1->degradation_notes.empty());
  EXPECT_NE(t1->degradation_notes.back().find("LLM unavailable"),
            std::string::npos);

  // Round 2 trips the breaker (threshold 2).
  auto t2 = coordinator_->Ask(ConceptQuery(1));
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(resilient_llm()->breaker_state(), BreakerState::kOpen);

  // Round 3 fails fast while open — and still answers extractively.
  auto t3 = coordinator_->Ask(ConceptQuery(1));
  ASSERT_TRUE(t3.ok());
  EXPECT_TRUE(t3->degraded);
  bool saw_breaker_note = false;
  for (const std::string& note : t3->degradation_notes) {
    saw_breaker_note =
        saw_breaker_note || note.find("circuit breaker") != std::string::npos;
  }
  EXPECT_TRUE(saw_breaker_note);

  // The outage ends; after the cool-down the half-open probe heals the
  // breaker and answers come from the LLM again.
  FaultInjector::Global().DisarmAll();
  clock_.AdvanceMillis(1001.0);
  auto t4 = coordinator_->Ask(ConceptQuery(1));
  ASSERT_TRUE(t4.ok());
  EXPECT_FALSE(t4->degraded);
  EXPECT_EQ(resilient_llm()->breaker_state(), BreakerState::kClosed);

  // The observable trace of this outage: closed -> open -> half-open ->
  // closed, appended to whatever history earlier tests left behind.
  const auto trace = resilient_llm()->breaker().transitions();
  ASSERT_EQ(trace.size(), base_transitions + 3);
  EXPECT_EQ(trace[base_transitions], BreakerState::kOpen);
  EXPECT_EQ(trace[base_transitions + 1], BreakerState::kHalfOpen);
  EXPECT_EQ(trace[base_transitions + 2], BreakerState::kClosed);

  // The status panel recorded degraded events with the [!] marker.
  EXPECT_NE(coordinator_->monitor().Render().find("[!]"), std::string::npos);
}

TEST_F(ResilienceTest, EncoderOutageDropsModalityAndStillRetrieves) {
  // A healthy round first, to have a result to click.
  auto healthy = coordinator_->Ask(ConceptQuery(3));
  ASSERT_TRUE(healthy.ok());
  ASSERT_FALSE(healthy->items.empty());
  const uint32_t topic =
      coordinator_->kb().at(healthy->items[0].id).concept_id;

  // The text encoder goes down; the round carries text + a clicked image.
  FaultInjector::Global().Arm("encoder/sim-text", FaultSpec{});
  UserQuery q;
  q.text = "more like this one please";
  q.selected_object = healthy->items[0].id;
  auto turn = coordinator_->Ask(q);
  ASSERT_TRUE(turn.ok()) << turn.status().ToString();
  EXPECT_TRUE(turn->degraded);
  bool saw_drop_note = false;
  for (const std::string& note : turn->degradation_notes) {
    saw_drop_note = saw_drop_note ||
                    note.find("dropped text modality") != std::string::npos;
  }
  EXPECT_TRUE(saw_drop_note);

  // The surviving image modality still retrieves on-topic results.
  ASSERT_FALSE(turn->items.empty());
  size_t matching = 0;
  for (const RetrievedItem& item : turn->items) {
    if (coordinator_->kb().at(item.id).concept_id == topic) ++matching;
  }
  EXPECT_GE(matching, 1u);
}

TEST_F(ResilienceTest, AllModalitiesDownFailsWithUnavailable) {
  FaultInjector::Global().Arm("encoder/sim-text", FaultSpec{});
  auto turn = coordinator_->Ask(ConceptQuery(2));  // text-only round
  ASSERT_FALSE(turn.ok());
  EXPECT_EQ(turn.status().code(), StatusCode::kUnavailable);
}

TEST_F(ResilienceTest, RewriterOutageSearchesWithRawText) {
  FaultSpec spec;
  spec.once = true;
  FaultInjector::Global().Arm("llm/rewrite", spec);
  auto turn = coordinator_->Ask(ConceptQuery(4));
  ASSERT_TRUE(turn.ok()) << turn.status().ToString();
  EXPECT_TRUE(turn->degraded);
  ASSERT_FALSE(turn->degradation_notes.empty());
  EXPECT_NE(turn->degradation_notes.front().find("query rewriter unavailable"),
            std::string::npos);
  EXPECT_EQ(turn->items.size(), 5u);  // the raw text still retrieves
}

TEST_F(ResilienceTest, ChaosMetricsAreRecorded) {
  // Injected misbehaviour must be observable: latency spikes land in
  // fault/injected_latency_ms and retry storms in retry/*. The registry is
  // process-global and append-only, so all assertions are deltas.
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t fires_before = metrics.CounterValue("fault/fires");
  const uint64_t attempts_before = metrics.CounterValue("retry/attempts");
  const uint64_t retries_before = metrics.CounterValue("retry/retries");
  const uint64_t spikes_before =
      metrics.HistogramSnapshotOf("fault/injected_latency_ms").count;
  const uint64_t backoffs_before =
      metrics.HistogramSnapshotOf("retry/backoff_ms").count;

  // A pure latency spike (no error) on the LLM hop.
  FaultSpec slow;
  slow.code = StatusCode::kOk;
  slow.latency_ms = 50.0;
  slow.max_fires = 1;
  FaultInjector::Global().Arm("llm/complete", slow);
  auto t1 = coordinator_->Ask(ConceptQuery(0));
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  EXPECT_FALSE(t1->degraded);
  const HistogramSnapshot spikes =
      metrics.HistogramSnapshotOf("fault/injected_latency_ms");
  EXPECT_EQ(spikes.count, spikes_before + 1);
  EXPECT_GE(spikes.max, 50.0);

  // A transient error burst, absorbed by two retries.
  FaultSpec flaky;
  flaky.max_fires = 2;
  FaultInjector::Global().Arm("llm/complete", flaky);
  auto t2 = coordinator_->Ask(ConceptQuery(0));
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();
  EXPECT_FALSE(t2->degraded);

  EXPECT_GE(metrics.CounterValue("fault/fires"), fires_before + 3);
  // The answering retrier alone contributes 1 + 3 attempts across the two
  // rounds (encoder/rewriter retriers may add more, never less).
  EXPECT_GE(metrics.CounterValue("retry/attempts"), attempts_before + 4);
  EXPECT_GE(metrics.CounterValue("retry/retries"), retries_before + 2);
  EXPECT_GE(metrics.HistogramSnapshotOf("retry/backoff_ms").count,
            backoffs_before + 1);
}

TEST_F(ResilienceTest, DisarmedFaultsKeepResultsBitIdentical) {
  // A resilience-enabled system with no armed faults must behave exactly
  // like a plain one: same result ids, same distances, same answer.
  MqaConfig plain = SmallConfig();
  auto baseline = Coordinator::Create(plain);
  ASSERT_TRUE(baseline.ok());

  coordinator_->ResetDialogue();
  UserQuery q = ConceptQuery(0);
  auto a = coordinator_->Ask(q);
  auto b = (*baseline)->Ask(q);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->answer, b->answer);
  ASSERT_EQ(a->items.size(), b->items.size());
  for (size_t i = 0; i < a->items.size(); ++i) {
    EXPECT_EQ(a->items[i].id, b->items[i].id);
    EXPECT_EQ(a->items[i].distance, b->items[i].distance);
  }
  EXPECT_FALSE(a->degraded);
}

}  // namespace
}  // namespace mqa
