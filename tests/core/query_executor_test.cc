#include "core/query_executor.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "retrieval/factory.h"
#include "vector/distance.h"

namespace mqa {
namespace {

class QueryExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig wc;
    wc.num_concepts = 10;
    wc.latent_dim = 16;
    wc.raw_image_dim = 32;
    wc.seed = 3;
    auto corpus = MakeExperimentCorpus(wc, 500, "sim-clip", 16, true, 400);
    ASSERT_TRUE(corpus.ok());
    corpus_ = new ExperimentCorpus(std::move(corpus).Value());
    IndexConfig index;
    index.algorithm = "mqa-hybrid";
    index.graph.max_degree = 12;
    auto fw = CreateRetrievalFramework("must", corpus_->represented.store,
                                       corpus_->represented.weights, index);
    ASSERT_TRUE(fw.ok());
    framework_ = fw->release();
    executor_ = new QueryExecutor(corpus_->kb.get(), corpus_->encoders.get(),
                                  framework_);
  }
  static void TearDownTestSuite() {
    delete executor_;
    delete framework_;
    delete corpus_;
  }

  static ExperimentCorpus* corpus_;
  static RetrievalFramework* framework_;
  static QueryExecutor* executor_;
};

ExperimentCorpus* QueryExecutorTest::corpus_ = nullptr;
RetrievalFramework* QueryExecutorTest::framework_ = nullptr;
QueryExecutor* QueryExecutorTest::executor_ = nullptr;

TEST_F(QueryExecutorTest, TextOnlyQueryIsCrossModalFilled) {
  UserQuery query;
  query.text = "show me things";
  auto rq = executor_->EncodeUserQuery(query);
  ASSERT_TRUE(rq.ok());
  ASSERT_EQ(rq->modalities.parts.size(), 2u);
  EXPECT_FALSE(rq->modalities.parts[0].empty());  // filled from text
  EXPECT_FALSE(rq->modalities.parts[1].empty());
  EXPECT_LT(L2Sq(rq->modalities.parts[0].data(),
                 rq->modalities.parts[1].data(), 16),
            1e-8f);
}

TEST_F(QueryExecutorTest, SelectedObjectContributesItsImage) {
  UserQuery query;
  query.text = "more " + corpus_->world->ConceptName(7 % 10) + " like this";
  query.selected_object = 7;
  auto rq = executor_->EncodeUserQuery(query);
  ASSERT_TRUE(rq.ok());
  // Image part differs from text part: it came from the object.
  EXPECT_NE(rq->modalities.parts[0], rq->modalities.parts[1]);
  auto direct = corpus_->encoders->EncodeModality(
      0, corpus_->kb->at(7).modalities[0]);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(rq->modalities.parts[0], *direct);
}

TEST_F(QueryExecutorTest, UploadWinsOverSelection) {
  UserQuery query;
  query.text = "x";
  query.selected_object = 7;
  query.uploaded_image = corpus_->kb->at(9).modalities[0];
  auto rq = executor_->EncodeUserQuery(query);
  ASSERT_TRUE(rq.ok());
  auto direct = corpus_->encoders->EncodeModality(
      0, corpus_->kb->at(9).modalities[0]);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(rq->modalities.parts[0], *direct);
}

TEST_F(QueryExecutorTest, ImageOnlyQueryWorks) {
  UserQuery query;
  query.selected_object = 11;
  auto rq = executor_->EncodeUserQuery(query);
  ASSERT_TRUE(rq.ok());
  EXPECT_FALSE(rq->modalities.parts[0].empty());
  // Cross-modal fill propagates the image into the text slot.
  EXPECT_LT(L2Sq(rq->modalities.parts[0].data(),
                 rq->modalities.parts[1].data(), 16),
            1e-8f);
}

TEST_F(QueryExecutorTest, EmptyQueryFails) {
  UserQuery query;
  EXPECT_FALSE(executor_->EncodeUserQuery(query).ok());
}

TEST_F(QueryExecutorTest, UnknownSelectionFails) {
  UserQuery query;
  query.text = "x";
  query.selected_object = 123456;
  EXPECT_FALSE(executor_->EncodeUserQuery(query).ok());
}

TEST_F(QueryExecutorTest, ExecuteReturnsAlignedItems) {
  UserQuery query;
  query.text = "find " + corpus_->world->ConceptName(1);
  SearchParams params;
  params.k = 5;
  params.beam_width = 48;
  auto outcome = executor_->Execute(query, params);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->items.size(), outcome->retrieval.neighbors.size());
  for (size_t i = 0; i < outcome->items.size(); ++i) {
    EXPECT_EQ(outcome->items[i].id, outcome->retrieval.neighbors[i].id);
    EXPECT_FLOAT_EQ(outcome->items[i].distance,
                    outcome->retrieval.neighbors[i].distance);
    EXPECT_FALSE(outcome->items[i].description.empty());
  }
}

TEST_F(QueryExecutorTest, WeightOverridePassesThrough) {
  UserQuery query;
  query.text = "find " + corpus_->world->ConceptName(2);
  query.weight_override = {0.2f, 1.8f};
  auto rq = executor_->EncodeUserQuery(query);
  ASSERT_TRUE(rq.ok());
  EXPECT_EQ(rq->weights, (std::vector<float>{0.2f, 1.8f}));
}

TEST(DescribeObjectTest, IncludesIdAndTexts) {
  Object obj;
  obj.id = 42;
  Payload img;
  img.type = ModalityType::kImage;
  img.text = "an image of x";
  Payload txt;
  txt.type = ModalityType::kText;
  txt.text = "caption y";
  obj.modalities = {img, txt};
  const std::string desc = DescribeObject(obj);
  EXPECT_NE(desc.find("object #42"), std::string::npos);
  EXPECT_NE(desc.find("an image of x"), std::string::npos);
  EXPECT_NE(desc.find("caption y"), std::string::npos);
}

}  // namespace
}  // namespace mqa
