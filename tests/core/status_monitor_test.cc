#include "core/status_monitor.h"

#include <gtest/gtest.h>

namespace mqa {
namespace {

TEST(StatusMonitorTest, RecordsHistoryInOrder) {
  StatusMonitor monitor;
  monitor.Emit(ComponentStage::kDataPreprocessing, "loaded");
  monitor.Emit(ComponentStage::kIndexConstruction, "built", 12.5);
  ASSERT_EQ(monitor.history().size(), 2u);
  EXPECT_EQ(monitor.history()[0].message, "loaded");
  EXPECT_EQ(monitor.history()[1].stage, ComponentStage::kIndexConstruction);
  EXPECT_DOUBLE_EQ(monitor.history()[1].elapsed_ms, 12.5);
}

TEST(StatusMonitorTest, NotifiesSubscriber) {
  StatusMonitor monitor;
  std::vector<std::string> seen;
  monitor.Subscribe([&seen](const StatusEvent& e) {
    seen.push_back(e.message);
  });
  monitor.Emit(ComponentStage::kQueryExecution, "searching");
  monitor.Emit(ComponentStage::kAnswerGeneration, "answering");
  EXPECT_EQ(seen, (std::vector<std::string>{"searching", "answering"}));
}

TEST(StatusMonitorTest, RenderShowsTicksAndTimings) {
  StatusMonitor monitor;
  monitor.Emit(ComponentStage::kVectorRepresentation, "encoded", 3.0);
  StatusEvent pending;
  pending.stage = ComponentStage::kIndexConstruction;
  pending.message = "building";
  pending.completed = false;
  monitor.Emit(pending);
  const std::string panel = monitor.Render();
  EXPECT_NE(panel.find("[x] vector-representation: encoded (3.0 ms)"),
            std::string::npos);
  EXPECT_NE(panel.find("[ ] index-construction: building"),
            std::string::npos);
}

TEST(StatusMonitorTest, ClearEmptiesHistory) {
  StatusMonitor monitor;
  monitor.Emit(ComponentStage::kCoordinator, "x");
  monitor.Clear();
  EXPECT_TRUE(monitor.history().empty());
  EXPECT_EQ(monitor.Render(), "");
}

TEST(StatusMonitorTest, StageNamesAreDistinct) {
  std::set<std::string> names;
  for (ComponentStage stage :
       {ComponentStage::kDataPreprocessing,
        ComponentStage::kVectorRepresentation,
        ComponentStage::kIndexConstruction, ComponentStage::kQueryExecution,
        ComponentStage::kAnswerGeneration, ComponentStage::kCoordinator}) {
    names.insert(ComponentStageToString(stage));
  }
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace mqa
