// User-level attribute filtering: "only show me <noun>" constraints
// applied through UserQuery::object_filter.

#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "core_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

TEST(FilteredQueryTest, ObjectFilterRestrictsResults) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 400;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());

  // Constrain to a single concept; the text steers the search into that
  // concept's region so the filter has admissible candidates nearby.
  const uint32_t wanted = 3;
  UserQuery query;
  query.text = "show me " + (*c)->world().ConceptName(wanted);
  query.object_filter = [wanted](const Object& obj) {
    return obj.concept_id == wanted;
  };
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok()) << turn.status().ToString();
  ASSERT_FALSE(turn->items.empty());
  for (const RetrievedItem& item : turn->items) {
    EXPECT_EQ((*c)->kb().at(item.id).concept_id, wanted);
  }
}

TEST(FilteredQueryTest, FilterCombinesWithSelection) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 400;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());

  UserQuery q1;
  q1.text = "find " + (*c)->world().ConceptName(0);
  auto t1 = (*c)->Ask(q1);
  ASSERT_TRUE(t1.ok());
  ASSERT_FALSE(t1->items.empty());

  UserQuery q2;
  q2.text = "more like this";
  q2.selected_object = t1->items[0].id;
  q2.object_filter = [](const Object& obj) { return obj.id % 2 == 0; };
  auto t2 = (*c)->Ask(q2);
  ASSERT_TRUE(t2.ok());
  for (const RetrievedItem& item : t2->items) {
    EXPECT_EQ(item.id % 2, 0u);
  }
}

TEST(FilteredQueryTest, RejectAllFilterYieldsNoResultsButStillAnswers) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 300;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  UserQuery query;
  query.text = "find " + (*c)->world().ConceptName(1);
  query.object_filter = [](const Object&) { return false; };
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok());
  EXPECT_TRUE(turn->items.empty());
  EXPECT_FALSE(turn->answer.empty());  // the LLM still responds gracefully
}

}  // namespace
}  // namespace mqa
