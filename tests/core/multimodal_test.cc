// End-to-end coverage beyond the default two-modality setup: a third
// (audio-like) modality slot, and the coordinator running on every index
// algorithm.

#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "core/experiment.h"
#include "core_test_util.h"
#include "retrieval/factory.h"

namespace mqa {
namespace {

TEST(ThreeModalityTest, FullPipelineWorks) {
  WorldConfig wc;
  wc.num_concepts = 8;
  wc.latent_dim = 16;
  wc.raw_image_dim = 32;
  wc.num_extra_modalities = 1;
  wc.seed = 77;
  auto corpus = MakeExperimentCorpus(wc, 400, "sim-clip", 16, true, 300);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->represented.store->schema().num_modalities(), 3u);
  EXPECT_EQ(corpus->represented.weights.size(), 3u);

  IndexConfig index;
  index.algorithm = "mqa-hybrid";
  index.graph.max_degree = 12;
  auto fw = CreateRetrievalFramework("must", corpus->represented.store,
                                     corpus->represented.weights, index);
  ASSERT_TRUE(fw.ok());

  // Text query cross-modal fills all three slots.
  auto q = EncodeTextQuery(*corpus, corpus->world->MakeTextQuery(
                                        2, [] {
                                          static Rng rng(1);
                                          return &rng;
                                        }()).text);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->modalities.parts.size(), 3u);
  for (const auto& part : q->modalities.parts) {
    EXPECT_FALSE(part.empty());
  }
  SearchParams params;
  params.k = 5;
  params.beam_width = 48;
  auto r = (*fw)->Retrieve(*q, params);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(ConceptPrecision(r->neighbors, *corpus->kb, 2), 0.5);
}

TEST(ThreeModalityTest, MrAndJeAlsoHandleThreeModalities) {
  WorldConfig wc;
  wc.num_concepts = 8;
  wc.latent_dim = 16;
  wc.raw_image_dim = 32;
  wc.num_extra_modalities = 1;
  wc.seed = 78;
  auto corpus = MakeExperimentCorpus(wc, 300, "sim-clip", 16, false, 0);
  ASSERT_TRUE(corpus.ok());
  IndexConfig index;
  index.algorithm = "hnsw";
  SearchParams params;
  params.k = 5;
  Rng rng(2);
  for (const std::string name : {"mr", "je"}) {
    auto fw = CreateRetrievalFramework(name, corpus->represented.store,
                                       corpus->represented.weights, index);
    ASSERT_TRUE(fw.ok()) << name;
    auto q = EncodeTextQuery(*corpus,
                             corpus->world->MakeTextQuery(1, &rng).text);
    ASSERT_TRUE(q.ok());
    auto r = (*fw)->Retrieve(*q, params);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_EQ(r->neighbors.size(), 5u) << name;
  }
}

class CoordinatorIndexTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CoordinatorIndexTest, AskWorksOnEveryIndexAlgorithm) {
  MqaConfig config = ::mqa::testing::SmallConfig();
  config.corpus_size = 300;
  config.index.algorithm = GetParam();
  config.index.graph.max_degree = 10;
  config.index.graph.nn_descent_k = 10;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok()) << GetParam() << ": " << c.status().ToString();
  UserQuery query;
  query.text = "find " + (*c)->world().ConceptName(0);
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok()) << GetParam();
  EXPECT_EQ(turn->items.size(), 5u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CoordinatorIndexTest,
                         ::testing::Values("mqa-hybrid", "nsg", "vamana",
                                           "kgraph", "hnsw", "bruteforce",
                                           "starling"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace mqa
