// Live ingestion through the coordinator: new objects become retrievable
// without a rebuild.

#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "core_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

TEST(IngestionTest, NewObjectIsRetrievableImmediately) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 300;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());

  const uint64_t before = (*c)->kb().size();
  Rng rng(1);
  Object fresh = (*c)->world().MakeObject(2, &rng);
  auto id = (*c)->IngestObject(std::move(fresh));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, before);
  EXPECT_EQ((*c)->kb().size(), before + 1);

  // Query with the new object's own image: it should surface itself.
  UserQuery query;
  query.selected_object = *id;
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok());
  bool found = false;
  for (const RetrievedItem& item : turn->items) {
    found = found || item.id == *id;
  }
  EXPECT_TRUE(found);
}

TEST(IngestionTest, ManyIngestionsKeepSystemHealthy) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 200;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const uint32_t concept_id =
        static_cast<uint32_t>(i % (*c)->world().num_concepts());
    ASSERT_TRUE(
        (*c)->IngestObject((*c)->world().MakeObject(concept_id, &rng)).ok());
  }
  EXPECT_EQ((*c)->kb().size(), 250u);
  UserQuery query;
  query.text = "find " + (*c)->world().ConceptName(0);
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok());
  EXPECT_EQ(turn->items.size(), 5u);
}

TEST(IngestionTest, RejectsSchemaMismatchAndNonMustFrameworks) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 200;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  // Schema mismatch fails inside the KB.
  Object malformed;
  malformed.modalities.resize(1);
  EXPECT_FALSE((*c)->IngestObject(std::move(malformed)).ok());

  // MR cannot ingest live.
  ASSERT_TRUE((*c)->SetFramework("mr").ok());
  Rng rng(3);
  auto st = (*c)->IngestObject((*c)->world().MakeObject(0, &rng));
  EXPECT_EQ(st.status().code(), StatusCode::kUnimplemented);
}

TEST(IngestionTest, HnswIndexAlsoSupportsLiveIngestion) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 200;
  config.index.algorithm = "hnsw";
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  Rng rng(4);
  auto id = (*c)->IngestObject((*c)->world().MakeObject(1, &rng));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  UserQuery query;
  query.selected_object = *id;
  auto turn = (*c)->Ask(query);
  ASSERT_TRUE(turn.ok());
  bool found = false;
  for (const RetrievedItem& item : turn->items) {
    found = found || item.id == *id;
  }
  EXPECT_TRUE(found);
}

TEST(IngestionTest, DiskIndexRefusesLiveIngestion) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 200;
  config.index.algorithm = "starling";
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  Rng rng(5);
  const uint64_t before = (*c)->kb().size();
  auto st = (*c)->IngestObject((*c)->world().MakeObject(0, &rng));
  EXPECT_EQ(st.status().code(), StatusCode::kUnimplemented);
  // The refusal left every component untouched.
  EXPECT_EQ((*c)->kb().size(), before);
}

}  // namespace
}  // namespace mqa
