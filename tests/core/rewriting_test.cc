// Integration: vague follow-ups retrieve the conversation's subject when
// query rewriting is on, and preference markers flag matching items.

#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "core_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

double ConceptFraction(const Coordinator& c,
                       const std::vector<RetrievedItem>& items,
                       uint32_t concept_id) {
  if (items.empty()) return 0.0;
  size_t n = 0;
  for (const RetrievedItem& item : items) {
    if (c.kb().at(item.id).concept_id == concept_id) ++n;
  }
  return static_cast<double>(n) / items.size();
}

TEST(RewritingTest, VagueFollowUpStaysOnTopic) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 400;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  const std::string name = (*c)->world().ConceptName(2);

  UserQuery q1;
  q1.text = "i would like some images of " + name;
  ASSERT_TRUE((*c)->Ask(q1).ok());

  UserQuery q2;
  q2.text = "show me more";  // no content words at all
  auto t2 = (*c)->Ask(q2);
  ASSERT_TRUE(t2.ok());
  EXPECT_GT(ConceptFraction(**c, t2->items, 2), 0.5);
  // The status panel recorded the rewrite.
  EXPECT_NE((*c)->monitor().Render().find("rewrote vague query"),
            std::string::npos);
}

TEST(RewritingTest, DisabledRewritingLeavesQueryAlone) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 400;
  config.rewrite_vague_queries = false;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  UserQuery q1;
  q1.text = "i would like some images of " + (*c)->world().ConceptName(2);
  ASSERT_TRUE((*c)->Ask(q1).ok());
  UserQuery q2;
  q2.text = "show me more";
  ASSERT_TRUE((*c)->Ask(q2).ok());
  EXPECT_EQ((*c)->monitor().Render().find("rewrote vague query"),
            std::string::npos);
}

TEST(RewritingTest, ResetDialogueForgetsTopic) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 300;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  UserQuery q1;
  q1.text = "find " + (*c)->world().ConceptName(1);
  ASSERT_TRUE((*c)->Ask(q1).ok());
  (*c)->ResetDialogue();
  (*c)->monitor().Clear();
  UserQuery q2;
  q2.text = "show me more";
  ASSERT_TRUE((*c)->Ask(q2).ok());
  EXPECT_EQ((*c)->monitor().Render().find("rewrote vague query"),
            std::string::npos);
}

TEST(RewritingTest, PreferenceMarkersFlagMatchingItems) {
  MqaConfig config = SmallConfig();
  config.corpus_size = 400;
  auto c = Coordinator::Create(config);
  ASSERT_TRUE(c.ok());
  UserQuery q1;
  q1.text = "find " + (*c)->world().ConceptName(0);
  auto t1 = (*c)->Ask(q1);
  ASSERT_TRUE(t1.ok());
  ASSERT_FALSE(t1->items.empty());
  // No selection yet: nothing flagged.
  for (const RetrievedItem& item : t1->items) {
    EXPECT_FALSE(item.preferred);
  }
  UserQuery q2;
  q2.text = "more like this one";
  q2.selected_object = t1->items[0].id;
  auto t2 = (*c)->Ask(q2);
  ASSERT_TRUE(t2.ok());
  const uint32_t sel_concept = (*c)->kb().at(t1->items[0].id).concept_id;
  size_t flagged = 0;
  for (const RetrievedItem& item : t2->items) {
    EXPECT_EQ(item.preferred,
              (*c)->kb().at(item.id).concept_id == sel_concept);
    flagged += item.preferred;
  }
  EXPECT_GT(flagged, 0u);
  // The marker reaches the grounded answer.
  EXPECT_NE(t2->answer.find("[matches your preference]"), std::string::npos);
}

}  // namespace
}  // namespace mqa
