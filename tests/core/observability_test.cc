#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/coordinator.h"
#include "core_test_util.h"

namespace mqa {
namespace {

using ::mqa::testing::SmallConfig;

/// End-to-end observability: a query turn produces a span tree whose
/// timestamps are exact under a MockClock (the only thing that advances
/// time here is an injected latency spike), and the offline build leaves
/// a trace covering the pipeline stages down to the DAG nodes.
class ObservabilityTest : public ::testing::Test {
 protected:
  static MqaConfig TracedConfig() {
    MqaConfig config = SmallConfig();
    config.resilience.enable = true;
    config.resilience.clock = &clock_;
    config.observability.clock = &clock_;
    config.observability.explain_turns = true;
    return config;
  }

  static void SetUpTestSuite() {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().SetClock(&clock_);
    auto c = Coordinator::Create(TracedConfig());
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    coordinator_ = c->release();
  }
  static void TearDownTestSuite() {
    delete coordinator_;
    coordinator_ = nullptr;
    FaultInjector::Global().SetClock(nullptr);
  }

  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    coordinator_->ResetDialogue();
  }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  static UserQuery ConceptQuery(uint32_t concept_id) {
    UserQuery q;
    q.text = "i would like some images of " +
             coordinator_->world().ConceptName(concept_id);
    return q;
  }

  static MockClock clock_;
  static Coordinator* coordinator_;
};

MockClock ObservabilityTest::clock_;
Coordinator* ObservabilityTest::coordinator_ = nullptr;

TEST_F(ObservabilityTest, TurnTraceTreeSumsConsistently) {
  // The only clock advancement in the turn is a 50 ms injected latency
  // spike inside the LLM hop, so every duration is exact.
  FaultSpec slow;
  slow.code = StatusCode::kOk;
  slow.latency_ms = 50.0;
  slow.max_fires = 1;
  FaultInjector::Global().Arm("llm/complete", slow);

  auto turn = coordinator_->Ask(ConceptQuery(0));
  ASSERT_TRUE(turn.ok()) << turn.status().ToString();
  ASSERT_NE(turn->trace, nullptr);
  const std::vector<SpanRecord> spans = turn->trace->spans();
  ASSERT_FALSE(spans.empty());

  // Exactly one root: coordinator/turn, closed, 50 ms long.
  std::map<std::string, const SpanRecord*> by_name;
  size_t roots = 0;
  for (const SpanRecord& s : spans) {
    by_name[s.name] = &s;
    if (s.parent < 0) {
      ++roots;
      EXPECT_EQ(s.name, "coordinator/turn");
    }
  }
  EXPECT_EQ(roots, 1u);
  ASSERT_TRUE(by_name.count("coordinator/turn"));
  EXPECT_EQ(by_name["coordinator/turn"]->DurationMicros(), 50'000);

  // The online path is covered end to end.
  for (const char* expected :
       {"coordinator/rewrite", "query/execute", "query/encode",
        "query/retrieve", "graph/search", "coordinator/answer",
        "llm/complete"}) {
    EXPECT_TRUE(by_name.count(expected)) << "missing span " << expected;
  }
  EXPECT_EQ(by_name["llm/complete"]->DurationMicros(), 50'000);

  // Structural consistency: every span is closed, nests inside its
  // parent's interval, and no span's children overrun it.
  std::vector<int64_t> child_sum(spans.size(), 0);
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.end_micros, s.start_micros) << s.name;
    if (s.parent >= 0) {
      const SpanRecord& p = spans[s.parent];
      EXPECT_GE(s.start_micros, p.start_micros) << s.name;
      EXPECT_LE(s.end_micros, p.end_micros) << s.name;
      child_sum[s.parent] += s.DurationMicros();
    }
  }
  for (const SpanRecord& s : spans) {
    EXPECT_LE(child_sum[s.id], s.DurationMicros()) << s.name;
  }
  // All 50 ms are accounted for along the llm/complete ancestry, so the
  // root's children sum to exactly the root's duration.
  EXPECT_EQ(child_sum[by_name["coordinator/turn"]->id], 50'000);

  // ToJson carries every span.
  const std::string json = turn->trace->ToJson();
  EXPECT_NE(json.find("\"trace\":\"turn\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"llm/complete\""), std::string::npos);
}

TEST_F(ObservabilityTest, ExplainTurnsEmitsBreakdownThroughMonitor) {
  coordinator_->monitor().Clear();
  auto turn = coordinator_->Ask(ConceptQuery(1));
  ASSERT_TRUE(turn.ok());
  bool saw_breakdown = false;
  for (const StatusEvent& event : coordinator_->monitor().history()) {
    if (event.stage == ComponentStage::kCoordinator &&
        event.message.find("per-turn breakdown") != std::string::npos) {
      saw_breakdown = true;
      EXPECT_NE(event.message.find("coordinator/turn"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_breakdown);
}

TEST_F(ObservabilityTest, BuildTraceCoversPipelineAndDagStages) {
  const Trace* build = coordinator_->build_trace();
  ASSERT_NE(build, nullptr);
  const std::vector<SpanRecord> spans = build->spans();
  std::map<std::string, const SpanRecord*> by_name;
  for (const SpanRecord& s : spans) by_name[s.name] = &s;
  for (const char* expected : {"coordinator/build", "build/preprocess",
                               "build/represent", "build/index"}) {
    ASSERT_TRUE(by_name.count(expected)) << "missing span " << expected;
    EXPECT_GE(by_name[expected]->end_micros, 0) << expected << " left open";
  }
  // The graph construction DAG re-attaches its stage spans from pool
  // threads under build/index.
  bool saw_dag_stage = false;
  for (const SpanRecord& s : spans) {
    if (s.name.rfind("dag/", 0) == 0) {
      saw_dag_stage = true;
      EXPECT_GE(s.parent, 0) << s.name << " must nest inside the build";
    }
  }
  EXPECT_TRUE(saw_dag_stage);
  // The render names the pipeline stages for the status panel.
  EXPECT_NE(build->Render().find("build/index"), std::string::npos);
}

TEST_F(ObservabilityTest, TurnMetricsAreCounted) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t turns_before = metrics.CounterValue("coordinator/turns");
  const uint64_t execs_before = metrics.CounterValue("query/executions");
  const uint64_t llm_before = metrics.CounterValue("llm/requests");
  const uint64_t searches_before = metrics.CounterValue("graph/searches");
  auto turn = coordinator_->Ask(ConceptQuery(2));
  ASSERT_TRUE(turn.ok());
  EXPECT_EQ(metrics.CounterValue("coordinator/turns"), turns_before + 1);
  EXPECT_EQ(metrics.CounterValue("query/executions"), execs_before + 1);
  EXPECT_GE(metrics.CounterValue("llm/requests"), llm_before + 1);
  EXPECT_GT(metrics.CounterValue("graph/searches"), searches_before);
  // The process-wide export names them all.
  const std::string json = metrics.ToJson();
  for (const char* name : {"\"coordinator/turns\"", "\"query/executions\"",
                           "\"graph/searches\"", "\"graph/dist_comps\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

TEST_F(ObservabilityTest, TracingDisabledYieldsNullTraceAndStillAnswers) {
  MqaConfig config = SmallConfig();
  config.observability.trace_turns = false;
  config.observability.trace_build = false;
  auto plain = Coordinator::Create(config);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ((*plain)->build_trace(), nullptr);
  UserQuery q;
  q.text = "i would like some images of " +
           (*plain)->world().ConceptName(0);
  auto turn = (*plain)->Ask(q);
  ASSERT_TRUE(turn.ok());
  EXPECT_EQ(turn->trace, nullptr);
  EXPECT_FALSE(turn->answer.empty());
}

TEST_F(ObservabilityTest, DegradedTurnCountsOnce) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t degraded_before =
      metrics.CounterValue("coordinator/degraded_turns");
  FaultSpec spec;
  spec.once = true;
  FaultInjector::Global().Arm("llm/rewrite", spec);
  auto turn = coordinator_->Ask(ConceptQuery(3));
  ASSERT_TRUE(turn.ok());
  EXPECT_TRUE(turn->degraded);
  EXPECT_EQ(metrics.CounterValue("coordinator/degraded_turns"),
            degraded_before + 1);
}

}  // namespace
}  // namespace mqa
