// Experiment Fig-5: two-round comparative analysis of retrieval frameworks
// (MUST vs MR vs JE vs the generative baseline) under identical queries.
//
// Paper claim (Figure 5): "MUST consistently delivers optimal results in
// both rounds. JE underperforms... MR initially matches MUST's results for
// text-only input, [but] fails to maintain alignment with the multi-modal
// inputs in the subsequent round. GPT-4 (DALL-E 2)... generates synthetic
// images that miss a touch of realism" (zero knowledge-base membership).

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "llm/sim_image_generator.h"
#include "retrieval/factory.h"
#include "vector/distance.h"

namespace mqa {
namespace {

int Run(const bench::BenchArgs& args) {
  bench::Banner(
      "Figure 5 reproduction: two-round comparison of retrieval frameworks");

  WorldConfig wc;
  wc.num_concepts = 48;
  wc.latent_dim = 32;
  wc.raw_image_dim = 64;
  wc.seed = 17;
  auto corpus = MakeExperimentCorpus(wc, 6000);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("corpus: %llu objects, %u concepts; learned weights ["
              "image %.3f, text %.3f]\n",
              static_cast<unsigned long long>(corpus->kb->size()),
              wc.num_concepts, corpus->represented.weights[0],
              corpus->represented.weights[1]);

  IndexConfig index;
  index.algorithm = "mqa-hybrid";
  index.graph.max_degree = 24;
  SearchParams params;
  params.k = 10;
  params.beam_width = 96;
  const size_t kDialogues = 120;

  bench::Table table({"framework", "R1 concept-prec", "R1 gt-hit",
                      "R2 concept-prec", "R2 gt-hit", "R1 ms", "R2 ms",
                      "in-KB"});

  for (const std::string name : {"must", "mr", "je"}) {
    auto fw = CreateRetrievalFramework(name, corpus->represented.store,
                                       corpus->represented.weights, index);
    if (!fw.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   fw.status().ToString().c_str());
      return 1;
    }
    auto outcome = RunDialogueSuite(*corpus, fw->get(), kDialogues, 555,
                                    params);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   outcome.status().ToString().c_str());
      return 1;
    }
    table.AddRow({name, FormatDouble(outcome->round1_precision, 3),
                  FormatDouble(outcome->round1_hit, 3),
                  FormatDouble(outcome->round2_precision, 3),
                  FormatDouble(outcome->round2_hit, 3),
                  FormatDouble(outcome->round1_ms, 2),
                  FormatDouble(outcome->round2_ms, 2), "100%"});
  }

  // Ablation: MQA's query-point weight adjustment — the user boosts the
  // text modality for the attribute-modification round. Only MUST (and MR)
  // can act on per-query weights; JE's fusion is fixed.
  {
    auto fw = CreateRetrievalFramework("must", corpus->represented.store,
                                       corpus->represented.weights, index);
    if (!fw.ok()) return 1;
    auto outcome = RunDialogueSuite(*corpus, fw->get(), kDialogues, 555,
                                    params, /*round2_weights=*/{0.5f, 1.5f});
    if (!outcome.ok()) return 1;
    table.AddRow({"must + R2 text boost",
                  FormatDouble(outcome->round1_precision, 3),
                  FormatDouble(outcome->round1_hit, 3),
                  FormatDouble(outcome->round2_precision, 3),
                  FormatDouble(outcome->round2_hit, 3),
                  FormatDouble(outcome->round1_ms, 2),
                  FormatDouble(outcome->round2_ms, 2), "100%"});
  }

  // Generative baseline (DALL-E 2 stand-in): on-topic synthetic images,
  // but zero knowledge-base membership by construction.
  {
    SimImageGenerator gen(corpus->world.get(), 9);
    Rng rng(555);
    double on_topic = 0;
    size_t trials = 0;
    for (size_t d = 0; d < kDialogues; ++d) {
      const uint32_t c =
          static_cast<uint32_t>(d % corpus->world->num_concepts());
      const TextQuery tq = corpus->world->MakeTextQuery(c, &rng);
      auto imgs = gen.GenerateBatch(tq.text, params.k);
      if (!imgs.ok()) continue;
      for (const GeneratedImage& img : *imgs) {
        // On-topic if the generated latent lands nearest this concept's
        // prototype among all prototypes.
        float best = 1e30f;
        uint32_t best_c = 0;
        for (uint32_t p = 0; p < corpus->world->num_concepts(); ++p) {
          const float dd =
              L2Sq(img.latent.data(),
                   corpus->world->ConceptPrototype(p).data(), wc.latent_dim);
          if (dd < best) {
            best = dd;
            best_c = p;
          }
        }
        on_topic += best_c == c ? 1.0 : 0.0;
        ++trials;
      }
    }
    table.AddRow({"generative (sim-dalle)",
                  FormatDouble(on_topic / trials, 3) + " (on-topic)", "0.000",
                  "-", "0.000", "-", "-", "0%"});
  }

  table.Print();
  if (!args.json_path.empty()) {
    bench::JsonReporter report("bench_comparative_rounds");
    report.AddTable(table);
    if (!report.WriteToFile(args.json_path)) return 1;
  }
  std::printf(
      "\nExpected shape (gt-hit = fraction of the true nearest objects\n"
      "retrieved, the metric behind 'images that align with the user's\n"
      "selection'): must matches mr and beats je on round 1, and beats both\n"
      "clearly on round 2; je's fixed fusion keeps coarse concept precision\n"
      "but loses fine-grained alignment, mr collapses on the attribute\n"
      "switch, and the query-point text boost (a weight adjustment only\n"
      "must/mr support) lifts must's round-2 concept precision above every\n"
      "baseline. Generative results are on-topic but never knowledge-base\n"
      "members.\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
