// Experiment Fig-1/Fig-4 (interaction latency): per-round latency of the
// full interactive pipeline, broken down by component — query encoding,
// retrieval, and answer generation — for text-only and image-assisted
// rounds. This is the responsiveness budget behind the demo's interactive
// feel.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/coordinator.h"
#include "core/session.h"

namespace mqa {
namespace {

int Run(const bench::BenchArgs& args) {
  bench::Banner(
      "Fig-1/4: interactive session latency breakdown (N = 10000, k = 5)");

  MqaConfig config;
  config.world.num_concepts = 32;
  config.world.seed = 61;
  config.corpus_size = 10000;
  config.search.k = 5;
  config.search.beam_width = 64;
  auto coordinator_or = Coordinator::Create(config);
  if (!coordinator_or.ok()) {
    std::fprintf(stderr, "%s\n",
                 coordinator_or.status().ToString().c_str());
    return 1;
  }
  auto coordinator = std::move(coordinator_or).Value();

  // Offline pipeline timings from the status monitor.
  std::printf("\noffline pipeline (status panel):\n%s\n",
              coordinator->monitor().Render().c_str());

  bench::Table table({"round type", "avg total ms", "avg retrieval ms",
                      "avg answer ms", "rounds"});

  const size_t kDialogues = 40;
  Rng rng(67);
  double text_total = 0, text_retr = 0, text_ans = 0;
  double img_total = 0, img_retr = 0, img_ans = 0;
  size_t text_rounds = 0, img_rounds = 0;

  for (size_t d = 0; d < kDialogues; ++d) {
    Session session(coordinator.get());
    const uint32_t c =
        static_cast<uint32_t>(d % coordinator->world().num_concepts());
    const TextQuery tq = coordinator->world().MakeTextQuery(c, &rng);

    Timer t1;
    auto turn1 = session.Ask(tq.text);
    const double total1 = t1.ElapsedMillis();
    if (!turn1.ok()) return 1;
    text_total += total1;
    text_retr += turn1->retrieval.latency_ms;
    ++text_rounds;

    if (turn1->items.empty()) continue;
    if (!session.Select(0).ok()) return 1;
    const ModificationSpec mod =
        coordinator->world().MakeModification(c, &rng);
    Timer t2;
    auto turn2 = session.Ask(mod.text);
    const double total2 = t2.ElapsedMillis();
    if (!turn2.ok()) return 1;
    img_total += total2;
    img_retr += turn2->retrieval.latency_ms;
    ++img_rounds;
    session.Reset();
  }
  text_ans = text_total - text_retr;  // remainder: encode + answer
  img_ans = img_total - img_retr;

  table.AddRow({"text-only (round 1)",
                FormatDouble(text_total / text_rounds, 2),
                FormatDouble(text_retr / text_rounds, 2),
                FormatDouble(text_ans / text_rounds, 2),
                std::to_string(text_rounds)});
  table.AddRow({"image+text (round 2)",
                FormatDouble(img_total / img_rounds, 2),
                FormatDouble(img_retr / img_rounds, 2),
                FormatDouble(img_ans / img_rounds, 2),
                std::to_string(img_rounds)});
  table.Print();
  if (!args.json_path.empty()) {
    bench::JsonReporter report("bench_interaction");
    report.AddTable(table);
    if (!report.WriteToFile(args.json_path)) return 1;
  }
  std::printf(
      "\nExpected shape: both round types complete in single-digit\n"
      "milliseconds end to end — interactive latency — with retrieval a\n"
      "small fraction of the total thanks to the navigation graph.\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
