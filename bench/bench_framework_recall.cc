// Experiment MUST-E1 (accuracy): retrieval accuracy of MUST vs MR vs JE at
// matched search effort, across corpus sizes.
//
// Underlying paper claim (Section 1, backed by the MUST paper): "both
// baselines exhibit limitations in efficiency and accuracy due to their
// inability to consider the varying importance of fusing information
// across modalities and the absence of a dedicated indexing and search
// method for multi-modal data."

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "retrieval/factory.h"

namespace mqa {
namespace {

int Run(const bench::BenchArgs& args) {
  bench::Banner(
      "MUST-E1: framework accuracy across corpus sizes (k = 10, beam = 96)");
  bench::Table table({"N", "framework", "R1 concept-prec", "R2 concept-prec",
                      "R1 gt-hit", "R2 gt-hit", "avg ms/query"});

  for (uint64_t n : {2000, 8000, 20000}) {
    WorldConfig wc;
    wc.num_concepts = 48;
    wc.latent_dim = 32;
    wc.raw_image_dim = 64;
    wc.seed = 7;
    auto corpus = MakeExperimentCorpus(wc, n);
    if (!corpus.ok()) return 1;
    IndexConfig index;
    index.algorithm = "mqa-hybrid";
    index.graph.max_degree = 24;
    SearchParams params;
    params.k = 10;
    params.beam_width = 96;

    for (const std::string name : {"must", "mr", "je"}) {
      auto fw = CreateRetrievalFramework(name, corpus->represented.store,
                                         corpus->represented.weights, index);
      if (!fw.ok()) return 1;
      auto outcome = RunDialogueSuite(*corpus, fw->get(), 80, 99, params);
      if (!outcome.ok()) return 1;
      table.AddRow({std::to_string(n), name,
                    FormatDouble(outcome->round1_precision, 3),
                    FormatDouble(outcome->round2_precision, 3),
                    FormatDouble(outcome->round1_hit, 3),
                    FormatDouble(outcome->round2_hit, 3),
                    FormatDouble((outcome->round1_ms + outcome->round2_ms) / 2,
                                 3)});
    }
  }
  table.Print();
  if (!args.json_path.empty()) {
    bench::JsonReporter report("bench_framework_recall");
    report.AddTable(table);
    if (!report.WriteToFile(args.json_path)) return 1;
  }
  std::printf(
      "\nExpected shape: round 1 ties across frameworks (text-only is\n"
      "easy); on round 2 must beats mr at every N, and beats je on\n"
      "fine-grained alignment (gt-hit) at small/medium N — je's fixed\n"
      "fusion holds coarse concept precision but loses instance-level\n"
      "alignment. At the largest N the exact-top-10 hit rates of all\n"
      "frameworks approach zero (500 objects per concept) and differences\n"
      "fall within noise.\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
