// A day in the life of a durable MQA deployment: morning dialogue
// traffic, a midday ingest burst, an afternoon of deletes overlapping an
// LLM outage, an abrupt crash, and timed recovery into evening traffic.
// Gates the robustness SLOs end to end: no acked write is ever lost, no
// deleted object resurfaces, no turn fails, and recovery stays fast.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/durable_system.h"

namespace mqa {
namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = std::min(
      values.size() - 1, static_cast<size_t>(p * (values.size() - 1) + 0.5));
  return values[idx];
}

int Run(const bench::BenchArgs& args) {
  bench::Banner(
      "Production day: dialogue + live mutation + outage + crash recovery");

  MqaConfig config;
  config.world.num_concepts = 24;
  config.world.seed = 83;
  config.corpus_size = bench::Scaled(4000, args.scale, 600);
  config.search.k = 10;
  config.search.beam_width = 96;
  config.resilience.enable = true;  // LLM outages degrade, never fail

  const size_t kMorningTurns = bench::Scaled(96, args.scale, 24);
  const size_t kInserts = bench::Scaled(320, args.scale, 48);
  const size_t kDeletes = bench::Scaled(320, args.scale, 48);
  const size_t kOutageTurns = bench::Scaled(32, args.scale, 8);
  const size_t kEveningTurns = bench::Scaled(96, args.scale, 24);

  DurabilityOptions durability;
  durability.wal_sync_every = 1;  // every ack is crash-durable
  // Trip a compaction + checkpoint during the afternoon delete wave.
  durability.checkpoint_garbage_ratio = 0.05;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "mqa_bench_production_day")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  Timer build_timer;
  auto sys_or = DurableSystem::Open(config, dir, durability);
  if (!sys_or.ok()) {
    std::fprintf(stderr, "%s\n", sys_or.status().ToString().c_str());
    return 1;
  }
  auto sys = std::move(sys_or).Value();
  const double build_ms = build_timer.ElapsedMillis();

  // The ack oracle: every acknowledged mutation changes the expected live
  // count; after the crash the recovered system must match it exactly.
  size_t expected_live = sys->coordinator()->kb().live_size();
  std::vector<double> turn_ms;
  size_t turn_failures = 0;
  size_t deleted_resurfaced = 0;
  size_t degraded_turns = 0;

  Rng rng(89);
  auto run_turn = [&](Coordinator* c) {
    const uint32_t concept_id = static_cast<uint32_t>(
        rng.NextUint64(c->world().num_concepts()));
    UserQuery query;
    query.text = c->world().MakeTextQuery(concept_id, &rng).text;
    Timer timer;
    auto turn = c->Ask(query);
    turn_ms.push_back(timer.ElapsedMillis());
    if (!turn.ok()) {
      ++turn_failures;
      return;
    }
    if (turn->degraded) ++degraded_turns;
    for (const RetrievedItem& item : turn->items) {
      if (c->kb().IsDeleted(item.id)) ++deleted_resurfaced;
    }
    c->ResetDialogue();
  };

  bench::Table table({"phase", "ops", "ms (p95 turn / total)", "kb live"});
  auto live = [&]() {
    return std::to_string(sys->coordinator()->kb().live_size());
  };

  // -- Morning: steady dialogue traffic.
  for (size_t i = 0; i < kMorningTurns; ++i) run_turn(sys->coordinator());
  table.AddRow({"morning turns", std::to_string(kMorningTurns),
                FormatDouble(Percentile(turn_ms, 0.95), 2), live()});

  // -- Midday: ingest burst. Every ack is WAL-durable before it returns.
  Timer ingest_timer;
  for (size_t i = 0; i < kInserts; ++i) {
    const uint32_t concept_id = static_cast<uint32_t>(
        rng.NextUint64(sys->coordinator()->world().num_concepts()));
    auto id = sys->Ingest(
        sys->coordinator()->world().MakeObject(concept_id, &rng));
    if (!id.ok()) {
      std::fprintf(stderr, "ingest: %s\n", id.status().ToString().c_str());
      return 1;
    }
    ++expected_live;
  }
  const double ingest_ms = ingest_timer.ElapsedMillis();
  table.AddRow({"midday ingest", std::to_string(kInserts),
                FormatDouble(ingest_ms, 1), live()});

  // -- Afternoon: deletes overlapping an LLM outage. Turns must degrade
  // to extractive answers, not fail; deletes keep acking throughout and
  // the garbage ratio crossing 5% forces a compaction + checkpoint.
  {
    FaultSpec outage;
    outage.code = StatusCode::kUnavailable;
    outage.message = "LLM provider outage";
    outage.max_fires = kOutageTurns * 4;  // outlasts per-turn retries
    ScopedFault fault("llm/complete", outage, &FaultInjector::Global());
    for (size_t i = 0; i < kOutageTurns; ++i) run_turn(sys->coordinator());
  }
  Timer delete_timer;
  size_t deletes_done = 0;
  while (deletes_done < kDeletes) {
    const uint64_t id =
        rng.NextUint64(sys->coordinator()->kb().size());
    if (sys->coordinator()->kb().IsDeleted(id)) continue;
    Status st = sys->Remove(id);
    if (!st.ok()) {
      std::fprintf(stderr, "remove: %s\n", st.ToString().c_str());
      return 1;
    }
    --expected_live;
    ++deletes_done;
  }
  const double delete_ms = delete_timer.ElapsedMillis();
  const uint64_t compactions = sys->coordinator()->compactions();
  table.AddRow({"afternoon deletes", std::to_string(kDeletes),
                FormatDouble(delete_ms, 1), live()});

  // -- The crash: power is yanked mid-afternoon. Unsynced bytes are gone;
  // with sync_every == 1 every ack already reached disk.
  Status crash = sys->CrashForTest();
  if (!crash.ok()) {
    std::fprintf(stderr, "crash: %s\n", crash.ToString().c_str());
    return 1;
  }
  sys.reset();

  Timer recovery_timer;
  auto recovered_or = DurableSystem::Open(config, dir, durability);
  if (!recovered_or.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 recovered_or.status().ToString().c_str());
    return 1;
  }
  sys = std::move(recovered_or).Value();
  const double recovery_ms = recovery_timer.ElapsedMillis();
  const RecoveryReport& report = sys->recovery_report();
  const size_t recovered_live = sys->coordinator()->kb().live_size();
  const size_t lost_acked =
      recovered_live > expected_live ? recovered_live - expected_live
                                     : expected_live - recovered_live;
  table.AddRow({"crash + recovery",
                std::to_string(report.replayed_inserts +
                               report.replayed_removes) +
                    " replayed",
                FormatDouble(recovery_ms, 1), live()});

  // -- Evening: traffic resumes on the recovered system.
  for (size_t i = 0; i < kEveningTurns; ++i) run_turn(sys->coordinator());
  table.AddRow({"evening turns", std::to_string(kEveningTurns),
                FormatDouble(Percentile(turn_ms, 0.95), 2), live()});
  table.Print();

  const double p95 = Percentile(turn_ms, 0.95);
  std::printf(
      "\nbuild %.0f ms | p95 turn %.2f ms | recovery %.1f ms "
      "(%llu inserts + %llu removes replayed)\n"
      "lost acked writes %zu | deleted resurfaced %zu | turn failures %zu "
      "| degraded turns %zu | compactions %llu\n",
      build_ms, p95, recovery_ms,
      static_cast<unsigned long long>(report.replayed_inserts),
      static_cast<unsigned long long>(report.replayed_removes), lost_acked,
      deleted_resurfaced, turn_failures, degraded_turns,
      static_cast<unsigned long long>(compactions));

  if (!args.json_path.empty()) {
    bench::JsonReporter reporter("bench_production_day");
    reporter.AddConfig("corpus_size", static_cast<double>(config.corpus_size));
    reporter.AddConfig("inserts", static_cast<double>(kInserts));
    reporter.AddConfig("deletes", static_cast<double>(kDeletes));
    reporter.AddConfig("scale", args.scale);
    reporter.AddMetric("day/p95_turn_ms", p95);
    reporter.AddMetric("day/recovery_ms", recovery_ms);
    reporter.AddMetric("day/lost_acked_writes",
                       static_cast<double>(lost_acked));
    reporter.AddMetric("day/deleted_resurfaced",
                       static_cast<double>(deleted_resurfaced));
    reporter.AddMetric("day/turn_failures",
                       static_cast<double>(turn_failures));
    reporter.AddMetric("day/degraded_turns",
                       static_cast<double>(degraded_turns));
    reporter.AddMetric("day/compactions", static_cast<double>(compactions));
    reporter.AddMetric("day/replayed_mutations",
                       static_cast<double>(report.replayed_inserts +
                                           report.replayed_removes));
    reporter.AddTable(table);
    if (!reporter.WriteToFile(args.json_path)) return 1;
  }

  std::filesystem::remove_all(dir, ec);
  std::printf(
      "\nExpected shape: every acknowledged mutation survives the crash\n"
      "(lost acked writes == 0), tombstoned objects never resurface, the\n"
      "LLM outage degrades turns instead of failing them, and recovery is\n"
      "a snapshot load plus a short WAL replay.\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
