#ifndef MQA_BENCH_BENCH_UTIL_H_
#define MQA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace mqa::bench {

/// Fixed-width table printing for paper-style reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      for (size_t i = 0; i < width[c] + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Banner(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace mqa::bench

#endif  // MQA_BENCH_BENCH_UTIL_H_
