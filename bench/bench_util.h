#ifndef MQA_BENCH_BENCH_UTIL_H_
#define MQA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace mqa::bench {

/// Fixed-width table printing for paper-style reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      for (size_t i = 0; i < width[c] + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Banner(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

/// Command-line options shared by every bench binary.
struct BenchArgs {
  /// --json <path>: also write the results as machine-readable JSON
  /// (see JsonReporter). Empty = print tables only.
  std::string json_path;
  /// --scale <f>: multiply the workload (corpus size, query count) by `f`.
  /// CI smoke runs use a fraction; 1.0 is the paper-scale default.
  double scale = 1.0;
};

/// Parses and REMOVES --json/--scale from argv, so the remaining flags can
/// be handed to another harness (google-benchmark's Initialize rejects
/// flags it does not know). Unrecognized arguments are left in place.
inline BenchArgs ParseBenchArgs(int* argc, char** argv) {
  BenchArgs out;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    bool is_json = false;
    bool is_scale = false;
    if (std::strncmp(arg, "--json=", 7) == 0) {
      is_json = true;
      value = arg + 7;
    } else if (std::strcmp(arg, "--json") == 0 && i + 1 < *argc) {
      is_json = true;
      value = argv[++i];
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      is_scale = true;
      value = arg + 8;
    } else if (std::strcmp(arg, "--scale") == 0 && i + 1 < *argc) {
      is_scale = true;
      value = argv[++i];
    }
    if (is_json) {
      out.json_path = value;
    } else if (is_scale) {
      const double s = std::strtod(value, nullptr);
      if (s > 0) out.scale = s;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return out;
}

/// Scales a workload size, keeping at least `floor` (a bench at --scale
/// 0.05 must still have enough objects to build a graph).
inline size_t Scaled(size_t n, double scale, size_t floor = 1) {
  const size_t scaled = static_cast<size_t>(static_cast<double>(n) * scale);
  return scaled < floor ? floor : scaled;
}

/// Collects one bench run as machine-readable JSON:
///   {"bench": name, "config": {...}, "metrics": {...}, "timestamp": secs}
/// Metric names follow the repo-wide `group/name` convention so
/// tools/bench_check.py can gate them against bench/baselines.json.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench) : bench_(std::move(bench)) {}

  void AddConfig(const std::string& key, const std::string& value) {
    config_[key] = value;
  }
  void AddConfig(const std::string& key, double value) {
    config_[key] = JsonNumber(value);
  }
  void AddMetric(const std::string& name, double value) {
    metrics_[name] = value;
  }

  /// Generic table capture for benches without hand-picked metrics: each
  /// numeric cell of row i becomes metric "row<i>/<header-slug>", and the
  /// row's non-numeric cells become the config entry "row<i>" (the row's
  /// identity). Row order is part of the schema: renumbering happens only
  /// when the bench's settings list changes.
  void AddTable(const Table& table) {
    const std::vector<std::string>& headers = table.headers();
    for (size_t r = 0; r < table.rows().size(); ++r) {
      const std::vector<std::string>& row = table.rows()[r];
      const std::string prefix = "row" + std::to_string(r);
      std::string label;
      for (size_t c = 0; c < row.size() && c < headers.size(); ++c) {
        double v = 0;
        if (ParseNumericCell(row[c], &v)) {
          AddMetric(prefix + "/" + Slug(headers[c]), v);
        } else {
          if (!label.empty()) label += " ";
          label += row[c];
        }
      }
      if (!label.empty()) AddConfig(prefix, label);
    }
  }

  std::string ToJson() const {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").String(bench_);
    w.Key("config").BeginObject();
    for (const auto& [k, v] : config_) w.Key(k).String(v);
    w.EndObject();
    w.Key("metrics").BeginObject();
    for (const auto& [k, v] : metrics_) w.Key(k).Number(v);
    w.EndObject();
    w.Key("timestamp").Int(static_cast<int64_t>(std::time(nullptr)));
    w.EndObject();
    return w.str();
  }

  /// Writes ToJson() (plus a trailing newline) to `path`. Returns false
  /// (with a note on stderr) when the file cannot be written.
  bool WriteToFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
                        json.size() &&
                    std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
    return ok;
  }

  /// "recall@10 (vs exact)" -> "recall_10_vs_exact": lowercase, runs of
  /// non-alphanumerics collapse to one '_', trimmed at both ends.
  static std::string Slug(const std::string& text) {
    std::string out;
    for (char ch : text) {
      if ((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9')) {
        out += ch;
      } else if (ch >= 'A' && ch <= 'Z') {
        out += static_cast<char>(ch - 'A' + 'a');
      } else if (!out.empty() && out.back() != '_') {
        out += '_';
      }
    }
    while (!out.empty() && out.back() == '_') out.pop_back();
    return out;
  }

 private:
  static bool ParseNumericCell(const std::string& cell, double* value) {
    if (cell.empty()) return false;
    char* end = nullptr;
    *value = std::strtod(cell.c_str(), &end);
    return end == cell.c_str() + cell.size();
  }

  std::string bench_;
  std::map<std::string, std::string> config_;
  std::map<std::string, double> metrics_;
};

}  // namespace mqa::bench

#endif  // MQA_BENCH_BENCH_UTIL_H_
