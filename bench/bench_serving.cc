// Serving-E10 (concurrent front end): open-loop latency of the
// multi-session server under steady load, and behaviour under a burst
// that deliberately overruns the admission queue. Requests arrive on a
// Poisson schedule from a seeded RNG (open loop: arrivals never wait for
// completions, so queueing delay is measured honestly), fan out over
// concurrent sessions round-robin, and execute on the worker pool with
// cross-query batching. Reported per scenario: completed/shed counts,
// latency percentiles (p50/p95/p99) of completed turns, and mean
// search-batch occupancy.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "server/server.h"

namespace mqa {
namespace {

struct ScenarioResult {
  size_t requests = 0;
  size_t completed = 0;
  size_t shed = 0;
  size_t failed = 0;
  double wall_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double mean_batch = 0;  ///< mean search-batch occupancy
};

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0;
  std::sort(values->begin(), values->end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(values->size() - 1) + 0.5);
  return (*values)[std::min(idx, values->size() - 1)];
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Drives `requests` turns through the server on an open-loop arrival
/// schedule at `rate_qps` (0 = back-to-back burst), spread round-robin
/// over `num_sessions` sessions.
ScenarioResult RunScenario(Server* server, size_t requests, double rate_qps,
                           size_t num_sessions, uint64_t seed) {
  ScenarioResult out;
  out.requests = requests;

  std::vector<uint64_t> sessions(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    sessions[s] = server->OpenSession();
  }

  // Pre-generate the Poisson schedule so RNG cost is off the timed path;
  // arrivals are absolute offsets, so sleep jitter does not accumulate.
  Rng rng(seed);
  std::vector<int64_t> arrival_micros(requests, 0);
  int64_t t = 0;
  for (size_t i = 0; i < requests; ++i) {
    if (rate_qps > 0) {
      const double u = std::max(1e-12, 1.0 - rng.UniformDouble());
      t += static_cast<int64_t>(-std::log(u) / rate_qps * 1e6);
    }
    arrival_micros[i] = t;
  }

  const uint32_t num_concepts = server->coordinator()->world().num_concepts();
  const BatcherStats search_before = server->search_batcher() != nullptr
                                         ? server->search_batcher()->stats()
                                         : BatcherStats();

  // Completion records are preallocated; each callback touches only its
  // own slot plus the shared counters.
  std::vector<double> latency_ms(requests, -1.0);
  std::vector<int64_t> submitted_micros(requests, 0);
  std::atomic<size_t> completed{0};
  std::atomic<size_t> failed{0};
  std::atomic<size_t> outstanding{0};

  const int64_t start = NowMicros();
  size_t shed = 0;
  for (size_t i = 0; i < requests; ++i) {
    // Open loop: wait until this request's scheduled arrival, regardless
    // of how the previous ones are doing.
    const int64_t due = start + arrival_micros[i];
    int64_t now = NowMicros();
    if (now < due) {
      SystemClock()->SleepForMicros(due - now);
      now = NowMicros();
    }
    UserQuery query;
    query.text = "show me " + server->coordinator()->world().ConceptName(
                                  static_cast<uint32_t>(i) % num_concepts);
    submitted_micros[i] = now;
    outstanding.fetch_add(1);
    Status admitted = server->Submit(
        sessions[i % num_sessions], std::move(query),
        [i, &latency_ms, &submitted_micros, &completed, &failed,
         &outstanding](Result<AnswerTurn> turn) {
          if (turn.ok()) {
            latency_ms[i] =
                static_cast<double>(NowMicros() - submitted_micros[i]) / 1e3;
            completed.fetch_add(1);
          } else {
            failed.fetch_add(1);
          }
          outstanding.fetch_sub(1);
        });
    if (!admitted.ok()) {
      ++shed;
      outstanding.fetch_sub(1);
    }
  }
  while (outstanding.load() > 0) std::this_thread::yield();
  out.wall_ms = static_cast<double>(NowMicros() - start) / 1e3;

  out.completed = completed.load();
  out.failed = failed.load();
  out.shed = shed;
  std::vector<double> completed_latencies;
  completed_latencies.reserve(out.completed);
  for (double l : latency_ms) {
    if (l >= 0) completed_latencies.push_back(l);
  }
  out.p50_ms = Percentile(&completed_latencies, 0.50);
  out.p95_ms = Percentile(&completed_latencies, 0.95);
  out.p99_ms = Percentile(&completed_latencies, 0.99);

  if (server->search_batcher() != nullptr) {
    const BatcherStats search_after = server->search_batcher()->stats();
    const uint64_t batches = search_after.batches - search_before.batches;
    const uint64_t items = search_after.items - search_before.items;
    out.mean_batch =
        batches > 0
            ? static_cast<double>(items) / static_cast<double>(batches)
            : 0.0;
  }

  for (uint64_t session : sessions) {
    (void)server->CloseSession(session);
  }
  return out;
}

void AddScenarioMetrics(bench::JsonReporter* report, const std::string& name,
                        const ScenarioResult& r) {
  report->AddMetric(name + "/requests", static_cast<double>(r.requests));
  report->AddMetric(name + "/completed", static_cast<double>(r.completed));
  report->AddMetric(name + "/shed", static_cast<double>(r.shed));
  report->AddMetric(name + "/failed", static_cast<double>(r.failed));
  report->AddMetric(name + "/p50_ms", r.p50_ms);
  report->AddMetric(name + "/p95_ms", r.p95_ms);
  report->AddMetric(name + "/p99_ms", r.p99_ms);
  report->AddMetric(name + "/mean_batch_occupancy", r.mean_batch);
}

int Run(const bench::BenchArgs& args) {
  const size_t corpus = bench::Scaled(4000, args.scale, 600);
  const size_t steady_requests = bench::Scaled(240, args.scale, 40);
  // Floor above the queue capacity: the burst must overrun the queue and
  // demonstrate shedding at any --scale.
  const size_t burst_requests = bench::Scaled(400, args.scale, 100);

  bench::Banner("Serving-E10: concurrent front end, open-loop arrivals (N = " +
                std::to_string(corpus) + ")");

  MqaConfig config;
  config.world.num_concepts = 16;
  config.world.seed = 71;
  config.corpus_size = corpus;
  config.search.k = 5;
  config.search.beam_width = 64;
  config.observability.trace_turns = false;  // measure serving, not tracing
  config.serving.num_workers = 4;
  config.serving.queue_capacity = 64;
  config.serving.enable_batching = true;
  config.serving.max_batch = 8;
  // Burst sheds must all be queue-full backpressure, so the report
  // separates admission control from breaker behaviour.
  config.serving.breaker_failure_threshold = 1 << 30;

  auto server_or = Server::Create(config);
  if (!server_or.ok()) {
    std::fprintf(stderr, "%s\n", server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Server> server = std::move(server_or).Value();

  // Scenario 1 — steady: Poisson arrivals well inside capacity. Expected
  // shape: zero shedding, single-digit-ms tails.
  const ScenarioResult steady =
      RunScenario(server.get(), steady_requests, /*rate_qps=*/150.0,
                  /*num_sessions=*/8, /*seed=*/73);

  // Scenario 2 — burst: all requests arrive at once (rate 0). The queue
  // fills, admission control sheds the excess with kResourceExhausted, and
  // the accepted turns keep a bounded tail — overload costs throughput,
  // never the latency of admitted work.
  const ScenarioResult burst =
      RunScenario(server.get(), burst_requests, /*rate_qps=*/0.0,
                  /*num_sessions=*/8, /*seed=*/79);

  bench::Table table({"scenario", "requests", "completed", "shed", "p50 ms",
                      "p95 ms", "p99 ms", "mean batch"});
  auto add_row = [&table](const std::string& name, const ScenarioResult& r) {
    table.AddRow({name, std::to_string(r.requests),
                  std::to_string(r.completed), std::to_string(r.shed),
                  FormatDouble(r.p50_ms, 2), FormatDouble(r.p95_ms, 2),
                  FormatDouble(r.p99_ms, 2), FormatDouble(r.mean_batch, 2)});
  };
  add_row("steady 150qps", steady);
  add_row("burst", burst);
  std::printf("\n");
  table.Print();

  const ServerStatsSnapshot stats = server->stats();
  std::printf(
      "\nserver totals: accepted=%llu completed=%llu shed_queue_full=%llu "
      "shed_deadline=%llu\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.shed_queue_full),
      static_cast<unsigned long long>(stats.shed_deadline));

  if (!args.json_path.empty()) {
    bench::JsonReporter report("bench_serving");
    report.AddConfig("corpus", static_cast<double>(corpus));
    report.AddConfig("workers",
                     static_cast<double>(config.serving.num_workers));
    report.AddConfig("queue_capacity",
                     static_cast<double>(config.serving.queue_capacity));
    report.AddConfig("max_batch",
                     static_cast<double>(config.serving.max_batch));
    report.AddConfig("scale", args.scale);
    AddScenarioMetrics(&report, "steady", steady);
    AddScenarioMetrics(&report, "burst", burst);
    if (!report.WriteToFile(args.json_path)) return 1;
  }

  server->Shutdown();
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
