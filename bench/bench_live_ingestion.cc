// Ablation: live ingestion vs full rebuild. The paper's ingest-then-query
// workflow needs new objects searchable immediately; this measures the
// cost of incremental insertion and whether accuracy drifts as the
// streamed fraction grows.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/coordinator.h"

namespace mqa {
namespace {

int Run(const bench::BenchArgs& args) {
  bench::Banner(
      "Live ingestion: incremental insertion vs rebuild (must / mqa-hybrid)");

  MqaConfig config;
  config.world.num_concepts = 32;
  config.world.seed = 71;
  config.corpus_size = 8000;
  config.search.k = 10;
  config.search.beam_width = 96;

  bench::Table table({"streamed objects", "ingest ms/object",
                      "R1 concept-prec", "kb size"});

  auto coordinator_or = Coordinator::Create(config);
  if (!coordinator_or.ok()) return 1;
  auto coordinator = std::move(coordinator_or).Value();

  auto evaluate = [&]() -> double {
    Rng rng(73);
    double precision = 0;
    const size_t kQueries = 64;
    for (size_t i = 0; i < kQueries; ++i) {
      const uint32_t c =
          static_cast<uint32_t>(i % coordinator->world().num_concepts());
      UserQuery query;
      query.text = coordinator->world().MakeTextQuery(c, &rng).text;
      auto turn = coordinator->Ask(query);
      if (!turn.ok()) return -1;
      size_t matching = 0;
      for (const RetrievedItem& item : turn->items) {
        if (coordinator->kb().at(item.id).concept_id == c) ++matching;
      }
      precision += turn->items.empty()
                       ? 0.0
                       : static_cast<double>(matching) / turn->items.size();
      coordinator->ResetDialogue();
    }
    return precision / kQueries;
  };

  table.AddRow({"0 (fresh build)", "-", FormatDouble(evaluate(), 3),
                std::to_string(coordinator->kb().size())});

  Rng rng(79);
  size_t streamed_total = 0;
  for (size_t batch : {1000, 3000}) {
    Timer timer;
    for (size_t i = 0; i < batch; ++i) {
      const uint32_t c = static_cast<uint32_t>(
          rng.NextUint64(coordinator->world().num_concepts()));
      auto id = coordinator->IngestObject(
          coordinator->world().MakeObject(c, &rng));
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
    }
    const double per_object = timer.ElapsedMillis() / batch;
    streamed_total += batch;
    table.AddRow({std::to_string(streamed_total),
                  FormatDouble(per_object, 3), FormatDouble(evaluate(), 3),
                  std::to_string(coordinator->kb().size())});
  }
  table.Print();
  if (!args.json_path.empty()) {
    bench::JsonReporter report("bench_live_ingestion");
    report.AddTable(table);
    if (!report.WriteToFile(args.json_path)) return 1;
  }
  std::printf(
      "\nExpected shape: ingestion costs a few milliseconds per object\n"
      "(one beam search + RobustPrune) and retrieval accuracy holds as the\n"
      "streamed fraction grows to ~50%% of the corpus.\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
