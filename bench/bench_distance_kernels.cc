// Micro-benchmarks of the distance kernels underlying every experiment:
// plain L2, dot product, weighted multi-vector distance, and the
// incremental-scanning (early-abandon) variants at different bound
// tightnesses. google-benchmark timing harness.

#include <benchmark/benchmark.h>

#include <limits>

#include "bench_util.h"
#include "common/random.h"
#include "vector/multi_distance.h"
#include "vector/simd/simd.h"
#include "vector/sketch.h"
#include "vector/vector_store.h"

namespace mqa {
namespace {

Vector RandomVector(size_t dim, Rng* rng) {
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian());
  return v;
}

void BM_L2Sq(benchmark::State& state) {
  const size_t dim = state.range(0);
  Rng rng(1);
  const Vector a = RandomVector(dim, &rng);
  const Vector b = RandomVector(dim, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2Sq(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2Sq)->Arg(32)->Arg(64)->Arg(128)->Arg(512);

void BM_Dot(benchmark::State& state) {
  const size_t dim = state.range(0);
  Rng rng(2);
  const Vector a = RandomVector(dim, &rng);
  const Vector b = RandomVector(dim, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dot)->Arg(32)->Arg(128);

void BM_WeightedMultiExact(benchmark::State& state) {
  const size_t num_m = state.range(0);
  VectorSchema schema;
  std::vector<float> weights;
  for (size_t m = 0; m < num_m; ++m) {
    schema.dims.push_back(32);
    weights.push_back(1.0f + m);
  }
  auto dist = WeightedMultiDistance::Create(schema, weights);
  Rng rng(3);
  const Vector a = RandomVector(schema.TotalDim(), &rng);
  const Vector b = RandomVector(schema.TotalDim(), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist->Exact(a.data(), b.data()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeightedMultiExact)->Arg(1)->Arg(2)->Arg(4);

// Pruned distance with the bound set to a fraction of the true distance:
// tighter bounds abandon earlier and run faster.
void BM_WeightedMultiPruned(benchmark::State& state) {
  const int bound_percent = state.range(0);
  VectorSchema schema;
  schema.dims = {32, 32, 32, 32};
  auto dist =
      WeightedMultiDistance::Create(schema, {1.0f, 1.0f, 1.0f, 1.0f});
  Rng rng(4);
  const Vector a = RandomVector(schema.TotalDim(), &rng);
  const Vector b = RandomVector(schema.TotalDim(), &rng);
  const float exact = dist->Exact(a.data(), b.data());
  const float bound = exact * bound_percent / 100.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist->Pruned(a.data(), b.data(), bound,
                                          nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeightedMultiPruned)->Arg(10)->Arg(50)->Arg(150);

// The batched rerank path: one query against N contiguous padded rows
// (disk-index pivot scans, brute-force chunks). Same per-row kernel as
// BM_WeightedMultiExact plus cross-row prefetch.
void BM_WeightedMultiExactBatch(benchmark::State& state) {
  const uint32_t n = 1024;
  VectorSchema schema;
  schema.dims = {32, 32, 32, 32};
  auto dist =
      WeightedMultiDistance::Create(schema, {1.0f, 2.0f, 3.0f, 4.0f});
  VectorStore store(schema);
  Rng rng(6);
  for (uint32_t i = 0; i < n; ++i) {
    (void)store.Add(RandomVector(schema.TotalDim(), &rng));
  }
  const Vector q = RandomVector(schema.TotalDim(), &rng);
  std::vector<float> out(n);
  for (auto _ : state) {
    dist->ExactBatch(q.data(), store.data(0), store.row_stride(), n,
                     out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WeightedMultiExactBatch);

// Bounded scan with the popcount prefilter in front of the incremental
// scan, in the regime the prefilter targets: the query is a near-duplicate
// of a stored object, so the running top-1 bound tightens immediately and
// most candidates die on a 4-word XOR+popcount instead of a float kernel.
// (With a loose bound the sketch floors never reject and the prefilter is
// pure overhead — that regime is measured by the /0 leg's pruning path.)
void BM_SketchPrefilterScan(benchmark::State& state) {
  const bool prefilter = state.range(0) != 0;
  const uint32_t n = 4096;
  VectorSchema schema;
  schema.dims = {32, 32, 32, 32};
  auto wd = WeightedMultiDistance::Create(schema, {1.0f, 1.0f, 1.0f, 1.0f});
  VectorStore store(schema);
  Rng rng(7);
  for (uint32_t i = 0; i < n; ++i) {
    (void)store.Add(RandomVector(schema.TotalDim(), &rng));
  }
  MultiVectorDistanceComputer dist(&store, *wd, /*enable_pruning=*/true);
  BitSketchIndex sketches(schema);
  if (prefilter) {
    sketches.Rebuild(store);
    dist.SetSketches(&sketches);
  }
  Vector q = store.Row(0);
  for (auto& x : q) x += static_cast<float>(rng.Gaussian()) * 1e-3f;
  for (auto _ : state) {
    dist.BeginQuery(q.data());
    float best = std::numeric_limits<float>::max();
    for (uint32_t i = 0; i < n; ++i) {
      const float d = dist.DistanceWithBound(q.data(), i, best);
      if (d < best) best = d;
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SketchPrefilterScan)->Arg(0)->Arg(1);

void BM_FlatStoreScan(benchmark::State& state) {
  const uint32_t n = 10000;
  VectorSchema schema;
  schema.dims = {64};
  VectorStore store(schema);
  Rng rng(5);
  for (uint32_t i = 0; i < n; ++i) {
    (void)store.Add(RandomVector(64, &rng));
  }
  const Vector q = RandomVector(64, &rng);
  FlatDistanceComputer dist(&store, Metric::kL2);
  for (auto _ : state) {
    float sum = 0;
    for (uint32_t i = 0; i < n; ++i) sum += dist.Distance(q.data(), i);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatStoreScan);

/// Console output as usual, plus every per-iteration run captured as a
/// `<name-slug>/ns_per_op` metric for the JSON report.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(bench::JsonReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      out_->AddMetric(bench::JsonReporter::Slug(run.benchmark_name()) +
                          "/ns_per_op",
                      run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::JsonReporter* out_;
};

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  // Take --json/--scale out of argv before google-benchmark sees them
  // (it rejects unknown flags).
  const mqa::bench::BenchArgs args = mqa::bench::ParseBenchArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  mqa::bench::JsonReporter report("bench_distance_kernels");
  // Recorded so ratio gates (tools/bench_check.py --compare) can tell a
  // scalar-pinned run from a dispatched one and skip same-level pairs.
  report.AddConfig("simd_level",
                   std::string(mqa::SimdLevelName(mqa::ActiveSimdLevel())));
  mqa::CaptureReporter console(&report);
  benchmark::RunSpecifiedBenchmarks(&console);
  if (!args.json_path.empty() && !report.WriteToFile(args.json_path)) {
    return 1;
  }
  return 0;
}
