// Experiment Pipeline-E5: the unified five-stage construction pipeline
// instantiating different navigation-graph algorithms (KGraph, NSG,
// Vamana, the composed "mqa-hybrid", HNSW) — build time, memory, stage
// breakdown, and the recall/QPS operating points of each.
//
// Paper claim: "a general pipeline for constructing fine-grained
// navigation graphs on CGraph ... allowing any current navigation graph to
// be decomposed and smoothly integrated into MQA. Furthermore, we
// incorporate components from several state-of-the-art algorithms ...
// resulting in a novel indexing algorithm."

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/experiment.h"
#include "graph/index_factory.h"

namespace mqa {
namespace {

int Run(const bench::BenchArgs& args) {
  bench::Banner(
      "Pipeline-E5: index algorithms in the unified pipeline (N = 20000, "
      "weighted multi-vector space)");

  WorldConfig wc;
  wc.num_concepts = 40;
  wc.latent_dim = 32;
  wc.raw_image_dim = 64;
  wc.seed = 29;
  auto corpus = MakeExperimentCorpus(wc, 20000);
  if (!corpus.ok()) return 1;
  const VectorStore& store = *corpus->represented.store;

  // Query bank + exact ground truth under the learned weighted distance.
  const size_t kQueries = 80;
  std::vector<Vector> queries;
  std::vector<std::vector<uint32_t>> exact(kQueries);
  {
    auto wd = WeightedMultiDistance::Create(store.schema(),
                                            corpus->represented.weights);
    if (!wd.ok()) return 1;
    Rng rng(31);
    for (size_t i = 0; i < kQueries; ++i) {
      const uint32_t c =
          static_cast<uint32_t>(i % corpus->world->num_concepts());
      auto q = EncodeTextQuery(
          *corpus, corpus->world->MakeTextQuery(c, &rng).text);
      if (!q.ok()) return 1;
      auto flat = FlattenMultiVector(store.schema(), q->modalities);
      if (!flat.ok()) return 1;
      queries.push_back(std::move(flat).Value());
      TopK topk(10);
      for (uint32_t id = 0; id < store.size(); ++id) {
        topk.Push(wd->Exact(queries.back().data(), store.data(id)), id);
      }
      for (const Neighbor& n : topk.TakeSorted()) exact[i].push_back(n.id);
    }
  }

  bench::Table table({"algorithm", "build s", "index MB", "avg degree",
                      "connected", "recall@10", "QPS", "stage breakdown"});

  for (const std::string& algo : AllIndexAlgorithms()) {
    IndexConfig config;
    config.algorithm = algo;
    config.graph.max_degree = 24;
    config.graph.build_beam = 64;
    config.hnsw.m = 12;
    auto wd = WeightedMultiDistance::Create(store.schema(),
                                            corpus->represented.weights);
    if (!wd.ok()) return 1;
    auto dist = std::make_unique<MultiVectorDistanceComputer>(
        &store, std::move(wd).Value(), /*enable_pruning=*/true);
    BuildReport report;
    Timer build_timer;
    auto index = CreateIndex(config, &store, std::move(dist), &report);
    if (!index.ok()) {
      std::fprintf(stderr, "%s: %s\n", algo.c_str(),
                   index.status().ToString().c_str());
      return 1;
    }
    const double build_s = build_timer.ElapsedSeconds();

    SearchParams params;
    params.k = 10;
    params.beam_width = 96;
    double recall = 0;
    Timer timer;
    for (size_t i = 0; i < kQueries; ++i) {
      auto r = (*index)->Search(queries[i].data(), params, nullptr);
      if (!r.ok()) return 1;
      recall += GroundTruthHitRate(*r, exact[i]);
    }
    const double elapsed = timer.ElapsedSeconds();

    std::string stages;
    for (const auto& s : report.stages) {
      if (!stages.empty()) stages += ", ";
      stages += s.name.substr(0, 4) + "=" +
                FormatDouble(s.elapsed_ms / 1000.0, 1) + "s";
    }
    if (stages.empty()) stages = "-";
    table.AddRow(
        {algo, FormatDouble(build_s, 2),
         FormatDouble((*index)->MemoryBytes() / 1048576.0, 2),
         FormatDouble(report.avg_degree, 1), report.connected ? "yes" : "-",
         FormatDouble(recall / kQueries, 3),
         FormatDouble(kQueries / elapsed, 0), stages});
  }
  table.Print();
  if (!args.json_path.empty()) {
    bench::JsonReporter report("bench_index_algorithms");
    report.AddTable(table);
    if (!report.WriteToFile(args.json_path)) return 1;
  }
  std::printf(
      "\nExpected shape: every refined graph (nsg, vamana, mqa-hybrid,\n"
      "hnsw) reaches ~0.93+ recall at several times the QPS of bruteforce\n"
      "(the gap widens with N: graph search cost grows ~log N, scans grow\n"
      "linearly); kgraph (no refinement, random restarts) trails in\n"
      "recall; build cost is dominated by the refinement stage.\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
