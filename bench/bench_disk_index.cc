// Experiment Starling-E6: the disk-resident graph index. Block layout
// (BFS packing vs id order), block-aware search, and page-cache size
// determine the number of 4KB page reads per query — the quantity that
// dominates latency on SSDs.
//
// Paper claim (via Starling [9]): an I/O-efficient disk-resident graph
// index with a block-level layout reduces page reads per query, enabling
// scalability past memory.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "diskindex/disk_index.h"
#include "graph/pipeline.h"

namespace mqa {
namespace {

int Run(const bench::BenchArgs& args) {
  const size_t n = bench::Scaled(20000, args.scale, 2000);
  bench::Banner("Starling-E6: disk-resident index I/O (N = " +
                std::to_string(n) + ", page = 4KB, k = 10, beam = 64)");

  WorldConfig wc;
  wc.num_concepts = 40;
  wc.latent_dim = 32;
  wc.raw_image_dim = 64;
  wc.seed = 37;
  auto corpus = MakeExperimentCorpus(wc, n);
  if (!corpus.ok()) return 1;
  const VectorStore& store = *corpus->represented.store;

  bench::JsonReporter report("bench_disk_index");
  report.AddConfig("n", static_cast<double>(n));
  report.AddConfig("k", 10.0);
  report.AddConfig("beam", 64.0);
  report.AddConfig("scale", args.scale);

  // Build the in-memory source graph once.
  auto wd = WeightedMultiDistance::Create(store.schema(),
                                          corpus->represented.weights);
  if (!wd.ok()) return 1;
  GraphBuildConfig graph_config;
  graph_config.algorithm = "mqa-hybrid";
  graph_config.max_degree = 24;
  auto mem_index = BuildGraphIndex(
      graph_config, &store,
      std::make_unique<MultiVectorDistanceComputer>(&store, *wd, true));
  if (!mem_index.ok()) return 1;

  const size_t kQueries = bench::Scaled(100, args.scale, 20);
  std::vector<Vector> queries;
  Rng rng(41);
  for (size_t i = 0; i < kQueries; ++i) {
    const uint32_t c =
        static_cast<uint32_t>(i % corpus->world->num_concepts());
    auto q = EncodeTextQuery(*corpus,
                             corpus->world->MakeTextQuery(c, &rng).text);
    if (!q.ok()) return 1;
    auto flat = FlattenMultiVector(store.schema(), q->modalities);
    if (!flat.ok()) return 1;
    queries.push_back(std::move(flat).Value());
  }

  bench::Table table({"layout", "block-aware", "cache pages", "mem pivots",
                      "page reads/query", "cache hits/query",
                      "modeled ms/query (100us reads)", "recall vs memory"});

  // Memory-index reference results.
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  std::vector<std::vector<uint32_t>> mem_results(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    auto r = (*mem_index)->Search(queries[i].data(), params, nullptr);
    if (!r.ok()) return 1;
    for (const Neighbor& n : *r) mem_results[i].push_back(n.id);
  }

  struct Setting {
    const char* layout;
    bool aware;
    size_t cache;
    uint32_t pivots;
  };
  const Setting settings[] = {
      {"id", false, 64, 0},   {"id", true, 64, 0},
      {"bfs", false, 64, 0},  {"bfs", true, 64, 0},
      {"bfs", true, 16, 0},   {"bfs", true, 256, 0},
      {"bfs", true, 1024, 0}, {"bfs", true, 64, 256},
      {"bfs", true, 64, 1024},
  };

  for (const Setting& s : settings) {
    DiskIndexConfig config;
    config.layout = s.layout;
    config.block_aware_search = s.aware;
    config.cache_pages = s.cache;
    config.memory_pivots = s.pivots;
    auto disk = DiskGraphIndex::Create(config, **mem_index, store, *wd);
    if (!disk.ok()) {
      std::fprintf(stderr, "disk: %s\n", disk.status().ToString().c_str());
      return 1;
    }
    double recall = 0;
    for (size_t i = 0; i < kQueries; ++i) {
      (*disk)->ClearCache();  // cold per query: worst case
      auto r = (*disk)->Search(queries[i].data(), params, nullptr);
      if (!r.ok()) return 1;
      recall += GroundTruthHitRate(*r, mem_results[i]);
    }
    const DiskIoStats& io = (*disk)->io_stats();
    const double reads = static_cast<double>(io.page_reads) / kQueries;
    table.AddRow({s.layout, s.aware ? "yes" : "no", std::to_string(s.cache),
                  std::to_string(s.pivots), FormatDouble(reads, 1),
                  FormatDouble(static_cast<double>(io.cache_hits) / kQueries,
                               1),
                  FormatDouble(DiskGraphIndex::ModeledLatencyMs(
                                   static_cast<uint64_t>(reads)),
                               2),
                  FormatDouble(recall / kQueries, 3)});
    const std::string prefix = std::string(s.layout) +
                               (s.aware ? "_aware" : "_plain") + "_c" +
                               std::to_string(s.cache) + "_p" +
                               std::to_string(s.pivots);
    report.AddMetric(prefix + "/page_reads_per_query", reads);
    report.AddMetric(prefix + "/cache_hits_per_query",
                     static_cast<double>(io.cache_hits) / kQueries);
    report.AddMetric(prefix + "/recall_vs_memory", recall / kQueries);
  }
  table.Print();
  if (!args.json_path.empty() && !report.WriteToFile(args.json_path)) {
    return 1;
  }
  std::printf(
      "\nExpected shape: the BFS block layout needs ~2-3x fewer page reads\n"
      "than id order (neighborhoods share pages), and bigger caches help\n"
      "further — the two Starling effects. Block-aware scoring keeps reads\n"
      "flat while scoring page-mates for free; it can terminate the beam\n"
      "slightly earlier (marginally lower recall). The in-memory pivot\n"
      "sample (Starling's RAM navigation layer) seeds the traversal near\n"
      "the answer and cuts cold-cache reads further. Recall stays close to\n"
      "the in-memory index throughout.\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
