// Experiment E8 (retrieval-augmented answer grounding): answers generated
// with retrieval cite actual knowledge-base objects; answers generated
// without retrieval hallucinate plausible-but-unverifiable content. The
// groundedness proxy: does the answer name the user's target concept with
// a knowledge-base citation?
//
// Paper claim: "The introduction of retrieval-augmented LLMs offers a
// promising solution ... thereby promoting factually consistent and
// reliable responses."

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/coordinator.h"

namespace mqa {
namespace {

struct GroundingScore {
  double mentions_target = 0;  ///< answer names the target concept
  double cites_objects = 0;    ///< answer cites "object #" entries
  double admits_unverified = 0;
};

Result<GroundingScore> Evaluate(bool enable_kb, float temperature) {
  MqaConfig config;
  config.world.num_concepts = 24;
  config.world.seed = 53;
  config.corpus_size = 3000;
  config.enable_knowledge_base = enable_kb;
  config.temperature = temperature;
  config.search.k = 5;
  MQA_ASSIGN_OR_RETURN(std::unique_ptr<Coordinator> coordinator,
                       Coordinator::Create(config));

  // The no-KB coordinator owns no corpus, so concept names come from a
  // matching world built the same way.
  MQA_ASSIGN_OR_RETURN(World world, World::Create(config.world));

  GroundingScore score;
  const size_t kQuestions = 60;
  Rng rng(59);
  for (size_t i = 0; i < kQuestions; ++i) {
    const uint32_t c = static_cast<uint32_t>(i % world.num_concepts());
    UserQuery query;
    query.text = world.MakeTextQuery(c, &rng).text;
    MQA_ASSIGN_OR_RETURN(AnswerTurn turn, coordinator->Ask(query));
    if (ContainsIgnoreCase(turn.answer, world.ConceptName(c))) {
      score.mentions_target += 1;
    }
    if (turn.answer.find("object #") != std::string::npos) {
      score.cites_objects += 1;
    }
    if (turn.answer.find("cannot verify") != std::string::npos) {
      score.admits_unverified += 1;
    }
    coordinator->ResetDialogue();
  }
  score.mentions_target /= kQuestions;
  score.cites_objects /= kQuestions;
  score.admits_unverified /= kQuestions;
  return score;
}

int Run(const bench::BenchArgs& args) {
  bench::Banner(
      "E8: answer grounding with vs without retrieval augmentation "
      "(sim-llm, 60 questions)");
  bench::Table table({"configuration", "names target concept",
                      "cites KB objects", "admits unverifiable"});
  struct Setting {
    const char* label;
    bool kb;
    float temperature;
  };
  for (const Setting& s :
       {Setting{"retrieval ON, temp 0.2", true, 0.2f},
        Setting{"retrieval ON, temp 1.0", true, 1.0f},
        Setting{"retrieval OFF (LLM only), temp 0.2", false, 0.2f},
        Setting{"retrieval OFF (LLM only), temp 1.0", false, 1.0f}}) {
    auto score = Evaluate(s.kb, s.temperature);
    if (!score.ok()) {
      std::fprintf(stderr, "%s\n", score.status().ToString().c_str());
      return 1;
    }
    table.AddRow({s.label, FormatDouble(score->mentions_target, 3),
                  FormatDouble(score->cites_objects, 3),
                  FormatDouble(score->admits_unverified, 3)});
  }
  table.Print();
  if (!args.json_path.empty()) {
    bench::JsonReporter report("bench_answer_grounding");
    report.AddTable(table);
    if (!report.WriteToFile(args.json_path)) return 1;
  }
  std::printf(
      "\nExpected shape: with retrieval the answer names the target concept\n"
      "and cites knowledge-base objects nearly always; without retrieval\n"
      "the LLM rarely lands on the right concept and flags its answers as\n"
      "unverifiable — the hallucination problem retrieval augmentation\n"
      "exists to fix. Temperature changes phrasing, not grounding.\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
