// Experiment MUST-E2 (efficiency): QPS vs recall trade-off per retrieval
// framework, sweeping the beam width. Recall here is index recall: overlap
// with the same framework's exhaustive (bruteforce) answer, which isolates
// the navigation graph's speed/accuracy trade-off from encoder quality.
//
// Paper claim: the merging-free search over one unified navigation graph
// (MUST) reaches a better efficiency/accuracy operating point than
// multi-streamed retrieval (MR), which must run one search per modality
// and merge.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/experiment.h"
#include "retrieval/factory.h"

namespace mqa {
namespace {

int Run(const bench::BenchArgs& args) {
  const size_t n = bench::Scaled(20000, args.scale, 2000);
  bench::Banner("MUST-E2: QPS vs recall per framework (N = " +
                std::to_string(n) + ", k = 10)");

  WorldConfig wc;
  wc.num_concepts = 40;
  wc.latent_dim = 32;
  wc.raw_image_dim = 64;
  wc.seed = 3;
  auto corpus = MakeExperimentCorpus(wc, n);
  if (!corpus.ok()) return 1;

  bench::JsonReporter report("bench_qps_recall");
  report.AddConfig("n", static_cast<double>(n));
  report.AddConfig("k", 10.0);
  report.AddConfig("scale", args.scale);

  // Pre-encode a bank of two-round-style queries (text-only, filled).
  const size_t kQueries = bench::Scaled(100, args.scale, 20);
  std::vector<RetrievalQuery> queries;
  Rng rng(5);
  for (size_t i = 0; i < kQueries; ++i) {
    const uint32_t c =
        static_cast<uint32_t>(i % corpus->world->num_concepts());
    const TextQuery tq = corpus->world->MakeTextQuery(c, &rng);
    auto q = EncodeTextQuery(*corpus, tq.text);
    if (!q.ok()) return 1;
    queries.push_back(std::move(q).Value());
  }

  bench::Table table(
      {"framework", "beam", "recall@10 (vs exact)", "QPS", "avg dist comps"});

  for (const std::string name : {"must", "mr", "je"}) {
    // Exact reference: same framework on a bruteforce index.
    IndexConfig brute;
    brute.algorithm = "bruteforce";
    auto exact_fw =
        CreateRetrievalFramework(name, corpus->represented.store,
                                 corpus->represented.weights, brute);
    if (!exact_fw.ok()) return 1;
    std::vector<std::vector<Neighbor>> exact(kQueries);
    SearchParams exact_params;
    exact_params.k = 10;
    for (size_t i = 0; i < kQueries; ++i) {
      auto r = (*exact_fw)->Retrieve(queries[i], exact_params);
      if (!r.ok()) return 1;
      exact[i] = r->neighbors;
    }

    IndexConfig index;
    index.algorithm = "mqa-hybrid";
    index.graph.max_degree = 24;
    auto fw = CreateRetrievalFramework(name, corpus->represented.store,
                                       corpus->represented.weights, index);
    if (!fw.ok()) return 1;

    for (size_t beam : {16, 32, 64, 128, 256}) {
      SearchParams params;
      params.k = 10;
      params.beam_width = beam;
      double recall = 0;
      uint64_t dist_comps = 0;
      Timer timer;
      for (size_t i = 0; i < kQueries; ++i) {
        auto r = (*fw)->Retrieve(queries[i], params);
        if (!r.ok()) return 1;
        dist_comps += r->stats.dist_comps;
        std::vector<uint32_t> gt;
        for (const Neighbor& e : exact[i]) gt.push_back(e.id);
        recall += GroundTruthHitRate(r->neighbors, gt);
      }
      const double elapsed = timer.ElapsedSeconds();
      table.AddRow({name, std::to_string(beam),
                    FormatDouble(recall / kQueries, 3),
                    FormatDouble(kQueries / elapsed, 0),
                    std::to_string(dist_comps / kQueries)});
      const std::string prefix = name + "/beam" + std::to_string(beam);
      report.AddMetric(prefix + "/recall_at_10", recall / kQueries);
      report.AddMetric(prefix + "/qps", kQueries / elapsed);
      report.AddMetric(prefix + "/dist_comps",
                       static_cast<double>(dist_comps / kQueries));
    }
  }
  table.Print();
  if (!args.json_path.empty() && !report.WriteToFile(args.json_path)) {
    return 1;
  }
  std::printf(
      "\nExpected shape: recall rises with beam width for every framework;\n"
      "at matched recall, must achieves higher QPS than mr (one unified\n"
      "graph traversal instead of one per modality plus a merge).\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
