// Shard-E11 (fault-isolated sharded retrieval): cost and payoff of the
// fan-out layer. Scenario "clean" compares the sharded merge against the
// single-index framework on QPS and recall (plus an exact-merge parity
// check on brute-force shards, which must reproduce the unsharded top-k
// bit for bit). Scenario "faulty" arms per-shard fault points — error
// faults on half the shards, latency spikes on the other half — and
// reports what the robustness machinery did about them: hedge rate,
// hedge-win rate, degraded fraction (fan-outs missing at least one shard)
// and the fraction of queries that still completed.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/experiment.h"
#include "retrieval/factory.h"
#include "shard/sharded_retrieval.h"

namespace mqa {
namespace {

struct ScenarioResult {
  double qps = 0;
  double recall = 0;        ///< mean hit rate vs the brute-force oracle
  double completed = 0;     ///< fraction of queries that returned ok
  double degraded = 0;      ///< fraction of ok fan-outs missing a shard
  double hedge_rate = 0;    ///< hedged shard attempts / shard attempts
  double hedge_wins = 0;    ///< hedge attempts that beat their primary
  size_t breaker_skips = 0;
  size_t errors = 0;
};

/// Runs every query through `framework`, scoring against `truth` (one id
/// list per query). Shard accounting is read from the fan-out report when
/// `sharded` is non-null.
ScenarioResult RunScenario(RetrievalFramework* framework,
                           ShardedRetrieval* sharded,
                           const std::vector<RetrievalQuery>& queries,
                           const std::vector<std::vector<uint32_t>>& truth,
                           const SearchParams& params) {
  ScenarioResult out;
  size_t ok = 0;
  size_t attempts = 0, hedged = 0, hedge_won = 0, degraded = 0;
  double recall_sum = 0;
  Timer timer;
  for (size_t q = 0; q < queries.size(); ++q) {
    auto result = framework->Retrieve(queries[q], params);
    if (sharded != nullptr) {
      const FanoutReport& report = sharded->last_report();
      for (const ShardOutcome& o : report.shards) {
        ++attempts;
        if (o.hedged) ++hedged;
        if (o.hedge_won) ++hedge_won;
        if (o.kind == ShardOutcomeKind::kBreakerOpen) ++out.breaker_skips;
        if (o.kind == ShardOutcomeKind::kError) ++out.errors;
      }
      if (result.ok() && report.ok_count < report.shards.size()) ++degraded;
    }
    if (!result.ok()) continue;
    ++ok;
    recall_sum += GroundTruthHitRate(result->neighbors, truth[q]);
  }
  const double seconds = timer.ElapsedSeconds();
  out.qps = seconds > 0 ? static_cast<double>(queries.size()) / seconds : 0;
  out.completed =
      static_cast<double>(ok) / static_cast<double>(queries.size());
  out.recall = ok > 0 ? recall_sum / static_cast<double>(ok) : 0;
  if (attempts > 0) {
    out.hedge_rate =
        static_cast<double>(hedged) / static_cast<double>(attempts);
  }
  out.hedge_wins = static_cast<double>(hedge_won);
  if (ok > 0) {
    out.degraded = static_cast<double>(degraded) / static_cast<double>(ok);
  }
  return out;
}

int Run(const bench::BenchArgs& args) {
  const size_t corpus_size = bench::Scaled(4000, args.scale, 800);
  const size_t num_queries = bench::Scaled(200, args.scale, 60);
  constexpr size_t kNumShards = 4;
  constexpr uint32_t kK = 10;

  bench::Banner("Shard-E11: sharded fan-out vs single index (N = " +
                std::to_string(corpus_size) + ", " +
                std::to_string(kNumShards) + " shards)");

  WorldConfig wc;
  wc.num_concepts = 16;
  wc.seed = 91;
  auto corpus_or = MakeExperimentCorpus(wc, corpus_size);
  if (!corpus_or.ok()) {
    std::fprintf(stderr, "%s\n", corpus_or.status().ToString().c_str());
    return 1;
  }
  const ExperimentCorpus corpus = std::move(corpus_or).Value();

  // Query workload: text queries round-robin over the concepts.
  Rng rng(17);
  std::vector<RetrievalQuery> queries;
  queries.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    const TextQuery tq = corpus.world->MakeTextQuery(
        static_cast<uint32_t>(q) % wc.num_concepts, &rng);
    auto rq = EncodeTextQuery(corpus, tq.text);
    if (!rq.ok()) {
      std::fprintf(stderr, "%s\n", rq.status().ToString().c_str());
      return 1;
    }
    queries.push_back(std::move(rq).Value());
  }

  SearchParams params;
  params.k = kK;
  params.beam_width = 64;

  IndexConfig exact_index;
  exact_index.algorithm = "bruteforce";
  IndexConfig graph_index;
  graph_index.algorithm = "mqa-hybrid";

  auto make_single = [&](const IndexConfig& index) {
    return CreateRetrievalFramework("must", corpus.represented.store,
                                    corpus.represented.weights, index);
  };
  auto make_sharded = [&](const IndexConfig& index,
                          const ShardOptions& options) {
    return ShardedRetrieval::Create("must", corpus.represented.store,
                                    corpus.represented.weights, index,
                                    options);
  };

  // Brute-force oracle: ground truth for every recall number below, and
  // one side of the exact-merge parity check.
  auto oracle = make_single(exact_index);
  if (!oracle.ok()) {
    std::fprintf(stderr, "%s\n", oracle.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<uint32_t>> truth(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    auto result = (*oracle)->Retrieve(queries[q], params);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    for (const Neighbor& n : result->neighbors) {
      truth[q].push_back(n.id);
    }
  }

  ShardOptions clean_options;
  clean_options.num_shards = kNumShards;
  clean_options.quorum = 1;

  // Exact-merge parity: brute-force shards must reproduce the oracle.
  double parity = 0;
  {
    auto sharded_exact = make_sharded(exact_index, clean_options);
    if (!sharded_exact.ok()) {
      std::fprintf(stderr, "%s\n",
                   sharded_exact.status().ToString().c_str());
      return 1;
    }
    const ScenarioResult r = RunScenario(sharded_exact->get(),
                                         sharded_exact->get(), queries,
                                         truth, params);
    parity = r.recall;  // hit rate vs the oracle's own top-k
  }

  auto single_graph = make_single(graph_index);
  auto sharded_graph = make_sharded(graph_index, clean_options);
  if (!single_graph.ok() || !sharded_graph.ok()) {
    std::fprintf(stderr, "framework build failed\n");
    return 1;
  }
  const ScenarioResult unsharded = RunScenario(
      single_graph->get(), nullptr, queries, truth, params);
  const ScenarioResult clean = RunScenario(
      sharded_graph->get(), sharded_graph->get(), queries, truth, params);

  // Faulty scenario: shards 0-1 flap with seeded error faults, shards 2-3
  // suffer occasional real latency spikes (which the adaptive hedge
  // threshold turns into hedge attempts).
  FaultInjector::Global().Seed(97);
  ScenarioResult faulty;
  {
    ShardOptions faulty_options = clean_options;
    faulty_options.hedge_percentile = 95.0;
    faulty_options.hedge_min_samples = 16;
    auto fw = make_sharded(graph_index, faulty_options);
    if (!fw.ok()) {
      std::fprintf(stderr, "%s\n", fw.status().ToString().c_str());
      return 1;
    }
    FaultSpec err;
    err.probability = 0.15;
    FaultSpec spike;
    spike.code = StatusCode::kOk;
    spike.latency_ms = 5.0;
    spike.probability = 0.1;
    ScopedFault f0("shard/0/search", err);
    ScopedFault f1("shard/1/search", err);
    ScopedFault f2("shard/2/search", spike);
    ScopedFault f3("shard/3/search", spike);
    faulty = RunScenario(fw->get(), fw->get(), queries, truth, params);
  }
  FaultInjector::Global().DisarmAll();

  bench::Table table({"scenario", "qps", "recall@10", "completed",
                      "degraded", "hedge rate", "hedge wins", "brk skips",
                      "errors"});
  auto add_row = [&table](const std::string& name, const ScenarioResult& r) {
    table.AddRow({name, FormatDouble(r.qps, 1), FormatDouble(r.recall, 3),
                  FormatDouble(r.completed, 3), FormatDouble(r.degraded, 3),
                  FormatDouble(r.hedge_rate, 3),
                  FormatDouble(r.hedge_wins, 0),
                  std::to_string(r.breaker_skips),
                  std::to_string(r.errors)});
  };
  add_row("unsharded", unsharded);
  add_row("sharded clean", clean);
  add_row("sharded faulty", faulty);
  std::printf("\n");
  table.Print();
  std::printf("\nexact-merge parity (sharded bruteforce vs oracle): %s\n",
              FormatDouble(parity, 4).c_str());

  if (!args.json_path.empty()) {
    bench::JsonReporter report("bench_sharded_fanout");
    report.AddConfig("corpus_size", static_cast<double>(corpus_size));
    report.AddConfig("num_queries", static_cast<double>(num_queries));
    report.AddConfig("num_shards", static_cast<double>(kNumShards));
    report.AddMetric("clean/exact_merge_parity", parity);
    report.AddMetric("unsharded/qps", unsharded.qps);
    report.AddMetric("unsharded/recall_at_10", unsharded.recall);
    report.AddMetric("clean/qps", clean.qps);
    report.AddMetric("clean/recall_at_10", clean.recall);
    report.AddMetric("clean/degraded_fraction", clean.degraded);
    report.AddMetric("faulty/qps", faulty.qps);
    report.AddMetric("faulty/completed_fraction", faulty.completed);
    report.AddMetric("faulty/degraded_fraction", faulty.degraded);
    report.AddMetric("faulty/hedge_rate", faulty.hedge_rate);
    report.AddMetric("faulty/hedge_wins", faulty.hedge_wins);
    if (!report.WriteToFile(args.json_path)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  mqa::bench::BenchArgs args = mqa::bench::ParseBenchArgs(&argc, argv);
  return mqa::Run(args);
}
