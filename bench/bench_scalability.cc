// Experiment Scal-E7 (scalability): end-to-end pipeline cost as the
// knowledge base grows — encode time, weight-learning time, index build
// time, and query latency/recall at fixed search effort.
//
// Paper claim: "To meet efficiency requirements in large-scale data
// retrieval, MQA employs an advanced navigation graph index ... ensuring
// direct retrieval with minimal traversal" — query cost grows far slower
// than corpus size.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/experiment.h"
#include "retrieval/factory.h"

namespace mqa {
namespace {

int Run(const bench::BenchArgs& args) {
  bench::Banner("Scal-E7: end-to-end scalability in corpus size (must)");
  bench::Table table({"N", "encode+learn s", "index build s", "QPS",
                      "avg dist comps", "scan frac", "R1 concept-prec"});

  for (uint64_t n : {5000, 10000, 20000, 40000}) {
    WorldConfig wc;
    wc.num_concepts = 40;
    wc.latent_dim = 32;
    wc.raw_image_dim = 64;
    wc.seed = 43;
    Timer represent_timer;
    auto corpus = MakeExperimentCorpus(wc, n);
    if (!corpus.ok()) return 1;
    const double represent_s = represent_timer.ElapsedSeconds();

    IndexConfig index;
    index.algorithm = "mqa-hybrid";
    index.graph.max_degree = 24;
    BuildReport report;
    Timer build_timer;
    auto fw = CreateRetrievalFramework("must", corpus->represented.store,
                                       corpus->represented.weights, index,
                                       &report);
    if (!fw.ok()) return 1;
    const double build_s = build_timer.ElapsedSeconds();

    const size_t kQueries = 100;
    SearchParams params;
    params.k = 10;
    params.beam_width = 96;
    Rng rng(47);
    double precision = 0;
    uint64_t dist_comps = 0;
    Timer timer;
    for (size_t i = 0; i < kQueries; ++i) {
      const uint32_t c =
          static_cast<uint32_t>(i % corpus->world->num_concepts());
      auto q = EncodeTextQuery(*corpus,
                               corpus->world->MakeTextQuery(c, &rng).text);
      if (!q.ok()) return 1;
      auto r = (*fw)->Retrieve(*q, params);
      if (!r.ok()) return 1;
      dist_comps += r->stats.dist_comps;
      precision += ConceptPrecision(r->neighbors, *corpus->kb, c);
    }
    const double elapsed = timer.ElapsedSeconds();
    table.AddRow({std::to_string(n), FormatDouble(represent_s, 2),
                  FormatDouble(build_s, 2),
                  FormatDouble(kQueries / elapsed, 0),
                  std::to_string(dist_comps / kQueries),
                  FormatDouble(static_cast<double>(dist_comps / kQueries) / n,
                               4),
                  FormatDouble(precision / kQueries, 3)});
  }
  table.Print();
  if (!args.json_path.empty()) {
    bench::JsonReporter report("bench_scalability");
    report.AddTable(table);
    if (!report.WriteToFile(args.json_path)) return 1;
  }
  std::printf(
      "\nExpected shape: per-query distance computations grow sublinearly\n"
      "(the scanned fraction of the corpus falls as N grows), QPS degrades\n"
      "gently, accuracy holds; build time grows roughly linearly.\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
