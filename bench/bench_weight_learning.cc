// Experiment MUST-E3 (vector weight learning): the contrastive weight
// learner tracks the true modality informativeness, and the learned
// weights beat fixed uniform (and inverted) weights on retrieval accuracy.
//
// Paper claim: "a vector weight learning model to discern the importances
// of different modalities for similarity measurement ... capturing
// individual modality importance through contrastive learning for better
// similarity evaluations."

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "learning/weight_learner.h"
#include "retrieval/factory.h"

namespace mqa {
namespace {

struct NoiseSetting {
  const char* label;
  float image_noise;
  float text_noise;
};

int Run(const bench::BenchArgs& args) {
  bench::Banner(
      "MUST-E3: contrastive weight learning vs fixed weights "
      "(N = 6000, 32 concepts)");
  bench::Table table({"world (noise img/txt)", "learned w_img", "learned w_txt",
                      "triplet acc", "hit@10 learned", "hit@10 uniform",
                      "hit@10 inverted"});

  const NoiseSetting settings[] = {
      {"balanced (0.10/0.10)", 0.10f, 0.10f},
      {"text noisy (0.05/0.35)", 0.05f, 0.35f},
      {"image noisy (0.35/0.05)", 0.35f, 0.05f},
      {"text useless (0.05/0.80)", 0.05f, 0.80f},
  };

  for (const NoiseSetting& setting : settings) {
    WorldConfig wc;
    wc.num_concepts = 32;
    wc.latent_dim = 32;
    wc.raw_image_dim = 64;
    wc.seed = 11;
    wc.modality_noise = {setting.image_noise, setting.text_noise};
    auto corpus = MakeExperimentCorpus(wc, 6000);
    if (!corpus.ok()) return 1;

    IndexConfig index;
    index.algorithm = "mqa-hybrid";
    index.graph.max_degree = 24;
    SearchParams params;
    params.k = 10;
    params.beam_width = 96;

    // Evaluation task matching the learning objective: a fresh observation
    // of a known object (re-rendered image + re-worded caption) queries
    // for the latent-space nearest objects; better modality weighting =
    // better hit rate.
    auto eval = [&](std::vector<float> weights) -> double {
      auto fw = CreateRetrievalFramework("must", corpus->represented.store,
                                         std::move(weights), index);
      if (!fw.ok()) return -1.0;
      Rng rng(13);
      double hits = 0;
      const size_t kQueries = 100;
      for (size_t i = 0; i < kQueries; ++i) {
        const Object& target = corpus->kb->at(
            rng.NextUint64(corpus->kb->size()));
        const Object observed = corpus->world->ReobserveObject(target, &rng);
        auto q = EncodeImageTextQuery(*corpus, observed,
                                      observed.modalities[1].text);
        if (!q.ok()) return -1.0;
        auto r = (*fw)->Retrieve(*q, params);
        if (!r.ok()) return -1.0;
        hits += GroundTruthHitRate(
            r->neighbors,
            corpus->world->GroundTruth(*corpus->kb, target.latent,
                                       params.k));
      }
      return hits / kQueries;
    };

    // Instance-level weight learning: triplets from true latent
    // neighborhoods (the relevance signal of the similar-item task).
    std::vector<std::vector<float>> positions;
    positions.reserve(corpus->kb->size());
    for (const Object& obj : corpus->kb->objects()) {
      positions.push_back(obj.latent);
    }
    Rng triplet_rng(3);
    auto triplets = SampleTripletsByNeighborhood(
        *corpus->represented.store, positions, 1500, 10, &triplet_rng);
    if (!triplets.ok()) return 1;
    WeightLearner learner(WeightLearnerConfig{}, 2);
    auto report = learner.Fit(*triplets);
    if (!report.ok()) return 1;

    const std::vector<float>& learned = report->weights;
    const std::vector<float> inverted = {learned[1], learned[0]};
    table.AddRow({setting.label, FormatDouble(learned[0], 3),
                  FormatDouble(learned[1], 3),
                  FormatDouble(report->triplet_accuracy, 3),
                  FormatDouble(eval(learned), 3),
                  FormatDouble(eval({1.0f, 1.0f}), 3),
                  FormatDouble(eval(inverted), 3)});
  }
  table.Print();
  if (!args.json_path.empty()) {
    bench::JsonReporter report("bench_weight_learning");
    report.AddTable(table);
    if (!report.WriteToFile(args.json_path)) return 1;
  }
  std::printf(
      "\nExpected shape: the learner tracks modality informativeness (w_txt\n"
      "falls as text noise rises, w_img falls as image noise rises);\n"
      "learned weights match or beat uniform and clearly beat inverted\n"
      "whenever noise is skewed. In the image-noisy world, instance-level\n"
      "detail only lives in the (drowned) image channel, so every setting\n"
      "collapses toward chance and differences are within noise there.\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
