// Experiment MUST-E4 (computational pruning): the incremental-scanning
// multi-vector distance abandons computations against the current beam
// bound, cutting scanned dimensions without changing results. Abandonment
// fires when a prefix of modalities already exceeds the bound, so its
// effectiveness grows with (a) the number of modalities and (b) the skew
// of the modality weights — both are swept here.
//
// Paper claim: "distances are calculated via incremental scanning,
// enhancing efficiency by circumventing unnecessary calculations" and the
// index is "refined using computational pruning techniques".

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/experiment.h"
#include "retrieval/must.h"

namespace mqa {
namespace {

struct Setting {
  const char* label;
  uint32_t extra_modalities;
  std::vector<float> weights;  // empty = learned
};

int Run(const bench::BenchArgs& args) {
  bench::Banner(
      "MUST-E4: incremental-scanning pruning ablation (N = 12000, k = 10, "
      "beam = 96)");
  bench::Table table({"modalities", "weights", "pruning",
                      "dims scanned/query", "early-abandon frac", "QPS",
                      "recall vs unpruned"});

  const Setting settings[] = {
      {"learned", 0, {}},
      {"skewed 1.6/0.4", 0, {1.6f, 0.4f}},
      {"learned", 2, {}},
      {"skewed 2/1/.6/.4", 2, {2.0f, 1.0f, 0.6f, 0.4f}},
  };

  for (const Setting& setting : settings) {
    WorldConfig wc;
    wc.num_concepts = 32;
    wc.latent_dim = 32;
    wc.raw_image_dim = 64;
    wc.seed = 19;
    wc.num_extra_modalities = setting.extra_modalities;
    auto corpus = MakeExperimentCorpus(wc, 12000);
    if (!corpus.ok()) return 1;
    const size_t num_m = 2 + setting.extra_modalities;
    const std::vector<float> weights =
        setting.weights.empty() ? corpus->represented.weights
                                : setting.weights;

    IndexConfig index;
    index.algorithm = "mqa-hybrid";
    index.graph.max_degree = 24;

    const size_t kQueries = 200;
    std::vector<RetrievalQuery> queries;
    Rng rng(23);
    for (size_t i = 0; i < kQueries; ++i) {
      const uint32_t c =
          static_cast<uint32_t>(i % corpus->world->num_concepts());
      auto q = EncodeTextQuery(
          *corpus, corpus->world->MakeTextQuery(c, &rng).text);
      if (!q.ok()) return 1;
      queries.push_back(std::move(q).Value());
    }
    SearchParams params;
    params.k = 10;
    params.beam_width = 96;

    std::vector<std::vector<Neighbor>> unpruned_results;
    for (bool pruning : {false, true}) {
      auto fw = MustFramework::Create(corpus->represented.store, weights,
                                      index, pruning);
      if (!fw.ok()) return 1;
      (*fw)->ResetDistanceStats();
      double recall = 0;
      Timer timer;
      for (size_t i = 0; i < kQueries; ++i) {
        auto r = (*fw)->Retrieve(queries[i], params);
        if (!r.ok()) return 1;
        if (!pruning) {
          unpruned_results.push_back(r->neighbors);
        } else {
          std::vector<uint32_t> gt;
          for (const Neighbor& e : unpruned_results[i]) gt.push_back(e.id);
          recall += GroundTruthHitRate(r->neighbors, gt);
        }
      }
      const double elapsed = timer.ElapsedSeconds();
      const DistanceStats& stats = (*fw)->distance_stats();
      const double pruned_frac =
          stats.TotalComputations() == 0
              ? 0.0
              : static_cast<double>(stats.pruned_computations) /
                    stats.TotalComputations();
      table.AddRow({std::to_string(num_m), setting.label,
                    pruning ? "on" : "off",
                    std::to_string(stats.dims_scanned / kQueries),
                    FormatDouble(pruned_frac, 3),
                    FormatDouble(kQueries / elapsed, 0),
                    pruning ? FormatDouble(recall / kQueries, 3) : "1.000"});
      unpruned_results.resize(kQueries);
    }
  }
  table.Print();
  if (!args.json_path.empty()) {
    bench::JsonReporter report("bench_incremental_pruning");
    report.AddTable(table);
    if (!report.WriteToFile(args.json_path)) return 1;
  }
  std::printf(
      "\nExpected shape: early abandonment and scanned-dimension savings\n"
      "grow with modality count and with weight skew (heaviest-first scan\n"
      "order crosses the bound sooner when one modality dominates); with\n"
      "near-balanced weights a prefix rarely exceeds the full-distance\n"
      "bound and pruning is neutral. Recall against the unpruned run stays\n"
      "~1.0 — pruning is lossless for the beam search.\n");
  return 0;
}

}  // namespace
}  // namespace mqa

int main(int argc, char** argv) {
  return mqa::Run(mqa::bench::ParseBenchArgs(&argc, argv));
}
