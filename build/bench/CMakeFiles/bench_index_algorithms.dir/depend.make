# Empty dependencies file for bench_index_algorithms.
# This may be replaced when dependencies are built.
