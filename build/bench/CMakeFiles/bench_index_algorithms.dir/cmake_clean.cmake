file(REMOVE_RECURSE
  "CMakeFiles/bench_index_algorithms.dir/bench_index_algorithms.cc.o"
  "CMakeFiles/bench_index_algorithms.dir/bench_index_algorithms.cc.o.d"
  "bench_index_algorithms"
  "bench_index_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
