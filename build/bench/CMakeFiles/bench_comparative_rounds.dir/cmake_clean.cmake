file(REMOVE_RECURSE
  "CMakeFiles/bench_comparative_rounds.dir/bench_comparative_rounds.cc.o"
  "CMakeFiles/bench_comparative_rounds.dir/bench_comparative_rounds.cc.o.d"
  "bench_comparative_rounds"
  "bench_comparative_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparative_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
