# Empty dependencies file for bench_comparative_rounds.
# This may be replaced when dependencies are built.
