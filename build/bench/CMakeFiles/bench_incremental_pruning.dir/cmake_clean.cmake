file(REMOVE_RECURSE
  "CMakeFiles/bench_incremental_pruning.dir/bench_incremental_pruning.cc.o"
  "CMakeFiles/bench_incremental_pruning.dir/bench_incremental_pruning.cc.o.d"
  "bench_incremental_pruning"
  "bench_incremental_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
