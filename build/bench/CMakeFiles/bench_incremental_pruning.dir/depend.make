# Empty dependencies file for bench_incremental_pruning.
# This may be replaced when dependencies are built.
