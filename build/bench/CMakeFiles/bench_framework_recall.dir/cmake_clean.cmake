file(REMOVE_RECURSE
  "CMakeFiles/bench_framework_recall.dir/bench_framework_recall.cc.o"
  "CMakeFiles/bench_framework_recall.dir/bench_framework_recall.cc.o.d"
  "bench_framework_recall"
  "bench_framework_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_framework_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
