# Empty compiler generated dependencies file for bench_framework_recall.
# This may be replaced when dependencies are built.
