file(REMOVE_RECURSE
  "CMakeFiles/bench_answer_grounding.dir/bench_answer_grounding.cc.o"
  "CMakeFiles/bench_answer_grounding.dir/bench_answer_grounding.cc.o.d"
  "bench_answer_grounding"
  "bench_answer_grounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_answer_grounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
