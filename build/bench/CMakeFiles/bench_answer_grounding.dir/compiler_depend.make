# Empty compiler generated dependencies file for bench_answer_grounding.
# This may be replaced when dependencies are built.
