file(REMOVE_RECURSE
  "CMakeFiles/bench_disk_index.dir/bench_disk_index.cc.o"
  "CMakeFiles/bench_disk_index.dir/bench_disk_index.cc.o.d"
  "bench_disk_index"
  "bench_disk_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disk_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
