# Empty dependencies file for bench_qps_recall.
# This may be replaced when dependencies are built.
