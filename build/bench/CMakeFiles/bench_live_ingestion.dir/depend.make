# Empty dependencies file for bench_live_ingestion.
# This may be replaced when dependencies are built.
