file(REMOVE_RECURSE
  "CMakeFiles/bench_live_ingestion.dir/bench_live_ingestion.cc.o"
  "CMakeFiles/bench_live_ingestion.dir/bench_live_ingestion.cc.o.d"
  "bench_live_ingestion"
  "bench_live_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_live_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
