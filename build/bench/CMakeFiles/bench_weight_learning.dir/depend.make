# Empty dependencies file for bench_weight_learning.
# This may be replaced when dependencies are built.
