file(REMOVE_RECURSE
  "CMakeFiles/bench_distance_kernels.dir/bench_distance_kernels.cc.o"
  "CMakeFiles/bench_distance_kernels.dir/bench_distance_kernels.cc.o.d"
  "bench_distance_kernels"
  "bench_distance_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distance_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
