# Empty dependencies file for bench_distance_kernels.
# This may be replaced when dependencies are built.
