# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_catalog "/root/repo/build/examples/live_catalog")
set_tests_properties(example_live_catalog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_index "/root/repo/build/examples/custom_index")
set_tests_properties(example_custom_index PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
