# Empty dependencies file for custom_index.
# This may be replaced when dependencies are built.
