file(REMOVE_RECURSE
  "CMakeFiles/custom_index.dir/custom_index.cpp.o"
  "CMakeFiles/custom_index.dir/custom_index.cpp.o.d"
  "custom_index"
  "custom_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
