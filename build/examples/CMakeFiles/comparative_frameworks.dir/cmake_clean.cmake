file(REMOVE_RECURSE
  "CMakeFiles/comparative_frameworks.dir/comparative_frameworks.cpp.o"
  "CMakeFiles/comparative_frameworks.dir/comparative_frameworks.cpp.o.d"
  "comparative_frameworks"
  "comparative_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparative_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
