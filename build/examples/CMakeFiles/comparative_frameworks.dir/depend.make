# Empty dependencies file for comparative_frameworks.
# This may be replaced when dependencies are built.
