file(REMOVE_RECURSE
  "CMakeFiles/shopping_assistant.dir/shopping_assistant.cpp.o"
  "CMakeFiles/shopping_assistant.dir/shopping_assistant.cpp.o.d"
  "shopping_assistant"
  "shopping_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shopping_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
