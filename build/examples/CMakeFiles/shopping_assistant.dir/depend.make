# Empty dependencies file for shopping_assistant.
# This may be replaced when dependencies are built.
