# Empty dependencies file for live_catalog.
# This may be replaced when dependencies are built.
