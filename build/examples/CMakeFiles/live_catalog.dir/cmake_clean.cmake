file(REMOVE_RECURSE
  "CMakeFiles/live_catalog.dir/live_catalog.cpp.o"
  "CMakeFiles/live_catalog.dir/live_catalog.cpp.o.d"
  "live_catalog"
  "live_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
