# Empty compiler generated dependencies file for mqa_retrieval.
# This may be replaced when dependencies are built.
