file(REMOVE_RECURSE
  "libmqa_retrieval.a"
)
