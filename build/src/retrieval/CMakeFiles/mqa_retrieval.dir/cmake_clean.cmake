file(REMOVE_RECURSE
  "CMakeFiles/mqa_retrieval.dir/factory.cc.o"
  "CMakeFiles/mqa_retrieval.dir/factory.cc.o.d"
  "CMakeFiles/mqa_retrieval.dir/framework.cc.o"
  "CMakeFiles/mqa_retrieval.dir/framework.cc.o.d"
  "CMakeFiles/mqa_retrieval.dir/je.cc.o"
  "CMakeFiles/mqa_retrieval.dir/je.cc.o.d"
  "CMakeFiles/mqa_retrieval.dir/mr.cc.o"
  "CMakeFiles/mqa_retrieval.dir/mr.cc.o.d"
  "CMakeFiles/mqa_retrieval.dir/must.cc.o"
  "CMakeFiles/mqa_retrieval.dir/must.cc.o.d"
  "libmqa_retrieval.a"
  "libmqa_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
