file(REMOVE_RECURSE
  "libmqa_llm.a"
)
