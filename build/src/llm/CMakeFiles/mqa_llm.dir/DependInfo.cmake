
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/prompt_builder.cc" "src/llm/CMakeFiles/mqa_llm.dir/prompt_builder.cc.o" "gcc" "src/llm/CMakeFiles/mqa_llm.dir/prompt_builder.cc.o.d"
  "/root/repo/src/llm/query_rewriter.cc" "src/llm/CMakeFiles/mqa_llm.dir/query_rewriter.cc.o" "gcc" "src/llm/CMakeFiles/mqa_llm.dir/query_rewriter.cc.o.d"
  "/root/repo/src/llm/sim_image_generator.cc" "src/llm/CMakeFiles/mqa_llm.dir/sim_image_generator.cc.o" "gcc" "src/llm/CMakeFiles/mqa_llm.dir/sim_image_generator.cc.o.d"
  "/root/repo/src/llm/sim_llm.cc" "src/llm/CMakeFiles/mqa_llm.dir/sim_llm.cc.o" "gcc" "src/llm/CMakeFiles/mqa_llm.dir/sim_llm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mqa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mqa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/mqa_vector.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
