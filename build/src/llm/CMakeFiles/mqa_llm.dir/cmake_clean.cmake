file(REMOVE_RECURSE
  "CMakeFiles/mqa_llm.dir/prompt_builder.cc.o"
  "CMakeFiles/mqa_llm.dir/prompt_builder.cc.o.d"
  "CMakeFiles/mqa_llm.dir/query_rewriter.cc.o"
  "CMakeFiles/mqa_llm.dir/query_rewriter.cc.o.d"
  "CMakeFiles/mqa_llm.dir/sim_image_generator.cc.o"
  "CMakeFiles/mqa_llm.dir/sim_image_generator.cc.o.d"
  "CMakeFiles/mqa_llm.dir/sim_llm.cc.o"
  "CMakeFiles/mqa_llm.dir/sim_llm.cc.o.d"
  "libmqa_llm.a"
  "libmqa_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
