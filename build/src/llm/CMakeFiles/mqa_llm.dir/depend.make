# Empty dependencies file for mqa_llm.
# This may be replaced when dependencies are built.
