file(REMOVE_RECURSE
  "libmqa_storage.a"
)
