file(REMOVE_RECURSE
  "CMakeFiles/mqa_storage.dir/knowledge_base.cc.o"
  "CMakeFiles/mqa_storage.dir/knowledge_base.cc.o.d"
  "CMakeFiles/mqa_storage.dir/word_lists.cc.o"
  "CMakeFiles/mqa_storage.dir/word_lists.cc.o.d"
  "CMakeFiles/mqa_storage.dir/world.cc.o"
  "CMakeFiles/mqa_storage.dir/world.cc.o.d"
  "libmqa_storage.a"
  "libmqa_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
