# Empty compiler generated dependencies file for mqa_storage.
# This may be replaced when dependencies are built.
