
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/knowledge_base.cc" "src/storage/CMakeFiles/mqa_storage.dir/knowledge_base.cc.o" "gcc" "src/storage/CMakeFiles/mqa_storage.dir/knowledge_base.cc.o.d"
  "/root/repo/src/storage/word_lists.cc" "src/storage/CMakeFiles/mqa_storage.dir/word_lists.cc.o" "gcc" "src/storage/CMakeFiles/mqa_storage.dir/word_lists.cc.o.d"
  "/root/repo/src/storage/world.cc" "src/storage/CMakeFiles/mqa_storage.dir/world.cc.o" "gcc" "src/storage/CMakeFiles/mqa_storage.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mqa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/mqa_vector.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
