file(REMOVE_RECURSE
  "CMakeFiles/mqa_diskindex.dir/disk_index.cc.o"
  "CMakeFiles/mqa_diskindex.dir/disk_index.cc.o.d"
  "CMakeFiles/mqa_diskindex.dir/index_factory.cc.o"
  "CMakeFiles/mqa_diskindex.dir/index_factory.cc.o.d"
  "libmqa_diskindex.a"
  "libmqa_diskindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_diskindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
