file(REMOVE_RECURSE
  "libmqa_diskindex.a"
)
