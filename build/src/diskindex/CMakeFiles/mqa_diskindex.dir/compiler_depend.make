# Empty compiler generated dependencies file for mqa_diskindex.
# This may be replaced when dependencies are built.
