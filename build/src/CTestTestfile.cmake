# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("vector")
subdirs("dag")
subdirs("storage")
subdirs("encoder")
subdirs("learning")
subdirs("graph")
subdirs("diskindex")
subdirs("retrieval")
subdirs("llm")
subdirs("core")
