
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/mqa_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/mqa_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/hnsw.cc" "src/graph/CMakeFiles/mqa_graph.dir/hnsw.cc.o" "gcc" "src/graph/CMakeFiles/mqa_graph.dir/hnsw.cc.o.d"
  "/root/repo/src/graph/nn_descent.cc" "src/graph/CMakeFiles/mqa_graph.dir/nn_descent.cc.o" "gcc" "src/graph/CMakeFiles/mqa_graph.dir/nn_descent.cc.o.d"
  "/root/repo/src/graph/pipeline.cc" "src/graph/CMakeFiles/mqa_graph.dir/pipeline.cc.o" "gcc" "src/graph/CMakeFiles/mqa_graph.dir/pipeline.cc.o.d"
  "/root/repo/src/graph/search.cc" "src/graph/CMakeFiles/mqa_graph.dir/search.cc.o" "gcc" "src/graph/CMakeFiles/mqa_graph.dir/search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mqa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/mqa_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/mqa_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
