# Empty compiler generated dependencies file for mqa_graph.
# This may be replaced when dependencies are built.
