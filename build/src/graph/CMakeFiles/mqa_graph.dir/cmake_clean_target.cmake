file(REMOVE_RECURSE
  "libmqa_graph.a"
)
