file(REMOVE_RECURSE
  "CMakeFiles/mqa_graph.dir/graph.cc.o"
  "CMakeFiles/mqa_graph.dir/graph.cc.o.d"
  "CMakeFiles/mqa_graph.dir/hnsw.cc.o"
  "CMakeFiles/mqa_graph.dir/hnsw.cc.o.d"
  "CMakeFiles/mqa_graph.dir/nn_descent.cc.o"
  "CMakeFiles/mqa_graph.dir/nn_descent.cc.o.d"
  "CMakeFiles/mqa_graph.dir/pipeline.cc.o"
  "CMakeFiles/mqa_graph.dir/pipeline.cc.o.d"
  "CMakeFiles/mqa_graph.dir/search.cc.o"
  "CMakeFiles/mqa_graph.dir/search.cc.o.d"
  "libmqa_graph.a"
  "libmqa_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
