file(REMOVE_RECURSE
  "CMakeFiles/mqa_common.dir/logging.cc.o"
  "CMakeFiles/mqa_common.dir/logging.cc.o.d"
  "CMakeFiles/mqa_common.dir/random.cc.o"
  "CMakeFiles/mqa_common.dir/random.cc.o.d"
  "CMakeFiles/mqa_common.dir/status.cc.o"
  "CMakeFiles/mqa_common.dir/status.cc.o.d"
  "CMakeFiles/mqa_common.dir/string_util.cc.o"
  "CMakeFiles/mqa_common.dir/string_util.cc.o.d"
  "CMakeFiles/mqa_common.dir/thread_pool.cc.o"
  "CMakeFiles/mqa_common.dir/thread_pool.cc.o.d"
  "libmqa_common.a"
  "libmqa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
