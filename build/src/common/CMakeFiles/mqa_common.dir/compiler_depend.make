# Empty compiler generated dependencies file for mqa_common.
# This may be replaced when dependencies are built.
