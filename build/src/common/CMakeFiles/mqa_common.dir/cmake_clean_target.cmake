file(REMOVE_RECURSE
  "libmqa_common.a"
)
