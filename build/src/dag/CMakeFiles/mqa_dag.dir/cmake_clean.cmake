file(REMOVE_RECURSE
  "CMakeFiles/mqa_dag.dir/dag.cc.o"
  "CMakeFiles/mqa_dag.dir/dag.cc.o.d"
  "libmqa_dag.a"
  "libmqa_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
