# Empty compiler generated dependencies file for mqa_dag.
# This may be replaced when dependencies are built.
