file(REMOVE_RECURSE
  "libmqa_dag.a"
)
