# Empty compiler generated dependencies file for mqa_core.
# This may be replaced when dependencies are built.
