file(REMOVE_RECURSE
  "libmqa_core.a"
)
