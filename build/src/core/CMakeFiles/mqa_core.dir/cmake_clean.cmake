file(REMOVE_RECURSE
  "CMakeFiles/mqa_core.dir/answer_generator.cc.o"
  "CMakeFiles/mqa_core.dir/answer_generator.cc.o.d"
  "CMakeFiles/mqa_core.dir/config_parser.cc.o"
  "CMakeFiles/mqa_core.dir/config_parser.cc.o.d"
  "CMakeFiles/mqa_core.dir/coordinator.cc.o"
  "CMakeFiles/mqa_core.dir/coordinator.cc.o.d"
  "CMakeFiles/mqa_core.dir/experiment.cc.o"
  "CMakeFiles/mqa_core.dir/experiment.cc.o.d"
  "CMakeFiles/mqa_core.dir/persistence.cc.o"
  "CMakeFiles/mqa_core.dir/persistence.cc.o.d"
  "CMakeFiles/mqa_core.dir/query_executor.cc.o"
  "CMakeFiles/mqa_core.dir/query_executor.cc.o.d"
  "CMakeFiles/mqa_core.dir/represent.cc.o"
  "CMakeFiles/mqa_core.dir/represent.cc.o.d"
  "CMakeFiles/mqa_core.dir/session.cc.o"
  "CMakeFiles/mqa_core.dir/session.cc.o.d"
  "CMakeFiles/mqa_core.dir/status_monitor.cc.o"
  "CMakeFiles/mqa_core.dir/status_monitor.cc.o.d"
  "libmqa_core.a"
  "libmqa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
