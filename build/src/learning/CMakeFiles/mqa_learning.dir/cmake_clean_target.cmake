file(REMOVE_RECURSE
  "libmqa_learning.a"
)
