file(REMOVE_RECURSE
  "CMakeFiles/mqa_learning.dir/weight_learner.cc.o"
  "CMakeFiles/mqa_learning.dir/weight_learner.cc.o.d"
  "libmqa_learning.a"
  "libmqa_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
