
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learning/weight_learner.cc" "src/learning/CMakeFiles/mqa_learning.dir/weight_learner.cc.o" "gcc" "src/learning/CMakeFiles/mqa_learning.dir/weight_learner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mqa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/mqa_vector.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
