# Empty dependencies file for mqa_learning.
# This may be replaced when dependencies are built.
