
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vector/distance.cc" "src/vector/CMakeFiles/mqa_vector.dir/distance.cc.o" "gcc" "src/vector/CMakeFiles/mqa_vector.dir/distance.cc.o.d"
  "/root/repo/src/vector/multi_distance.cc" "src/vector/CMakeFiles/mqa_vector.dir/multi_distance.cc.o" "gcc" "src/vector/CMakeFiles/mqa_vector.dir/multi_distance.cc.o.d"
  "/root/repo/src/vector/vector_store.cc" "src/vector/CMakeFiles/mqa_vector.dir/vector_store.cc.o" "gcc" "src/vector/CMakeFiles/mqa_vector.dir/vector_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mqa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
