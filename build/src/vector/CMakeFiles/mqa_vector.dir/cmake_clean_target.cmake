file(REMOVE_RECURSE
  "libmqa_vector.a"
)
