file(REMOVE_RECURSE
  "CMakeFiles/mqa_vector.dir/distance.cc.o"
  "CMakeFiles/mqa_vector.dir/distance.cc.o.d"
  "CMakeFiles/mqa_vector.dir/multi_distance.cc.o"
  "CMakeFiles/mqa_vector.dir/multi_distance.cc.o.d"
  "CMakeFiles/mqa_vector.dir/vector_store.cc.o"
  "CMakeFiles/mqa_vector.dir/vector_store.cc.o.d"
  "libmqa_vector.a"
  "libmqa_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
