# Empty dependencies file for mqa_vector.
# This may be replaced when dependencies are built.
