# Empty compiler generated dependencies file for mqa_encoder.
# This may be replaced when dependencies are built.
