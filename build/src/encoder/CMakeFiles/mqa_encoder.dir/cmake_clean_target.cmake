file(REMOVE_RECURSE
  "libmqa_encoder.a"
)
