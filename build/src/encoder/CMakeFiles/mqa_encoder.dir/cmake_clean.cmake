file(REMOVE_RECURSE
  "CMakeFiles/mqa_encoder.dir/encoder.cc.o"
  "CMakeFiles/mqa_encoder.dir/encoder.cc.o.d"
  "CMakeFiles/mqa_encoder.dir/sim_encoders.cc.o"
  "CMakeFiles/mqa_encoder.dir/sim_encoders.cc.o.d"
  "libmqa_encoder.a"
  "libmqa_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
