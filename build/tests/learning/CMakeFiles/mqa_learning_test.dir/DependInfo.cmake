
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/learning/neighborhood_triplets_test.cc" "tests/learning/CMakeFiles/mqa_learning_test.dir/neighborhood_triplets_test.cc.o" "gcc" "tests/learning/CMakeFiles/mqa_learning_test.dir/neighborhood_triplets_test.cc.o.d"
  "/root/repo/tests/learning/weight_learner_test.cc" "tests/learning/CMakeFiles/mqa_learning_test.dir/weight_learner_test.cc.o" "gcc" "tests/learning/CMakeFiles/mqa_learning_test.dir/weight_learner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mqa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/diskindex/CMakeFiles/mqa_diskindex.dir/DependInfo.cmake"
  "/root/repo/build/src/learning/CMakeFiles/mqa_learning.dir/DependInfo.cmake"
  "/root/repo/build/src/retrieval/CMakeFiles/mqa_retrieval.dir/DependInfo.cmake"
  "/root/repo/build/src/encoder/CMakeFiles/mqa_encoder.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mqa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/mqa_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/mqa_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mqa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/mqa_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mqa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
