file(REMOVE_RECURSE
  "CMakeFiles/mqa_learning_test.dir/neighborhood_triplets_test.cc.o"
  "CMakeFiles/mqa_learning_test.dir/neighborhood_triplets_test.cc.o.d"
  "CMakeFiles/mqa_learning_test.dir/weight_learner_test.cc.o"
  "CMakeFiles/mqa_learning_test.dir/weight_learner_test.cc.o.d"
  "mqa_learning_test"
  "mqa_learning_test.pdb"
  "mqa_learning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_learning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
