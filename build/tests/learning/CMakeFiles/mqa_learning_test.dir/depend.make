# Empty dependencies file for mqa_learning_test.
# This may be replaced when dependencies are built.
