# CMake generated Testfile for 
# Source directory: /root/repo/tests/learning
# Build directory: /root/repo/build/tests/learning
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/learning/mqa_learning_test[1]_include.cmake")
