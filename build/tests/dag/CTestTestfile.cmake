# CMake generated Testfile for 
# Source directory: /root/repo/tests/dag
# Build directory: /root/repo/build/tests/dag
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dag/mqa_dag_test[1]_include.cmake")
