file(REMOVE_RECURSE
  "CMakeFiles/mqa_dag_test.dir/dag_test.cc.o"
  "CMakeFiles/mqa_dag_test.dir/dag_test.cc.o.d"
  "mqa_dag_test"
  "mqa_dag_test.pdb"
  "mqa_dag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_dag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
