# Empty dependencies file for mqa_dag_test.
# This may be replaced when dependencies are built.
