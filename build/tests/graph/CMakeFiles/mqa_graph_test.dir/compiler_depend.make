# Empty compiler generated dependencies file for mqa_graph_test.
# This may be replaced when dependencies are built.
