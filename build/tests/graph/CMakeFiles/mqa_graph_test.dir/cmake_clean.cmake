file(REMOVE_RECURSE
  "CMakeFiles/mqa_graph_test.dir/filtered_search_test.cc.o"
  "CMakeFiles/mqa_graph_test.dir/filtered_search_test.cc.o.d"
  "CMakeFiles/mqa_graph_test.dir/graph_test.cc.o"
  "CMakeFiles/mqa_graph_test.dir/graph_test.cc.o.d"
  "CMakeFiles/mqa_graph_test.dir/hnsw_test.cc.o"
  "CMakeFiles/mqa_graph_test.dir/hnsw_test.cc.o.d"
  "CMakeFiles/mqa_graph_test.dir/index_factory_test.cc.o"
  "CMakeFiles/mqa_graph_test.dir/index_factory_test.cc.o.d"
  "CMakeFiles/mqa_graph_test.dir/insertion_test.cc.o"
  "CMakeFiles/mqa_graph_test.dir/insertion_test.cc.o.d"
  "CMakeFiles/mqa_graph_test.dir/persistence_test.cc.o"
  "CMakeFiles/mqa_graph_test.dir/persistence_test.cc.o.d"
  "CMakeFiles/mqa_graph_test.dir/pipeline_test.cc.o"
  "CMakeFiles/mqa_graph_test.dir/pipeline_test.cc.o.d"
  "CMakeFiles/mqa_graph_test.dir/search_test.cc.o"
  "CMakeFiles/mqa_graph_test.dir/search_test.cc.o.d"
  "mqa_graph_test"
  "mqa_graph_test.pdb"
  "mqa_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
