
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/answer_generator_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/answer_generator_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/answer_generator_test.cc.o.d"
  "/root/repo/tests/core/config_parser_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/config_parser_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/config_parser_test.cc.o.d"
  "/root/repo/tests/core/coordinator_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/coordinator_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/coordinator_test.cc.o.d"
  "/root/repo/tests/core/experiment_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/experiment_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/experiment_test.cc.o.d"
  "/root/repo/tests/core/filtered_query_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/filtered_query_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/filtered_query_test.cc.o.d"
  "/root/repo/tests/core/ingestion_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/ingestion_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/ingestion_test.cc.o.d"
  "/root/repo/tests/core/multimodal_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/multimodal_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/multimodal_test.cc.o.d"
  "/root/repo/tests/core/persistence_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/persistence_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/persistence_test.cc.o.d"
  "/root/repo/tests/core/query_executor_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/query_executor_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/query_executor_test.cc.o.d"
  "/root/repo/tests/core/represent_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/represent_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/represent_test.cc.o.d"
  "/root/repo/tests/core/rewriting_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/rewriting_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/rewriting_test.cc.o.d"
  "/root/repo/tests/core/session_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/session_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/session_test.cc.o.d"
  "/root/repo/tests/core/status_monitor_test.cc" "tests/core/CMakeFiles/mqa_core_test.dir/status_monitor_test.cc.o" "gcc" "tests/core/CMakeFiles/mqa_core_test.dir/status_monitor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mqa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/diskindex/CMakeFiles/mqa_diskindex.dir/DependInfo.cmake"
  "/root/repo/build/src/learning/CMakeFiles/mqa_learning.dir/DependInfo.cmake"
  "/root/repo/build/src/retrieval/CMakeFiles/mqa_retrieval.dir/DependInfo.cmake"
  "/root/repo/build/src/encoder/CMakeFiles/mqa_encoder.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mqa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/mqa_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/mqa_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mqa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/mqa_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mqa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
