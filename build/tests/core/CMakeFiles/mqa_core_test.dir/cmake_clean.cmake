file(REMOVE_RECURSE
  "CMakeFiles/mqa_core_test.dir/answer_generator_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/answer_generator_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/config_parser_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/config_parser_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/coordinator_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/coordinator_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/experiment_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/experiment_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/filtered_query_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/filtered_query_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/ingestion_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/ingestion_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/multimodal_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/multimodal_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/persistence_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/persistence_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/query_executor_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/query_executor_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/represent_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/represent_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/rewriting_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/rewriting_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/session_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/session_test.cc.o.d"
  "CMakeFiles/mqa_core_test.dir/status_monitor_test.cc.o"
  "CMakeFiles/mqa_core_test.dir/status_monitor_test.cc.o.d"
  "mqa_core_test"
  "mqa_core_test.pdb"
  "mqa_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
