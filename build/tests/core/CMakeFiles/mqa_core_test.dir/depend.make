# Empty dependencies file for mqa_core_test.
# This may be replaced when dependencies are built.
