# CMake generated Testfile for 
# Source directory: /root/repo/tests/diskindex
# Build directory: /root/repo/build/tests/diskindex
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/diskindex/mqa_diskindex_test[1]_include.cmake")
