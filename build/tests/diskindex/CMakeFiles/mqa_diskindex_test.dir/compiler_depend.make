# Empty compiler generated dependencies file for mqa_diskindex_test.
# This may be replaced when dependencies are built.
