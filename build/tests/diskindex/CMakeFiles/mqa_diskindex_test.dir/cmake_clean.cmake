file(REMOVE_RECURSE
  "CMakeFiles/mqa_diskindex_test.dir/disk_index_test.cc.o"
  "CMakeFiles/mqa_diskindex_test.dir/disk_index_test.cc.o.d"
  "CMakeFiles/mqa_diskindex_test.dir/starling_factory_test.cc.o"
  "CMakeFiles/mqa_diskindex_test.dir/starling_factory_test.cc.o.d"
  "mqa_diskindex_test"
  "mqa_diskindex_test.pdb"
  "mqa_diskindex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_diskindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
