# CMake generated Testfile for 
# Source directory: /root/repo/tests/retrieval
# Build directory: /root/repo/build/tests/retrieval
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/retrieval/mqa_retrieval_test[1]_include.cmake")
