file(REMOVE_RECURSE
  "CMakeFiles/mqa_retrieval_test.dir/comparative_test.cc.o"
  "CMakeFiles/mqa_retrieval_test.dir/comparative_test.cc.o.d"
  "CMakeFiles/mqa_retrieval_test.dir/cross_modal_test.cc.o"
  "CMakeFiles/mqa_retrieval_test.dir/cross_modal_test.cc.o.d"
  "CMakeFiles/mqa_retrieval_test.dir/framework_test.cc.o"
  "CMakeFiles/mqa_retrieval_test.dir/framework_test.cc.o.d"
  "CMakeFiles/mqa_retrieval_test.dir/frameworks_test.cc.o"
  "CMakeFiles/mqa_retrieval_test.dir/frameworks_test.cc.o.d"
  "mqa_retrieval_test"
  "mqa_retrieval_test.pdb"
  "mqa_retrieval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_retrieval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
