# Empty compiler generated dependencies file for mqa_retrieval_test.
# This may be replaced when dependencies are built.
