file(REMOVE_RECURSE
  "CMakeFiles/mqa_common_test.dir/logging_test.cc.o"
  "CMakeFiles/mqa_common_test.dir/logging_test.cc.o.d"
  "CMakeFiles/mqa_common_test.dir/random_test.cc.o"
  "CMakeFiles/mqa_common_test.dir/random_test.cc.o.d"
  "CMakeFiles/mqa_common_test.dir/status_test.cc.o"
  "CMakeFiles/mqa_common_test.dir/status_test.cc.o.d"
  "CMakeFiles/mqa_common_test.dir/string_util_test.cc.o"
  "CMakeFiles/mqa_common_test.dir/string_util_test.cc.o.d"
  "CMakeFiles/mqa_common_test.dir/thread_pool_test.cc.o"
  "CMakeFiles/mqa_common_test.dir/thread_pool_test.cc.o.d"
  "CMakeFiles/mqa_common_test.dir/topk_test.cc.o"
  "CMakeFiles/mqa_common_test.dir/topk_test.cc.o.d"
  "mqa_common_test"
  "mqa_common_test.pdb"
  "mqa_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
