# Empty compiler generated dependencies file for mqa_common_test.
# This may be replaced when dependencies are built.
