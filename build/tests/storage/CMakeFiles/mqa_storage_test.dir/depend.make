# Empty dependencies file for mqa_storage_test.
# This may be replaced when dependencies are built.
