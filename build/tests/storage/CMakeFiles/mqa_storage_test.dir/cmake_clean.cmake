file(REMOVE_RECURSE
  "CMakeFiles/mqa_storage_test.dir/knowledge_base_test.cc.o"
  "CMakeFiles/mqa_storage_test.dir/knowledge_base_test.cc.o.d"
  "CMakeFiles/mqa_storage_test.dir/reobserve_test.cc.o"
  "CMakeFiles/mqa_storage_test.dir/reobserve_test.cc.o.d"
  "CMakeFiles/mqa_storage_test.dir/serialization_fuzz_test.cc.o"
  "CMakeFiles/mqa_storage_test.dir/serialization_fuzz_test.cc.o.d"
  "CMakeFiles/mqa_storage_test.dir/world_test.cc.o"
  "CMakeFiles/mqa_storage_test.dir/world_test.cc.o.d"
  "mqa_storage_test"
  "mqa_storage_test.pdb"
  "mqa_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
