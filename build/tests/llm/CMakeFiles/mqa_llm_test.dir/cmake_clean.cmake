file(REMOVE_RECURSE
  "CMakeFiles/mqa_llm_test.dir/prompt_builder_test.cc.o"
  "CMakeFiles/mqa_llm_test.dir/prompt_builder_test.cc.o.d"
  "CMakeFiles/mqa_llm_test.dir/query_rewriter_test.cc.o"
  "CMakeFiles/mqa_llm_test.dir/query_rewriter_test.cc.o.d"
  "CMakeFiles/mqa_llm_test.dir/sim_image_generator_test.cc.o"
  "CMakeFiles/mqa_llm_test.dir/sim_image_generator_test.cc.o.d"
  "CMakeFiles/mqa_llm_test.dir/sim_llm_test.cc.o"
  "CMakeFiles/mqa_llm_test.dir/sim_llm_test.cc.o.d"
  "mqa_llm_test"
  "mqa_llm_test.pdb"
  "mqa_llm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_llm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
