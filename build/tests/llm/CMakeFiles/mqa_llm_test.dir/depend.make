# Empty dependencies file for mqa_llm_test.
# This may be replaced when dependencies are built.
