# CMake generated Testfile for 
# Source directory: /root/repo/tests/vector
# Build directory: /root/repo/build/tests/vector
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/vector/mqa_vector_test[1]_include.cmake")
