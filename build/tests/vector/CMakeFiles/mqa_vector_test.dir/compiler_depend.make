# Empty compiler generated dependencies file for mqa_vector_test.
# This may be replaced when dependencies are built.
