file(REMOVE_RECURSE
  "CMakeFiles/mqa_vector_test.dir/distance_test.cc.o"
  "CMakeFiles/mqa_vector_test.dir/distance_test.cc.o.d"
  "CMakeFiles/mqa_vector_test.dir/multi_distance_test.cc.o"
  "CMakeFiles/mqa_vector_test.dir/multi_distance_test.cc.o.d"
  "CMakeFiles/mqa_vector_test.dir/vector_store_test.cc.o"
  "CMakeFiles/mqa_vector_test.dir/vector_store_test.cc.o.d"
  "mqa_vector_test"
  "mqa_vector_test.pdb"
  "mqa_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
