# Empty compiler generated dependencies file for mqa_encoder_test.
# This may be replaced when dependencies are built.
