file(REMOVE_RECURSE
  "CMakeFiles/mqa_encoder_test.dir/precomputed_encoder_test.cc.o"
  "CMakeFiles/mqa_encoder_test.dir/precomputed_encoder_test.cc.o.d"
  "CMakeFiles/mqa_encoder_test.dir/sim_encoders_test.cc.o"
  "CMakeFiles/mqa_encoder_test.dir/sim_encoders_test.cc.o.d"
  "mqa_encoder_test"
  "mqa_encoder_test.pdb"
  "mqa_encoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqa_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
