# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mqa_encoder_test.
