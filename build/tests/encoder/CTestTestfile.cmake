# CMake generated Testfile for 
# Source directory: /root/repo/tests/encoder
# Build directory: /root/repo/build/tests/encoder
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/encoder/mqa_encoder_test[1]_include.cmake")
