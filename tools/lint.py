#!/usr/bin/env python3
"""Repo-specific lint for the MQA codebase.

Enforced rules (over src/):
  guard       include guards must be named MQA_<PATH>_H_ (e.g.
              src/graph/hnsw.h -> MQA_GRAPH_HNSW_H_) and closed with a
              matching `#endif  // MQA_..._H_` comment.
  naked-new   no naked `new`: every allocation must be owned on the same
              (or the immediately preceding) line by unique_ptr/shared_ptr/
              make_unique/make_shared, or carry a NOLINT marker.
  endl        no std::endl (an unconditional flush) anywhere in src/ —
              stream '\n' instead.
  assert      no raw assert() / <cassert> outside common/check.h; use
              MQA_CHECK / MQA_DCHECK, which survive NDEBUG and carry context.
  sleep       no direct std::this_thread::sleep_for / sleep_until in src/
              outside common/clock.cc: waiting code must go through the
              mqa::Clock interface so retry backoff, breaker cool-downs and
              injected fault latency stay mockable (tests never sleep).
              Escape hatch: NOLINT(mqa-sleep) with a reason.

Also drives clang-tidy (--clang-tidy auto|on|off) when a binary and a
compile_commands.json are available, and clang-format checking
(--format-check-only) over src/ tests/ bench/ examples/.

Exit code 0 = clean, 1 = violations found, 2 = usage/environment error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

SRC_EXTS = (".h", ".cc")
FORMAT_DIRS = ("src", "tests", "bench", "examples")
FORMAT_EXTS = (".h", ".cc", ".cpp")

NOLINT_RE = re.compile(r"NOLINT")
NEW_RE = re.compile(r"\bnew\s+[A-Za-z_:<]")
OWNED_RE = re.compile(r"unique_ptr|shared_ptr|make_unique|make_shared")
ASSERT_RE = re.compile(r"(^|[^_\w.])assert\s*\(")
SLEEP_RE = re.compile(r"\bsleep_(for|until)\s*\(")
GUARD_IF_RE = re.compile(r"^#ifndef\s+(\S+)")
GUARD_DEF_RE = re.compile(r"^#define\s+(\S+)")


def repo_files(root, subdir, exts):
    out = []
    for dirpath, _, filenames in os.walk(os.path.join(root, subdir)):
        for name in sorted(filenames):
            if name.endswith(exts):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def expected_guard(root, path):
    rel = os.path.relpath(path, os.path.join(root, "src"))
    token = re.sub(r"[^A-Za-z0-9]", "_", rel).upper()
    return "MQA_%s_" % token


def strip_comments_and_strings(line):
    """Removes string/char literals and // comments so lint patterns do not
    fire on prose. (Block comments are handled per-line well enough for this
    codebase's style.)"""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    line = re.sub(r"//.*$", "", line)
    line = re.sub(r"/\*.*?\*/", "", line)
    return line


def lint_file(root, path, errors):
    rel = os.path.relpath(path, root)
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    in_block_comment = False
    prev_code = ""
    for i, raw in enumerate(raw_lines, start=1):
        line = raw
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                prev_code = ""
                continue
        code = strip_comments_and_strings(line)
        if "/*" in code and "*/" not in code:
            code = code.split("/*", 1)[0]
            in_block_comment = True

        stripped = code.strip()
        if not stripped:
            prev_code = ""
            continue

        has_nolint = NOLINT_RE.search(raw) or (
            i > 1 and NOLINT_RE.search(raw_lines[i - 2]))

        if NEW_RE.search(code):
            owned = (OWNED_RE.search(code) or OWNED_RE.search(prev_code))
            if not owned and not has_nolint:
                errors.append(
                    "%s:%d: [naked-new] naked `new`; wrap in "
                    "make_unique/unique_ptr or mark NOLINT with a reason"
                    % (rel, i))

        if "std::endl" in code and not has_nolint:
            errors.append(
                "%s:%d: [endl] std::endl flushes on every use; stream "
                "'\\n' instead" % (rel, i))

        if ASSERT_RE.search(code) and not has_nolint:
            if not rel.endswith(os.path.join("common", "check.h")):
                errors.append(
                    "%s:%d: [assert] raw assert(); use MQA_CHECK / "
                    "MQA_DCHECK from common/check.h" % (rel, i))
        if re.search(r"#include\s*<cassert>", code):
            errors.append(
                "%s:%d: [assert] <cassert> include; use common/check.h"
                % (rel, i))

        if SLEEP_RE.search(code) and not has_nolint:
            if not rel.endswith(os.path.join("common", "clock.cc")):
                errors.append(
                    "%s:%d: [sleep] direct sleep_for/sleep_until; go "
                    "through mqa::Clock (common/clock.h) so the wait is "
                    "mockable in tests" % (rel, i))

        prev_code = code

    if path.endswith(".h"):
        guard = expected_guard(root, path)
        ifndef = define = None
        for raw in raw_lines:
            if ifndef is None:
                m = GUARD_IF_RE.match(raw)
                if m:
                    ifndef = m.group(1)
                    continue
            elif define is None:
                m = GUARD_DEF_RE.match(raw)
                if m:
                    define = m.group(1)
                break
        if ifndef != guard or define != guard:
            errors.append(
                "%s:1: [guard] include guard must be %s (found %s)"
                % (rel, guard, ifndef or "<none>"))
        else:
            endif_ok = any(
                re.match(r"^#endif\s*//\s*%s\s*$" % re.escape(guard), raw)
                for raw in raw_lines)
            if not endif_ok:
                errors.append(
                    "%s: [guard] closing `#endif  // %s` comment missing"
                    % (rel, guard))


def run_clang_tidy(root, build_dir, mode):
    if mode == "off":
        return 0
    tidy = shutil.which("clang-tidy")
    compile_db = os.path.join(build_dir, "compile_commands.json") \
        if build_dir else None
    if tidy is None or not (compile_db and os.path.exists(compile_db)):
        msg = ("clang-tidy skipped (%s)" %
               ("binary not found" if tidy is None
                else "no compile_commands.json in build dir"))
        if mode == "on":
            print("lint.py: ERROR: %s" % msg, file=sys.stderr)
            return 2
        print("lint.py: %s" % msg)
        return 0
    sources = repo_files(root, "src", (".cc",))
    print("lint.py: running clang-tidy over %d files..." % len(sources))
    rc = subprocess.call([tidy, "-p", build_dir, "--quiet"] + sources)
    return 1 if rc != 0 else 0


def run_format_check(root):
    clang_format = shutil.which("clang-format")
    if clang_format is None:
        print("lint.py: clang-format not found; format check skipped")
        return 0
    files = []
    for d in FORMAT_DIRS:
        files.extend(repo_files(root, d, FORMAT_EXTS))
    print("lint.py: checking format of %d files..." % len(files))
    rc = subprocess.call([clang_format, "--dry-run", "-Werror"] + files)
    return 1 if rc != 0 else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/)")
    parser.add_argument("--build-dir", default=None,
                        help="build dir with compile_commands.json")
    parser.add_argument("--clang-tidy", choices=["auto", "on", "off"],
                        default="auto")
    parser.add_argument("--format-check-only", action="store_true",
                        help="only run the clang-format check and exit")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print("lint.py: no src/ under --root %s" % root, file=sys.stderr)
        return 2

    if args.format_check_only:
        return run_format_check(root)

    errors = []
    files = repo_files(root, "src", SRC_EXTS)
    for path in files:
        lint_file(root, path, errors)
    for e in errors:
        print(e, file=sys.stderr)
    print("lint.py: %d files checked, %d violation(s)"
          % (len(files), len(errors)))

    tidy_rc = run_clang_tidy(root, args.build_dir, args.clang_tidy)
    if errors:
        return 1
    return tidy_rc


if __name__ == "__main__":
    sys.exit(main())
