#!/usr/bin/env python3
"""Repo-specific lint for the MQA codebase.

Enforced rules (over src/):
  guard       include guards must be named MQA_<PATH>_H_ (e.g.
              src/graph/hnsw.h -> MQA_GRAPH_HNSW_H_) and closed with a
              matching `#endif  // MQA_..._H_` comment.
  naked-new   no naked `new`: every allocation must be owned on the same
              (or the immediately preceding) line by unique_ptr/shared_ptr/
              make_unique/make_shared, or carry a NOLINT marker.
  endl        no std::endl (an unconditional flush) anywhere in src/ —
              stream '\n' instead.
  assert      no raw assert() / <cassert> outside common/check.h; use
              MQA_CHECK / MQA_DCHECK, which survive NDEBUG and carry context.
  sleep       no direct std::this_thread::sleep_for / sleep_until in src/
              outside common/clock.cc: waiting code must go through the
              mqa::Clock interface so retry backoff, breaker cool-downs and
              injected fault latency stay mockable (tests never sleep).
              Escape hatch: NOLINT(mqa-sleep) with a reason.
  raw-mutex   no un-annotated std:: synchronization primitives (mutex,
              shared_mutex, condition_variable, lock_guard, unique_lock,
              scoped_lock, ...) outside common/sync.h: all locking goes
              through mqa::Mutex/SharedMutex/CondVar + MutexLock/
              ReaderLock/WriterLock so Clang Thread Safety Analysis sees
              every acquisition. Escape hatch: NOLINT(mqa-raw-mutex).
  durable-write
              no write-capable std:: file stream (std::ofstream /
              std::fstream) in src/ outside the durability layer
              (storage/durable_file.cc, storage/wal.cc): snapshot and WAL
              artifacts must be written through WriteFileAtomic (temp +
              fsync + rename) or the WalWriter so a crash can never leave
              a half-written file where recovery expects a good one.
              Read-only std::ifstream is fine. Escape hatch:
              NOLINT(mqa-durable-write) with a reason.
  raw-intrinsics
              no raw SIMD intrinsics header (<immintrin.h> and friends)
              outside src/vector/simd/: ISA-specific code lives behind the
              runtime-dispatched kernel table (vector/simd/simd.h) so every
              call site stays portable and every tier stays testable. Use
              the dispatch table (ActiveKernels/KernelsFor) or PrefetchRead
              instead. Escape hatch: NOLINT(mqa-raw-intrinsics) with a
              reason.
  wait-while-locked
              no blocking call (Clock::SleepForMicros/SleepForMillis,
              ThreadPool::ParallelFor, FaultInjector latency injection)
              while a MutexLock/ReaderLock/WriterLock is lexically alive:
              a sleep under a lock serializes every other thread behind
              one slow caller. CondVar::Wait is exempt (it releases the
              mutex while blocked). Escape hatch:
              NOLINT(mqa-wait-while-locked) with a reason.

Lock-order audit (over src/, runs with the rules above):
  Builds the process-wide lock graph from two sources —
    1. MQA_ACQUIRED_BEFORE / MQA_ACQUIRED_AFTER annotations on mutex
       members, and
    2. lexically nested MutexLock/ReaderLock/WriterLock scopes (taking B
       while holding A adds the edge A -> B)
  — then fails on any cycle: a cycle is a static deadlock candidate that
  ThreadSanitizer only reports if a test happens to interleave it.
  Locks are named <EnclosingClass>::<member> (file stem when no class
  context is visible), so the graph spans files. A lock acquisition
  marked NOLINT(mqa-lock-order) contributes no edges.

Also drives clang-tidy (--clang-tidy auto|on|off) when a binary and a
compile_commands.json are available (auto-discovered as the newest
build*/compile_commands.json when --build-dir is not given), and
clang-format checking (--format-check-only) over src/ tests/ bench/
examples/.

Exit code 0 = clean, 1 = violations found, 2 = usage/environment error.
"""

import argparse
import glob as globlib
import os
import re
import shutil
import subprocess
import sys

SRC_EXTS = (".h", ".cc")
FORMAT_DIRS = ("src", "tests", "bench", "examples")
FORMAT_EXTS = (".h", ".cc", ".cpp")

NOLINT_RE = re.compile(r"NOLINT")
NEW_RE = re.compile(r"\bnew\s+[A-Za-z_:<]")
OWNED_RE = re.compile(r"unique_ptr|shared_ptr|make_unique|make_shared")
ASSERT_RE = re.compile(r"(^|[^_\w.])assert\s*\(")
SLEEP_RE = re.compile(r"\bsleep_(for|until)\s*\(")
GUARD_IF_RE = re.compile(r"^#ifndef\s+(\S+)")
GUARD_DEF_RE = re.compile(r"^#define\s+(\S+)")

# durable-write: write-capable file streams banned outside the durability
# layer; snapshots and WAL frames must go through WriteFileAtomic/WalWriter.
DURABLE_WRITE_RE = re.compile(r"\bstd::(ofstream|fstream)\b")
DURABLE_LAYER = (
    os.path.join("storage", "durable_file.cc"),
    os.path.join("storage", "wal.cc"),
)

# raw-intrinsics: ISA-specific intrinsics headers banned outside the
# dispatch layer in src/vector/simd/.
RAW_INTRINSICS_RE = re.compile(
    r"#include\s*<(immintrin|x86intrin|xmmintrin|emmintrin|pmmintrin"
    r"|tmmintrin|smmintrin|nmmintrin|wmmintrin|avxintrin|avx2intrin"
    r"|avx512fintrin|arm_neon|arm_sve)\.h>")
SIMD_LAYER_PREFIX = os.path.join("src", "vector", "simd") + os.sep

# raw-mutex: std synchronization vocabulary banned outside common/sync.h.
RAW_MUTEX_RE = re.compile(
    r"\bstd::(recursive_mutex|shared_mutex|timed_mutex|recursive_timed_mutex"
    r"|mutex|condition_variable_any|condition_variable|lock_guard"
    r"|unique_lock|shared_lock|scoped_lock)\b")

# Acquisition of an annotated RAII lock:  MutexLock lock(&expr);
LOCK_DECL_RE = re.compile(
    r"\b(MutexLock|ReaderLock|WriterLock)\s+\w+\s*[({]\s*&?(.+?)\s*[)}]\s*;")

# Blocking calls that must not run under a lock. CondVar::Wait is exempt:
# it releases the mutex for the duration of the block.
BLOCKING_RE = re.compile(
    r"\bSleepFor(Micros|Millis)\s*\(|\bParallelFor\s*\("
    r"|\bFaultInjector::Global\(\)\.Check\s*\(")

# MQA_ACQUIRED_BEFORE/AFTER on a mutex member declaration:
#   Mutex mu_ MQA_ACQUIRED_BEFORE(cache_mu_);
ACQ_ORDER_RE = re.compile(
    r"\b(\w+)\s+MQA_ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\)")

# Class/struct definition opening a scope (not a forward declaration).
CLASS_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(?:class|struct)\s+"
    r"(?:\[\[\w+\]\]\s+)?(?:MQA_\w+(?:\((?:[^()]|\([^)]*\))*\))?\s+)?"
    r"(\w+)\b(?!\s*;)")

# Out-of-line member definition start:  ReturnType Class::Method(...)
METHOD_DEF_RE = re.compile(r"^[^=;(]*\b(\w+)::(~?\w+)\s*\(")


def repo_files(root, subdir, exts):
    out = []
    for dirpath, _, filenames in os.walk(os.path.join(root, subdir)):
        for name in sorted(filenames):
            if name.endswith(exts):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def expected_guard(root, path):
    rel = os.path.relpath(path, os.path.join(root, "src"))
    token = re.sub(r"[^A-Za-z0-9]", "_", rel).upper()
    return "MQA_%s_" % token


def strip_comments_and_strings(line):
    """Removes string/char literals and // comments so lint patterns do not
    fire on prose. (Block comments are handled per-line well enough for this
    codebase's style.)"""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    line = re.sub(r"//.*$", "", line)
    line = re.sub(r"/\*.*?\*/", "", line)
    return line


def is_sync_header(rel):
    return rel.endswith(os.path.join("common", "sync.h"))


class LockGraph:
    """The inter-file lock-order graph: nodes are qualified lock names,
    edges mean 'acquired while holding' / 'declared acquired-before'."""

    def __init__(self):
        self.edges = {}  # node -> {succ: "file:line (origin)"}

    def add_node(self, n):
        self.edges.setdefault(n, {})

    def add_edge(self, a, b, where):
        if a == b:
            return
        self.edges.setdefault(a, {}).setdefault(b, where)
        self.edges.setdefault(b, {})

    def find_cycle(self):
        """Returns a list of (node, next_node, where) forming a cycle, or
        None. Deterministic: nodes and successors visited in sorted order."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in self.edges}
        stack = []

        def dfs(u):
            color[u] = GRAY
            stack.append(u)
            for v in sorted(self.edges[u]):
                if color[v] == GRAY:
                    i = stack.index(v)
                    cyc = stack[i:] + [v]
                    return [(cyc[k], cyc[k + 1],
                             self.edges[cyc[k]][cyc[k + 1]])
                            for k in range(len(cyc) - 1)]
                if color[v] == WHITE:
                    found = dfs(v)
                    if found:
                        return found
            stack.pop()
            color[u] = BLACK
            return None

        for n in sorted(self.edges):
            if color[n] == WHITE:
                found = dfs(n)
                if found:
                    return found
        return None


class FileScanner:
    """Single pass over one file: brace-depth tracking, class/method scope
    resolution, active-lock tracking. Feeds both the per-file lint rules
    (wait-while-locked) and the global lock graph.

    This is a lexical heuristic, not a parser: it resolves the enclosing
    class from `class X {` scopes (headers) and `Ret X::Method(` definition
    lines (sources), tracks RAII lock lifetimes by brace depth, and accepts
    that exotic formatting may escape it. The TSA pass (preset `tsa`)
    provides the precise per-function complement; this audit adds the
    cross-function lock-*order* view TSA does not have."""

    def __init__(self, rel, graph, errors):
        self.rel = rel
        self.stem = os.path.splitext(os.path.basename(rel))[0]
        self.graph = graph
        self.errors = errors
        self.depth = 0
        self.class_stack = []    # (name, depth before its body opened)
        self.method_owner = None   # class qualifier of the current method
        self.method_depth = None   # depth at the definition line
        self.method_opened = False  # has the method body '{' been seen
        self.active_locks = []   # (scope_depth, node, lineno)

    def scope_class(self):
        if self.method_owner:
            return self.method_owner
        if self.class_stack:
            return self.class_stack[-1][0]
        return self.stem

    def qualify(self, expr):
        expr = expr.strip().lstrip("&").strip()
        if expr.startswith("this->"):
            expr = expr[len("this->"):]
        if re.fullmatch(r"\w+", expr):
            return "%s::%s" % (self.scope_class(), expr)
        # Non-member expression (free-function result, another object's
        # lock): keep it verbatim, qualified by file stem, so unrelated
        # call sites never falsely merge.
        return "%s:%s" % (self.stem, expr)

    def feed(self, code, lineno, has_nolint):
        # Preprocessor lines (the macro definitions in sync.h especially)
        # are not code and carry no scope or lock semantics.
        if code.lstrip().startswith("#"):
            return
        entry_depth = self.depth
        end_depth = max(0, entry_depth + code.count("{") - code.count("}"))

        # Method-definition start: only considered when not already inside
        # a method and not inside a class body (inline class methods take
        # their name from class_stack instead).
        if (self.method_owner is None and not self.class_stack
                and not code.rstrip().endswith(";")):
            m = METHOD_DEF_RE.match(code)
            if m:
                self.method_owner = m.group(1)
                self.method_depth = entry_depth
                self.method_opened = False

        # ACQUIRED_BEFORE/AFTER annotation edges.
        if not has_nolint:
            for am in ACQ_ORDER_RE.finditer(code):
                member, kind, args = am.group(1), am.group(2), am.group(3)
                src = self.qualify(member)
                where = "%s:%d (MQA_ACQUIRED_%s)" % (self.rel, lineno, kind)
                for arg in args.split(","):
                    arg = arg.strip()
                    if not arg:
                        continue
                    dst = self.qualify(arg)
                    if kind == "BEFORE":
                        self.graph.add_edge(src, dst, where)
                    else:
                        self.graph.add_edge(dst, src, where)

        # Blocking call while a lock is lexically held?
        if self.active_locks and BLOCKING_RE.search(code) and not has_nolint:
            _, node, lock_line = self.active_locks[-1]
            self.errors.append(
                "%s:%d: [wait-while-locked] blocking call while holding %s "
                "(acquired line %d); release the lock around the wait or "
                "mark NOLINT(mqa-wait-while-locked) with a reason"
                % (self.rel, lineno, node, lock_line))

        # New lock acquisitions on this line. A lock lives while
        # depth >= its scope depth (the depth where its statement ends).
        for lm in LOCK_DECL_RE.finditer(code):
            node = self.qualify(lm.group(2))
            self.graph.add_node(node)
            if not has_nolint:
                for _, held, _ in self.active_locks:
                    self.graph.add_edge(
                        held, node,
                        "%s:%d (nested scope)" % (self.rel, lineno))
            self.active_locks.append((end_depth, node, lineno))

        # Apply this line's braces, then retire scopes that closed.
        self.depth = end_depth
        self.active_locks = [l for l in self.active_locks
                             if l[0] <= self.depth]
        while self.class_stack and self.depth <= self.class_stack[-1][1]:
            self.class_stack.pop()
        if self.method_owner is not None:
            if not self.method_opened and self.depth > self.method_depth:
                self.method_opened = True
            elif self.method_opened and self.depth <= self.method_depth:
                self.method_owner = None
                self.method_depth = None
                self.method_opened = False
                self.active_locks = []

        # Class scopes push *after* pops so `class X {` lands on the stack
        # with the pre-line depth.
        cm = CLASS_RE.match(code)
        if cm and "{" in code:
            self.class_stack.append((cm.group(1), entry_depth))


def lint_file(root, path, errors, graph):
    rel = os.path.relpath(path, root)
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    scanner = FileScanner(rel, graph, errors)
    in_block_comment = False
    prev_code = ""
    for i, raw in enumerate(raw_lines, start=1):
        line = raw
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                prev_code = ""
                continue
        code = strip_comments_and_strings(line)
        if "/*" in code and "*/" not in code:
            code = code.split("/*", 1)[0]
            in_block_comment = True

        stripped = code.strip()
        if not stripped:
            prev_code = ""
            continue

        has_nolint = bool(NOLINT_RE.search(raw) or (
            i > 1 and NOLINT_RE.search(raw_lines[i - 2])))

        scanner.feed(code, i, has_nolint)

        if NEW_RE.search(code):
            owned = (OWNED_RE.search(code) or OWNED_RE.search(prev_code))
            if not owned and not has_nolint:
                errors.append(
                    "%s:%d: [naked-new] naked `new`; wrap in "
                    "make_unique/unique_ptr or mark NOLINT with a reason"
                    % (rel, i))

        if "std::endl" in code and not has_nolint:
            errors.append(
                "%s:%d: [endl] std::endl flushes on every use; stream "
                "'\\n' instead" % (rel, i))

        if ASSERT_RE.search(code) and not has_nolint:
            if not rel.endswith(os.path.join("common", "check.h")):
                errors.append(
                    "%s:%d: [assert] raw assert(); use MQA_CHECK / "
                    "MQA_DCHECK from common/check.h" % (rel, i))
        if re.search(r"#include\s*<cassert>", code):
            errors.append(
                "%s:%d: [assert] <cassert> include; use common/check.h"
                % (rel, i))

        if SLEEP_RE.search(code) and not has_nolint:
            if not rel.endswith(os.path.join("common", "clock.cc")):
                errors.append(
                    "%s:%d: [sleep] direct sleep_for/sleep_until; go "
                    "through mqa::Clock (common/clock.h) so the wait is "
                    "mockable in tests" % (rel, i))

        if DURABLE_WRITE_RE.search(code) and not has_nolint:
            if not rel.endswith(DURABLE_LAYER):
                errors.append(
                    "%s:%d: [durable-write] write-capable std:: file "
                    "stream; write through WriteFileAtomic "
                    "(storage/durable_file.h) or the WalWriter so a crash "
                    "cannot leave a torn artifact, or mark "
                    "NOLINT(mqa-durable-write) with a reason" % (rel, i))

        if RAW_INTRINSICS_RE.search(code) and not has_nolint:
            if not rel.startswith(SIMD_LAYER_PREFIX):
                errors.append(
                    "%s:%d: [raw-intrinsics] ISA intrinsics header outside "
                    "src/vector/simd/; call through the dispatched kernel "
                    "table (vector/simd/simd.h) so call sites stay portable, "
                    "or mark NOLINT(mqa-raw-intrinsics) with a reason"
                    % (rel, i))

        if (RAW_MUTEX_RE.search(code) and not has_nolint
                and not is_sync_header(rel)):
            errors.append(
                "%s:%d: [raw-mutex] raw std:: synchronization primitive; "
                "use mqa::Mutex/SharedMutex/CondVar + MutexLock/ReaderLock/"
                "WriterLock from common/sync.h so thread-safety analysis "
                "sees the acquisition" % (rel, i))

        prev_code = code

    if path.endswith(".h"):
        guard = expected_guard(root, path)
        ifndef = define = None
        for raw in raw_lines:
            if ifndef is None:
                m = GUARD_IF_RE.match(raw)
                if m:
                    ifndef = m.group(1)
                    continue
            elif define is None:
                m = GUARD_DEF_RE.match(raw)
                if m:
                    define = m.group(1)
                break
        if ifndef != guard or define != guard:
            errors.append(
                "%s:1: [guard] include guard must be %s (found %s)"
                % (rel, guard, ifndef or "<none>"))
        else:
            endif_ok = any(
                re.match(r"^#endif\s*//\s*%s\s*$" % re.escape(guard), raw)
                for raw in raw_lines)
            if not endif_ok:
                errors.append(
                    "%s: [guard] closing `#endif  // %s` comment missing"
                    % (rel, guard))


def audit_lock_order(graph, errors):
    """Appends an error describing the first lock-order cycle, if any."""
    cycle = graph.find_cycle()
    if cycle is None:
        return
    lines = ["lock-order cycle: " +
             " -> ".join([edge[0] for edge in cycle] + [cycle[0][0]])]
    for a, b, where in cycle:
        lines.append("    %s -> %s   at %s" % (a, b, where))
    errors.append("[lock-order] " + "\n".join(lines))


def find_compile_commands(root, build_dir):
    """Resolves the compile database: an explicit --build-dir wins;
    otherwise the newest build*/compile_commands.json under the root (all
    CMake presets export one)."""
    if build_dir:
        db = os.path.join(build_dir, "compile_commands.json")
        return (build_dir, db if os.path.exists(db) else None)
    candidates = globlib.glob(os.path.join(root, "build*",
                                           "compile_commands.json"))
    if not candidates:
        return (None, None)
    best = max(candidates, key=os.path.getmtime)
    return (os.path.dirname(best), best)


def run_clang_tidy(root, build_dir, mode):
    if mode == "off":
        return 0
    tidy = shutil.which("clang-tidy")
    build_dir, compile_db = find_compile_commands(root, build_dir)
    if tidy is None or compile_db is None:
        msg = ("clang-tidy skipped (%s)" %
               ("binary not found" if tidy is None
                else "no compile_commands.json found in build*/"))
        if mode == "on":
            print("lint.py: ERROR: %s" % msg, file=sys.stderr)
            return 2
        print("lint.py: %s" % msg)
        return 0
    sources = repo_files(root, "src", (".cc",))
    print("lint.py: running clang-tidy over %d files (db: %s)..."
          % (len(sources), os.path.relpath(compile_db, root)))
    rc = subprocess.call([tidy, "-p", build_dir, "--quiet"] + sources)
    return 1 if rc != 0 else 0


def run_format_check(root):
    clang_format = shutil.which("clang-format")
    if clang_format is None:
        print("lint.py: clang-format not found; format check skipped")
        return 0
    files = []
    for d in FORMAT_DIRS:
        files.extend(repo_files(root, d, FORMAT_EXTS))
    print("lint.py: checking format of %d files..." % len(files))
    rc = subprocess.call([clang_format, "--dry-run", "-Werror"] + files)
    return 1 if rc != 0 else 0


def lint_tree(root, lock_order_only=False):
    """Runs the rule lint + lock-order audit over <root>/src. Returns
    (errors, files_checked, lock_count, edge_count). Importable so the
    test suite can point it at synthetic trees."""
    errors = []
    graph = LockGraph()
    files = repo_files(root, "src", SRC_EXTS)
    for path in files:
        lint_file(root, path, errors, graph)
    if lock_order_only:
        errors = []
    audit_lock_order(graph, errors)
    num_edges = sum(len(s) for s in graph.edges.values())
    return errors, len(files), len(graph.edges), num_edges


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/)")
    parser.add_argument("--build-dir", default=None,
                        help="build dir with compile_commands.json "
                             "(default: newest build*/ under --root)")
    parser.add_argument("--clang-tidy", choices=["auto", "on", "off"],
                        default="auto")
    parser.add_argument("--format-check-only", action="store_true",
                        help="only run the clang-format check and exit")
    parser.add_argument("--lock-order-only", action="store_true",
                        help="only run the lock-order audit and exit")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print("lint.py: no src/ under --root %s" % root, file=sys.stderr)
        return 2

    if args.format_check_only:
        return run_format_check(root)

    errors, nfiles, nlocks, nedges = lint_tree(
        root, lock_order_only=args.lock_order_only)
    for e in errors:
        print(e, file=sys.stderr)
    print("lint.py: %d files checked, %d violation(s); lock graph: "
          "%d lock(s), %d ordering edge(s)"
          % (nfiles, len(errors), nlocks, nedges))

    if args.lock_order_only:
        return 1 if errors else 0

    tidy_rc = run_clang_tidy(root, args.build_dir, args.clang_tidy)
    return 1 if errors else tidy_rc


if __name__ == "__main__":
    sys.exit(main())
