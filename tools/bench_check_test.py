#!/usr/bin/env python3
"""Tests for the bench_check.py perf gate, including the negative case:
a synthetic regression (QPS below the floor) must fail the gate."""

import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_check  # noqa: E402  (path set up above)

BASELINES = {
    "bench_distance_kernels": {
        "metrics": {},
        "ratios": {
            "skip_if_equal_config": "simd_level",
            "metrics": {
                "bm_l2sq_128/ns_per_op": {"min_speedup": 1.5},
                "bm_weightedmultiexact_4/ns_per_op": {"min_speedup": 1.5},
            },
        },
    },
    "bench_qps_recall": {
        "metrics": {
            "must/beam64/qps": {"min": 1000.0},
            "must/beam64/recall_at_10": {"min": 0.9},
        }
    },
    "bench_disk_index": {
        "metrics": {
            "bfs_aware_c64_p0/page_reads_per_query": {"max": 300.0},
        }
    },
}


def report(bench, metrics):
    return {"bench": bench, "config": {}, "metrics": metrics,
            "timestamp": 1700000000}


class CheckReportTest(unittest.TestCase):
    def test_all_constraints_hold(self):
        r = report("bench_qps_recall",
                   {"must/beam64/qps": 22678.1,
                    "must/beam64/recall_at_10": 0.996})
        self.assertEqual(
            bench_check.check_report(r, BASELINES["bench_qps_recall"]), [])

    def test_synthetic_regression_fails(self):
        # The negative test: QPS collapsed to a tenth of the floor.
        r = report("bench_qps_recall",
                   {"must/beam64/qps": 100.0,
                    "must/beam64/recall_at_10": 0.996})
        violations = bench_check.check_report(
            r, BASELINES["bench_qps_recall"])
        self.assertEqual(len(violations), 1)
        self.assertIn("below floor", violations[0])
        self.assertIn("must/beam64/qps", violations[0])

    def test_ceiling_violation_fails(self):
        r = report("bench_disk_index",
                   {"bfs_aware_c64_p0/page_reads_per_query": 450.0})
        violations = bench_check.check_report(
            r, BASELINES["bench_disk_index"])
        self.assertEqual(len(violations), 1)
        self.assertIn("above ceiling", violations[0])

    def test_missing_metric_fails(self):
        r = report("bench_qps_recall", {"must/beam64/qps": 22678.1})
        violations = bench_check.check_report(
            r, BASELINES["bench_qps_recall"])
        self.assertEqual(len(violations), 1)
        self.assertIn("missing", violations[0])

    def test_boundary_values_pass(self):
        r = report("bench_qps_recall",
                   {"must/beam64/qps": 1000.0,
                    "must/beam64/recall_at_10": 0.9})
        self.assertEqual(
            bench_check.check_report(r, BASELINES["bench_qps_recall"]), [])


class RunTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.baselines = self.write("baselines.json", BASELINES)

    def tearDown(self):
        self.dir.cleanup()

    def write(self, name, obj):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(obj, f)
        return path

    def run_gate(self, *reports):
        out = io.StringIO()
        code = bench_check.run(self.baselines, list(reports), out=out)
        return code, out.getvalue()

    def test_passing_reports_exit_zero(self):
        ok = self.write("ok.json", report(
            "bench_qps_recall",
            {"must/beam64/qps": 5000.0, "must/beam64/recall_at_10": 0.95}))
        code, text = self.run_gate(ok)
        self.assertEqual(code, 0)
        self.assertIn("PASS", text)

    def test_regression_exits_one(self):
        bad = self.write("bad.json", report(
            "bench_qps_recall",
            {"must/beam64/qps": 5.0, "must/beam64/recall_at_10": 0.95}))
        code, text = self.run_gate(bad)
        self.assertEqual(code, 1)
        self.assertIn("FAIL", text)
        self.assertIn("below floor", text)

    def test_unknown_bench_skips(self):
        other = self.write("other.json", report("bench_novel", {"x/y": 1.0}))
        code, text = self.run_gate(other)
        self.assertEqual(code, 0)
        self.assertIn("SKIP", text)

    def test_unreadable_report_fails(self):
        path = os.path.join(self.dir.name, "broken.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        code, text = self.run_gate(path)
        self.assertEqual(code, 1)
        self.assertIn("unreadable", text)

    def run_compare(self, ref, cand):
        out = io.StringIO()
        code = bench_check.run_compare(self.baselines, ref, cand, out=out)
        return code, out.getvalue()

    def kernels_report(self, level, l2, wme):
        return {"bench": "bench_distance_kernels",
                "config": {"simd_level": level},
                "metrics": {"bm_l2sq_128/ns_per_op": l2,
                            "bm_weightedmultiexact_4/ns_per_op": wme},
                "timestamp": 1700000000}

    def test_compare_passes_at_required_speedup(self):
        ref = self.write("scalar.json",
                         self.kernels_report("scalar", 24.0, 38.0))
        cand = self.write("simd.json",
                          self.kernels_report("avx2", 13.0, 25.0))
        code, text = self.run_compare(ref, cand)
        self.assertEqual(code, 0)
        self.assertIn("PASS compare", text)

    def test_compare_fails_below_required_speedup(self):
        ref = self.write("scalar.json",
                         self.kernels_report("scalar", 24.0, 38.0))
        cand = self.write("simd.json",
                          self.kernels_report("avx2", 20.0, 36.0))
        code, text = self.run_compare(ref, cand)
        self.assertEqual(code, 1)
        self.assertIn("below required 1.5x", text)

    def test_compare_skips_when_config_equal(self):
        # A runner without AVX2 resolves both runs to scalar: the ratio is
        # noise around 1.0x and must be skipped, not failed.
        ref = self.write("a.json", self.kernels_report("scalar", 24.0, 38.0))
        cand = self.write("b.json", self.kernels_report("scalar", 23.0, 39.0))
        code, text = self.run_compare(ref, cand)
        self.assertEqual(code, 0)
        self.assertIn("SKIP compare", text)
        self.assertIn("simd_level", text)

    def test_compare_missing_metric_fails(self):
        ref = self.write("scalar.json",
                         self.kernels_report("scalar", 24.0, 38.0))
        cand_obj = self.kernels_report("avx2", 13.0, 25.0)
        del cand_obj["metrics"]["bm_weightedmultiexact_4/ns_per_op"]
        cand = self.write("simd.json", cand_obj)
        code, text = self.run_compare(ref, cand)
        self.assertEqual(code, 1)
        self.assertIn("missing", text)

    def test_compare_bench_mismatch_fails(self):
        ref = self.write("scalar.json",
                         self.kernels_report("scalar", 24.0, 38.0))
        cand = self.write("other.json", report("bench_qps_recall", {}))
        code, text = self.run_compare(ref, cand)
        self.assertEqual(code, 1)
        self.assertIn("mismatch", text)

    def test_compare_without_ratio_baselines_skips(self):
        a = self.write("a.json", report("bench_qps_recall",
                                        {"must/beam64/qps": 5000.0}))
        b = self.write("b.json", report("bench_qps_recall",
                                        {"must/beam64/qps": 6000.0}))
        code, text = self.run_compare(a, b)
        self.assertEqual(code, 0)
        self.assertIn("no ratio baselines", text)

    def test_repo_baselines_file_parses(self):
        # The committed baselines must stay valid JSON with min/max bounds.
        repo_baselines = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "bench",
            "baselines.json")
        with open(repo_baselines, encoding="utf-8") as f:
            data = json.load(f)
        for bench, entry in data.items():
            if bench.startswith("_"):
                continue
            self.assertIn("metrics", entry)
            for name, bounds in entry["metrics"].items():
                self.assertTrue(
                    set(bounds) <= {"min", "max"},
                    f"{bench}:{name} has unknown bound keys {set(bounds)}")
            ratios = entry.get("ratios")
            if ratios is not None:
                self.assertTrue(
                    set(ratios) <= {"skip_if_equal_config", "metrics",
                                    "_comment"},
                    f"{bench} ratios has unknown keys {set(ratios)}")
                for name, bounds in ratios.get("metrics", {}).items():
                    self.assertEqual(
                        set(bounds), {"min_speedup"},
                        f"{bench} ratio {name} must set min_speedup only")


if __name__ == "__main__":
    unittest.main()
