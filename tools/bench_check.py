#!/usr/bin/env python3
"""CI perf gate: checks bench JSON reports against floor/ceiling baselines.

Usage:
    bench_check.py --baselines bench/baselines.json BENCH_foo.json ...

Each report file is the output of a bench binary's --json flag:

    {"bench": "bench_qps_recall", "config": {...},
     "metrics": {"must/beam64/qps": 22678.1, ...}, "timestamp": 1720000000}

bench/baselines.json maps bench names to per-metric constraints:

    {"bench_qps_recall": {
        "metrics": {"must/beam64/recall_at_10": {"min": 0.9},
                    "must/beam64/qps": {"min": 1500.0}}}}

A metric listed in the baselines but absent from the report is a failure
(a silently dropped metric must not pass the gate). Reports whose bench
has no baselines entry pass with a note. Exit code 0 = all constraints
hold, 1 = at least one violation (or unreadable input).
"""

import argparse
import json
import sys


def check_report(report, baseline):
    """Returns a list of violation strings for one report (empty = pass)."""
    violations = []
    bench = report.get("bench", "<unnamed>")
    metrics = report.get("metrics", {})
    for name, bounds in sorted(baseline.get("metrics", {}).items()):
        value = metrics.get(name)
        if value is None:
            violations.append(
                f"{bench}: metric '{name}' missing from the report")
            continue
        lo = bounds.get("min")
        hi = bounds.get("max")
        if lo is not None and value < lo:
            violations.append(
                f"{bench}: {name} = {value:g} below floor {lo:g}")
        if hi is not None and value > hi:
            violations.append(
                f"{bench}: {name} = {value:g} above ceiling {hi:g}")
    return violations


def run(baselines_path, report_paths, out=sys.stdout):
    """Checks every report; returns the process exit code."""
    try:
        with open(baselines_path, encoding="utf-8") as f:
            baselines = json.load(f)
    except (OSError, ValueError) as e:
        print(f"cannot read baselines {baselines_path}: {e}", file=out)
        return 1

    failed = False
    for path in report_paths:
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, ValueError) as e:
            print(f"FAIL {path}: unreadable report: {e}", file=out)
            failed = True
            continue
        bench = report.get("bench", "<unnamed>")
        baseline = baselines.get(bench)
        if baseline is None:
            print(f"SKIP {path}: no baselines for '{bench}'", file=out)
            continue
        violations = check_report(report, baseline)
        if violations:
            failed = True
            print(f"FAIL {path}:", file=out)
            for v in violations:
                print(f"  {v}", file=out)
        else:
            n = len(baseline.get("metrics", {}))
            print(f"PASS {path}: {n} constraint(s) hold", file=out)
    return 1 if failed else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", required=True,
                        help="path to bench/baselines.json")
    parser.add_argument("reports", nargs="+",
                        help="bench --json output files to gate")
    args = parser.parse_args(argv)
    return run(args.baselines, args.reports)


if __name__ == "__main__":
    sys.exit(main())
