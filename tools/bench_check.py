#!/usr/bin/env python3
"""CI perf gate: checks bench JSON reports against floor/ceiling baselines.

Usage:
    bench_check.py --baselines bench/baselines.json BENCH_foo.json ...
    bench_check.py --baselines bench/baselines.json \\
        --compare REFERENCE.json CANDIDATE.json

Each report file is the output of a bench binary's --json flag:

    {"bench": "bench_qps_recall", "config": {...},
     "metrics": {"must/beam64/qps": 22678.1, ...}, "timestamp": 1720000000}

bench/baselines.json maps bench names to per-metric constraints:

    {"bench_qps_recall": {
        "metrics": {"must/beam64/recall_at_10": {"min": 0.9},
                    "must/beam64/qps": {"min": 1500.0}}}}

A metric listed in the baselines but absent from the report is a failure
(a silently dropped metric must not pass the gate). Reports whose bench
has no baselines entry pass with a note. Exit code 0 = all constraints
hold, 1 = at least one violation (or unreadable input).

Compare mode gates the *ratio* between two runs of the same bench — e.g.
a scalar-pinned run vs the dispatched SIMD run. The per-bench "ratios"
baseline block names the ns_per_op metrics and the minimum speedup
(reference / candidate):

    {"bench_distance_kernels": {
        "ratios": {
            "skip_if_equal_config": "simd_level",
            "metrics": {"bm_l2sq_128/ns_per_op": {"min_speedup": 1.5}}}}}

When `skip_if_equal_config` names a config key that has the same value in
both reports (e.g. the runner has no AVX2, so both runs resolved to
scalar), the comparison is skipped with an explicit note instead of
failing — the ratio would be meaningless noise at 1.0x.
"""

import argparse
import json
import sys


def check_report(report, baseline):
    """Returns a list of violation strings for one report (empty = pass)."""
    violations = []
    bench = report.get("bench", "<unnamed>")
    metrics = report.get("metrics", {})
    for name, bounds in sorted(baseline.get("metrics", {}).items()):
        value = metrics.get(name)
        if value is None:
            violations.append(
                f"{bench}: metric '{name}' missing from the report")
            continue
        lo = bounds.get("min")
        hi = bounds.get("max")
        if lo is not None and value < lo:
            violations.append(
                f"{bench}: {name} = {value:g} below floor {lo:g}")
        if hi is not None and value > hi:
            violations.append(
                f"{bench}: {name} = {value:g} above ceiling {hi:g}")
    return violations


def check_ratios(reference, candidate, ratios, out=sys.stdout):
    """Gates reference/candidate metric ratios. Returns an exit code."""
    bench = reference.get("bench", "<unnamed>")
    if candidate.get("bench") != reference.get("bench"):
        print(f"FAIL compare: bench mismatch "
              f"('{bench}' vs '{candidate.get('bench')}')", file=out)
        return 1
    skip_key = ratios.get("skip_if_equal_config")
    if skip_key is not None:
        ref_val = reference.get("config", {}).get(skip_key)
        cand_val = candidate.get("config", {}).get(skip_key)
        if ref_val == cand_val:
            print(f"SKIP compare: both reports have {skip_key}="
                  f"'{ref_val}' — ratio gate not meaningful on this host",
                  file=out)
            return 0
    violations = []
    checked = 0
    for name, bounds in sorted(ratios.get("metrics", {}).items()):
        ref_val = reference.get("metrics", {}).get(name)
        cand_val = candidate.get("metrics", {}).get(name)
        if ref_val is None or cand_val is None:
            violations.append(
                f"{bench}: metric '{name}' missing from "
                f"{'reference' if ref_val is None else 'candidate'} report")
            continue
        if cand_val <= 0:
            violations.append(
                f"{bench}: {name} candidate value {cand_val:g} "
                "is not positive")
            continue
        speedup = ref_val / cand_val
        checked += 1
        floor = bounds.get("min_speedup")
        if floor is not None and speedup < floor:
            violations.append(
                f"{bench}: {name} speedup {speedup:.2f}x below "
                f"required {floor:g}x ({ref_val:g} -> {cand_val:g})")
        else:
            print(f"  {name}: {speedup:.2f}x "
                  f"({ref_val:g} -> {cand_val:g})", file=out)
    if violations:
        print(f"FAIL compare {bench}:", file=out)
        for v in violations:
            print(f"  {v}", file=out)
        return 1
    print(f"PASS compare {bench}: {checked} ratio constraint(s) hold",
          file=out)
    return 0


def run_compare(baselines_path, ref_path, cand_path, out=sys.stdout):
    """Loads two reports and gates their ratios. Returns an exit code."""
    try:
        with open(baselines_path, encoding="utf-8") as f:
            baselines = json.load(f)
        with open(ref_path, encoding="utf-8") as f:
            reference = json.load(f)
        with open(cand_path, encoding="utf-8") as f:
            candidate = json.load(f)
    except (OSError, ValueError) as e:
        print(f"cannot read inputs: {e}", file=out)
        return 1
    bench = reference.get("bench", "<unnamed>")
    ratios = baselines.get(bench, {}).get("ratios")
    if ratios is None:
        print(f"SKIP compare: no ratio baselines for '{bench}'", file=out)
        return 0
    return check_ratios(reference, candidate, ratios, out=out)


def run(baselines_path, report_paths, out=sys.stdout):
    """Checks every report; returns the process exit code."""
    try:
        with open(baselines_path, encoding="utf-8") as f:
            baselines = json.load(f)
    except (OSError, ValueError) as e:
        print(f"cannot read baselines {baselines_path}: {e}", file=out)
        return 1

    failed = False
    for path in report_paths:
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, ValueError) as e:
            print(f"FAIL {path}: unreadable report: {e}", file=out)
            failed = True
            continue
        bench = report.get("bench", "<unnamed>")
        baseline = baselines.get(bench)
        if baseline is None:
            print(f"SKIP {path}: no baselines for '{bench}'", file=out)
            continue
        violations = check_report(report, baseline)
        if violations:
            failed = True
            print(f"FAIL {path}:", file=out)
            for v in violations:
                print(f"  {v}", file=out)
        else:
            n = len(baseline.get("metrics", {}))
            print(f"PASS {path}: {n} constraint(s) hold", file=out)
    return 1 if failed else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", required=True,
                        help="path to bench/baselines.json")
    parser.add_argument("--compare", action="store_true",
                        help="ratio-gate exactly two reports: "
                             "REFERENCE CANDIDATE")
    parser.add_argument("reports", nargs="+",
                        help="bench --json output files to gate")
    args = parser.parse_args(argv)
    if args.compare:
        if len(args.reports) != 2:
            parser.error("--compare takes exactly two reports: "
                         "REFERENCE CANDIDATE")
        return run_compare(args.baselines, args.reports[0], args.reports[1])
    return run(args.baselines, args.reports)


if __name__ == "__main__":
    sys.exit(main())
