#!/usr/bin/env python3
"""Unit tests for tools/lint.py: the lock-order auditor (cycle detection
on synthetic trees, annotation + nested-scope edges, scope retirement),
the raw-mutex and wait-while-locked rules with their NOLINT escapes, and
compile_commands.json auto-discovery. Runs as ctest `tools_lint_test`."""

import os
import sys
import tempfile
import textwrap
import time
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint  # noqa: E402


def write_tree(root, files):
    for rel, content in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(textwrap.dedent(content))


def lint_src(files, lock_order_only=False):
    with tempfile.TemporaryDirectory() as tmp:
        write_tree(tmp, files)
        errors, _, nlocks, nedges = lint.lint_tree(
            tmp, lock_order_only=lock_order_only)
        return errors, nlocks, nedges


class LockOrderAuditTest(unittest.TestCase):
    def test_inter_file_cycle_detected(self):
        # Store::Put takes a_mu_ then b_mu_; Store::Get (in another file)
        # takes b_mu_ then a_mu_: the classic A->B->A deadlock candidate.
        errors, _, nedges = lint_src({
            "src/store/put.cc": """
                namespace mqa {
                void Store::Put() {
                  MutexLock l1(&a_mu_);
                  MutexLock l2(&b_mu_);
                }
                }  // namespace mqa
            """,
            "src/store/get.cc": """
                namespace mqa {
                void Store::Get() {
                  MutexLock l1(&b_mu_);
                  MutexLock l2(&a_mu_);
                }
                }  // namespace mqa
            """,
        }, lock_order_only=True)
        self.assertEqual(nedges, 2)
        self.assertEqual(len(errors), 1)
        self.assertIn("[lock-order]", errors[0])
        self.assertIn("Store::a_mu_", errors[0])
        self.assertIn("Store::b_mu_", errors[0])

    def test_consistent_order_passes(self):
        errors, _, nedges = lint_src({
            "src/store/put.cc": """
                namespace mqa {
                void Store::Put() {
                  MutexLock l1(&a_mu_);
                  MutexLock l2(&b_mu_);
                }
                void Store::Get() {
                  MutexLock l1(&a_mu_);
                  MutexLock l2(&b_mu_);
                }
                }  // namespace mqa
            """,
        }, lock_order_only=True)
        self.assertEqual(nedges, 1)
        self.assertEqual(errors, [])

    def test_annotation_conflicts_with_nesting(self):
        # Header declares a_mu_ before b_mu_; a source nests the other way.
        errors, _, _ = lint_src({
            "src/store/store.h": """
                #ifndef MQA_STORE_STORE_H_
                #define MQA_STORE_STORE_H_
                namespace mqa {
                class Store {
                 private:
                  Mutex a_mu_ MQA_ACQUIRED_BEFORE(b_mu_);
                  Mutex b_mu_;
                };
                }  // namespace mqa
                #endif  // MQA_STORE_STORE_H_
            """,
            "src/store/store.cc": """
                namespace mqa {
                void Store::Swap() {
                  MutexLock l1(&b_mu_);
                  MutexLock l2(&a_mu_);
                }
                }  // namespace mqa
            """,
        }, lock_order_only=True)
        self.assertEqual(len(errors), 1)
        self.assertIn("lock-order cycle", errors[0])

    def test_acquired_after_direction(self):
        # ACQUIRED_AFTER reverses the edge: b after a == a before b, which
        # is consistent with nesting a -> b.
        errors, _, nedges = lint_src({
            "src/store/store.h": """
                #ifndef MQA_STORE_STORE_H_
                #define MQA_STORE_STORE_H_
                namespace mqa {
                class Store {
                 private:
                  Mutex a_mu_;
                  Mutex b_mu_ MQA_ACQUIRED_AFTER(a_mu_);
                };
                }  // namespace mqa
                #endif  // MQA_STORE_STORE_H_
            """,
            "src/store/store.cc": """
                namespace mqa {
                void Store::Both() {
                  MutexLock l1(&a_mu_);
                  MutexLock l2(&b_mu_);
                }
                }  // namespace mqa
            """,
        }, lock_order_only=True)
        self.assertEqual(nedges, 1)
        self.assertEqual(errors, [])

    def test_scope_exit_releases_lock(self):
        # The first lock's scope closes before the second opens: no edge.
        errors, nlocks, nedges = lint_src({
            "src/store/store.cc": """
                namespace mqa {
                void Store::Sequential() {
                  {
                    MutexLock l1(&a_mu_);
                  }
                  MutexLock l2(&b_mu_);
                }
                void Store::Reversed() {
                  {
                    MutexLock l1(&b_mu_);
                  }
                  MutexLock l2(&a_mu_);
                }
                }  // namespace mqa
            """,
        }, lock_order_only=True)
        self.assertEqual(nlocks, 2)
        self.assertEqual(nedges, 0)
        self.assertEqual(errors, [])

    def test_nolint_lock_order_suppresses_edges(self):
        errors, _, _ = lint_src({
            "src/store/store.cc": """
                namespace mqa {
                void Store::Put() {
                  MutexLock l1(&a_mu_);
                  MutexLock l2(&b_mu_);
                }
                void Store::Get() {
                  MutexLock l1(&b_mu_);
                  // NOLINT(mqa-lock-order): order proven safe by trylock
                  MutexLock l2(&a_mu_);
                }
                }  // namespace mqa
            """,
        }, lock_order_only=True)
        self.assertEqual(errors, [])

    def test_reader_and_writer_locks_participate(self):
        errors, _, _ = lint_src({
            "src/store/store.cc": """
                namespace mqa {
                void Store::A() {
                  ReaderLock l1(&map_mu_);
                  MutexLock l2(&log_mu_);
                }
                void Store::B() {
                  MutexLock l1(&log_mu_);
                  WriterLock l2(&map_mu_);
                }
                }  // namespace mqa
            """,
        }, lock_order_only=True)
        self.assertEqual(len(errors), 1)
        self.assertIn("Store::map_mu_", errors[0])
        self.assertIn("Store::log_mu_", errors[0])


class ServingLockHierarchyTest(unittest.TestCase):
    """Models the serving front end's lock hierarchy (see DESIGN.md
    "Serving & batching"): Server::mu_ (session map) is released before a
    turn runs, the worker then holds ServerSession::mu for the whole turn
    and acquires Batcher::mu_ strictly inside it. The auditor must accept
    that order and still catch a batch function reaching back into the
    session lock (the reversal that would deadlock a flush leader against
    a parked submitter)."""

    SERVER_H = """
        #ifndef MQA_SERVER_SERVER_H_
        #define MQA_SERVER_SERVER_H_
        namespace mqa {
        class Server {
         private:
          Mutex mu_;
        };
        class ServerSession {
         private:
          Mutex mu MQA_ACQUIRED_BEFORE(Batcher::mu_);
        };
        class Batcher {
         private:
          Mutex mu_;
        };
        }  // namespace mqa
        #endif  // MQA_SERVER_SERVER_H_
    """

    def test_turn_nesting_is_clean(self):
        errors, _, nedges = lint_src({
            "src/server/server.h": self.SERVER_H,
            "src/server/server.cc": """
                namespace mqa {
                void Server::RunTurn() {
                  MutexLock turn(&ServerSession::mu);
                  MutexLock flush(&Batcher::mu_);
                }
                void Server::FindSession() {
                  MutexLock map(&Server::mu_);
                }
                }  // namespace mqa
            """,
        }, lock_order_only=True)
        self.assertGreaterEqual(nedges, 1)
        self.assertEqual(errors, [])

    def test_batch_fn_reaching_into_session_is_a_cycle(self):
        errors, _, _ = lint_src({
            "src/server/server.h": self.SERVER_H,
            "src/server/server.cc": """
                namespace mqa {
                void Server::RunTurn() {
                  MutexLock turn(&ServerSession::mu);
                  MutexLock flush(&Batcher::mu_);
                }
                void Server::BadBatchFn() {
                  MutexLock flush(&Batcher::mu_);
                  MutexLock turn(&ServerSession::mu);
                }
                }  // namespace mqa
            """,
        }, lock_order_only=True)
        self.assertEqual(len(errors), 1)
        self.assertIn("[lock-order]", errors[0])
        self.assertIn("Batcher::mu_", errors[0])
        self.assertIn("ServerSession::mu", errors[0])


class ShardLockHierarchyTest(unittest.TestCase):
    """Models the sharded fan-out's lock discipline (see DESIGN.md
    "Sharded retrieval, hedging & quorum"): the per-query FanoutState
    mutex is a leaf — a shard task takes it only after all retrieval work
    (including the shard's CircuitBreaker mutex) is done. The auditor must
    accept breaker-then-completion nesting in separate scopes and catch a
    shard task holding the completion mutex while recording into the
    breaker (the reversal that would deadlock the fan-out wait against a
    breaker transition callback)."""

    SHARD_H = """
        #ifndef MQA_SHARD_SHARDED_RETRIEVAL_H_
        #define MQA_SHARD_SHARDED_RETRIEVAL_H_
        namespace mqa {
        class CircuitBreaker {
         private:
          Mutex mu_;
        };
        class FanoutState {
         private:
          Mutex mu;
        };
        }  // namespace mqa
        #endif  // MQA_SHARD_SHARDED_RETRIEVAL_H_
    """

    def test_leaf_completion_mutex_is_clean(self):
        errors, _, nedges = lint_src({
            "src/shard/sharded_retrieval.h": self.SHARD_H,
            "src/shard/sharded_retrieval.cc": """
                namespace mqa {
                void ShardedRetrieval::RunShardAttempt() {
                  {
                    MutexLock record(&CircuitBreaker::mu_);
                  }
                  MutexLock done(&FanoutState::mu);
                }
                void ShardedRetrieval::Retrieve() {
                  MutexLock wait(&FanoutState::mu);
                }
                }  // namespace mqa
            """,
        }, lock_order_only=True)
        self.assertEqual(errors, [])

    def test_breaker_under_completion_mutex_is_a_cycle(self):
        errors, _, _ = lint_src({
            "src/shard/sharded_retrieval.h": self.SHARD_H,
            "src/shard/sharded_retrieval.cc": """
                namespace mqa {
                void ShardedRetrieval::GoodOrder() {
                  MutexLock record(&CircuitBreaker::mu_);
                  MutexLock done(&FanoutState::mu);
                }
                void ShardedRetrieval::BadShardTask() {
                  MutexLock done(&FanoutState::mu);
                  MutexLock record(&CircuitBreaker::mu_);
                }
                }  // namespace mqa
            """,
        }, lock_order_only=True)
        self.assertEqual(len(errors), 1)
        self.assertIn("[lock-order]", errors[0])
        self.assertIn("FanoutState::mu", errors[0])
        self.assertIn("CircuitBreaker::mu_", errors[0])


class RawMutexRuleTest(unittest.TestCase):
    def test_flags_std_mutex_outside_sync_h(self):
        errors, _, _ = lint_src({
            "src/util/cache.cc": """
                namespace mqa {
                std::mutex mu;
                }  // namespace mqa
            """,
        })
        self.assertTrue(any("[raw-mutex]" in e for e in errors))

    def test_sync_header_is_exempt(self):
        errors, _, _ = lint_src({
            "src/common/sync.h": """
                #ifndef MQA_COMMON_SYNC_H_
                #define MQA_COMMON_SYNC_H_
                namespace mqa {
                class Mutex {
                  std::mutex mu_;
                };
                }  // namespace mqa
                #endif  // MQA_COMMON_SYNC_H_
            """,
        })
        self.assertEqual([e for e in errors if "[raw-mutex]" in e], [])

    def test_nolint_escape(self):
        errors, _, _ = lint_src({
            "src/util/cache.cc": """
                namespace mqa {
                // NOLINT(mqa-raw-mutex): interop with external API
                std::unique_lock<std::mutex> lk(ext);
                }  // namespace mqa
            """,
        })
        self.assertEqual([e for e in errors if "[raw-mutex]" in e], [])

    def test_flags_condition_variable_and_lock_guard(self):
        errors, _, _ = lint_src({
            "src/util/cache.cc": """
                namespace mqa {
                std::condition_variable cv;
                std::lock_guard<std::mutex> lk(mu);
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            len([e for e in errors if "[raw-mutex]" in e]), 2)


class WaitWhileLockedRuleTest(unittest.TestCase):
    def test_sleep_under_lock_flagged(self):
        errors, _, _ = lint_src({
            "src/util/poll.cc": """
                namespace mqa {
                void Poller::Run() {
                  MutexLock lock(&mu_);
                  clock_->SleepForMillis(5);
                }
                }  // namespace mqa
            """,
        })
        hits = [e for e in errors if "[wait-while-locked]" in e]
        self.assertEqual(len(hits), 1)
        self.assertIn("Poller::mu_", hits[0])

    def test_sleep_after_scope_close_ok(self):
        errors, _, _ = lint_src({
            "src/util/poll.cc": """
                namespace mqa {
                void Poller::Run() {
                  {
                    MutexLock lock(&mu_);
                  }
                  clock_->SleepForMillis(5);
                }
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            [e for e in errors if "[wait-while-locked]" in e], [])

    def test_sleep_in_next_function_ok(self):
        # The lock must not leak past the end of the function body.
        errors, _, _ = lint_src({
            "src/util/poll.cc": """
                namespace mqa {
                void Poller::Hold() {
                  MutexLock lock(&mu_);
                }
                void Poller::Nap() {
                  clock_->SleepForMillis(5);
                }
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            [e for e in errors if "[wait-while-locked]" in e], [])

    def test_parallel_for_under_lock_flagged(self):
        errors, _, _ = lint_src({
            "src/util/poll.cc": """
                namespace mqa {
                void Poller::Run() {
                  MutexLock lock(&mu_);
                  pool_->ParallelFor(0, n, fn);
                }
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            len([e for e in errors if "[wait-while-locked]" in e]), 1)

    def test_nolint_escape(self):
        errors, _, _ = lint_src({
            "src/util/poll.cc": """
                namespace mqa {
                void Poller::Run() {
                  MutexLock lock(&mu_);
                  // NOLINT(mqa-wait-while-locked): mock clock, no real wait
                  clock_->SleepForMillis(5);
                }
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            [e for e in errors if "[wait-while-locked]" in e], [])


class DurableWriteRuleTest(unittest.TestCase):
    def test_flags_ofstream_outside_durability_layer(self):
        errors, _, _ = lint_src({
            "src/core/persistence.cc": """
                namespace mqa {
                void Save() {
                  std::ofstream out("snapshot-3/kb.bin");
                }
                }  // namespace mqa
            """,
        })
        hits = [e for e in errors if "[durable-write]" in e]
        self.assertEqual(len(hits), 1)
        self.assertIn("WriteFileAtomic", hits[0])

    def test_flags_write_capable_fstream(self):
        errors, _, _ = lint_src({
            "src/core/persistence.cc": """
                namespace mqa {
                std::fstream io("wal.log", std::ios::in | std::ios::out);
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            len([e for e in errors if "[durable-write]" in e]), 1)

    def test_read_only_ifstream_is_fine(self):
        errors, _, _ = lint_src({
            "src/core/persistence.cc": """
                namespace mqa {
                std::ifstream in("snapshot-3/kb.bin");
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            [e for e in errors if "[durable-write]" in e], [])

    def test_durability_layer_is_exempt(self):
        errors, _, _ = lint_src({
            "src/storage/durable_file.cc": """
                namespace mqa {
                std::ofstream out(tmp_path);
                }  // namespace mqa
            """,
            "src/storage/wal.cc": """
                namespace mqa {
                std::ofstream log(path, std::ios::app);
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            [e for e in errors if "[durable-write]" in e], [])

    def test_nolint_escape(self):
        errors, _, _ = lint_src({
            "src/core/debug_dump.cc": """
                namespace mqa {
                // NOLINT(mqa-durable-write): debug dump, not recovery state
                std::ofstream out("/tmp/dump.txt");
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            [e for e in errors if "[durable-write]" in e], [])


class RawIntrinsicsRuleTest(unittest.TestCase):
    def test_flags_immintrin_outside_simd_layer(self):
        errors, _, _ = lint_src({
            "src/graph/search.cc": """
                #include <immintrin.h>
                namespace mqa {
                }  // namespace mqa
            """,
        })
        flagged = [e for e in errors if "[raw-intrinsics]" in e]
        self.assertEqual(len(flagged), 1)
        self.assertIn("src/graph/search.cc:2", flagged[0].replace(os.sep, "/"))

    def test_flags_other_isa_headers(self):
        errors, _, _ = lint_src({
            "src/vector/distance.cc": """
                #include <emmintrin.h>
                #include <arm_neon.h>
                namespace mqa {
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            len([e for e in errors if "[raw-intrinsics]" in e]), 2)

    def test_simd_layer_is_exempt(self):
        errors, _, _ = lint_src({
            "src/vector/simd/kernels_avx2.cc": """
                #include <immintrin.h>
                namespace mqa {
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            [e for e in errors if "[raw-intrinsics]" in e], [])

    def test_nolint_escape(self):
        errors, _, _ = lint_src({
            "src/core/cpuinfo.cc": """
                namespace mqa {
                // NOLINT(mqa-raw-intrinsics): startup CPUID probe only
                #include <immintrin.h>
                }  // namespace mqa
            """,
        })
        self.assertEqual(
            [e for e in errors if "[raw-intrinsics]" in e], [])


class CompileCommandsDiscoveryTest(unittest.TestCase):
    def test_picks_newest_build_dir(self):
        with tempfile.TemporaryDirectory() as tmp:
            old = os.path.join(tmp, "build-release")
            new = os.path.join(tmp, "build-tsa")
            for d in (old, new):
                os.makedirs(d)
                with open(os.path.join(d, "compile_commands.json"),
                          "w") as f:
                    f.write("[]")
            past = time.time() - 1000
            os.utime(os.path.join(old, "compile_commands.json"),
                     (past, past))
            build_dir, db = lint.find_compile_commands(tmp, None)
            self.assertEqual(build_dir, new)
            self.assertTrue(db.endswith("compile_commands.json"))

    def test_explicit_build_dir_wins(self):
        with tempfile.TemporaryDirectory() as tmp:
            chosen = os.path.join(tmp, "out")
            os.makedirs(chosen)
            with open(os.path.join(chosen, "compile_commands.json"),
                      "w") as f:
                f.write("[]")
            build_dir, db = lint.find_compile_commands(tmp, chosen)
            self.assertEqual(build_dir, chosen)
            self.assertIsNotNone(db)

    def test_no_database_found(self):
        with tempfile.TemporaryDirectory() as tmp:
            build_dir, db = lint.find_compile_commands(tmp, None)
            self.assertIsNone(build_dir)
            self.assertIsNone(db)


class RepoSelfCheckTest(unittest.TestCase):
    def test_repo_src_is_clean(self):
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        if not os.path.isdir(os.path.join(repo, "src")):
            self.skipTest("not running inside the repo")
        errors, nfiles, nlocks, _ = lint.lint_tree(repo)
        self.assertEqual(errors, [])
        self.assertGreater(nfiles, 50)
        # The migration left every acquisition visible to the auditor.
        self.assertGreater(nlocks, 5)


if __name__ == "__main__":
    unittest.main()
