#include "encoder/encoder.h"

#include "vector/distance.h"

namespace mqa {

VectorSchema EncoderSet::Schema() const {
  VectorSchema schema;
  schema.dims.reserve(encoders_.size());
  for (const auto& e : encoders_) {
    schema.dims.push_back(static_cast<uint32_t>(e->dim()));
  }
  return schema;
}

Result<MultiVector> EncoderSet::EncodeObject(const Object& object) const {
  if (object.modalities.size() != encoders_.size()) {
    return Status::InvalidArgument(
        "object modality count does not match encoder set");
  }
  MultiVector mv;
  mv.parts.reserve(encoders_.size());
  for (size_t m = 0; m < encoders_.size(); ++m) {
    MQA_ASSIGN_OR_RETURN(Vector v, encoders_[m]->Encode(object.modalities[m]));
    mv.parts.push_back(std::move(v));
  }
  return mv;
}

Result<Vector> EncoderSet::EncodeModality(size_t slot,
                                          const Payload& payload) const {
  if (slot >= encoders_.size()) {
    return Status::OutOfRange("encoder slot out of range");
  }
  return encoders_[slot]->Encode(payload);
}

std::vector<Result<Vector>> EncoderSet::EncodeModalityBatch(
    const std::vector<ModalityEncodeRequest>& batch) const {
  std::vector<Result<Vector>> out;
  out.reserve(batch.size());
  for (const ModalityEncodeRequest& request : batch) {
    out.push_back(EncodeModality(request.slot, request.payload));
  }
  return out;
}

Result<Vector> PrecomputedEncoder::Encode(const Payload& payload) {
  if (payload.features.size() != dim_) {
    return Status::InvalidArgument(
        name_ + " expects a precomputed embedding of dimension " +
        std::to_string(dim_) + ", got " +
        std::to_string(payload.features.size()));
  }
  Vector out(payload.features.begin(), payload.features.end());
  if (normalize_) NormalizeVector(&out);
  return out;
}

Vector FuseJoint(const MultiVector& mv) {
  size_t dim = 0;
  for (const auto& p : mv.parts) {
    if (!p.empty()) {
      dim = p.size();
      break;
    }
  }
  Vector out(dim, 0.0f);
  size_t used = 0;
  for (const auto& p : mv.parts) {
    if (p.empty()) continue;
    if (p.size() != dim) continue;  // incompatible part; skip defensively
    for (size_t d = 0; d < dim; ++d) out[d] += p[d];
    ++used;
  }
  if (used > 0) {
    for (auto& x : out) x /= static_cast<float>(used);
    NormalizeVector(&out);
  }
  return out;
}

}  // namespace mqa
