#ifndef MQA_ENCODER_SIM_ENCODERS_H_
#define MQA_ENCODER_SIM_ENCODERS_H_

#include <memory>
#include <string>

#include "encoder/encoder.h"
#include "storage/world.h"

namespace mqa {

/// Knobs of the simulated encoders. `encoder_noise` is the standard
/// deviation of deterministic per-input noise added in embedding space,
/// modeling imperfect pretrained models.
struct SimEncoderConfig {
  uint32_t output_dim = 32;
  float encoder_noise = 0.05f;
  uint64_t seed = 7;
};

/// Simulated text encoder (LSTM/CLIP-text stand-in): recovers an
/// approximate latent from the caption through the world's vocabulary, then
/// projects into the shared embedding space.
class SimTextEncoder : public ModalityEncoder {
 public:
  SimTextEncoder(const World* world, SimEncoderConfig config);

  Result<Vector> Encode(const Payload& payload) override;
  size_t dim() const override { return config_.output_dim; }
  std::string name() const override { return "sim-text"; }

 private:
  const World* world_;
  SimEncoderConfig config_;
  std::vector<float> projection_;  // output_dim x latent_dim, row-major
};

/// Simulated feature encoder (ResNet/CLIP-image stand-in) for image or
/// audio slots: least-squares latent recovery from raw features, then the
/// shared projection.
class SimFeatureEncoder : public ModalityEncoder {
 public:
  SimFeatureEncoder(const World* world, SimEncoderConfig config,
                    size_t modality_slot, std::string name);

  Result<Vector> Encode(const Payload& payload) override;
  size_t dim() const override { return config_.output_dim; }
  std::string name() const override { return name_; }

 private:
  const World* world_;
  SimEncoderConfig config_;
  size_t modality_slot_;
  std::string name_;
  std::vector<float> projection_;
};

/// Builds the full per-modality encoder set for a world. Recognized preset
/// names (the pluggable-encoder menu in the configuration panel):
///   "sim-clip"        shared aligned space, low noise (default)
///   "sim-resnet-lstm" standalone unimodal encoders, higher noise
///   "sim-perfect"     noise-free (debug/upper bound)
/// Returns InvalidArgument for unknown presets.
Result<EncoderSet> MakeSimEncoderSet(const World* world,
                                     const std::string& preset,
                                     uint32_t output_dim = 32);

/// Names of all available presets (for the configuration panel).
std::vector<std::string> SimEncoderPresets();

}  // namespace mqa

#endif  // MQA_ENCODER_SIM_ENCODERS_H_
