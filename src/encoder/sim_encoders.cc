#include "encoder/sim_encoders.h"

#include <cmath>
#include <cstring>
#include <functional>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "vector/distance.h"

namespace mqa {

namespace {

/// Shared projection from latent space to embedding space. Same seed ->
/// same projection, so encoders built with one seed are "aligned" (CLIP
/// style). Identity when dims match.
std::vector<float> MakeProjection(uint32_t out_dim, uint32_t latent_dim,
                                  uint64_t seed) {
  std::vector<float> proj(static_cast<size_t>(out_dim) * latent_dim, 0.0f);
  if (out_dim == latent_dim) {
    for (uint32_t i = 0; i < out_dim; ++i) proj[i * latent_dim + i] = 1.0f;
    return proj;
  }
  Rng rng(seed ^ 0x70726f6aULL);  // "proj"
  const float scale = 1.0f / std::sqrt(static_cast<float>(latent_dim));
  for (auto& x : proj) x = static_cast<float>(rng.Gaussian()) * scale;
  return proj;
}

Vector ProjectAndPerturb(const Vector& latent,
                         const std::vector<float>& projection,
                         uint32_t out_dim, float noise, uint64_t input_hash) {
  const size_t latent_dim = latent.size();
  // Signal strength: informative inputs have (near-)unit latents; junk
  // inputs (e.g. a caption of only stop words) have low-energy latents.
  // The embedding keeps that magnitude, so uninformative parts contribute
  // a near-constant term to distances instead of random noise.
  const float signal =
      std::min(1.0f, Norm(latent.data(), latent.size()));
  Vector out(out_dim, 0.0f);
  if (signal == 0.0f) return out;
  for (uint32_t i = 0; i < out_dim; ++i) {
    const float* row = projection.data() + static_cast<size_t>(i) * latent_dim;
    float s = 0.0f;
    for (size_t j = 0; j < latent_dim; ++j) s += row[j] * latent[j];
    out[i] = s;
  }
  if (noise > 0.0f) {
    // Deterministic "model imperfection": the same input always gets the
    // same perturbation, as a frozen pretrained model would.
    Rng rng(input_hash ^ 0xe2c0deULL);
    for (auto& x : out) {
      x += noise * signal * static_cast<float>(rng.Gaussian());
    }
  }
  const float n = Norm(out.data(), out.size());
  if (n > 0.0f) {
    const float scale = signal / n;
    for (auto& x : out) x *= scale;
  }
  return out;
}

uint64_t HashBytes(const void* data, size_t n) {
  // FNV-1a.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

SimTextEncoder::SimTextEncoder(const World* world, SimEncoderConfig config)
    : world_(world),
      config_(config),
      projection_(MakeProjection(config.output_dim,
                                 world->config().latent_dim, config.seed)) {}

Result<Vector> SimTextEncoder::Encode(const Payload& payload) {
  Span span("encoder/sim-text");
  MetricsRegistry::Global().GetCounter("encoder/encode_calls")->Increment();
  // Chaos hook: a GPU-hosted text encoder going down ("encoder/sim-text").
  // The enabled() guard keeps the disarmed fast path allocation-free.
  if (FaultInjector::Global().enabled()) {
    MQA_RETURN_NOT_OK(FaultInjector::Global().Check("encoder/" + name()));
  }
  if (payload.type != ModalityType::kText) {
    return Status::InvalidArgument("SimTextEncoder expects a text payload");
  }
  const Vector latent = world_->TextToLatent(payload.text);
  return ProjectAndPerturb(latent, projection_, config_.output_dim,
                           config_.encoder_noise,
                           HashBytes(payload.text.data(),
                                     payload.text.size()));
}

SimFeatureEncoder::SimFeatureEncoder(const World* world,
                                     SimEncoderConfig config,
                                     size_t modality_slot, std::string name)
    : world_(world),
      config_(config),
      modality_slot_(modality_slot),
      name_(std::move(name)),
      projection_(MakeProjection(config.output_dim,
                                 world->config().latent_dim, config.seed)) {}

Result<Vector> SimFeatureEncoder::Encode(const Payload& payload) {
  Span span(ActiveTrace() != nullptr ? "encoder/" + name_ : std::string());
  MetricsRegistry::Global().GetCounter("encoder/encode_calls")->Increment();
  // Chaos hook: e.g. "encoder/sim-image" for the ResNet/CLIP-image slot.
  if (FaultInjector::Global().enabled()) {
    MQA_RETURN_NOT_OK(FaultInjector::Global().Check("encoder/" + name_));
  }
  if (payload.features.empty()) {
    return Status::InvalidArgument(name_ + " expects a feature payload");
  }
  const Vector latent =
      world_->FeaturesToLatent(payload.features, modality_slot_);
  return ProjectAndPerturb(
      latent, projection_, config_.output_dim, config_.encoder_noise,
      HashBytes(payload.features.data(),
                payload.features.size() * sizeof(float)));
}

Result<EncoderSet> MakeSimEncoderSet(const World* world,
                                     const std::string& preset,
                                     uint32_t output_dim) {
  SimEncoderConfig config;
  config.output_dim = output_dim;
  bool aligned = true;
  if (preset == "sim-clip") {
    config.encoder_noise = 0.05f;
  } else if (preset == "sim-resnet-lstm") {
    config.encoder_noise = 0.12f;
    aligned = false;  // standalone unimodal encoders: distinct projections
  } else if (preset == "sim-perfect") {
    config.encoder_noise = 0.0f;
  } else {
    return Status::InvalidArgument("unknown encoder preset: " + preset);
  }

  std::vector<std::unique_ptr<ModalityEncoder>> encoders;
  const size_t num_m = world->num_modalities();
  for (size_t m = 0; m < num_m; ++m) {
    SimEncoderConfig c = config;
    if (!aligned) c.seed = config.seed + 1000 * (m + 1);
    if (m == 1) {
      encoders.push_back(std::make_unique<SimTextEncoder>(world, c));
    } else {
      const std::string name = m == 0 ? "sim-image" : "sim-audio";
      encoders.push_back(
          std::make_unique<SimFeatureEncoder>(world, c, m, name));
    }
  }
  return EncoderSet(std::move(encoders));
}

std::vector<std::string> SimEncoderPresets() {
  return {"sim-clip", "sim-resnet-lstm", "sim-perfect"};
}

}  // namespace mqa
