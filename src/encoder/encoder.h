#ifndef MQA_ENCODER_ENCODER_H_
#define MQA_ENCODER_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/object.h"
#include "vector/vector_types.h"

namespace mqa {

/// Encodes one modality's payload into a dense embedding. Implementations
/// are pluggable (the paper integrates CLIP / ResNet / LSTM); this repo
/// ships simulated encoders "pretrained" on the synthetic world.
class ModalityEncoder {
 public:
  virtual ~ModalityEncoder() = default;

  /// Embeds a payload. Fails when the payload shape does not match the
  /// modality (e.g. missing features).
  virtual Result<Vector> Encode(const Payload& payload) = 0;

  virtual size_t dim() const = 0;
  virtual std::string name() const = 0;
};

/// One single-modality encode request, as batched by the serving layer.
struct ModalityEncodeRequest {
  size_t slot = 0;
  Payload payload;
};

/// One encoder per modality slot — the "Vector Representation" component's
/// multi-vector path. All simulated encoders embed into a shared
/// (CLIP-aligned) space, which also enables joint-embedding fusion.
class EncoderSet {
 public:
  explicit EncoderSet(std::vector<std::unique_ptr<ModalityEncoder>> encoders)
      : encoders_(std::move(encoders)) {}

  size_t num_modalities() const { return encoders_.size(); }

  /// Per-modality embedding dims, as a vector schema for downstream storage.
  VectorSchema Schema() const;

  /// Encodes all modalities of an object into a MultiVector.
  Result<MultiVector> EncodeObject(const Object& object) const;

  /// Encodes a single modality payload.
  Result<Vector> EncodeModality(size_t slot, const Payload& payload) const;

  /// Batched flavour for the serving layer's cross-query batching: one
  /// result per request, in order. Items are encoded independently, so
  /// the outputs are bit-identical to per-item EncodeModality calls (the
  /// batch amortizes dispatch, it never changes results) and one bad
  /// request fails only its own slot.
  std::vector<Result<Vector>> EncodeModalityBatch(
      const std::vector<ModalityEncodeRequest>& batch) const;

  const ModalityEncoder& encoder(size_t slot) const {
    return *encoders_[slot];
  }

 private:
  std::vector<std::unique_ptr<ModalityEncoder>> encoders_;
};

/// The paper's "universal vector support function": a pass-through
/// encoder for users who bring their own precomputed embeddings (from any
/// external library or model). The payload's `features` must already be
/// the embedding, with exactly the declared dimension; it is optionally
/// L2-normalized. Mix freely with other encoders in an EncoderSet.
class PrecomputedEncoder : public ModalityEncoder {
 public:
  explicit PrecomputedEncoder(size_t dim, bool normalize = true,
                              std::string name = "precomputed")
      : dim_(dim), normalize_(normalize), name_(std::move(name)) {}

  Result<Vector> Encode(const Payload& payload) override;
  size_t dim() const override { return dim_; }
  std::string name() const override { return name_; }

 private:
  size_t dim_;
  bool normalize_;
  std::string name_;
};

/// Joint-embedding fusion (the JE baseline): mean of the per-modality
/// embeddings, L2-normalized. Parts may be empty (missing query modality);
/// they are skipped. Returns the zero vector when all parts are empty.
Vector FuseJoint(const MultiVector& mv);

}  // namespace mqa

#endif  // MQA_ENCODER_ENCODER_H_
