#ifndef MQA_DAG_DAG_H_
#define MQA_DAG_DAG_H_

#include <any>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"

namespace mqa::dag {

/// Shared blackboard passed through a pipeline run. Stages publish results
/// under string keys; later stages read them. Thread-safe, since independent
/// stages may run concurrently.
class DagContext {
 public:
  /// Stores `value` under `key`, replacing any previous entry.
  template <typename T>
  void Put(const std::string& key, T value) {
    MutexLock lock(&mu_);
    values_[key] = std::make_shared<std::any>(std::move(value));
  }

  /// Fetches the value stored under `key` as a mutable pointer, or an error
  /// when absent / of the wrong type. The pointee stays owned by the
  /// context; single-writer discipline between dependent stages is
  /// guaranteed by the DAG ordering.
  template <typename T>
  Result<T*> Get(const std::string& key) {
    std::shared_ptr<std::any> holder;
    {
      MutexLock lock(&mu_);
      auto it = values_.find(key);
      if (it == values_.end()) {
        return Status::NotFound("context key not found: " + key);
      }
      holder = it->second;
    }
    T* ptr = std::any_cast<T>(holder.get());
    if (ptr == nullptr) {
      return Status::InvalidArgument("context key has wrong type: " + key);
    }
    return ptr;
  }

  bool Contains(const std::string& key) const {
    MutexLock lock(&mu_);
    return values_.count(key) > 0;
  }

 private:
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<std::any>> values_ MQA_GUARDED_BY(mu_);
};

/// The body of a pipeline stage.
using NodeFn = std::function<Status(DagContext*)>;

/// Per-node execution record, surfaced to the status-monitoring panel.
struct NodeReport {
  std::string name;
  double elapsed_ms = 0.0;
  Status status;
};

/// A directed-acyclic pipeline of named stages — our stand-in for the
/// CGraph framework the paper builds index pipelines on. Nodes declare
/// dependencies by name; Run() executes them in a topological order,
/// dispatching independent ready nodes to a thread pool.
class DagPipeline {
 public:
  explicit DagPipeline(std::string name = "pipeline")
      : name_(std::move(name)) {}

  /// Registers a stage. `deps` are names of stages that must complete
  /// first. Duplicate names are rejected.
  Status AddNode(const std::string& name, std::vector<std::string> deps,
                 NodeFn fn);

  /// Validates the graph (unknown deps, cycles) without running it.
  Status Validate() const;

  /// Executes all stages. Stops scheduling new work after the first stage
  /// failure and returns that stage's status. `parallel` controls whether
  /// independent ready stages run concurrently.
  Status Run(DagContext* ctx, bool parallel = true);

  /// Execution records of the most recent Run(), in completion order.
  const std::vector<NodeReport>& reports() const { return reports_; }

  const std::string& name() const { return name_; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Names of all stages in registration order (for introspection/tests).
  std::vector<std::string> NodeNames() const;

 private:
  struct Node {
    std::string name;
    std::vector<std::string> deps;
    NodeFn fn;
  };

  std::string name_;
  std::vector<Node> nodes_;
  std::map<std::string, size_t> index_;
  std::vector<NodeReport> reports_;
};

}  // namespace mqa::dag

#endif  // MQA_DAG_DAG_H_
