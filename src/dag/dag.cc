#include "dag/dag.h"

#include <exception>
#include <queue>
#include <string>

#include "common/metrics.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"

namespace mqa::dag {

Status DagPipeline::AddNode(const std::string& name,
                            std::vector<std::string> deps, NodeFn fn) {
  if (name.empty()) return Status::InvalidArgument("node name is empty");
  if (index_.count(name) > 0) {
    return Status::AlreadyExists("duplicate node: " + name);
  }
  if (!fn) return Status::InvalidArgument("node has no body: " + name);
  index_[name] = nodes_.size();
  nodes_.push_back(Node{name, std::move(deps), std::move(fn)});
  return Status::OK();
}

Status DagPipeline::Validate() const {
  // Unknown dependencies.
  for (const auto& node : nodes_) {
    for (const auto& dep : node.deps) {
      if (index_.count(dep) == 0) {
        return Status::InvalidArgument("node '" + node.name +
                                       "' depends on unknown node '" + dep +
                                       "'");
      }
      if (dep == node.name) {
        return Status::InvalidArgument("node '" + node.name +
                                       "' depends on itself");
      }
    }
  }
  // Cycle check via Kahn's algorithm.
  std::vector<size_t> indegree(nodes_.size(), 0);
  std::vector<std::vector<size_t>> out(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& dep : nodes_[i].deps) {
      const size_t d = index_.at(dep);
      out[d].push_back(i);
      ++indegree[i];
    }
  }
  std::queue<size_t> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  size_t visited = 0;
  while (!ready.empty()) {
    const size_t u = ready.front();
    ready.pop();
    ++visited;
    for (size_t v : out[u]) {
      if (--indegree[v] == 0) ready.push(v);
    }
  }
  if (visited != nodes_.size()) {
    return Status::InvalidArgument("pipeline '" + name_ + "' has a cycle");
  }
  return Status::OK();
}

Status DagPipeline::Run(DagContext* ctx, bool parallel) {
  MQA_RETURN_NOT_OK(Validate());
  reports_.clear();
  if (nodes_.empty()) return Status::OK();

  std::vector<size_t> indegree(nodes_.size(), 0);
  std::vector<std::vector<size_t>> out(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& dep : nodes_[i].deps) {
      const size_t d = index_.at(dep);
      out[d].push_back(i);
      ++indegree[i];
    }
  }

  Mutex mu;
  CondVar cv;
  std::queue<size_t> ready;
  size_t completed = 0;
  size_t inflight = 0;
  Status first_error;
  bool failed = false;

  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }

  // Capture the caller's ambient trace so stages dispatched to pool
  // threads still record under the pipeline's span (TLS does not cross
  // thread boundaries by itself). The trace object is thread-safe.
  Trace* const trace = ActiveTrace();
  const int32_t trace_parent = ActiveSpanId();

  auto run_node = [&](size_t i) {
    // Re-install the pipeline's trace on whichever thread runs the stage;
    // the stage span nests under the caller's current span.
    ScopedTrace scoped_trace(trace, trace_parent);
    Span span(trace != nullptr ? "dag/" + nodes_[i].name : std::string());
    Timer timer;
    // A stage that throws must still be accounted for: in parallel mode the
    // pool's future is never drained, so an escaping exception would leave
    // `inflight` forever nonzero and deadlock Run() on the cv. Convert to a
    // Status instead.
    Status st;
    try {
      st = nodes_[i].fn(ctx);
    } catch (const std::exception& e) {
      st = Status::Internal("node '" + nodes_[i].name +
                            "' threw: " + e.what());
    } catch (...) {
      st = Status::Internal("node '" + nodes_[i].name +
                            "' threw a non-std exception");
    }
    const double ms = timer.ElapsedMillis();
    MetricsRegistry::Global().GetHistogram("dag/stage_ms")->Record(ms);
    if (!st.ok()) {
      MetricsRegistry::Global().GetCounter("dag/stage_failures")->Increment();
    }
    MutexLock lock(&mu);
    reports_.push_back(NodeReport{nodes_[i].name, ms, st});
    --inflight;
    ++completed;
    if (!st.ok()) {
      if (!failed) {
        failed = true;
        first_error = st;
      }
    } else {
      for (size_t v : out[i]) {
        if (--indegree[v] == 0) ready.push(v);
      }
    }
    cv.NotifyAll();
  };

  if (!parallel) {
    // Sequential execution in a deterministic topological order.
    while (!ready.empty()) {
      const size_t i = ready.front();
      ready.pop();
      ++inflight;
      run_node(i);
      if (failed) return first_error;
    }
    if (completed != nodes_.size()) {
      return Status::Internal("pipeline deadlock (should be unreachable)");
    }
    return Status::OK();
  }

  ThreadPool& pool = DefaultThreadPool();
  // Stage completion is tracked by completed/inflight under `mu` plus the
  // CondVar, so stages are Post()ed fire-and-forget (no per-stage future;
  // run_node converts exceptions to Status itself).
  MutexLock lock(&mu);
  for (;;) {
    while (!failed && !ready.empty()) {
      const size_t i = ready.front();
      ready.pop();
      ++inflight;
      pool.Post([&run_node, i] { run_node(i); });
    }
    if (failed && inflight == 0) return first_error;
    if (completed == nodes_.size()) return Status::OK();
    if (ready.empty() && inflight == 0) {
      return Status::Internal("pipeline stalled with unscheduled nodes");
    }
    cv.Wait(&mu);
  }
}

std::vector<std::string> DagPipeline::NodeNames() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& n : nodes_) names.push_back(n.name);
  return names;
}

}  // namespace mqa::dag
