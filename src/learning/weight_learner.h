#ifndef MQA_LEARNING_WEIGHT_LEARNER_H_
#define MQA_LEARNING_WEIGHT_LEARNER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "vector/vector_store.h"
#include "vector/vector_types.h"

namespace mqa {

/// One contrastive training example, reduced to what the linear weight
/// model consumes: the per-modality squared distances from the anchor to a
/// positive (same semantics) and to a negative (different semantics).
struct TripletDistances {
  std::vector<float> pos;  ///< d_m(anchor, positive), one per modality
  std::vector<float> neg;  ///< d_m(anchor, negative)
};

/// Weight-learning hyperparameters.
struct WeightLearnerConfig {
  float margin = 0.1f;      ///< hinge margin of the triplet loss
  float learning_rate = 0.05f;
  uint32_t epochs = 50;
  float min_weight = 1e-3f;  ///< projection floor (weights stay positive)
  bool normalize = true;     ///< rescale so weights sum to num_modalities
  uint64_t seed = 42;
};

/// Per-epoch training trace plus the result.
struct WeightTrainReport {
  std::vector<float> weights;          ///< learned modality weights
  std::vector<double> loss_per_epoch;  ///< mean hinge loss
  double triplet_accuracy = 0.0;       ///< frac. with D(a,p) < D(a,n)
  uint32_t epochs_run = 0;
};

/// The paper's "vector weight learning model": learns one nonnegative
/// importance weight per modality by minimizing a contrastive (triplet
/// hinge) loss
///
///     L = max(0, margin + D_w(a, p) - D_w(a, n)),
///     D_w(x, y) = sum_m w_m * ||x_m - y_m||^2,
///
/// which is linear in w, so plain projected SGD converges quickly. The
/// learned weights feed both similarity evaluation and index construction.
class WeightLearner {
 public:
  WeightLearner(WeightLearnerConfig config, size_t num_modalities);

  /// Runs projected SGD over the triplets. Fails on empty/ragged input.
  Result<WeightTrainReport> Fit(const std::vector<TripletDistances>& data);

  /// Per-modality squared distances between two flattened multi-vectors.
  static std::vector<float> PerModalityDistances(const VectorSchema& schema,
                                                 const float* a,
                                                 const float* b);

 private:
  WeightLearnerConfig config_;
  size_t num_modalities_;
};

/// Samples training triplets from an encoded corpus: anchor and positive
/// share a label (concept), the negative has a different one. Requires at
/// least two distinct labels. Trains *category-level* weights — the right
/// relevance signal for concept-seeking QA dialogues.
Result<std::vector<TripletDistances>> SampleTriplets(
    const VectorStore& store, const std::vector<uint32_t>& labels,
    size_t count, Rng* rng);

/// Samples training triplets from ground-truth coordinates: the positive
/// is one of the anchor's `positive_k` nearest rows in `positions` (e.g.
/// true latent vectors, or click/relevance feedback embeddings), the
/// negative a random distant row. Trains *instance-level* weights — the
/// right signal for fine-grained similar-item search. `positions` has one
/// coordinate vector per store row.
Result<std::vector<TripletDistances>> SampleTripletsByNeighborhood(
    const VectorStore& store,
    const std::vector<std::vector<float>>& positions, size_t count,
    size_t positive_k, Rng* rng);

}  // namespace mqa

#endif  // MQA_LEARNING_WEIGHT_LEARNER_H_
