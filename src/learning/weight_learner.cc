#include "learning/weight_learner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/topk.h"
#include "vector/distance.h"

namespace mqa {

WeightLearner::WeightLearner(WeightLearnerConfig config,
                             size_t num_modalities)
    : config_(config), num_modalities_(num_modalities) {}

std::vector<float> WeightLearner::PerModalityDistances(
    const VectorSchema& schema, const float* a, const float* b) {
  std::vector<float> out(schema.num_modalities());
  size_t off = 0;
  for (size_t m = 0; m < schema.num_modalities(); ++m) {
    out[m] = L2Sq(a + off, b + off, schema.dims[m]);
    off += schema.dims[m];
  }
  return out;
}

Result<WeightTrainReport> WeightLearner::Fit(
    const std::vector<TripletDistances>& data) {
  if (data.empty()) return Status::InvalidArgument("no training triplets");
  for (const auto& t : data) {
    if (t.pos.size() != num_modalities_ || t.neg.size() != num_modalities_) {
      return Status::InvalidArgument("triplet modality count mismatch");
    }
  }

  std::vector<double> w(num_modalities_, 1.0);
  Rng rng(config_.seed);
  WeightTrainReport report;

  auto project = [&] {
    for (auto& x : w) x = std::max<double>(x, config_.min_weight);
    if (config_.normalize) {
      double sum = 0.0;
      for (double x : w) sum += x;
      const double target = static_cast<double>(num_modalities_);
      if (sum > 0.0) {
        for (auto& x : w) x = x * target / sum;
      }
    }
  };

  for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    std::vector<uint32_t> order =
        rng.Permutation(static_cast<uint32_t>(data.size()));
    double epoch_loss = 0.0;
    for (uint32_t idx : order) {
      const TripletDistances& t = data[idx];
      double dp = 0.0;
      double dn = 0.0;
      for (size_t m = 0; m < num_modalities_; ++m) {
        dp += w[m] * t.pos[m];
        dn += w[m] * t.neg[m];
      }
      const double loss = config_.margin + dp - dn;
      if (loss > 0.0) {
        epoch_loss += loss;
        // dL/dw_m = pos_m - neg_m on the active hinge.
        for (size_t m = 0; m < num_modalities_; ++m) {
          w[m] -= config_.learning_rate *
                  (static_cast<double>(t.pos[m]) - t.neg[m]);
        }
        project();
      }
    }
    report.loss_per_epoch.push_back(epoch_loss / data.size());
    ++report.epochs_run;
    // Early stop when an epoch had no active triplets.
    if (epoch_loss == 0.0) break;
  }

  project();
  report.weights.assign(w.begin(), w.end());

  size_t correct = 0;
  for (const auto& t : data) {
    double dp = 0.0;
    double dn = 0.0;
    for (size_t m = 0; m < num_modalities_; ++m) {
      dp += w[m] * t.pos[m];
      dn += w[m] * t.neg[m];
    }
    if (dp < dn) ++correct;
  }
  report.triplet_accuracy =
      static_cast<double>(correct) / static_cast<double>(data.size());
  return report;
}

Result<std::vector<TripletDistances>> SampleTriplets(
    const VectorStore& store, const std::vector<uint32_t>& labels,
    size_t count, Rng* rng) {
  const uint32_t n = store.size();
  if (labels.size() != n) {
    return Status::InvalidArgument("labels size does not match store");
  }
  if (n < 3) return Status::InvalidArgument("store too small for triplets");

  // Group ids by label.
  std::unordered_map<uint32_t, std::vector<uint32_t>> by_label;
  for (uint32_t i = 0; i < n; ++i) by_label[labels[i]].push_back(i);
  if (by_label.size() < 2) {
    return Status::InvalidArgument("need at least two distinct labels");
  }

  const VectorSchema& schema = store.schema();
  std::vector<TripletDistances> out;
  out.reserve(count);
  size_t attempts = 0;
  while (out.size() < count && attempts < count * 20) {
    ++attempts;
    const uint32_t anchor = static_cast<uint32_t>(rng->NextUint64(n));
    const auto& same = by_label[labels[anchor]];
    if (same.size() < 2) continue;
    uint32_t positive = anchor;
    while (positive == anchor) {
      positive = same[rng->NextUint64(same.size())];
    }
    uint32_t negative = anchor;
    while (labels[negative] == labels[anchor]) {
      negative = static_cast<uint32_t>(rng->NextUint64(n));
    }
    TripletDistances t;
    t.pos = WeightLearner::PerModalityDistances(schema, store.data(anchor),
                                                store.data(positive));
    t.neg = WeightLearner::PerModalityDistances(schema, store.data(anchor),
                                                store.data(negative));
    out.push_back(std::move(t));
  }
  if (out.empty()) {
    return Status::Internal("failed to sample any triplets");
  }
  return out;
}

Result<std::vector<TripletDistances>> SampleTripletsByNeighborhood(
    const VectorStore& store,
    const std::vector<std::vector<float>>& positions, size_t count,
    size_t positive_k, Rng* rng) {
  const uint32_t n = store.size();
  if (positions.size() != n) {
    return Status::InvalidArgument("positions size does not match store");
  }
  if (n < positive_k + 2 || positive_k == 0) {
    return Status::InvalidArgument("store too small for neighborhood triplets");
  }
  const VectorSchema& schema = store.schema();
  const size_t pos_dim = positions[0].size();

  std::vector<TripletDistances> out;
  out.reserve(count);
  for (size_t t = 0; t < count; ++t) {
    const uint32_t anchor = static_cast<uint32_t>(rng->NextUint64(n));
    // The anchor's nearest rows in ground-truth space (excluding itself).
    TopK topk(positive_k + 1);
    for (uint32_t i = 0; i < n; ++i) {
      if (positions[i].size() != pos_dim) {
        return Status::InvalidArgument("ragged positions");
      }
      topk.Push(L2Sq(positions[anchor].data(), positions[i].data(), pos_dim),
                i);
    }
    std::vector<Neighbor> near = topk.TakeSorted();
    // Positive: a random true neighbor; negative: a random row that is not
    // in the neighbor set.
    uint32_t positive = anchor;
    for (int attempt = 0; attempt < 16 && positive == anchor; ++attempt) {
      positive = near[rng->NextUint64(near.size())].id;
    }
    if (positive == anchor) continue;
    uint32_t negative = anchor;
    auto in_near = [&](uint32_t id) {
      for (const Neighbor& m : near) {
        if (m.id == id) return true;
      }
      return false;
    };
    while (negative == anchor || in_near(negative)) {
      negative = static_cast<uint32_t>(rng->NextUint64(n));
    }
    TripletDistances triplet;
    triplet.pos = WeightLearner::PerModalityDistances(
        schema, store.data(anchor), store.data(positive));
    triplet.neg = WeightLearner::PerModalityDistances(
        schema, store.data(anchor), store.data(negative));
    out.push_back(std::move(triplet));
  }
  if (out.empty()) return Status::Internal("failed to sample any triplets");
  return out;
}

}  // namespace mqa
