#ifndef MQA_SERVER_BATCHER_H_
#define MQA_SERVER_BATCHER_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/sync.h"

namespace mqa {

/// Why a batch was released.
enum class BatchTrigger {
  kSize,           ///< pending count reached max_batch
  kDeadlineSlack,  ///< a pending request's deadline slack ran out
  kAllWaiting,     ///< every registered worker is parked inside Submit
};

struct BatcherOptions {
  /// Largest batch handed to the batch function; 1 disables coalescing
  /// (every request runs alone — the single-item fallback).
  size_t max_batch = 8;
  /// Flush as soon as any pending request is within this much of its
  /// deadline, instead of waiting for more stragglers to coalesce.
  double flush_slack_ms = 1.0;
  /// Time source for deadlines and queue-wait metrics; null = SystemClock.
  Clock* clock = nullptr;
  /// Metrics prefix: histograms "server/<name>_batch_size" and
  /// "server/<name>_queue_wait_ms".
  std::string name = "batch";
};

/// Cumulative counters (read by the batcher unit tests).
struct BatcherStats {
  uint64_t batches = 0;
  uint64_t items = 0;
  uint64_t size_flushes = 0;
  uint64_t slack_flushes = 0;
  uint64_t drain_flushes = 0;
  size_t max_occupancy = 0;
};

/// Coalesces concurrent calls into batched invocations of one BatchFn —
/// the cross-query batching stage of the serving pipeline (the paper's
/// encoders and graph search amortize much better per batch than per
/// query).
///
/// Event-driven leader/follower combining, with no timer thread and no
/// timed waits (so MockClock tests stay fully deterministic): callers park
/// in Submit(); whenever an event arrives (a submission, a worker leaving
/// the stage, a finished batch) any parked caller re-evaluates the flush
/// triggers and, if one holds, becomes the leader that executes the batch.
/// Triggers:
///   * size      — max_batch requests are pending;
///   * slack     — a pending request's deadline is within flush_slack_ms,
///                 so waiting for more coalescing would risk missing it;
///   * drain     — every worker registered via Enter() is parked inside
///                 Submit(), so no further request can possibly join.
/// The drain trigger is what guarantees liveness: workers bracket the
/// phase in which they may call Submit with Enter()/Exit(), and a worker
/// that is *not* parked eventually produces an event (its own Submit or
/// its Exit). With no registered workers every submission flushes
/// immediately, so un-registered callers transparently get unbatched
/// semantics.
///
/// Batches are executed one at a time (`flush_inflight_`), which is also
/// what makes it safe to drive a non-thread-safe RetrievalFramework from
/// many server workers. Responses are matched to requests by position;
/// the batch function must return exactly one Result per request.
template <typename Request, typename Response>
class Batcher {
 public:
  using BatchFn = std::function<std::vector<Result<Response>>(
      const std::vector<Request>&)>;

  Batcher(BatcherOptions options, BatchFn fn)
      : options_(std::move(options)),
        clock_(options_.clock != nullptr ? options_.clock : SystemClock()),
        fn_(std::move(fn)),
        batch_size_hist_(MetricsRegistry::Global().GetHistogram(
            "server/" + options_.name + "_batch_size", OccupancyBounds())),
        queue_wait_hist_(MetricsRegistry::Global().GetHistogram(
            "server/" + options_.name + "_queue_wait_ms")) {
    if (options_.max_batch == 0) options_.max_batch = 1;
  }
  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Registers the calling worker as able to Submit (see drain trigger).
  void Enter() {
    MutexLock lock(&mu_);
    ++active_;
  }

  /// The worker left the stage; it will not Submit again until re-entry.
  void Exit() {
    mu_.Lock();
    --active_;
    mu_.Unlock();
    cv_.NotifyAll();  // the drain trigger may hold now
  }

  /// Blocks until the request has been executed as part of some batch and
  /// returns its response. `deadline_micros` (same epoch as the batcher's
  /// clock; 0 = none) only shapes the slack trigger — expired requests
  /// still execute, shedding is the caller's policy.
  Result<Response> Submit(Request request, int64_t deadline_micros = 0) {
    auto slot = std::make_shared<Slot>();
    slot->request = std::move(request);
    slot->deadline_micros = deadline_micros;
    slot->enqueue_micros = clock_->NowMicros();
    mu_.Lock();
    pending_.push_back(slot);
    ++waiting_;
    cv_.NotifyAll();
    while (!slot->done) {
      BatchTrigger trigger = BatchTrigger::kSize;
      if (!flush_inflight_ && !pending_.empty() &&
          ShouldFlushLocked(&trigger)) {
        FlushLocked(trigger);  // drops mu_ around the batch function
        continue;              // our slot may have been in that batch
      }
      cv_.Wait(&mu_);
    }
    --waiting_;
    Result<Response> out = std::move(slot->result);
    mu_.Unlock();
    return out;
  }

  BatcherStats stats() const {
    MutexLock lock(&mu_);
    return stats_;
  }

  size_t active_workers() const {
    MutexLock lock(&mu_);
    return active_;
  }

  /// Callers currently inside Submit (their requests are pending or in
  /// the in-flight batch). Tests poll this to know a request arrived.
  size_t waiting_callers() const {
    MutexLock lock(&mu_);
    return waiting_;
  }

  /// Requests not yet taken by a flush.
  size_t pending_requests() const {
    MutexLock lock(&mu_);
    return pending_.size();
  }

  size_t max_batch() const { return options_.max_batch; }

 private:
  /// Protected by mu_ while in pending_; between removal from pending_
  /// and completion it is exclusively owned by the flushing thread (the
  /// submitter only re-reads it under mu_ after `done` flips).
  struct Slot {
    Request request;
    Result<Response> result = Status::Internal("batch never executed");
    bool done = false;
    int64_t enqueue_micros = 0;
    int64_t deadline_micros = 0;
  };

  static std::vector<double> OccupancyBounds() {
    return {1, 2, 4, 8, 16, 32, 64};
  }

  bool ShouldFlushLocked(BatchTrigger* trigger) MQA_REQUIRES(mu_) {
    if (pending_.size() >= options_.max_batch) {
      *trigger = BatchTrigger::kSize;
      return true;
    }
    // Slack before drain: a deadline-pressed flush is reported as such
    // even when it coincides with every worker being parked.
    const auto slack = static_cast<int64_t>(options_.flush_slack_ms * 1e3);
    const int64_t now = clock_->NowMicros();
    for (const std::shared_ptr<Slot>& slot : pending_) {
      if (slot->deadline_micros > 0 && slot->deadline_micros - now <= slack) {
        *trigger = BatchTrigger::kDeadlineSlack;
        return true;
      }
    }
    if (waiting_ >= active_) {
      *trigger = BatchTrigger::kAllWaiting;
      return true;
    }
    return false;
  }

  /// Takes up to max_batch pending slots and runs the batch function with
  /// mu_ released (batches serialize on flush_inflight_, not on the lock,
  /// so submissions keep flowing while a batch executes).
  void FlushLocked(BatchTrigger trigger) MQA_REQUIRES(mu_) {
    const size_t n = std::min(pending_.size(), options_.max_batch);
    std::vector<std::shared_ptr<Slot>> batch(pending_.begin(),
                                             pending_.begin() + n);
    pending_.erase(pending_.begin(), pending_.begin() + n);
    flush_inflight_ = true;
    ++stats_.batches;
    stats_.items += n;
    stats_.max_occupancy = std::max(stats_.max_occupancy, n);
    switch (trigger) {
      case BatchTrigger::kSize:
        ++stats_.size_flushes;
        break;
      case BatchTrigger::kDeadlineSlack:
        ++stats_.slack_flushes;
        break;
      case BatchTrigger::kAllWaiting:
        ++stats_.drain_flushes;
        break;
    }
    const int64_t now = clock_->NowMicros();
    std::vector<Request> requests;
    requests.reserve(n);
    for (const std::shared_ptr<Slot>& slot : batch) {
      queue_wait_hist_->Record(
          static_cast<double>(now - slot->enqueue_micros) / 1e3);
      requests.push_back(std::move(slot->request));
    }
    batch_size_hist_->Record(static_cast<double>(n));
    mu_.Unlock();
    std::vector<Result<Response>> responses = fn_(requests);
    mu_.Lock();
    for (size_t i = 0; i < batch.size(); ++i) {
      if (i < responses.size()) {
        batch[i]->result = std::move(responses[i]);
      } else {
        batch[i]->result = Status::Internal(
            "batch function returned " + std::to_string(responses.size()) +
            " responses for " + std::to_string(batch.size()) + " requests");
      }
      batch[i]->done = true;
    }
    flush_inflight_ = false;
    cv_.NotifyAll();
  }

  BatcherOptions options_;
  Clock* const clock_;
  const BatchFn fn_;
  Histogram* const batch_size_hist_;
  Histogram* const queue_wait_hist_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::shared_ptr<Slot>> pending_ MQA_GUARDED_BY(mu_);
  size_t active_ MQA_GUARDED_BY(mu_) = 0;
  size_t waiting_ MQA_GUARDED_BY(mu_) = 0;
  bool flush_inflight_ MQA_GUARDED_BY(mu_) = false;
  BatcherStats stats_ MQA_GUARDED_BY(mu_);
};

}  // namespace mqa

#endif  // MQA_SERVER_BATCHER_H_
