#ifndef MQA_SERVER_SERVER_H_
#define MQA_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/clock.h"
#include "core/coordinator.h"
#include "server/batcher.h"
#include "server/request_queue.h"

namespace mqa {

/// One encode or graph-search call as it travels through a Batcher. The
/// encode flavour is the encoder layer's own batched-request type, so a
/// full batch maps onto one EncoderSet::EncodeModalityBatch invocation.
using EncodeCall = ModalityEncodeRequest;
struct SearchCall {
  RetrievalQuery query;
  SearchParams params;
};

/// Completion callback of an asynchronous turn. Invoked exactly once, on a
/// worker thread, after the turn completed or failed *post-admission*
/// (admission failures are returned synchronously by Submit and the
/// callback never fires).
using AskCallback = std::function<void(Result<AnswerTurn>)>;

/// Serving counters (also exported as "server/..." metrics; duplicated
/// here as plain numbers so tests assert without touching the global
/// registry).
struct ServerStatsSnapshot {
  uint64_t accepted = 0;         ///< admitted into the queue
  uint64_t completed = 0;        ///< turns that returned OK
  uint64_t failed = 0;           ///< admitted turns that returned an error
  uint64_t shed_queue_full = 0;  ///< rejected: queue at capacity
  uint64_t shed_breaker = 0;     ///< rejected: overload breaker open
  uint64_t shed_deadline = 0;    ///< dropped: deadline expired in queue
};

/// The concurrent serving front end (ROADMAP item 1): owns the
/// Coordinator and exposes it to many concurrent sessions, pushing every
/// turn through a bounded request queue with admission control and
/// executing them on a worker pool. Overload policy, outermost first:
///
///   1. *Breaker*: a CircuitBreaker fed purely by overload signals
///      (queue-full rejections, turns whose deadline expired while
///      queued). Once it trips, Submit sheds at the door with
///      kUnavailable, giving the queue time to drain before new work is
///      accepted again (half-open probes re-admit traffic gradually).
///   2. *Queue*: TryPush on the bounded queue; at capacity the turn is
///      rejected with kResourceExhausted — backpressure, never unbounded
///      buffering.
///   3. *Deadline*: each turn carries an absolute deadline (from
///      ServingOptions::default_deadline_ms or the query's own
///      deadline_micros); a worker sheds turns that expired while queued
///      and the executor aborts turns that expire mid-flight.
///
/// Inside the workers, cross-query batching: encode and graph-search
/// calls from concurrent turns are coalesced by two Batchers (installed
/// as ExecutionHooks on the coordinator's QueryExecutor), which also
/// serializes access to the non-thread-safe RetrievalFramework. Per-turn
/// dialogue state (rewriter history, prompt history, result selection)
/// lives in a per-session ServerSession, so concurrent sessions never
/// share conversational state.
///
/// Lock ordering (see DESIGN.md "Serving & batching"): Server::mu_ (the
/// session map) is never held across a turn; a worker holds one
/// ServerSession::mu for the whole turn and acquires Batcher::mu_ (via
/// Submit) and the breaker's internal mutex strictly inside it. Batcher
/// batch functions take no further mqa locks.
///
/// Thread-safe. While a Server is serving, do not call mutating
/// Coordinator operations (SetFramework, SetWeights, IngestObject,
/// ResetDialogue) directly — they swap the executor/framework under the
/// workers.
class Server {
 public:
  /// Builds the full system from `config` (Coordinator::Create) and
  /// starts the workers. Serving knobs come from `config.serving`.
  static Result<std::unique_ptr<Server>> Create(const MqaConfig& config);

  /// Wraps an already built system and starts the workers.
  Server(std::unique_ptr<Coordinator> coordinator, ServingOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens a new session with empty dialogue state; returns its id.
  uint64_t OpenSession();

  /// Forgets the session. Turns of that session still in flight complete
  /// normally against the (now detached) state.
  Status CloseSession(uint64_t session_id);

  /// Clears the session's dialogue history and selection (the per-session
  /// flavour of Coordinator::ResetDialogue).
  Status ResetSession(uint64_t session_id);

  /// Marks result `rank` of the session's last turn as selected: the next
  /// turn of that session runs image-assisted by the clicked result (the
  /// paper's feedback loop), unless the query carries its own selection.
  Status Select(uint64_t session_id, size_t rank);

  /// Asynchronous turn: admission control runs synchronously (non-OK
  /// return = the turn was shed and `done` will never fire); once
  /// admitted, `done` is invoked exactly once from a worker thread.
  Status Submit(uint64_t session_id, UserQuery query, AskCallback done);

  /// Blocking turn: Submit + wait. Admission failures surface directly.
  Result<AnswerTurn> Ask(uint64_t session_id, const UserQuery& query);

  /// Stops accepting work, drains queued turns and joins the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  /// Parks / releases the worker pool with the queue still accepting
  /// work — the deterministic way for tests to fill the queue to
  /// capacity. Suspend is not part of the production surface.
  void Suspend();
  void Resume();

  ServerStatsSnapshot stats() const;
  size_t queue_depth() const { return queue_.size(); }
  size_t queue_capacity() const { return queue_.capacity(); }
  const CircuitBreaker& breaker() const { return breaker_; }
  CircuitBreaker& breaker() { return breaker_; }
  Coordinator* coordinator() { return coordinator_.get(); }
  const ServingOptions& options() const { return options_; }

  /// Read-side accessors into a session (for tests and a results UI).
  Result<std::vector<RetrievedItem>> LastResults(uint64_t session_id) const;
  Result<size_t> DialogueHistorySize(uint64_t session_id) const;

  const Batcher<EncodeCall, Vector>* encode_batcher() const {
    return encode_batcher_.get();
  }
  const Batcher<SearchCall, RetrievalResult>* search_batcher() const {
    return search_batcher_.get();
  }

 private:
  /// Per-session conversational state. `mu` serializes the session's
  /// turns (two queued turns of one session never interleave) and guards
  /// everything below it.
  struct ServerSession {
    uint64_t id = 0;
    Mutex mu;
    Coordinator::DialogueState dialogue MQA_GUARDED_BY(mu);
    std::vector<RetrievedItem> last_results MQA_GUARDED_BY(mu);
    std::optional<uint64_t> selected MQA_GUARDED_BY(mu);
    uint64_t turns MQA_GUARDED_BY(mu) = 0;
  };

  /// One admitted turn in the request queue.
  struct PendingTurn {
    std::shared_ptr<ServerSession> session;
    UserQuery query;
    AskCallback done;
    int64_t enqueue_micros = 0;
    int64_t deadline_micros = 0;  ///< 0 = none
  };

  Clock* clock() const {
    return options_.clock != nullptr ? options_.clock : SystemClock();
  }

  void InstallBatchers();
  void WorkerLoop();
  void RunTurn(PendingTurn turn);
  std::shared_ptr<ServerSession> FindSession(uint64_t session_id) const;

  std::unique_ptr<Coordinator> coordinator_;
  ServingOptions options_;
  CircuitBreaker breaker_;

  std::unique_ptr<Batcher<EncodeCall, Vector>> encode_batcher_;
  std::unique_ptr<Batcher<SearchCall, RetrievalResult>> search_batcher_;

  BoundedQueue<PendingTurn> queue_;

  mutable Mutex mu_;  ///< session map only; never held across a turn
  uint64_t next_session_id_ MQA_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, std::shared_ptr<ServerSession>> sessions_
      MQA_GUARDED_BY(mu_);
  bool shutdown_ MQA_GUARDED_BY(mu_) = false;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_breaker_{0};
  std::atomic<uint64_t> shed_deadline_{0};

  std::vector<std::thread> workers_;
};

}  // namespace mqa

#endif  // MQA_SERVER_SERVER_H_
