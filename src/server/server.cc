#include "server/server.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "vector/simd/simd.h"

namespace mqa {

namespace {

CircuitBreakerConfig MakeBreakerConfig(const ServingOptions& options) {
  CircuitBreakerConfig config;
  config.failure_threshold = options.breaker_failure_threshold;
  config.open_duration_ms = options.breaker_open_ms;
  config.half_open_successes = options.breaker_half_open_successes;
  return config;
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Create(const MqaConfig& config) {
  MQA_ASSIGN_OR_RETURN(std::unique_ptr<Coordinator> coordinator,
                       Coordinator::Create(config));
  return std::make_unique<Server>(std::move(coordinator), config.serving);
}

Server::Server(std::unique_ptr<Coordinator> coordinator,
               ServingOptions options)
    : coordinator_(std::move(coordinator)),
      options_(options),
      breaker_(MakeBreakerConfig(options), options.clock),
      queue_(std::max<size_t>(1, options.queue_capacity)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  // Surface the resolved kernel tier where operators look first: the
  // startup log and a gauge (0 = scalar, 1 = avx2, 2 = avx512).
  const SimdLevel simd = ActiveSimdLevel();
  MQA_LOG(Info) << "server: distance kernels at simd level "
                << SimdLevelName(simd);
  MetricsRegistry::Global()
      .GetGauge("server/simd_level")
      ->Set(static_cast<double>(static_cast<int>(simd)));
  InstallBatchers();
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() { Shutdown(); }

void Server::InstallBatchers() {
  QueryExecutor* executor = coordinator_->executor();
  RetrievalFramework* framework = coordinator_->framework();
  if (executor == nullptr || framework == nullptr) return;  // LLM-only mode
  const EncoderSet* encoders = &coordinator_->encoders();

  BatcherOptions batch_options;
  batch_options.max_batch = options_.enable_batching ? options_.max_batch : 1;
  batch_options.flush_slack_ms = options_.batch_flush_slack_ms;
  batch_options.clock = options_.clock;

  batch_options.name = "encode";
  encode_batcher_ = std::make_unique<Batcher<EncodeCall, Vector>>(
      batch_options, [encoders](const std::vector<EncodeCall>& batch) {
        return encoders->EncodeModalityBatch(batch);
      });

  batch_options.name = "search";
  search_batcher_ = std::make_unique<Batcher<SearchCall, RetrievalResult>>(
      batch_options, [framework](const std::vector<SearchCall>& batch) {
        // Sequential per-item execution inside the single flush thread:
        // batched results stay bit-identical to unbatched ones, and the
        // non-thread-safe framework only ever sees one caller.
        std::vector<Result<RetrievalResult>> out;
        out.reserve(batch.size());
        for (const SearchCall& call : batch) {
          out.push_back(framework->Retrieve(call.query, call.params));
        }
        return out;
      });

  auto hooks = std::make_shared<ExecutionHooks>();
  hooks->phase_begin = [this](ExecPhase phase) {
    (phase == ExecPhase::kEncode ? encode_batcher_->Enter()
                                 : search_batcher_->Enter());
  };
  hooks->phase_end = [this](ExecPhase phase) {
    (phase == ExecPhase::kEncode ? encode_batcher_->Exit()
                                 : search_batcher_->Exit());
  };
  hooks->encode = [this](size_t slot, const Payload& payload,
                         int64_t deadline_micros) {
    EncodeCall call;
    call.slot = slot;
    call.payload = payload;
    return encode_batcher_->Submit(std::move(call), deadline_micros);
  };
  hooks->search = [this](const RetrievalQuery& query,
                         const SearchParams& params, int64_t deadline_micros) {
    SearchCall call;
    call.query = query;
    call.params = params;
    return search_batcher_->Submit(std::move(call), deadline_micros);
  };
  executor->SetExecutionHooks(std::move(hooks));
  if (options_.clock != nullptr) executor->SetClock(options_.clock);
}

uint64_t Server::OpenSession() {
  auto session = std::make_shared<ServerSession>();
  MutexLock lock(&mu_);
  session->id = next_session_id_++;
  sessions_[session->id] = session;
  MetricsRegistry::Global().GetGauge("server/open_sessions")
      ->Set(static_cast<double>(sessions_.size()));
  return session->id;
}

Status Server::CloseSession(uint64_t session_id) {
  MutexLock lock(&mu_);
  if (sessions_.erase(session_id) == 0) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  MetricsRegistry::Global().GetGauge("server/open_sessions")
      ->Set(static_cast<double>(sessions_.size()));
  return Status::OK();
}

std::shared_ptr<Server::ServerSession> Server::FindSession(
    uint64_t session_id) const {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

Status Server::ResetSession(uint64_t session_id) {
  std::shared_ptr<ServerSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  MutexLock lock(&session->mu);
  session->dialogue.Clear();
  session->last_results.clear();
  session->selected.reset();
  return Status::OK();
}

Status Server::Select(uint64_t session_id, size_t rank) {
  std::shared_ptr<ServerSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  MutexLock lock(&session->mu);
  if (rank >= session->last_results.size()) {
    return Status::OutOfRange(
        "rank " + std::to_string(rank) + " out of range (last turn had " +
        std::to_string(session->last_results.size()) + " results)");
  }
  session->selected = session->last_results[rank].id;
  return Status::OK();
}

Result<std::vector<RetrievedItem>> Server::LastResults(
    uint64_t session_id) const {
  std::shared_ptr<ServerSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  MutexLock lock(&session->mu);
  return session->last_results;
}

Result<size_t> Server::DialogueHistorySize(uint64_t session_id) const {
  std::shared_ptr<ServerSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  MutexLock lock(&session->mu);
  return session->dialogue.prompt.history_size();
}

Status Server::Submit(uint64_t session_id, UserQuery query, AskCallback done) {
  std::shared_ptr<ServerSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.GetCounter("server/submitted")->Increment();

  // Overload policy step 1: the breaker sheds at the door while open.
  Status admitted = breaker_.Admit();
  if (!admitted.ok()) {
    shed_breaker_.fetch_add(1, std::memory_order_relaxed);
    metrics.GetCounter("server/shed_breaker")->Increment();
    return admitted;
  }

  PendingTurn turn;
  turn.session = std::move(session);
  turn.query = std::move(query);
  turn.done = std::move(done);
  turn.enqueue_micros = clock()->NowMicros();
  if (turn.query.deadline_micros > 0) {
    turn.deadline_micros = turn.query.deadline_micros;
  } else if (options_.default_deadline_ms > 0) {
    turn.deadline_micros =
        turn.enqueue_micros +
        static_cast<int64_t>(options_.default_deadline_ms * 1e3);
  }

  // Step 2: bounded queue — full means backpressure, not buffering. The
  // rejection also feeds the breaker: a full queue is the overload signal
  // that eventually trips it.
  if (!queue_.TryPush(std::move(turn))) {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    metrics.GetCounter("server/shed_queue_full")->Increment();
    breaker_.RecordFailure();
    return Status::ResourceExhausted("server request queue is full (capacity " +
                                     std::to_string(queue_.capacity()) + ")");
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  metrics.GetCounter("server/accepted")->Increment();
  metrics.GetGauge("server/queue_depth")
      ->Set(static_cast<double>(queue_.size()));
  return Status::OK();
}

Result<AnswerTurn> Server::Ask(uint64_t session_id, const UserQuery& query) {
  struct Waiter {
    Mutex mu;
    CondVar cv;
    bool done MQA_GUARDED_BY(mu) = false;
    Result<AnswerTurn> result MQA_GUARDED_BY(mu) =
        Status::Internal("turn still pending");
  };
  auto waiter = std::make_shared<Waiter>();
  MQA_RETURN_NOT_OK(Submit(session_id, query, [waiter](Result<AnswerTurn> r) {
    waiter->mu.Lock();
    waiter->result = std::move(r);
    waiter->done = true;
    waiter->mu.Unlock();
    waiter->cv.NotifyAll();
  }));
  waiter->mu.Lock();
  while (!waiter->done) waiter->cv.Wait(&waiter->mu);
  Result<AnswerTurn> out = std::move(waiter->result);
  waiter->mu.Unlock();
  return out;
}

void Server::WorkerLoop() {
  while (std::optional<PendingTurn> turn = queue_.Pop()) {
    RunTurn(std::move(*turn));
  }
}

void Server::RunTurn(PendingTurn turn) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const int64_t start_micros = clock()->NowMicros();
  metrics.GetHistogram("server/queue_wait_ms")
      ->Record(static_cast<double>(start_micros - turn.enqueue_micros) / 1e3);
  metrics.GetGauge("server/queue_depth")
      ->Set(static_cast<double>(queue_.size()));

  // Overload policy step 3: a turn whose deadline passed while it sat in
  // the queue is shed before any work is spent on it. This, too, feeds
  // the breaker — deadline expiry in the queue means the queue is longer
  // than the latency budget.
  if (turn.deadline_micros > 0 && start_micros >= turn.deadline_micros) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    metrics.GetCounter("server/shed_deadline")->Increment();
    breaker_.RecordFailure();
    turn.done(Status::DeadlineExceeded("turn deadline expired while queued"));
    return;
  }

  Result<AnswerTurn> result = Status::Internal("turn never ran");
  {
    ServerSession& session = *turn.session;
    // Holding the session mutex for the whole turn serializes turns
    // within one session (dialogue history must observe its own turns in
    // order) while turns of different sessions run concurrently.
    MutexLock session_lock(&session.mu);
    UserQuery query = std::move(turn.query);
    query.deadline_micros = turn.deadline_micros;
    if (!query.selected_object.has_value() && session.selected.has_value()) {
      query.selected_object = session.selected;  // the feedback loop
    }
    session.selected.reset();
    result = coordinator_->AskWithState(query, &session.dialogue);
    if (result.ok()) {
      session.last_results = result.Value().items;
      ++session.turns;
    }
  }

  metrics.GetHistogram("server/turn_latency_ms")
      ->Record(static_cast<double>(clock()->NowMicros() -
                                   turn.enqueue_micros) /
               1e3);
  if (result.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics.GetCounter("server/completed")->Increment();
    breaker_.RecordSuccess();
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
    metrics.GetCounter("server/failed")->Increment();
    // The breaker is strictly an *overload* signal: mid-flight deadline
    // expiry counts against it, any other application error proves the
    // serving plane itself is keeping up.
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      breaker_.RecordFailure();
    } else {
      breaker_.RecordSuccess();
    }
  }
  turn.done(std::move(result));
}

void Server::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  queue_.SetPaused(false);
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void Server::Suspend() { queue_.SetPaused(true); }

void Server::Resume() { queue_.SetPaused(false); }

ServerStatsSnapshot Server::stats() const {
  ServerStatsSnapshot out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  out.shed_breaker = shed_breaker_.load(std::memory_order_relaxed);
  out.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace mqa
