#ifndef MQA_SERVER_REQUEST_QUEUE_H_
#define MQA_SERVER_REQUEST_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/sync.h"

namespace mqa {

/// The server's admission-control primitive: a bounded MPMC queue that
/// *never blocks producers*. `TryPush` fails immediately when the queue is
/// at capacity (the caller surfaces kResourceExhausted — backpressure
/// instead of unbounded buffering), while consumers block in `Pop` until
/// an item or shutdown arrives.
///
/// `SetPaused(true)` parks consumers even when items are pending; the
/// overload tests use it to fill the queue deterministically without
/// racing the worker threads. `Close` overrides a pause so shutdown always
/// drains: pending items are still handed out, then every `Pop` returns
/// nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless full or closed. Never blocks.
  [[nodiscard]] bool TryPush(T item) {
    {
      MutexLock lock(&mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available (and the queue is not paused) or
  /// the queue is closed and drained; nullopt means "shut down, no more
  /// work ever".
  std::optional<T> Pop() {
    mu_.Lock();
    while (!closed_ && (items_.empty() || paused_)) cv_.Wait(&mu_);
    if (items_.empty()) {
      mu_.Unlock();
      return std::nullopt;
    }
    T out = std::move(items_.front());
    items_.pop_front();
    mu_.Unlock();
    return out;
  }

  /// Parks (or releases) consumers. Producers are unaffected.
  void SetPaused(bool paused) {
    {
      MutexLock lock(&mu_);
      paused_ = paused;
    }
    cv_.NotifyAll();
  }

  /// Rejects future pushes and wakes all consumers; already queued items
  /// are still drained by Pop.
  void Close() {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  size_t size() const {
    MutexLock lock(&mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ MQA_GUARDED_BY(mu_);
  bool paused_ MQA_GUARDED_BY(mu_) = false;
  bool closed_ MQA_GUARDED_BY(mu_) = false;
};

}  // namespace mqa

#endif  // MQA_SERVER_REQUEST_QUEUE_H_
