#include "graph/index_factory.h"

#include "common/timer.h"

namespace mqa {

Result<std::unique_ptr<VectorIndex>> CreateIndex(
    const IndexConfig& config, const VectorStore* store,
    std::unique_ptr<DistanceComputer> dist, BuildReport* report) {
  if (config.algorithm == "bruteforce") {
    if (report != nullptr) {
      *report = BuildReport{};
      report->algorithm = "bruteforce";
      report->connected = true;
    }
    return std::unique_ptr<VectorIndex>(
        std::make_unique<BruteForceIndex>(std::move(dist)));
  }
  if (config.algorithm == "hnsw") {
    Timer timer;
    MQA_ASSIGN_OR_RETURN(std::unique_ptr<HnswIndex> index,
                         HnswIndex::Build(config.hnsw, store,
                                          std::move(dist)));
    if (report != nullptr) {
      *report = BuildReport{};
      report->algorithm = "hnsw";
      report->total_seconds = timer.ElapsedSeconds();
      report->connected = true;
      report->max_degree = config.hnsw.m * 2;
      report->avg_degree =
          static_cast<double>(index->MemoryBytes() / sizeof(uint32_t)) /
          std::max<uint32_t>(1, index->size());
    }
    return std::unique_ptr<VectorIndex>(std::move(index));
  }
  if (config.algorithm == "starling") {
    // Disk-resident deployment: build the in-memory mqa-hybrid graph,
    // then pack it into blocks. The on-disk distance follows the source
    // computer's weighting (single uniform block for plain metrics).
    WeightedMultiDistance weighted = [&] {
      auto* multi = dynamic_cast<MultiVectorDistanceComputer*>(dist.get());
      if (multi != nullptr) return multi->weighted_distance();
      VectorSchema single;
      single.dims = {static_cast<uint32_t>(store->row_dim())};
      return std::move(WeightedMultiDistance::Create(single, {1.0f}))
          .Value();
    }();
    GraphBuildConfig graph_config = config.graph;
    graph_config.algorithm = "mqa-hybrid";
    MQA_ASSIGN_OR_RETURN(
        std::unique_ptr<GraphIndex> mem_index,
        BuildGraphIndex(graph_config, store, std::move(dist), report));
    Timer pack_timer;
    MQA_ASSIGN_OR_RETURN(
        std::unique_ptr<DiskGraphIndex> disk,
        DiskGraphIndex::Create(config.disk, *mem_index, *store,
                               std::move(weighted)));
    if (report != nullptr) {
      report->algorithm = "starling";
      report->total_seconds += pack_timer.ElapsedSeconds();
    }
    return std::unique_ptr<VectorIndex>(std::move(disk));
  }
  GraphBuildConfig graph_config = config.graph;
  graph_config.algorithm = config.algorithm;
  MQA_ASSIGN_OR_RETURN(std::unique_ptr<GraphIndex> index,
                       BuildGraphIndex(graph_config, store, std::move(dist),
                                       report));
  return std::unique_ptr<VectorIndex>(std::move(index));
}

std::vector<std::string> AllIndexAlgorithms() {
  std::vector<std::string> algos = GraphAlgorithms();
  algos.push_back("hnsw");
  algos.push_back("bruteforce");
  algos.push_back("starling");
  return algos;
}

}  // namespace mqa
