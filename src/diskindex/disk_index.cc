#include "diskindex/disk_index.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <queue>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace mqa {

namespace {

/// Process-wide mirrors of DiskIoStats. Resolved once (pointers are
/// stable), then each event costs one relaxed atomic add — FetchPage is
/// the hottest disk-path function, so no registry lookups happen per call.
struct DiskCounters {
  Counter* page_reads;
  Counter* cache_hits;
  Counter* io_errors;
  Counter* bytes_read;
};

const DiskCounters& GlobalDiskCounters() {
  static const DiskCounters kCounters = {
      MetricsRegistry::Global().GetCounter("diskindex/page_reads"),
      MetricsRegistry::Global().GetCounter("diskindex/cache_hits"),
      MetricsRegistry::Global().GetCounter("diskindex/io_errors"),
      MetricsRegistry::Global().GetCounter("diskindex/bytes_read"),
  };
  return kCounters;
}

}  // namespace

Result<std::unique_ptr<DiskGraphIndex>> DiskGraphIndex::Create(
    const DiskIndexConfig& config, const GraphIndex& mem_index,
    const VectorStore& store, WeightedMultiDistance weighted) {
  if (mem_index.size() != store.size()) {
    return Status::InvalidArgument("graph and store sizes differ");
  }
  if (mem_index.size() == 0) {
    return Status::FailedPrecondition("empty source index");
  }
  if (config.layout != "id" && config.layout != "bfs") {
    return Status::InvalidArgument("unknown layout: " + config.layout);
  }
  if (weighted.schema().TotalDim() != store.row_dim()) {
    return Status::InvalidArgument("distance schema does not match store");
  }

  std::unique_ptr<DiskGraphIndex> index(
      new DiskGraphIndex(config, std::move(weighted)));
  const AdjacencyGraph& graph = mem_index.graph();
  const uint32_t n = graph.num_nodes();
  index->num_nodes_ = n;
  index->dim_ = store.row_dim();
  index->max_degree_ = std::max<uint32_t>(1, graph.MaxDegree());
  index->entry_points_ = mem_index.entry_points();

  // Fixed-size record: [degree u32][neighbors: max_degree u32][vector].
  index->record_size_ = sizeof(uint32_t) * (1 + index->max_degree_) +
                        sizeof(float) * index->dim_;
  if (index->record_size_ > config.page_size) {
    return Status::InvalidArgument(
        "node record does not fit in one page; increase page_size");
  }
  index->nodes_per_page_ =
      std::max<size_t>(1, config.page_size / index->record_size_);
  index->num_pages_ =
      (n + index->nodes_per_page_ - 1) / index->nodes_per_page_;

  // Packing order.
  index->slot_to_node_.reserve(n);
  if (config.layout == "id") {
    for (uint32_t u = 0; u < n; ++u) index->slot_to_node_.push_back(u);
  } else {
    // BFS from the entry point: neighborhoods become block-adjacent.
    std::vector<bool> seen(n, false);
    std::queue<uint32_t> frontier;
    const uint32_t start =
        index->entry_points_.empty() ? 0 : index->entry_points_[0];
    frontier.push(start);
    seen[start] = true;
    while (!frontier.empty()) {
      const uint32_t u = frontier.front();
      frontier.pop();
      index->slot_to_node_.push_back(u);
      for (uint32_t v : graph.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          frontier.push(v);
        }
      }
    }
    for (uint32_t u = 0; u < n; ++u) {
      if (!seen[u]) index->slot_to_node_.push_back(u);
    }
  }
  index->node_to_slot_.resize(n);
  for (uint32_t slot = 0; slot < n; ++slot) {
    index->node_to_slot_[index->slot_to_node_[slot]] = slot;
  }

  // In-memory navigation sample (deterministic spread over the packing
  // order, so pivots cover the whole graph).
  if (config.memory_pivots > 0) {
    const uint32_t pivots = std::min(config.memory_pivots, n);
    index->pivot_ids_.reserve(pivots);
    index->pivot_vectors_.reserve(static_cast<size_t>(pivots) * index->dim_);
    for (uint32_t i = 0; i < pivots; ++i) {
      const uint32_t slot =
          static_cast<uint32_t>(static_cast<uint64_t>(i) * n / pivots);
      const uint32_t node = index->slot_to_node_[slot];
      index->pivot_ids_.push_back(node);
      const float* v = store.data(node);
      index->pivot_vectors_.insert(index->pivot_vectors_.end(), v,
                                   v + index->dim_);
    }
  }

  // Write records to the simulated device.
  index->disk_.assign(index->num_pages_ * config.page_size, 0);
  for (uint32_t slot = 0; slot < n; ++slot) {
    const uint32_t u = index->slot_to_node_[slot];
    const size_t page = slot / index->nodes_per_page_;
    const size_t off_in_page =
        (slot % index->nodes_per_page_) * index->record_size_;
    char* rec = index->disk_.data() + page * config.page_size + off_in_page;
    const auto& nbrs = graph.neighbors(u);
    const uint32_t degree = static_cast<uint32_t>(nbrs.size());
    std::memcpy(rec, &degree, sizeof(uint32_t));
    std::memcpy(rec + sizeof(uint32_t), nbrs.data(),
                degree * sizeof(uint32_t));
    std::memcpy(rec + sizeof(uint32_t) * (1 + index->max_degree_),
                store.data(u), index->dim_ * sizeof(float));
  }
  return index;
}

const char* DiskGraphIndex::FetchPage(size_t page, QueryIoState* io) {
  {
    MutexLock lock(&cache_mu_);
    auto it = cached_.find(page);
    if (it != cached_.end()) {
      // Move to the front of the recency list.
      lru_.splice(lru_.begin(), lru_, it->second);
      io_stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      GlobalDiskCounters().cache_hits->Increment();
      io->last_was_cached = true;
      return disk_.data() + page * config_.page_size;
    }
  }
  io->last_was_cached = false;
  // Budget exhausted: serve cache-only, never pay for another read.
  if (io->cache_only) return nullptr;
  // The simulated device read; the "diskindex/read_page" fault point makes
  // it fail. A failed read is charged against the query's error budget and
  // the page is simply not delivered — the caller routes around it.
  //
  // Deliberately OUTSIDE cache_mu_ (the static lock auditor's
  // wait-while-locked rule enforces this): an injected latency spike
  // sleeps through the Clock, and holding the cache lock across it would
  // serialize every concurrent query behind one slow read.
  if (FaultInjector::Global().enabled()) {
    const Status st = FaultInjector::Global().Check("diskindex/read_page");
    if (!st.ok()) {
      io_stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      GlobalDiskCounters().io_errors->Increment();
      ++io->errors;
      if (io->errors > config_.io_error_budget) io->cache_only = true;
      return nullptr;
    }
  }
  io_stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
  io_stats_.bytes_read.fetch_add(config_.page_size,
                                 std::memory_order_relaxed);
  GlobalDiskCounters().page_reads->Increment();
  GlobalDiskCounters().bytes_read->Increment(config_.page_size);
  MutexLock lock(&cache_mu_);
  auto it = cached_.find(page);
  if (it == cached_.end()) {
    lru_.push_front(page);
    cached_[page] = lru_.begin();
    if (cached_.size() > config_.cache_pages) {
      cached_.erase(lru_.back());
      lru_.pop_back();
    }
  } else {
    // Another query read the same page while we were off the lock: both
    // paid a device read (as real concurrent misses would); just refresh
    // its recency.
    lru_.splice(lru_.begin(), lru_, it->second);
  }
  return disk_.data() + page * config_.page_size;
}

DiskGraphIndex::NodeRecord DiskGraphIndex::ReadRecord(
    uint32_t node, const char* page_data) const {
  const uint32_t slot = node_to_slot_[node];
  const size_t off = (slot % nodes_per_page_) * record_size_;
  const char* rec = page_data + off;
  NodeRecord out;
  std::memcpy(&out.degree, rec, sizeof(uint32_t));
  out.neighbors = reinterpret_cast<const uint32_t*>(rec + sizeof(uint32_t));
  out.vector = reinterpret_cast<const float*>(
      rec + sizeof(uint32_t) * (1 + max_degree_));
  return out;
}

Result<std::vector<Neighbor>> DiskGraphIndex::Search(
    const float* query, const SearchParams& params, SearchStats* stats) {
  Span span("diskindex/search");
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (num_nodes_ == 0) return Status::FailedPrecondition("empty index");
  const size_t beam_width = std::max(params.beam_width, params.k);

  std::vector<bool> visited(num_nodes_, false);
  // Distances already computed for visited nodes (block-aware scoring).
  std::vector<float> known_dist(num_nodes_, 0.0f);

  auto cand_greater = [](const Neighbor& a, const Neighbor& b) {
    return NeighborLess(b, a);
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(cand_greater)>
      frontier(cand_greater);
  TopK beam(beam_width);
  TopK admitted(params.k);

  // The traversal counts into a local block; the caller's accumulator gets
  // one SearchStats::Merge at the end (same rule the sharded fan-out uses).
  SearchStats local;

  auto score = [&](uint32_t node, const char* page_data) {
    const NodeRecord rec = ReadRecord(node, page_data);
    const float d = weighted_.Exact(query, rec.vector);
    ++local.dist_comps;
    visited[node] = true;
    known_dist[node] = d;
    frontier.push({d, node});
    beam.Push(d, node);
    if (params.filter && params.filter(node)) admitted.Push(d, node);
  };

  QueryIoState io;

  if (!pivot_ids_.empty()) {
    // In-memory navigation: scan the RAM pivots (no I/O) and start the
    // on-disk traversal from the closest few. The pivot table is one
    // contiguous row-major block, so the whole rerank scan goes through the
    // batched kernel, which prefetches each next pivot row.
    TopK best_pivots(4);
    std::vector<float> pivot_dists(pivot_ids_.size());
    weighted_.ExactBatch(query, pivot_vectors_.data(), dim_,
                         pivot_ids_.size(), pivot_dists.data());
    for (size_t i = 0; i < pivot_ids_.size(); ++i) {
      ++local.dist_comps;
      best_pivots.Push(pivot_dists[i], pivot_ids_[i]);
    }
    for (const Neighbor& p : best_pivots.TakeSorted()) {
      if (visited[p.id]) continue;
      const size_t page = node_to_slot_[p.id] / nodes_per_page_;
      const char* page_data = FetchPage(page, &io);
      if (page_data != nullptr) score(p.id, page_data);
    }
  }
  for (uint32_t e : entry_points_) {
    if (e >= num_nodes_ || visited[e]) continue;
    const size_t page = node_to_slot_[e] / nodes_per_page_;
    const char* page_data = FetchPage(page, &io);
    if (page_data != nullptr) score(e, page_data);
  }
  // An unlucky fault schedule can fail every seed read, leaving the
  // traversal with no start. Probe successive nodes until a page arrives
  // or the error budget degrades the query to cache-only. (Unreachable
  // without injected faults: a healthy device always delivers the seeds.)
  for (uint32_t n = 0; frontier.empty() && n < num_nodes_ && !io.cache_only;
       ++n) {
    const size_t page = node_to_slot_[n] / nodes_per_page_;
    const char* page_data = FetchPage(page, &io);
    if (page_data != nullptr) score(n, page_data);
  }

  while (!frontier.empty()) {
    const Neighbor current = frontier.top();
    frontier.pop();
    if (beam.Full() && current.distance > beam.WorstDistance()) break;
    ++local.hops;

    const size_t page = node_to_slot_[current.id] / nodes_per_page_;
    const char* page_data = FetchPage(page, &io);
    // The page holding the current node failed to read: route around it by
    // skipping its expansion. (Its own distance is already in the beam.)
    if (page_data == nullptr) continue;
    const NodeRecord rec = ReadRecord(current.id, page_data);

    // Block-aware search: a freshly fetched block's co-located nodes are
    // scored for free.
    if (config_.block_aware_search && !io.last_was_cached) {
      const size_t first_slot = page * nodes_per_page_;
      const size_t last_slot =
          std::min<size_t>(first_slot + nodes_per_page_, num_nodes_);
      for (size_t slot = first_slot; slot < last_slot; ++slot) {
        const uint32_t node = slot_to_node_[slot];
        if (!visited[node]) score(node, page_data);
      }
    }

    for (uint32_t i = 0; i < rec.degree; ++i) {
      const uint32_t nbr = rec.neighbors[i];
      if (nbr >= num_nodes_ || visited[nbr]) continue;
      const size_t nbr_page = node_to_slot_[nbr] / nodes_per_page_;
      const char* nbr_data = FetchPage(nbr_page, &io);
      if (nbr_data != nullptr) score(nbr, nbr_data);
    }
  }

  std::vector<Neighbor> results =
      params.filter ? admitted.TakeSorted() : beam.TakeSorted();
  if (results.size() > params.k) results.resize(params.k);
  local.io_errors = io.errors;
  local.partial = io.cache_only || (results.empty() && io.errors > 0);
  if (stats != nullptr) stats->Merge(local);
  return results;
}

void DiskGraphIndex::ClearCache() {
  MutexLock lock(&cache_mu_);
  lru_.clear();
  cached_.clear();
}

}  // namespace mqa
