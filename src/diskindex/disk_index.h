#ifndef MQA_DISKINDEX_DISK_INDEX_H_
#define MQA_DISKINDEX_DISK_INDEX_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "graph/index.h"
#include "graph/search.h"
#include "vector/multi_distance.h"
#include "vector/vector_store.h"

namespace mqa {

/// Configuration of the disk-resident graph index (Starling stand-in).
struct DiskIndexConfig {
  size_t page_size = 4096;   ///< block size in bytes
  size_t cache_pages = 64;   ///< LRU page-cache capacity
  /// Block layout: "id" stores nodes in id order (the naive baseline);
  /// "bfs" packs BFS-adjacent nodes into the same block so that graph
  /// neighborhoods are co-located (Starling's block-layout idea).
  std::string layout = "bfs";
  /// When true, every node co-located in a fetched block is evaluated
  /// "for free" (Starling's block-aware search).
  bool block_aware_search = true;
  /// Size of the in-memory navigation sample (Starling's in-memory
  /// navigation graph, reduced to its essence): that many node vectors are
  /// kept in RAM and scanned I/O-free at query start, and the best ones
  /// seed the on-disk traversal much closer to the answer. 0 disables.
  uint32_t memory_pivots = 0;
  /// Resilience: failed page reads tolerated per query (fault point
  /// "diskindex/read_page"). While failures stay within the budget, the
  /// failing page is skipped and the traversal routes around it; once the
  /// budget is exceeded the query stops paying for new reads and serves
  /// cache-only partial results, flagged in SearchStats::partial.
  uint64_t io_error_budget = 8;
};

/// Cumulative I/O counters of a DiskGraphIndex. Atomic (mirroring
/// DistanceStats): concurrent queries through one shared index bump these
/// from multiple threads; relaxed ordering suffices for counters, and the
/// totals are exact once searches quiesce.
struct DiskIoStats {
  std::atomic<uint64_t> page_reads{0};  ///< cache misses = disk reads
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> io_errors{0};   ///< injected/failed page reads

  DiskIoStats() = default;
  DiskIoStats(const DiskIoStats& other) { CopyFrom(other); }
  DiskIoStats& operator=(const DiskIoStats& other) {
    CopyFrom(other);
    return *this;
  }

  void Reset() {
    page_reads = 0;
    cache_hits = 0;
    bytes_read = 0;
    io_errors = 0;
  }

 private:
  void CopyFrom(const DiskIoStats& other) {
    page_reads.store(other.page_reads.load());
    cache_hits.store(other.cache_hits.load());
    bytes_read.store(other.bytes_read.load());
    io_errors.store(other.io_errors.load());
  }
};

/// A disk-resident navigation-graph index: every node's record (vector +
/// adjacency list) lives in a fixed-size block on a simulated block
/// device; queries run beam search, paying one page read per cache miss.
/// Reproduces the system behaviour Starling optimizes: the number of page
/// reads — not distance computations — dominates query latency on disk.
class DiskGraphIndex : public VectorIndex {
 public:
  /// Packs an in-memory graph index (graph + vectors) into pages.
  /// `weighted` defines the distance over the on-disk vectors. The source
  /// index and store are only read during construction.
  static Result<std::unique_ptr<DiskGraphIndex>> Create(
      const DiskIndexConfig& config, const GraphIndex& mem_index,
      const VectorStore& store, WeightedMultiDistance weighted);

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params,
                                       SearchStats* stats) override;

  std::string name() const override { return "disk-" + config_.layout; }
  uint32_t size() const override { return num_nodes_; }
  uint64_t MemoryBytes() const override {
    return config_.cache_pages * config_.page_size +
           pivot_vectors_.size() * sizeof(float);
  }

  const DiskIoStats& io_stats() const { return io_stats_; }
  void ResetIoStats() { io_stats_.Reset(); }

  /// Replaces the modality weights of the on-disk distance (query-time
  /// weight adjustment).
  Status SetWeights(std::vector<float> weights) {
    return weighted_.SetWeights(std::move(weights));
  }
  const WeightedMultiDistance& weighted_distance() const {
    return weighted_;
  }

  /// Drops all cached pages (e.g. between benchmark phases).
  void ClearCache() MQA_EXCLUDES(cache_mu_);

  size_t num_pages() const { return num_pages_; }
  size_t nodes_per_page() const { return nodes_per_page_; }

  /// Modeled query latency for `stats` page reads, with the given per-read
  /// device latency (SSD 4K random read ~ 100 us).
  static double ModeledLatencyMs(uint64_t page_reads,
                                 double read_latency_us = 100.0) {
    return page_reads * read_latency_us / 1000.0;
  }

 private:
  struct NodeRecord {
    const float* vector;
    const uint32_t* neighbors;
    uint32_t degree;
  };

  /// Per-query I/O state: error budget consumption and degradation flags.
  struct QueryIoState {
    uint64_t errors = 0;       ///< failed page reads this query
    bool cache_only = false;   ///< budget exceeded; no new reads paid for
    bool last_was_cached = false;
  };

  DiskGraphIndex(DiskIndexConfig config, WeightedMultiDistance weighted)
      : config_(std::move(config)), weighted_(std::move(weighted)) {}

  /// Page access through the LRU cache; counts a read on miss. Returns
  /// nullptr when the (simulated) read failed via the
  /// "diskindex/read_page" fault point or when the query's I/O error
  /// budget is exhausted and the page is not cached (cache-only serving).
  /// Thread-safe: the cache is guarded by cache_mu_, so read-only queries
  /// may run concurrently on a shared index. The (possibly latency-
  /// injecting) simulated device read happens with cache_mu_ RELEASED, so
  /// one slow read never stalls concurrent cache hits.
  const char* FetchPage(size_t page, QueryIoState* io)
      MQA_EXCLUDES(cache_mu_);

  NodeRecord ReadRecord(uint32_t node, const char* page_data) const;

  DiskIndexConfig config_;
  WeightedMultiDistance weighted_;

  uint32_t num_nodes_ = 0;
  size_t dim_ = 0;
  uint32_t max_degree_ = 0;
  size_t record_size_ = 0;
  size_t nodes_per_page_ = 0;
  size_t num_pages_ = 0;
  std::vector<uint32_t> entry_points_;

  std::vector<uint32_t> node_to_slot_;   // node -> packed position
  std::vector<uint32_t> slot_to_node_;   // packed position -> node

  // In-memory navigation sample: pivot ids + their vectors (RAM copies).
  std::vector<uint32_t> pivot_ids_;
  std::vector<float> pivot_vectors_;  // row-major, dim_ floats per pivot

  std::vector<char> disk_;  // the simulated block device

  // LRU page cache: page id -> iterator into the recency list. Guarded by
  // cache_mu_ so concurrent queries on a shared index are safe; page
  // *contents* live in the immutable disk_ image, so returned pointers
  // stay valid across evictions.
  mutable Mutex cache_mu_;
  std::list<size_t> lru_ MQA_GUARDED_BY(cache_mu_);
  std::unordered_map<size_t, std::list<size_t>::iterator> cached_
      MQA_GUARDED_BY(cache_mu_);

  DiskIoStats io_stats_;
};

}  // namespace mqa

#endif  // MQA_DISKINDEX_DISK_INDEX_H_
