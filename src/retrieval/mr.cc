#include "retrieval/mr.h"

#include <unordered_set>

#include "vector/distance.h"

namespace mqa {

Result<std::unique_ptr<MrFramework>> MrFramework::Create(
    std::shared_ptr<const VectorStore> corpus, std::vector<float> weights,
    const IndexConfig& index_config, size_t candidate_factor) {
  if (corpus == nullptr || corpus->size() == 0) {
    return Status::InvalidArgument("empty corpus");
  }
  if (candidate_factor == 0) {
    return Status::InvalidArgument("candidate_factor must be > 0");
  }
  weights = NormalizeWeights(std::move(weights));
  if (weights.size() != corpus->schema().num_modalities()) {
    return Status::InvalidArgument("weights do not match corpus schema");
  }

  std::unique_ptr<MrFramework> fw(new MrFramework());
  fw->corpus_ = std::move(corpus);
  fw->weights_ = std::move(weights);
  fw->candidate_factor_ = candidate_factor;

  const size_t num_m = fw->corpus_->schema().num_modalities();
  for (size_t m = 0; m < num_m; ++m) {
    MQA_ASSIGN_OR_RETURN(VectorStore sliced,
                         SlicePerModality(*fw->corpus_, m));
    auto store = std::make_unique<VectorStore>(std::move(sliced));
    auto dist =
        std::make_unique<FlatDistanceComputer>(store.get(), Metric::kL2);
    MQA_ASSIGN_OR_RETURN(
        std::unique_ptr<VectorIndex> index,
        CreateIndex(index_config, store.get(), std::move(dist)));
    fw->stores_.push_back(std::move(store));
    fw->indexes_.push_back(std::move(index));
  }
  return fw;
}

Result<RetrievalResult> MrFramework::Retrieve(const RetrievalQuery& query,
                                              const SearchParams& params) {
  const VectorSchema& s = schema();
  if (query.modalities.parts.size() != s.num_modalities()) {
    return Status::InvalidArgument("query modality count mismatch");
  }
  const std::vector<float>& w =
      query.weights.empty() ? weights_ : query.weights;
  if (w.size() != s.num_modalities()) {
    return Status::InvalidArgument("query weights size mismatch");
  }

  RetrievalResult result;
  // Clock-based timing: see MustFramework::Retrieve.
  const int64_t start_micros = clock()->NowMicros();

  // Stage 1: independent per-modality searches. The tombstone filter is
  // applied here (per stream) so a deleted object never even reaches the
  // merge stage.
  std::unordered_set<uint32_t> candidates;
  SearchParams per_modality = WithoutTombstones(params);
  per_modality.k = params.k * candidate_factor_;
  per_modality.beam_width =
      std::max(params.beam_width, per_modality.k);
  std::vector<size_t> present;
  for (size_t m = 0; m < s.num_modalities(); ++m) {
    const Vector& part = query.modalities.parts[m];
    if (part.empty()) continue;
    if (part.size() != s.dims[m]) {
      return Status::InvalidArgument("query modality dimension mismatch");
    }
    present.push_back(m);
    MQA_ASSIGN_OR_RETURN(
        std::vector<Neighbor> hits,
        indexes_[m]->Search(part.data(), per_modality, &result.stats));
    for (const Neighbor& n : hits) candidates.insert(n.id);
  }
  if (present.empty()) {
    return Status::InvalidArgument("query has no present modality");
  }

  // Stage 2: merge — re-score the union with the weighted sum of
  // per-modality distances over the *present* modalities. The candidate
  // set is materialized so the next candidate's per-modality rows can be
  // prefetched while the current one is being reduced.
  TopK topk(params.k);
  std::vector<uint32_t> cand_list(candidates.begin(), candidates.end());
  for (size_t c = 0; c < cand_list.size(); ++c) {
    if (c + 1 < cand_list.size()) {
      for (size_t m : present) {
        PrefetchRead(stores_[m]->data(cand_list[c + 1]));
      }
    }
    const uint32_t id = cand_list[c];
    float fused = 0.0f;
    for (size_t m : present) {
      const Vector& part = query.modalities.parts[m];
      fused += w[m] * L2Sq(part.data(), stores_[m]->data(id),
                           s.dims[m]);
      ++result.stats.dist_comps;
    }
    topk.Push(fused, id);
  }
  result.neighbors = topk.TakeSorted();
  result.latency_ms =
      static_cast<double>(clock()->NowMicros() - start_micros) / 1e3;
  return result;
}

Status MrFramework::SetWeights(std::vector<float> weights) {
  if (weights.size() != schema().num_modalities()) {
    return Status::InvalidArgument("weights do not match corpus schema");
  }
  weights_ = NormalizeWeights(std::move(weights));
  return Status::OK();
}

Status MrFramework::Remove(uint32_t id) {
  return MarkRemoved(id, corpus_->size());
}

}  // namespace mqa
