#ifndef MQA_RETRIEVAL_MR_H_
#define MQA_RETRIEVAL_MR_H_

#include <memory>
#include <vector>

#include "retrieval/framework.h"

namespace mqa {

/// The Multi-streamed Retrieval baseline (Milvus-style): one standalone
/// vector index per modality. A query searches every present modality
/// independently, unions the candidate lists, re-scores the union with the
/// (uniform) weighted sum of per-modality distances, and returns the top-k.
/// Its known weakness — reproduced here — is that the true multi-modal
/// nearest neighbors may appear in no single modality's candidate list.
class MrFramework : public RetrievalFramework {
 public:
  /// `candidate_factor` scales how many candidates each per-modality
  /// search contributes (k * factor).
  static Result<std::unique_ptr<MrFramework>> Create(
      std::shared_ptr<const VectorStore> corpus, std::vector<float> weights,
      const IndexConfig& index_config, size_t candidate_factor = 3);

  Result<RetrievalResult> Retrieve(const RetrievalQuery& query,
                                   const SearchParams& params) override;

  std::string name() const override { return "mr"; }
  const VectorSchema& schema() const override { return corpus_->schema(); }
  const std::vector<float>& weights() const override { return weights_; }
  Status SetWeights(std::vector<float> weights) override;

  /// Tombstones `id` across every per-modality stream.
  Status Remove(uint32_t id) override;

 private:
  MrFramework() = default;

  std::shared_ptr<const VectorStore> corpus_;
  std::vector<float> weights_;
  size_t candidate_factor_ = 3;
  std::vector<std::unique_ptr<VectorStore>> stores_;   // per modality
  std::vector<std::unique_ptr<VectorIndex>> indexes_;  // per modality
};

}  // namespace mqa

#endif  // MQA_RETRIEVAL_MR_H_
