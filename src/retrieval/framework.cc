#include "retrieval/framework.h"

#include "encoder/encoder.h"

namespace mqa {

Result<VectorStore> SlicePerModality(const VectorStore& multi, size_t slot) {
  const VectorSchema& schema = multi.schema();
  if (slot >= schema.num_modalities()) {
    return Status::OutOfRange("modality slot out of range");
  }
  VectorSchema single;
  single.dims = {schema.dims[slot]};
  const size_t offset = schema.OffsetOf(slot);
  VectorStore out(single);
  out.Reserve(multi.size());
  Vector row(schema.dims[slot]);
  for (uint32_t i = 0; i < multi.size(); ++i) {
    const float* src = multi.data(i) + offset;
    row.assign(src, src + schema.dims[slot]);
    MQA_RETURN_NOT_OK(out.Add(row).status());
  }
  return out;
}

Result<VectorStore> FuseJointStore(const VectorStore& multi) {
  const VectorSchema& schema = multi.schema();
  const uint32_t dim = schema.dims[0];
  for (uint32_t d : schema.dims) {
    if (d != dim) {
      return Status::FailedPrecondition(
          "joint embedding requires aligned per-modality dimensions");
    }
  }
  VectorSchema single;
  single.dims = {dim};
  VectorStore out(single);
  out.Reserve(multi.size());
  for (uint32_t i = 0; i < multi.size(); ++i) {
    MultiVector mv;
    const float* src = multi.data(i);
    for (size_t m = 0; m < schema.num_modalities(); ++m) {
      mv.parts.emplace_back(src + m * dim, src + (m + 1) * dim);
    }
    MQA_RETURN_NOT_OK(out.Add(FuseJoint(mv)).status());
  }
  return out;
}

void CrossModalFill(MultiVector* query) {
  // Plain (unnormalized) mean of the present parts, so that with a single
  // present modality the fill is an exact copy and low-energy signals are
  // not inflated.
  size_t dim = 0;
  size_t used = 0;
  for (const Vector& part : query->parts) {
    if (part.empty()) continue;
    if (dim == 0) {
      dim = part.size();
    } else if (part.size() != dim) {
      return;  // misaligned spaces: nothing sensible to fill with
    }
    ++used;
  }
  if (used == 0) return;
  Vector mean(dim, 0.0f);
  for (const Vector& part : query->parts) {
    if (part.empty()) continue;
    for (size_t d = 0; d < dim; ++d) mean[d] += part[d];
  }
  for (auto& x : mean) x /= static_cast<float>(used);
  for (Vector& part : query->parts) {
    if (part.empty()) part = mean;
  }
}

std::vector<float> NormalizeWeights(std::vector<float> weights) {
  double sum = 0.0;
  for (auto& w : weights) {
    if (w < 0.0f) w = 0.0f;
    sum += w;
  }
  const float target = static_cast<float>(weights.size());
  if (sum <= 0.0) {
    for (auto& w : weights) w = 1.0f;
    return weights;
  }
  for (auto& w : weights) {
    w = static_cast<float>(w * target / sum);
  }
  return weights;
}

}  // namespace mqa
