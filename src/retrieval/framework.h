#ifndef MQA_RETRIEVAL_FRAMEWORK_H_
#define MQA_RETRIEVAL_FRAMEWORK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/tombstones.h"
#include "common/topk.h"
#include "graph/index.h"
#include "graph/index_factory.h"
#include "vector/vector_store.h"
#include "vector/vector_types.h"

namespace mqa {

/// A multi-modal query after encoding: one embedding per modality slot.
/// An empty part means the modality is absent from this query (e.g. a
/// text-only round has no image part). `weights` optionally overrides the
/// framework's default modality weights (same length as the schema);
/// absent modalities are forced to weight 0 regardless.
struct RetrievalQuery {
  MultiVector modalities;
  std::vector<float> weights;
  /// Absolute deadline in the framework clock's epoch (0 = none). Flows
  /// from UserQuery through the executor and batching hooks; the sharded
  /// layer derives per-shard deadline slices from it.
  int64_t deadline_micros = 0;
};

/// What a retrieval round returns.
struct RetrievalResult {
  std::vector<Neighbor> neighbors;  ///< ascending distance
  SearchStats stats;
  double latency_ms = 0.0;
};

/// A pluggable multi-modal retrieval framework (the paper compares MUST,
/// MR and JE). Implementations own their derived vector stores and
/// indexes; the shared encoded corpus outlives them via shared_ptr.
class RetrievalFramework {
 public:
  virtual ~RetrievalFramework() = default;

  /// Executes one retrieval round. Not thread-safe (search statistics and
  /// weight overrides mutate internal state).
  virtual Result<RetrievalResult> Retrieve(const RetrievalQuery& query,
                                           const SearchParams& params) = 0;

  virtual std::string name() const = 0;

  /// The modality schema of queries this framework accepts.
  virtual const VectorSchema& schema() const = 0;

  /// Current default modality weights.
  virtual const std::vector<float>& weights() const = 0;

  /// Replaces the default modality weights (no index rebuild; the graph
  /// geometry stays as built, as in the real system's query-time weight
  /// adjustment).
  virtual Status SetWeights(std::vector<float> weights) = 0;

  /// Tombstones one corpus id: it stops appearing in results immediately,
  /// while its graph node keeps navigating traffic until compaction
  /// rewrites the index (deleting nodes eagerly would tear the navigation
  /// graph's connectivity). Default: deletion unsupported.
  virtual Status Remove(uint32_t id) {
    (void)id;
    return Status::Unimplemented("framework '" + name() +
                                 "' does not support deletion");
  }

  size_t num_tombstones() const { return tombstones_.count(); }

 protected:
  /// Bounds- and double-delete-checked tombstoning against the corpus
  /// size; concrete frameworks call this from their Remove override.
  Status MarkRemoved(uint32_t id, uint64_t corpus_size) {
    return tombstones_.Mark(id, corpus_size);
  }

  /// Composes the caller's filter with the tombstone check. Passes
  /// `params` through untouched when nothing is deleted, so the common
  /// path allocates no std::function.
  SearchParams WithoutTombstones(const SearchParams& params) const {
    if (!tombstones_.any()) return params;
    SearchParams filtered = params;
    const TombstoneSet* dead = &tombstones_;
    if (params.filter) {
      SearchFilter user = params.filter;
      filtered.filter = [dead, user](uint32_t id) {
        return !dead->IsDeleted(id) && user(id);
      };
    } else {
      filtered.filter = [dead](uint32_t id) { return !dead->IsDeleted(id); };
    }
    return filtered;
  }

  void ClearTombstones() { tombstones_.Clear(); }
  const TombstoneSet& tombstones() const { return tombstones_; }

 public:
  /// Installs the time source for `RetrievalResult::latency_ms` and
  /// deadline math (null = the real SystemClock). Tests install a
  /// MockClock so injected latency spikes are visible in retrieval
  /// timings; the sharded layer propagates its clock to every shard.
  virtual void SetClock(Clock* clock) { clock_ = clock; }

 protected:
  /// The effective time source (never null).
  Clock* clock() const { return clock_ != nullptr ? clock_ : SystemClock(); }

 private:
  Clock* clock_ = nullptr;
  TombstoneSet tombstones_;
};

/// Copies one modality block of every row into a standalone store.
Result<VectorStore> SlicePerModality(const VectorStore& multi, size_t slot);

/// Builds the joint-embedding store: every row becomes the normalized mean
/// of its modality blocks (requires all blocks to share one dimension).
Result<VectorStore> FuseJointStore(const VectorStore& multi);

/// Normalizes weights so that present entries are nonnegative and sum to
/// the number of modalities; zero-sum input becomes uniform.
std::vector<float> NormalizeWeights(std::vector<float> weights);

/// Cross-modal query projection: fills every absent modality part with the
/// normalized mean of the present parts. Valid when the encoders embed all
/// modalities into one aligned space (the sim-clip presets) — it is how a
/// text-only query searches image blocks ("transforms descriptive text
/// into visuals"). No-op when nothing is absent, nothing is present, or
/// the present parts disagree in dimension.
void CrossModalFill(MultiVector* query);

}  // namespace mqa

#endif  // MQA_RETRIEVAL_FRAMEWORK_H_
