#include "retrieval/factory.h"

#include "retrieval/je.h"
#include "retrieval/mr.h"
#include "retrieval/must.h"

namespace mqa {

Result<std::unique_ptr<RetrievalFramework>> CreateRetrievalFramework(
    const std::string& name, std::shared_ptr<const VectorStore> corpus,
    std::vector<float> weights, const IndexConfig& index_config,
    BuildReport* report) {
  if (name == "must") {
    MQA_ASSIGN_OR_RETURN(
        std::unique_ptr<MustFramework> fw,
        MustFramework::Create(std::move(corpus), std::move(weights),
                              index_config, /*enable_pruning=*/true, report));
    return std::unique_ptr<RetrievalFramework>(std::move(fw));
  }
  if (name == "mr") {
    MQA_ASSIGN_OR_RETURN(std::unique_ptr<MrFramework> fw,
                         MrFramework::Create(std::move(corpus),
                                             std::move(weights),
                                             index_config));
    if (report != nullptr) {
      *report = BuildReport{};
      report->algorithm = index_config.algorithm + " (per modality)";
    }
    return std::unique_ptr<RetrievalFramework>(std::move(fw));
  }
  if (name == "je") {
    MQA_ASSIGN_OR_RETURN(std::unique_ptr<JeFramework> fw,
                         JeFramework::Create(std::move(corpus),
                                             index_config));
    if (report != nullptr) {
      *report = BuildReport{};
      report->algorithm = index_config.algorithm + " (joint)";
    }
    return std::unique_ptr<RetrievalFramework>(std::move(fw));
  }
  return Status::InvalidArgument("unknown retrieval framework: " + name);
}

std::vector<std::string> RetrievalFrameworkNames() {
  return {"must", "mr", "je"};
}

}  // namespace mqa
