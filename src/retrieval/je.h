#ifndef MQA_RETRIEVAL_JE_H_
#define MQA_RETRIEVAL_JE_H_

#include <memory>
#include <vector>

#include "retrieval/framework.h"

namespace mqa {

/// The Joint Embedding baseline (CLIP/ARTEMIS-style): every object is
/// fused into a single vector (normalized mean of its aligned per-modality
/// embeddings) and a single-channel index is searched. Its limitation —
/// reproduced here — is the fixed fusion: modality importance cannot be
/// adjusted, and fusing dilutes whichever modality carries the signal.
class JeFramework : public RetrievalFramework {
 public:
  static Result<std::unique_ptr<JeFramework>> Create(
      std::shared_ptr<const VectorStore> corpus,
      const IndexConfig& index_config);

  Result<RetrievalResult> Retrieve(const RetrievalQuery& query,
                                   const SearchParams& params) override;

  std::string name() const override { return "je"; }
  const VectorSchema& schema() const override { return corpus_->schema(); }
  const std::vector<float>& weights() const override { return weights_; }

  /// JE has no tunable modality weights; always fails.
  Status SetWeights(std::vector<float> weights) override;

  /// Tombstones `id` in the joint index.
  Status Remove(uint32_t id) override;

 private:
  JeFramework() = default;

  std::shared_ptr<const VectorStore> corpus_;
  std::vector<float> weights_;  // fixed uniform, for introspection only
  std::unique_ptr<VectorStore> joint_store_;
  std::unique_ptr<VectorIndex> index_;
};

}  // namespace mqa

#endif  // MQA_RETRIEVAL_JE_H_
