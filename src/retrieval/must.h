#ifndef MQA_RETRIEVAL_MUST_H_
#define MQA_RETRIEVAL_MUST_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "diskindex/disk_index.h"
#include "retrieval/framework.h"

namespace mqa {

/// The MUST framework (the paper's contribution): multi-vector object
/// representation with learned modality weights, one unified navigation
/// graph over all modalities, and *merging-free* search — a single graph
/// traversal computes the weighted multi-vector distance with incremental
/// scanning, instead of merging per-modality result lists.
class MustFramework : public RetrievalFramework {
 public:
  /// Builds the unified index over the encoded corpus with the given
  /// modality weights (typically from the weight learner). `enable_pruning`
  /// toggles the incremental-scanning distance (ablation knob).
  static Result<std::unique_ptr<MustFramework>> Create(
      std::shared_ptr<const VectorStore> corpus, std::vector<float> weights,
      const IndexConfig& index_config, bool enable_pruning = true,
      BuildReport* report = nullptr);

  /// Restores a framework from a GraphIndex blob written by
  /// GraphIndex::Save (see core/persistence.h) — no rebuild.
  static Result<std::unique_ptr<MustFramework>> CreateFromSavedIndex(
      std::shared_ptr<const VectorStore> corpus, std::vector<float> weights,
      std::istream* index_blob, bool enable_pruning = true);

  Result<RetrievalResult> Retrieve(const RetrievalQuery& query,
                                   const SearchParams& params) override;

  std::string name() const override { return "must"; }
  const VectorSchema& schema() const override { return corpus_->schema(); }
  const std::vector<float>& weights() const override { return weights_; }
  Status SetWeights(std::vector<float> weights) override;

  /// Tombstones `id`: excluded from every subsequent Retrieve, physically
  /// evicted by CompactTombstones. Works for all index kinds (the filter
  /// is applied inside the search).
  Status Remove(uint32_t id) override;

  /// Rebuilds the flat navigation graph without the tombstoned nodes,
  /// after the caller has already compacted the shared corpus store in
  /// place per `remap` (old id -> new dense id / kTombstonedId; see
  /// TombstoneSet::BuildRemap). Adjacency is spliced, not re-derived, so
  /// this is much cheaper than a fresh build. Unimplemented for non-flat
  /// index kinds — callers fall back to a full rebuild.
  Status CompactTombstones(const std::vector<uint32_t>& remap,
                           uint32_t live_count,
                           const GraphBuildConfig& config);

  /// Whether IngestAppended can succeed for the underlying index type.
  bool SupportsLiveIngestion() const;

  /// The underlying flat graph index, or nullptr for other index kinds
  /// (used by system persistence).
  const GraphIndex* flat_graph_index() const {
    return dynamic_cast<const GraphIndex*>(index_.get());
  }

  /// Incremental ingestion: after the caller appended one encoded
  /// multi-vector row to the shared corpus store, links it into the
  /// underlying index. Supported for flat graph indexes, HNSW and
  /// bruteforce; the disk-resident index is immutable (rebuild instead).
  Status IngestAppended(const GraphBuildConfig& config);

  /// Pruning counters accumulated by the incremental scan (MUST-E4).
  /// Empty when the index manages distances itself (starling).
  const DistanceStats& distance_stats() const;
  void ResetDistanceStats() {
    if (dist_ != nullptr) dist_->ResetStats();
  }

 private:
  MustFramework() = default;

  /// Routes a weight change to whoever owns the distance function.
  Status ApplyWeights(const std::vector<float>& weights);

  std::shared_ptr<const VectorStore> corpus_;
  std::vector<float> weights_;
  bool pruning_ = true;
  std::unique_ptr<VectorIndex> index_;
  // Exactly one of these is set, depending on the index kind; both are
  // owned by index_ (or are index_ itself).
  MultiVectorDistanceComputer* dist_ = nullptr;
  DiskGraphIndex* disk_ = nullptr;
  // Popcount prefilter sketches over the corpus rows (in-memory indexes
  // only; nullptr when disabled or disk-resident). Appended on ingestion,
  // rebuilt on compaction; attached to dist_ via SetSketches.
  std::unique_ptr<BitSketchIndex> sketches_;
  float sketch_scale_ = 1.0f;
};

}  // namespace mqa

#endif  // MQA_RETRIEVAL_MUST_H_
