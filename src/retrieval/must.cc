#include "retrieval/must.h"

#include <algorithm>
#include <cstring>

#include "graph/hnsw.h"
#include "graph/pipeline.h"

namespace mqa {

namespace {

/// Flattens a (possibly partial) query multi-vector: absent parts become
/// zero blocks, and the returned mask records which modalities are present.
Result<Vector> FlattenQuery(const VectorSchema& schema,
                            const MultiVector& mv,
                            std::vector<bool>* present) {
  if (mv.parts.size() != schema.num_modalities()) {
    return Status::InvalidArgument("query modality count mismatch");
  }
  Vector flat(schema.TotalDim(), 0.0f);
  present->assign(schema.num_modalities(), false);
  size_t off = 0;
  for (size_t m = 0; m < schema.num_modalities(); ++m) {
    const Vector& part = mv.parts[m];
    if (!part.empty()) {
      if (part.size() != schema.dims[m]) {
        return Status::InvalidArgument("query modality dimension mismatch");
      }
      std::memcpy(flat.data() + off, part.data(),
                  part.size() * sizeof(float));
      (*present)[m] = true;
    }
    off += schema.dims[m];
  }
  return flat;
}

}  // namespace

Result<std::unique_ptr<MustFramework>> MustFramework::Create(
    std::shared_ptr<const VectorStore> corpus, std::vector<float> weights,
    const IndexConfig& index_config, bool enable_pruning,
    BuildReport* report) {
  if (corpus == nullptr || corpus->size() == 0) {
    return Status::InvalidArgument("empty corpus");
  }
  weights = NormalizeWeights(std::move(weights));
  if (weights.size() != corpus->schema().num_modalities()) {
    return Status::InvalidArgument("weights do not match corpus schema");
  }

  MQA_ASSIGN_OR_RETURN(
      WeightedMultiDistance wdist,
      WeightedMultiDistance::Create(corpus->schema(), weights));
  auto dist = std::make_unique<MultiVectorDistanceComputer>(
      corpus.get(), std::move(wdist), enable_pruning);
  MultiVectorDistanceComputer* dist_raw = dist.get();

  std::unique_ptr<MustFramework> fw(new MustFramework());
  fw->corpus_ = std::move(corpus);
  fw->weights_ = std::move(weights);
  fw->pruning_ = enable_pruning;
  MQA_ASSIGN_OR_RETURN(fw->index_,
                       CreateIndex(index_config, fw->corpus_.get(),
                                   std::move(dist), report));
  // For disk-resident indexes the source distance computer is destroyed
  // with the temporary in-memory graph; the disk index owns its own copy.
  fw->disk_ = dynamic_cast<DiskGraphIndex*>(fw->index_.get());
  if (fw->disk_ == nullptr) fw->dist_ = dist_raw;
  // Sketches attach after the build so the graph construction itself is
  // unchanged; searches get the prefilter from the first query on.
  if (fw->dist_ != nullptr && index_config.sketch_prefilter) {
    fw->sketch_scale_ = index_config.sketch_scale;
    fw->sketches_ = std::make_unique<BitSketchIndex>(fw->corpus_->schema());
    fw->sketches_->Rebuild(*fw->corpus_);
    fw->dist_->SetSketches(fw->sketches_.get(), fw->sketch_scale_);
  }
  return fw;
}

Result<std::unique_ptr<MustFramework>> MustFramework::CreateFromSavedIndex(
    std::shared_ptr<const VectorStore> corpus, std::vector<float> weights,
    std::istream* index_blob, bool enable_pruning) {
  if (corpus == nullptr || corpus->size() == 0) {
    return Status::InvalidArgument("empty corpus");
  }
  if (index_blob == nullptr) {
    return Status::InvalidArgument("no index blob to load");
  }
  weights = NormalizeWeights(std::move(weights));
  MQA_ASSIGN_OR_RETURN(
      WeightedMultiDistance wdist,
      WeightedMultiDistance::Create(corpus->schema(), weights));
  auto dist = std::make_unique<MultiVectorDistanceComputer>(
      corpus.get(), std::move(wdist), enable_pruning);
  MultiVectorDistanceComputer* dist_raw = dist.get();
  MQA_ASSIGN_OR_RETURN(std::unique_ptr<GraphIndex> index,
                       GraphIndex::Load(*index_blob, std::move(dist)));
  std::unique_ptr<MustFramework> fw(new MustFramework());
  fw->corpus_ = std::move(corpus);
  fw->weights_ = std::move(weights);
  fw->pruning_ = enable_pruning;
  fw->index_ = std::move(index);
  fw->dist_ = dist_raw;
  fw->sketches_ = std::make_unique<BitSketchIndex>(fw->corpus_->schema());
  fw->sketches_->Rebuild(*fw->corpus_);
  fw->dist_->SetSketches(fw->sketches_.get(), fw->sketch_scale_);
  return fw;
}

bool MustFramework::SupportsLiveIngestion() const {
  return dynamic_cast<DiskGraphIndex*>(index_.get()) == nullptr;
}

Status MustFramework::IngestAppended(const GraphBuildConfig& config) {
  if (corpus_->size() == 0) {
    return Status::FailedPrecondition("append the encoded vector first");
  }
  const uint32_t new_id = corpus_->size() - 1;
  Status linked = Status::Unimplemented(
      "the disk-resident index is immutable; rebuild to ingest");
  if (auto* graph = dynamic_cast<GraphIndex*>(index_.get())) {
    linked = InsertIntoGraphIndex(graph, corpus_.get(), new_id, config);
  } else if (auto* hnsw = dynamic_cast<HnswIndex*>(index_.get())) {
    linked = hnsw->InsertAppended();
  } else if (dynamic_cast<BruteForceIndex*>(index_.get()) != nullptr) {
    linked = Status::OK();  // scans the store; nothing to update
  }
  if (linked.ok() && sketches_ != nullptr) {
    // Catch the sketches up to the store (ids beyond sketches_->size()
    // were simply unfiltered until now).
    for (uint32_t id = sketches_->size(); id < corpus_->size(); ++id) {
      sketches_->Append(corpus_->data(id));
    }
  }
  return linked;
}

const DistanceStats& MustFramework::distance_stats() const {
  static const DistanceStats kEmpty;
  return dist_ != nullptr ? dist_->stats() : kEmpty;
}

Status MustFramework::ApplyWeights(const std::vector<float>& weights) {
  if (dist_ != nullptr) return dist_->SetWeights(weights);
  if (disk_ != nullptr) return disk_->SetWeights(weights);
  return Status::Internal("no distance owner configured");
}

Result<RetrievalResult> MustFramework::Retrieve(const RetrievalQuery& query,
                                                const SearchParams& params) {
  std::vector<bool> present;
  MQA_ASSIGN_OR_RETURN(Vector flat,
                       FlattenQuery(schema(), query.modalities, &present));

  std::vector<float> w = query.weights.empty() ? weights_ : query.weights;
  if (w.size() != present.size()) {
    return Status::InvalidArgument("query weights size mismatch");
  }
  for (size_t m = 0; m < present.size(); ++m) {
    if (!present[m]) w[m] = 0.0f;
  }
  bool any = false;
  for (float x : w) any = any || x > 0.0f;
  if (!any) {
    return Status::InvalidArgument("query has no present modality");
  }
  MQA_RETURN_NOT_OK(ApplyWeights(NormalizeWeights(std::move(w))));

  RetrievalResult result;
  // Measured through the injected Clock (not wall time) so MockClock tests
  // and injected latency spikes show up in retrieval timings.
  const int64_t start_micros = clock()->NowMicros();
  const SearchParams effective = WithoutTombstones(params);
  MQA_ASSIGN_OR_RETURN(
      result.neighbors,
      index_->Search(flat.data(), effective, &result.stats));
  result.latency_ms =
      static_cast<double>(clock()->NowMicros() - start_micros) / 1e3;
  // Restore the build-time weights for subsequent callers.
  MQA_RETURN_NOT_OK(ApplyWeights(weights_));
  return result;
}

Status MustFramework::SetWeights(std::vector<float> weights) {
  if (weights.size() != schema().num_modalities()) {
    return Status::InvalidArgument("weights do not match corpus schema");
  }
  weights_ = NormalizeWeights(std::move(weights));
  return ApplyWeights(weights_);
}

Status MustFramework::Remove(uint32_t id) {
  return MarkRemoved(id, index_->size());
}

Status MustFramework::CompactTombstones(const std::vector<uint32_t>& remap,
                                        uint32_t live_count,
                                        const GraphBuildConfig& config) {
  auto* flat = dynamic_cast<GraphIndex*>(index_.get());
  if (flat == nullptr) {
    return Status::Unimplemented(
        "in-place compaction needs a flat graph index; rebuild instead");
  }
  MQA_ASSIGN_OR_RETURN(
      AdjacencyGraph compacted,
      CompactAdjacency(flat->graph(), remap, live_count, config.max_degree));

  // Surviving entry points keep their role under new ids; if all entry
  // points died, fall back to node 0 (always live: live_count > 0).
  std::vector<uint32_t> entries;
  for (uint32_t e : flat->entry_points()) {
    if (e < remap.size() && remap[e] != kTombstonedId) {
      entries.push_back(remap[e]);
    }
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  if (entries.empty()) entries.push_back(0);

  // The caller already rewrote the corpus store in place, so a fresh
  // distance computer over it sees the compacted rows. Build the whole
  // replacement index before touching members: any failure above leaves
  // the framework serving from the old index unharmed.
  MQA_ASSIGN_OR_RETURN(
      WeightedMultiDistance wdist,
      WeightedMultiDistance::Create(corpus_->schema(), weights_));
  auto dist = std::make_unique<MultiVectorDistanceComputer>(
      corpus_.get(), std::move(wdist), pruning_);
  MultiVectorDistanceComputer* dist_raw = dist.get();
  index_ = std::make_unique<GraphIndex>(flat->name(), std::move(compacted),
                                        std::move(dist), std::move(entries));
  dist_ = dist_raw;
  disk_ = nullptr;
  if (sketches_ != nullptr) {
    // The corpus rows moved under compaction; re-sketch them all and
    // attach to the replacement computer.
    sketches_->Rebuild(*corpus_);
    dist_->SetSketches(sketches_.get(), sketch_scale_);
  }
  ClearTombstones();
  return Status::OK();
}

}  // namespace mqa
