#include "retrieval/je.h"

#include "encoder/encoder.h"

namespace mqa {

Result<std::unique_ptr<JeFramework>> JeFramework::Create(
    std::shared_ptr<const VectorStore> corpus,
    const IndexConfig& index_config) {
  if (corpus == nullptr || corpus->size() == 0) {
    return Status::InvalidArgument("empty corpus");
  }
  std::unique_ptr<JeFramework> fw(new JeFramework());
  fw->corpus_ = std::move(corpus);
  fw->weights_.assign(fw->corpus_->schema().num_modalities(), 1.0f);

  MQA_ASSIGN_OR_RETURN(VectorStore fused, FuseJointStore(*fw->corpus_));
  fw->joint_store_ = std::make_unique<VectorStore>(std::move(fused));
  auto dist = std::make_unique<FlatDistanceComputer>(fw->joint_store_.get(),
                                                     Metric::kL2);
  MQA_ASSIGN_OR_RETURN(
      fw->index_,
      CreateIndex(index_config, fw->joint_store_.get(), std::move(dist)));
  return fw;
}

Result<RetrievalResult> JeFramework::Retrieve(const RetrievalQuery& query,
                                              const SearchParams& params) {
  if (query.modalities.parts.size() != schema().num_modalities()) {
    return Status::InvalidArgument("query modality count mismatch");
  }
  const Vector joint = FuseJoint(query.modalities);
  if (joint.empty()) {
    return Status::InvalidArgument("query has no present modality");
  }
  if (joint.size() != joint_store_->row_dim()) {
    return Status::InvalidArgument(
        "query embedding dimension does not match the joint space");
  }
  RetrievalResult result;
  // Clock-based timing: see MustFramework::Retrieve.
  const int64_t start_micros = clock()->NowMicros();
  const SearchParams effective = WithoutTombstones(params);
  MQA_ASSIGN_OR_RETURN(
      result.neighbors,
      index_->Search(joint.data(), effective, &result.stats));
  result.latency_ms =
      static_cast<double>(clock()->NowMicros() - start_micros) / 1e3;
  return result;
}

Status JeFramework::SetWeights(std::vector<float> weights) {
  (void)weights;
  return Status::Unimplemented(
      "joint embedding fuses modalities with fixed weights");
}

Status JeFramework::Remove(uint32_t id) {
  return MarkRemoved(id, joint_store_->size());
}

}  // namespace mqa
