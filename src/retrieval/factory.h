#ifndef MQA_RETRIEVAL_FACTORY_H_
#define MQA_RETRIEVAL_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "retrieval/framework.h"

namespace mqa {

/// Builds a retrieval framework by name ("must", "mr", "je") over the
/// encoded corpus. `weights` are the default modality weights (ignored by
/// JE). `report` (optional) receives the primary index's build report.
Result<std::unique_ptr<RetrievalFramework>> CreateRetrievalFramework(
    const std::string& name, std::shared_ptr<const VectorStore> corpus,
    std::vector<float> weights, const IndexConfig& index_config,
    BuildReport* report = nullptr);

/// Names accepted by CreateRetrievalFramework.
std::vector<std::string> RetrievalFrameworkNames();

}  // namespace mqa

#endif  // MQA_RETRIEVAL_FACTORY_H_
