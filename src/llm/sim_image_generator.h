#ifndef MQA_LLM_SIM_IMAGE_GENERATOR_H_
#define MQA_LLM_SIM_IMAGE_GENERATOR_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/world.h"

namespace mqa {

/// A synthetic image produced by the generative baseline. Unlike retrieval
/// results it is NOT a member of the knowledge base (`in_knowledge_base`
/// is always false) — matching the paper's Figure 5 observation that
/// GPT-4/DALL·E "generates synthetic images that miss a touch of realism".
struct GeneratedImage {
  std::vector<float> features;  ///< raw image features (image modality)
  std::string caption;
  std::vector<float> latent;    ///< where the generation landed semantically
  bool in_knowledge_base = false;
};

/// The DALL·E-2 stand-in: text prompt -> latent (through the world's
/// vocabulary) -> rendered image features plus generation noise. On-topic
/// but synthetic, so membership-based metrics score it at zero.
class SimImageGenerator {
 public:
  SimImageGenerator(const World* world, uint64_t seed = 99)
      : world_(world), rng_(seed) {}

  /// Generates one image for a text prompt. Fails on an empty prompt.
  Result<GeneratedImage> Generate(const std::string& prompt);

  /// Generates `count` images (diverse via generation noise).
  Result<std::vector<GeneratedImage>> GenerateBatch(const std::string& prompt,
                                                    size_t count);

  std::string name() const { return "sim-dalle"; }

 private:
  const World* world_;
  Rng rng_;
};

}  // namespace mqa

#endif  // MQA_LLM_SIM_IMAGE_GENERATOR_H_
