#include "llm/sim_image_generator.h"

#include "common/fault.h"
#include "vector/distance.h"

namespace mqa {

Result<GeneratedImage> SimImageGenerator::Generate(
    const std::string& prompt) {
  // Chaos hook for the DALL·E-over-the-network hop.
  MQA_RETURN_NOT_OK(FaultInjector::Global().Check("imagegen/generate"));
  if (prompt.empty()) return Status::InvalidArgument("empty prompt");
  GeneratedImage out;
  // Understand the prompt through the same language grounding the
  // encoders use, then add generation noise: the image is on-topic but not
  // a real corpus member.
  out.latent = world_->TextToLatent(prompt);
  for (auto& x : out.latent) {
    x += 0.15f * static_cast<float>(rng_.Gaussian());
  }
  NormalizeVector(&out.latent);
  out.features = world_->RenderFeatures(out.latent, /*modality_slot=*/0,
                                        &rng_);
  out.caption = "a generated image for: " + prompt;
  out.in_knowledge_base = false;
  return out;
}

Result<std::vector<GeneratedImage>> SimImageGenerator::GenerateBatch(
    const std::string& prompt, size_t count) {
  if (count == 0) return Status::InvalidArgument("count must be > 0");
  std::vector<GeneratedImage> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    MQA_ASSIGN_OR_RETURN(GeneratedImage img, Generate(prompt));
    out.push_back(std::move(img));
  }
  return out;
}

}  // namespace mqa
