#ifndef MQA_LLM_PROMPT_BUILDER_H_
#define MQA_LLM_PROMPT_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mqa {

/// One retrieved object as it enters the prompt.
struct RetrievedItem {
  uint64_t id = 0;
  std::string description;  ///< human-readable content (caption/summary)
  float distance = 0.0f;    ///< retrieval distance (smaller = closer)
  /// Preference marker: set when the item matches the user's expressed
  /// preference (e.g. shares the concept of their clicked result). The
  /// answer generator surfaces it to the user.
  bool preferred = false;
};

/// Assembles retrieval-augmented prompts with the layout
///
///   [SYSTEM] ...
///   [HISTORY] user:/assistant: turns
///   [CONTEXT] numbered retrieved items (omitted when retrieval is off)
///   [QUERY] the current user utterance
///
/// The section markers form the contract between the answer-generation
/// component and any LanguageModel implementation.
class PromptBuilder {
 public:
  static constexpr const char* kSystemMarker = "[SYSTEM]";
  static constexpr const char* kHistoryMarker = "[HISTORY]";
  static constexpr const char* kContextMarker = "[CONTEXT]";
  static constexpr const char* kQueryMarker = "[QUERY]";

  /// Sets the system instruction (defaults to a grounded-answer policy).
  void SetSystem(std::string system) { system_ = std::move(system); }

  /// Appends a completed dialogue turn to the history.
  void AddTurn(const std::string& user, const std::string& assistant);

  void ClearHistory() { history_.clear(); }
  size_t history_size() const { return history_.size(); }

  /// Builds the full prompt. An empty `context` omits the [CONTEXT]
  /// section entirely (retrieval disabled / no knowledge base).
  std::string Build(const std::string& query,
                    const std::vector<RetrievedItem>& context) const;

 private:
  struct Turn {
    std::string user;
    std::string assistant;
  };

  std::string system_ =
      "You answer using only the retrieved context when it is present.";
  std::vector<Turn> history_;
};

}  // namespace mqa

#endif  // MQA_LLM_PROMPT_BUILDER_H_
