#include "llm/prompt_builder.h"

#include "common/string_util.h"

namespace mqa {

void PromptBuilder::AddTurn(const std::string& user,
                            const std::string& assistant) {
  history_.push_back(Turn{user, assistant});
}

std::string PromptBuilder::Build(
    const std::string& query,
    const std::vector<RetrievedItem>& context) const {
  std::string out;
  out += kSystemMarker;
  out += " ";
  out += system_;
  out += "\n";
  if (!history_.empty()) {
    out += kHistoryMarker;
    out += "\n";
    for (const Turn& t : history_) {
      out += "user: " + t.user + "\n";
      out += "assistant: " + t.assistant + "\n";
    }
  }
  if (!context.empty()) {
    out += kContextMarker;
    out += "\n";
    for (size_t i = 0; i < context.size(); ++i) {
      out += std::to_string(i + 1) + ". " + context[i].description +
             " (distance " + FormatDouble(context[i].distance, 3) + ")";
      if (context[i].preferred) out += " [matches your preference]";
      out += "\n";
    }
  }
  out += kQueryMarker;
  out += " ";
  out += query;
  out += "\n";
  return out;
}

}  // namespace mqa
