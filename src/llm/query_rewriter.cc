#include "llm/query_rewriter.h"

#include <unordered_set>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace mqa {

namespace {

/// Conversational filler that never identifies the subject of a search.
const std::unordered_set<std::string>& StopWords() {
  // Intentionally leaked function-local singleton (never destroyed).
  static const auto* kStopWords =  // NOLINT(mqa-naked-new)
      new std::unordered_set<std::string>{
      "i",      "a",      "an",     "the",    "of",      "to",     "in",
      "on",     "for",    "with",   "and",    "or",      "would",  "could",
      "should", "can",    "you",    "me",     "my",      "we",     "us",
      "it",     "its",    "this",   "that",   "these",   "those",  "one",
      "ones",   "some",   "any",    "more",   "most",    "like",   "want",
      "wanted", "need",   "show",   "find",   "locate",  "search", "looking",
      "look",   "images", "image",  "photos", "photo",   "pictures",
      "picture", "please", "kindly", "hello",  "hi",     "is",     "are",
      "was",    "be",     "have",   "has",    "do",      "does",   "not",
      "no",     "yes",    "so",     "but",    "if",      "then",   "them",
      "there",  "here",   "similar", "same",  "different", "other",
      "else",   "again",  "now",    "just",   "really",  "very",   "thanks",
      "thank",  "am",     "make",   "made",   "get",     "give",   "provide",
      "provided",
  };
  return *kStopWords;
}

}  // namespace

std::vector<std::string> ContextualQueryRewriter::ContentWords(
    const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& token : Tokenize(text)) {
    if (StopWords().count(token) > 0) continue;
    bool seen = false;
    for (const std::string& w : out) seen = seen || w == token;
    if (!seen) out.push_back(token);
  }
  return out;
}

void ContextualQueryRewriter::ObserveTurn(const std::string& user_text) {
  history_.push_back(user_text);
  while (history_.size() > history_window_) history_.pop_front();
}

Result<std::string> ContextualQueryRewriter::RewriteChecked(
    const std::string& text) const {
  Span span("llm/rewrite");
  MetricsRegistry::Global().GetCounter("rewriter/calls")->Increment();
  MQA_RETURN_NOT_OK(FaultInjector::Global().Check("llm/rewrite"));
  std::string out = Rewrite(text);
  if (out != text) {
    MetricsRegistry::Global().GetCounter("rewriter/rewrites")->Increment();
  }
  return out;
}

std::string ContextualQueryRewriter::Rewrite(const std::string& text) const {
  if (ContentWords(text).size() >= 2) return text;
  // Pull up to three topical words, most recent turns first.
  std::vector<std::string> topical;
  for (auto it = history_.rbegin();
       it != history_.rend() && topical.size() < 3; ++it) {
    for (const std::string& w : ContentWords(*it)) {
      if (topical.size() >= 3) break;
      bool seen = false;
      for (const std::string& t : topical) seen = seen || t == w;
      if (!seen) topical.push_back(w);
    }
  }
  if (topical.empty()) return text;
  std::string out = text;
  for (const std::string& w : topical) {
    out += " " + w;
  }
  return out;
}

}  // namespace mqa
