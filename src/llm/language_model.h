#ifndef MQA_LLM_LANGUAGE_MODEL_H_
#define MQA_LLM_LANGUAGE_MODEL_H_

#include <string>

#include "common/result.h"

namespace mqa {

/// One completion request. `prompt` is the fully assembled retrieval-
/// augmented prompt (see PromptBuilder); `temperature` controls output
/// variability exactly as the configuration panel's temperature slider.
struct LlmRequest {
  std::string system;
  std::string prompt;
  float temperature = 0.2f;
};

/// A completion.
struct LlmResponse {
  std::string text;
};

/// The pluggable LLM interface ("LLM options present a selection of
/// models"). A production deployment would implement this against GPT-4 or
/// a local model; this repo ships SimLlm, a deterministic grounded
/// generator, so the full answer-generation path runs offline.
class LanguageModel {
 public:
  virtual ~LanguageModel() = default;

  virtual Result<LlmResponse> Complete(const LlmRequest& request) = 0;

  virtual std::string name() const = 0;
};

}  // namespace mqa

#endif  // MQA_LLM_LANGUAGE_MODEL_H_
