#include "llm/sim_llm.h"

#include <algorithm>
#include <functional>

#include "common/fault.h"
#include "common/random.h"
#include "common/string_util.h"
#include "llm/prompt_builder.h"
#include "storage/word_lists.h"

namespace mqa {

namespace {

enum class Section { kNone, kSystem, kHistory, kContext, kQuery };

constexpr const char* kGroundedOpeners[] = {
    "Here is what I found in the knowledge base for you:",
    "I searched the knowledge base and these match best:",
    "Based on the retrieved results, you may like:",
};

constexpr const char* kGroundedClosers[] = {
    "You can select one of these and refine your request further.",
    "Let me know if you would like me to adjust the search.",
    "Pick a favourite and I can look for more like it.",
};

constexpr const char* kUngroundedOpeners[] = {
    "I do not have a knowledge base attached, but from what I know,",
    "Answering from general knowledge (no retrieval configured):",
    "Without retrieval I can only guess, but",
};

size_t PickVariant(Rng* rng, float temperature, size_t num_variants) {
  if (temperature <= 0.0f || num_variants <= 1) return 0;
  const float t = std::min(temperature, 1.0f);
  const size_t span =
      std::max<size_t>(1, static_cast<size_t>(t * num_variants + 0.5f));
  return rng->NextUint64(std::min(span, num_variants));
}

}  // namespace

ParsedPrompt ParsePrompt(const std::string& prompt) {
  ParsedPrompt out;
  Section section = Section::kNone;
  for (const std::string& raw_line : Split(prompt, '\n')) {
    std::string line = raw_line;
    if (line.rfind(PromptBuilder::kSystemMarker, 0) == 0) {
      out.system = Trim(line.substr(std::string(
          PromptBuilder::kSystemMarker).size()));
      section = Section::kSystem;
      continue;
    }
    if (line == PromptBuilder::kHistoryMarker) {
      section = Section::kHistory;
      continue;
    }
    if (line == PromptBuilder::kContextMarker) {
      section = Section::kContext;
      continue;
    }
    if (line.rfind(PromptBuilder::kQueryMarker, 0) == 0) {
      out.query = Trim(line.substr(std::string(
          PromptBuilder::kQueryMarker).size()));
      section = Section::kQuery;
      continue;
    }
    switch (section) {
      case Section::kHistory:
        if (!line.empty()) out.history_lines.push_back(line);
        break;
      case Section::kContext: {
        if (line.empty()) break;
        // Strip the "N. " prefix.
        const size_t dot = line.find(". ");
        out.context_items.push_back(
            dot == std::string::npos ? line : line.substr(dot + 2));
        break;
      }
      default:
        break;
    }
  }
  return out;
}

Result<LlmResponse> SimLlm::Complete(const LlmRequest& request) {
  // Chaos hook: the GPT-4-over-the-network hop this simulator stands in
  // for is the system's flakiest dependency.
  MQA_RETURN_NOT_OK(FaultInjector::Global().Check("llm/complete"));
  if (request.prompt.empty()) {
    return Status::InvalidArgument("empty prompt");
  }
  if (request.temperature < 0.0f || request.temperature > 2.0f) {
    return Status::InvalidArgument("temperature must be in [0, 2]");
  }
  const ParsedPrompt parsed = ParsePrompt(request.prompt);
  Rng rng(seed_ ^ std::hash<std::string>{}(request.prompt));

  LlmResponse response;
  if (!parsed.context_items.empty()) {
    // Grounded path: summarize only what retrieval provided.
    const size_t opener = PickVariant(&rng, request.temperature, 3);
    response.text = kGroundedOpeners[opener];
    response.text += "\n";
    const size_t show = std::min<size_t>(parsed.context_items.size(), 5);
    for (size_t i = 0; i < show; ++i) {
      response.text += "  " + std::to_string(i + 1) + ") " +
                       parsed.context_items[i] + "\n";
    }
    if (parsed.context_items.size() > show) {
      response.text += "  (and " +
                       std::to_string(parsed.context_items.size() - show) +
                       " more)\n";
    }
    const size_t closer = PickVariant(&rng, request.temperature, 3);
    response.text += kGroundedClosers[closer];
    return response;
  }

  // Ungrounded path: hallucinate plausible content from the parametric
  // vocabulary, echoing query words when they look topical.
  const size_t opener = PickVariant(&rng, request.temperature, 3);
  response.text = kUngroundedOpeners[opener];
  response.text += " you might be thinking of ";
  size_t num_nouns = 0;
  size_t num_adjs = 0;
  const char* const* nouns = BuiltinNouns(&num_nouns);
  const char* const* adjs = BuiltinAdjectives(&num_adjs);
  const std::vector<std::string> query_tokens = Tokenize(parsed.query);
  for (int i = 0; i < 3; ++i) {
    std::string adj = adjs[rng.NextUint64(num_adjs)];
    std::string noun = nouns[rng.NextUint64(num_nouns)];
    // Sometimes pick up a word from the query, as a real LLM would.
    for (const std::string& tok : query_tokens) {
      for (size_t a = 0; a < num_adjs; ++a) {
        if (tok == adjs[a] && rng.Bernoulli(0.5)) adj = tok;
      }
      for (size_t v = 0; v < num_nouns; ++v) {
        if (tok == nouns[v] && rng.Bernoulli(0.5)) noun = tok;
      }
    }
    response.text += adj + " " + noun;
    response.text += i < 2 ? ", " : ".";
  }
  response.text +=
      " I cannot verify these against a knowledge base right now.";
  return response;
}

}  // namespace mqa
