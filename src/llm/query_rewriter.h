#ifndef MQA_LLM_QUERY_REWRITER_H_
#define MQA_LLM_QUERY_REWRITER_H_

#include <deque>
#include <string>
#include <vector>

#include "common/result.h"

namespace mqa {

/// Resolves vague follow-up utterances against the dialogue history — part
/// of the paper's "intelligent multi-modal search procedure": when the
/// current turn carries almost no content words ("show me more of those"),
/// topical words from recent user turns are appended so the retrieval
/// query still points at the conversation's subject.
///
/// Deterministic and purely lexical: content words are the tokens outside
/// a small built-in stop list of conversational filler.
class ContextualQueryRewriter {
 public:
  /// `history_window` = how many recent user turns are remembered.
  explicit ContextualQueryRewriter(size_t history_window = 4)
      : history_window_(history_window) {}

  /// Records a user utterance (call once per round, before Rewrite of the
  /// *next* round).
  void ObserveTurn(const std::string& user_text);

  /// Returns `text`, possibly augmented with recent topical words. The
  /// input is returned unchanged when it already carries enough content
  /// (>= 2 content words) or when there is no usable history.
  std::string Rewrite(const std::string& text) const;

  /// Fault-aware flavour used by the online pipeline: consults the
  /// "llm/rewrite" fault point first (in the real deployment this hop is
  /// an LLM call). On an injected failure the caller degrades to the raw
  /// text — rewriting is an enhancement, never a requirement.
  Result<std::string> RewriteChecked(const std::string& text) const;

  /// Content words of an utterance (tokens outside the stop list), in
  /// order of appearance, deduplicated.
  static std::vector<std::string> ContentWords(const std::string& text);

  void Clear() { history_.clear(); }
  size_t history_size() const { return history_.size(); }

 private:
  size_t history_window_;
  std::deque<std::string> history_;  // most recent last
};

}  // namespace mqa

#endif  // MQA_LLM_QUERY_REWRITER_H_
