#include "llm/resilient_llm.h"

#include <utility>

namespace mqa {

ResilientLlm::ResilientLlm(std::unique_ptr<LanguageModel> inner,
                           LlmResilienceConfig config, Clock* clock)
    : inner_(std::move(inner)),
      retrier_(config.retry, clock),
      breaker_(config.breaker, clock) {}

Result<LlmResponse> ResilientLlm::Complete(const LlmRequest& request) {
  // Fail fast while the breaker is open: no retry loop, no backoff — the
  // caller immediately falls back to the extractive answer path.
  MQA_RETURN_NOT_OK(breaker_.Admit());
  // One admitted call = one retry loop; the breaker sees its overall
  // outcome, so a burst of transient errors absorbed by retries counts as
  // one success, while an exhausted retry budget counts as one failure.
  Result<LlmResponse> response =
      retrier_.Run<LlmResponse>([&] { return inner_->Complete(request); });
  breaker_.Record(response.ok() ? Status::OK() : response.status());
  return response;
}

}  // namespace mqa
