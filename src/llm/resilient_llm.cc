#include "llm/resilient_llm.h"

#include <utility>

#include "common/metrics.h"
#include "common/trace.h"

namespace mqa {

ResilientLlm::ResilientLlm(std::unique_ptr<LanguageModel> inner,
                           LlmResilienceConfig config, Clock* clock)
    : inner_(std::move(inner)),
      retry_policy_(config.retry),
      clock_(clock),
      breaker_(config.breaker, clock) {}

Result<LlmResponse> ResilientLlm::Complete(const LlmRequest& request) {
  Span span("llm/complete");
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.GetCounter("llm/requests")->Increment();
  // Fail fast while the breaker is open: no retry loop, no backoff — the
  // caller immediately falls back to the extractive answer path.
  Status admitted = breaker_.Admit();
  if (!admitted.ok()) {
    metrics.GetCounter("llm/breaker_rejections")->Increment();
    return admitted;
  }
  // One admitted call = one retry loop; the breaker sees its overall
  // outcome, so a burst of transient errors absorbed by retries counts as
  // one success, while an exhausted retry budget counts as one failure.
  // The Retrier is per-call (it is cheap and not thread-safe), so
  // concurrent serving threads never share backoff state.
  Retrier retrier(retry_policy_, clock_);
  Result<LlmResponse> response =
      retrier.Run<LlmResponse>([&] { return inner_->Complete(request); });
  {
    MutexLock lock(&mu_);
    last_stats_ = retrier.stats();
  }
  breaker_.Record(response.ok() ? Status::OK() : response.status());
  if (!response.ok()) metrics.GetCounter("llm/failures")->Increment();
  return response;
}

}  // namespace mqa
