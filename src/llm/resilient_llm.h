#ifndef MQA_LLM_RESILIENT_LLM_H_
#define MQA_LLM_RESILIENT_LLM_H_

#include <memory>
#include <string>

#include "common/circuit_breaker.h"
#include "common/clock.h"
#include "common/retry.h"
#include "common/sync.h"
#include "llm/language_model.h"

namespace mqa {

/// Resilience knobs of the decorated LLM hop, bundled so MqaConfig can
/// carry them as one unit.
struct LlmResilienceConfig {
  RetryPolicy retry;
  CircuitBreakerConfig breaker;
};

/// A LanguageModel decorator that makes the network-and-GPU-backed LLM hop
/// survivable: every Complete() is gated by a circuit breaker (a
/// persistently failing model stops eating the latency budget), executed
/// under a RetryPolicy (transient kUnavailable / kResourceExhausted /
/// kDeadlineExceeded failures are retried with deterministic backoff), and
/// bounded by the policy's per-attempt and overall deadlines.
///
/// Complete() is safe to call from concurrent serving threads: the breaker
/// is internally synchronized, each call runs its own Retrier, and the
/// last-call stats snapshot is taken under a lock.
///
/// The decorator is transparent on success: with a healthy inner model the
/// first attempt's response is returned verbatim, so disarmed-fault runs
/// are bit-identical to using the inner model directly. name() forwards to
/// the inner model for the same reason.
class ResilientLlm : public LanguageModel {
 public:
  /// `clock` drives backoff sleeps and the breaker cool-down; null means
  /// the real SystemClock. Tests pass a MockClock so nothing ever sleeps.
  ResilientLlm(std::unique_ptr<LanguageModel> inner,
               LlmResilienceConfig config, Clock* clock = nullptr);

  Result<LlmResponse> Complete(const LlmRequest& request) override;

  std::string name() const override { return inner_->name(); }

  const CircuitBreaker& breaker() const { return breaker_; }
  BreakerState breaker_state() const { return breaker_.state(); }

  /// Retry counters of the most recent Complete() call (by value: with
  /// concurrent callers the "most recent" call is whichever finished last).
  RetryStats last_retry_stats() const {
    MutexLock lock(&mu_);
    return last_stats_;
  }

  const LanguageModel* inner() const { return inner_.get(); }

 private:
  std::unique_ptr<LanguageModel> inner_;
  RetryPolicy retry_policy_;
  Clock* clock_;  ///< null = SystemClock; drives per-call Retriers
  CircuitBreaker breaker_;
  mutable Mutex mu_;
  RetryStats last_stats_ MQA_GUARDED_BY(mu_);
};

}  // namespace mqa

#endif  // MQA_LLM_RESILIENT_LLM_H_
