#ifndef MQA_LLM_SIM_LLM_H_
#define MQA_LLM_SIM_LLM_H_

#include <string>
#include <vector>

#include "llm/language_model.h"

namespace mqa {

/// A deterministic, offline stand-in for GPT-4-class models. It parses the
/// PromptBuilder sections and:
///
///  * with [CONTEXT] present, produces a grounded conversational summary
///    that mentions only retrieved items (the retrieval-augmented path);
///  * without context, answers from "parametric knowledge" — plausible
///    word-list content that is frequently wrong about the actual
///    knowledge base. This is the hallucination behaviour the paper's
///    retrieval augmentation exists to fix, and what the grounding
///    benchmark (E8) measures.
///
/// Temperature selects among phrasing variants: 0 is fully deterministic;
/// higher values draw the variant from a prompt-seeded PRNG, mimicking the
/// configuration panel's variability slider without losing replayability.
class SimLlm : public LanguageModel {
 public:
  explicit SimLlm(uint64_t seed = 1234) : seed_(seed) {}

  Result<LlmResponse> Complete(const LlmRequest& request) override;

  std::string name() const override { return "sim-llm"; }

 private:
  uint64_t seed_;
};

/// Splits a built prompt back into its sections. Exposed for tests and for
/// SimLlm itself.
struct ParsedPrompt {
  std::string system;
  std::vector<std::string> history_lines;
  std::vector<std::string> context_items;  ///< without the "N. " prefix
  std::string query;
};
ParsedPrompt ParsePrompt(const std::string& prompt);

}  // namespace mqa

#endif  // MQA_LLM_SIM_LLM_H_
