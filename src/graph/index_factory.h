#ifndef MQA_GRAPH_INDEX_FACTORY_H_
#define MQA_GRAPH_INDEX_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "diskindex/disk_index.h"
#include "graph/hnsw.h"
#include "graph/pipeline.h"
#include "graph/search.h"

namespace mqa {

/// Unified index configuration — what the frontend's "index" panel edits.
/// `algorithm` selects between the flat pipeline algorithms ("kgraph",
/// "nsg", "vamana", "mqa-hybrid"), "hnsw", "bruteforce", and "starling"
/// (a disk-resident index: an mqa-hybrid graph packed into blocks).
struct IndexConfig {
  std::string algorithm = "mqa-hybrid";
  GraphBuildConfig graph;  ///< parameters of the flat pipeline algorithms
  HnswConfig hnsw;         ///< parameters when algorithm == "hnsw"
  DiskIndexConfig disk;    ///< parameters when algorithm == "starling"

  /// Bit-sketch popcount prefilter in front of the weighted multi-vector
  /// distance (in-memory indexes only; see vector/sketch.h). At the
  /// default scale of 1.0 it rejects exactly what the incremental-scanning
  /// bound would reject, so recall is provably unchanged; scale > 1 trades
  /// recall for more rejects.
  bool sketch_prefilter = true;
  float sketch_scale = 1.0f;
};

/// Builds any supported index. The distance computer is consumed; `store`
/// must outlive the index. `report` (optional) receives build statistics
/// (for HNSW/bruteforce only total time and memory are filled).
Result<std::unique_ptr<VectorIndex>> CreateIndex(
    const IndexConfig& config, const VectorStore* store,
    std::unique_ptr<DistanceComputer> dist, BuildReport* report = nullptr);

/// All algorithm names accepted by CreateIndex.
std::vector<std::string> AllIndexAlgorithms();

}  // namespace mqa

#endif  // MQA_GRAPH_INDEX_FACTORY_H_
