#ifndef MQA_GRAPH_HNSW_H_
#define MQA_GRAPH_HNSW_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/index.h"
#include "vector/vector_store.h"

namespace mqa {

/// HNSW construction parameters.
struct HnswConfig {
  uint32_t m = 16;                 ///< max links per node above layer 0
  uint32_t ef_construction = 100;  ///< build-time beam width
  uint64_t seed = 42;
};

/// Hierarchical Navigable Small World index (Malkov & Yashunin). The
/// hierarchy is the one navigation-graph family that is not flat, so it
/// lives beside the unified pipeline as its own VectorIndex; its layer-0
/// neighbor selection uses the same diversification heuristic as the
/// pipeline's RobustPrune stage.
class HnswIndex : public VectorIndex {
 public:
  /// Builds by sequential insertion over all vectors in `store`. The index
  /// takes ownership of `dist`; `store` must outlive the index.
  static Result<std::unique_ptr<HnswIndex>> Build(
      const HnswConfig& config, const VectorStore* store,
      std::unique_ptr<DistanceComputer> dist);

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params,
                                       SearchStats* stats) override;

  std::string name() const override { return "hnsw"; }
  uint32_t size() const override {
    return static_cast<uint32_t>(levels_.size());
  }
  uint64_t MemoryBytes() const override;

  /// Incremental ingestion: inserts the store row with id == size() (the
  /// caller appends to the store first). HNSW construction is insertion-
  /// based, so this is the same code path as Build.
  Status InsertAppended();

  int max_level() const { return max_level_; }
  const std::vector<uint32_t>& links(uint32_t node, int layer) const {
    return links_[node][layer];
  }

  /// Persists the hierarchy (levels, per-layer links, entry point). The
  /// vectors stay in the VectorStore.
  Status Save(std::ostream& out) const;

  /// Restores an index saved with Save() over the matching store.
  static Result<std::unique_ptr<HnswIndex>> Load(
      std::istream& in, const HnswConfig& config, const VectorStore* store,
      std::unique_ptr<DistanceComputer> dist);

 private:
  HnswIndex(const HnswConfig& config, const VectorStore* store,
            std::unique_ptr<DistanceComputer> dist)
      : config_(config), store_(store), dist_(std::move(dist)),
        rng_(config.seed) {}

  void Insert(uint32_t id);

  /// Beam search restricted to one layer; returns up to `ef` closest,
  /// ascending. With a filter, only admitted ids are returned (the beam
  /// still navigates over everything).
  std::vector<Neighbor> SearchLayer(const float* query, uint32_t entry,
                                    float entry_dist, size_t ef, int layer,
                                    SearchStats* stats,
                                    const SearchFilter& filter = nullptr,
                                    size_t k = 0) const;

  /// HNSW's "select neighbors heuristic": diversity-pruned selection.
  std::vector<uint32_t> SelectNeighbors(uint32_t node,
                                        std::vector<Neighbor> candidates,
                                        uint32_t m) const;

  HnswConfig config_;
  const VectorStore* store_;
  std::unique_ptr<DistanceComputer> dist_;
  Rng rng_;

  std::vector<int> levels_;                             // per node
  std::vector<std::vector<std::vector<uint32_t>>> links_;  // [node][layer]
  uint32_t entry_point_ = 0;
  int max_level_ = -1;
};

}  // namespace mqa

#endif  // MQA_GRAPH_HNSW_H_
