#include "graph/nn_descent.h"

#include <algorithm>

#include "common/topk.h"

namespace mqa {

namespace {

/// One entry of a node's candidate neighbor list.
struct Entry {
  float distance;
  uint32_t id;
  bool is_new;  // inserted since the last join round
};

bool EntryLess(const Entry& a, const Entry& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

/// Sorted bounded insert; returns true when the entry was added.
bool Insert(std::vector<Entry>* list, uint32_t cap, float distance,
            uint32_t id) {
  if (list->size() >= cap && distance >= list->back().distance) return false;
  for (const Entry& e : *list) {
    if (e.id == id) return false;
  }
  Entry entry{distance, id, true};
  auto pos = std::lower_bound(list->begin(), list->end(), entry, EntryLess);
  list->insert(pos, entry);
  if (list->size() > cap) list->pop_back();
  return true;
}

}  // namespace

Result<AdjacencyGraph> BuildNNDescentGraph(DistanceComputer* dist, uint32_t k,
                                           uint32_t iters, Rng* rng) {
  const uint32_t n = dist->size();
  if (n == 0) return Status::InvalidArgument("empty vector store");
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  k = std::min(k, n - 1);
  if (k == 0) {
    // Single-element store: a graph with one isolated node.
    return AdjacencyGraph(1);
  }

  std::vector<std::vector<Entry>> lists(n);
  for (uint32_t u = 0; u < n; ++u) {
    lists[u].reserve(k + 1);
    for (uint32_t t = 0; t < k; ++t) {
      uint32_t v = static_cast<uint32_t>(rng->NextUint64(n - 1));
      if (v >= u) ++v;  // exclude self
      Insert(&lists[u], k, dist->DistanceBetween(u, v), v);
    }
  }

  // Sampled reverse-neighbor cap per node per round.
  const size_t reverse_cap = k;

  for (uint32_t iter = 0; iter < iters; ++iter) {
    // Snapshot new/old partitions, then clear the new flags.
    std::vector<std::vector<uint32_t>> new_nbrs(n), old_nbrs(n);
    for (uint32_t u = 0; u < n; ++u) {
      for (Entry& e : lists[u]) {
        (e.is_new ? new_nbrs[u] : old_nbrs[u]).push_back(e.id);
        e.is_new = false;
      }
    }
    // Sampled reverse edges.
    std::vector<std::vector<uint32_t>> rev_new(n), rev_old(n);
    for (uint32_t u = 0; u < n; ++u) {
      for (uint32_t v : new_nbrs[u]) {
        if (rev_new[v].size() < reverse_cap) rev_new[v].push_back(u);
      }
      for (uint32_t v : old_nbrs[u]) {
        if (rev_old[v].size() < reverse_cap) rev_old[v].push_back(u);
      }
    }

    uint64_t updates = 0;
    std::vector<uint32_t> pool_new, pool_old;
    for (uint32_t u = 0; u < n; ++u) {
      pool_new = new_nbrs[u];
      pool_new.insert(pool_new.end(), rev_new[u].begin(), rev_new[u].end());
      pool_old = old_nbrs[u];
      pool_old.insert(pool_old.end(), rev_old[u].begin(), rev_old[u].end());

      // new x new and new x old joins: candidates become neighbors of each
      // other when close enough.
      for (size_t i = 0; i < pool_new.size(); ++i) {
        const uint32_t a = pool_new[i];
        for (size_t j = i + 1; j < pool_new.size(); ++j) {
          const uint32_t b = pool_new[j];
          if (a == b) continue;
          const float d = dist->DistanceBetween(a, b);
          if (Insert(&lists[a], k, d, b)) ++updates;
          if (Insert(&lists[b], k, d, a)) ++updates;
        }
        for (uint32_t b : pool_old) {
          if (a == b) continue;
          const float d = dist->DistanceBetween(a, b);
          if (Insert(&lists[a], k, d, b)) ++updates;
          if (Insert(&lists[b], k, d, a)) ++updates;
        }
      }
    }
    if (updates == 0) break;
  }

  AdjacencyGraph graph(n);
  for (uint32_t u = 0; u < n; ++u) {
    std::vector<uint32_t> nbrs;
    nbrs.reserve(lists[u].size());
    for (const Entry& e : lists[u]) nbrs.push_back(e.id);
    graph.SetNeighbors(u, std::move(nbrs));
  }
  return graph;
}

}  // namespace mqa
