#ifndef MQA_GRAPH_GRAPH_H_
#define MQA_GRAPH_GRAPH_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/check.h"
#include "common/result.h"

namespace mqa {

/// Adjacency lists of a (flat) navigation graph: vertex = object id, edge =
/// similarity link. Directed; most builders keep out-degree <= max_degree.
class AdjacencyGraph {
 public:
  AdjacencyGraph() = default;
  explicit AdjacencyGraph(uint32_t num_nodes) : adj_(num_nodes) {}

  uint32_t num_nodes() const { return static_cast<uint32_t>(adj_.size()); }

  const std::vector<uint32_t>& neighbors(uint32_t node) const {
    MQA_DCHECK_LT(node, num_nodes());
    return adj_[node];
  }
  std::vector<uint32_t>* mutable_neighbors(uint32_t node) {
    MQA_DCHECK_LT(node, num_nodes());
    return &adj_[node];
  }

  void AddEdge(uint32_t from, uint32_t to) {
    MQA_DCHECK_LT(from, num_nodes());
    MQA_DCHECK_LT(to, num_nodes());
    adj_[from].push_back(to);
  }

  /// Appends a new isolated node; returns its id.
  uint32_t AddNode() {
    adj_.emplace_back();
    return num_nodes() - 1;
  }
  void SetNeighbors(uint32_t node, std::vector<uint32_t> neighbors) {
    MQA_DCHECK_LT(node, num_nodes());
    adj_[node] = std::move(neighbors);
  }

  /// Total number of directed edges.
  uint64_t num_edges() const;
  double AverageDegree() const;
  uint32_t MaxDegree() const;

  /// Number of nodes reachable from `start` (BFS over out-edges).
  uint32_t ReachableFrom(uint32_t start) const;

  /// True when every node is reachable from `start`.
  bool IsConnectedFrom(uint32_t start) const {
    return ReachableFrom(start) == num_nodes();
  }

  /// Approximate memory footprint in bytes (edge storage).
  uint64_t MemoryBytes() const { return num_edges() * sizeof(uint32_t); }

  Status Save(std::ostream& out) const;
  static Result<AdjacencyGraph> Load(std::istream& in);

 private:
  std::vector<std::vector<uint32_t>> adj_;
};

}  // namespace mqa

#endif  // MQA_GRAPH_GRAPH_H_
