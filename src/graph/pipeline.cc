#include "graph/pipeline.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "common/timer.h"
#include "common/tombstones.h"
#include "graph/nn_descent.h"

namespace mqa {

namespace {

/// Mutable state threaded through the pipeline stages via the DAG context.
struct BuildState {
  GraphBuildConfig config;
  const VectorStore* store = nullptr;
  DistanceComputer* dist = nullptr;
  AdjacencyGraph graph;
  uint32_t medoid = 0;
  Rng rng{42};
};

constexpr char kStateKey[] = "build_state";

Result<BuildState*> GetState(dag::DagContext* ctx) {
  return ctx->Get<BuildState>(kStateKey);
}

// --- Stage bodies -----------------------------------------------------

/// Initialization: approximate kNN lists via NN-Descent.
Status StageInitNNDescent(dag::DagContext* ctx) {
  MQA_ASSIGN_OR_RETURN(BuildState * s, GetState(ctx));
  MQA_ASSIGN_OR_RETURN(
      s->graph, BuildNNDescentGraph(s->dist, s->config.nn_descent_k,
                                    s->config.nn_descent_iters, &s->rng));
  return Status::OK();
}

/// Initialization: random regular graph (Vamana style).
Status StageInitRandom(dag::DagContext* ctx) {
  MQA_ASSIGN_OR_RETURN(BuildState * s, GetState(ctx));
  const uint32_t n = s->dist->size();
  const uint32_t r = std::min(s->config.max_degree, n > 1 ? n - 1 : 0);
  AdjacencyGraph graph(n);
  for (uint32_t u = 0; u < n && r > 0; ++u) {
    std::unordered_set<uint32_t> chosen;
    std::vector<uint32_t> nbrs;
    nbrs.reserve(r);
    while (nbrs.size() < r) {
      uint32_t v = static_cast<uint32_t>(s->rng.NextUint64(n - 1));
      if (v >= u) ++v;
      if (chosen.insert(v).second) nbrs.push_back(v);
    }
    graph.SetNeighbors(u, std::move(nbrs));
  }
  s->graph = std::move(graph);
  return Status::OK();
}

/// Seed acquisition: the medoid is the fixed entry point of build-time and
/// query-time searches.
Status StageSeed(dag::DagContext* ctx) {
  MQA_ASSIGN_OR_RETURN(BuildState * s, GetState(ctx));
  s->medoid = ApproximateMedoid(s->dist, &s->rng);
  return Status::OK();
}

/// Neighbor selection only (KGraph): truncate kNN lists to max_degree.
Status StageTruncate(dag::DagContext* ctx) {
  MQA_ASSIGN_OR_RETURN(BuildState * s, GetState(ctx));
  const uint32_t r = s->config.max_degree;
  for (uint32_t u = 0; u < s->graph.num_nodes(); ++u) {
    auto* nbrs = s->graph.mutable_neighbors(u);
    if (nbrs->size() > r) nbrs->resize(r);
  }
  return Status::OK();
}

/// Candidate acquisition + neighbor selection, fused per vertex as in the
/// reference implementations: search the graph for each vertex's own
/// vector, pool the evaluated vertices with the current neighbors, run
/// RobustPrune, then insert pruned reverse edges.
Status StageRefine(dag::DagContext* ctx, float alpha) {
  MQA_ASSIGN_OR_RETURN(BuildState * s, GetState(ctx));
  const uint32_t n = s->graph.num_nodes();
  const uint32_t r = s->config.max_degree;
  const std::vector<uint32_t> order = s->rng.Permutation(n);
  std::vector<Neighbor> evaluated;
  for (uint32_t u : order) {
    evaluated.clear();
    BeamSearch(s->graph, s->dist, s->store->data(u), {s->medoid},
               /*k=*/1, s->config.build_beam, nullptr, &evaluated);
    for (uint32_t v : s->graph.neighbors(u)) {
      evaluated.push_back({s->dist->DistanceBetween(u, v), v});
    }
    std::vector<uint32_t> selected =
        RobustPrune(u, std::move(evaluated), alpha, r, s->dist);
    s->graph.SetNeighbors(u, selected);
    // Reverse edges, pruning on overflow.
    for (uint32_t v : selected) {
      auto* vn = s->graph.mutable_neighbors(v);
      if (std::find(vn->begin(), vn->end(), u) != vn->end()) continue;
      vn->push_back(u);
      if (vn->size() > r) {
        std::vector<Neighbor> pool;
        pool.reserve(vn->size());
        for (uint32_t w : *vn) {
          pool.push_back({s->dist->DistanceBetween(v, w), w});
        }
        s->graph.SetNeighbors(v,
                              RobustPrune(v, std::move(pool), alpha, r,
                                          s->dist));
      }
    }
    evaluated.clear();
  }
  return Status::OK();
}

/// Connectivity assurance: repeatedly attach components unreachable from
/// the medoid, NSG-style (link the nearest reachable vertex to one
/// unreachable vertex per round, falling back to a direct medoid edge).
Status StageConnect(dag::DagContext* ctx) {
  MQA_ASSIGN_OR_RETURN(BuildState * s, GetState(ctx));
  const uint32_t n = s->graph.num_nodes();
  for (int round = 0; round < 64; ++round) {
    // BFS from the medoid.
    std::vector<bool> reachable(n, false);
    std::queue<uint32_t> frontier;
    frontier.push(s->medoid);
    reachable[s->medoid] = true;
    while (!frontier.empty()) {
      const uint32_t u = frontier.front();
      frontier.pop();
      for (uint32_t v : s->graph.neighbors(u)) {
        if (!reachable[v]) {
          reachable[v] = true;
          frontier.push(v);
        }
      }
    }
    uint32_t unreachable = n;
    for (uint32_t u = 0; u < n; ++u) {
      if (!reachable[u]) {
        unreachable = u;
        break;
      }
    }
    if (unreachable == n) return Status::OK();

    // Find the reachable vertex nearest to it and link from there.
    std::vector<Neighbor> near =
        BeamSearch(s->graph, s->dist, s->store->data(unreachable),
                   {s->medoid}, 1, s->config.build_beam, nullptr);
    uint32_t attach = near.empty() ? s->medoid : near[0].id;
    if (attach == unreachable) attach = s->medoid;
    s->graph.AddEdge(attach, unreachable);
  }
  // Give up gracefully: link any remaining stragglers straight to the
  // medoid so search never dead-ends.
  std::vector<bool> reachable(n, false);
  std::queue<uint32_t> frontier;
  frontier.push(s->medoid);
  reachable[s->medoid] = true;
  while (!frontier.empty()) {
    const uint32_t u = frontier.front();
    frontier.pop();
    for (uint32_t v : s->graph.neighbors(u)) {
      if (!reachable[v]) {
        reachable[v] = true;
        frontier.push(v);
      }
    }
  }
  for (uint32_t u = 0; u < n; ++u) {
    if (!reachable[u]) s->graph.AddEdge(s->medoid, u);
  }
  return Status::OK();
}

}  // namespace

std::vector<uint32_t> RobustPrune(uint32_t node,
                                  std::vector<Neighbor> candidates,
                                  float alpha, uint32_t max_degree,
                                  DistanceComputer* dist) {
  std::sort(candidates.begin(), candidates.end(), NeighborLess);
  // Dedupe (sorted by distance; equal ids may appear at different ranks,
  // so dedupe by id with a set).
  std::unordered_set<uint32_t> seen;
  std::vector<Neighbor> pool;
  pool.reserve(candidates.size());
  for (const Neighbor& c : candidates) {
    if (c.id == node) continue;
    if (seen.insert(c.id).second) pool.push_back(c);
  }

  std::vector<uint32_t> selected;
  std::vector<bool> occluded(pool.size(), false);
  for (size_t i = 0; i < pool.size() && selected.size() < max_degree; ++i) {
    if (occluded[i]) continue;
    const Neighbor& p = pool[i];
    selected.push_back(p.id);
    for (size_t j = i + 1; j < pool.size(); ++j) {
      if (occluded[j]) continue;
      const float d_pc = dist->DistanceBetween(p.id, pool[j].id);
      if (alpha * d_pc <= pool[j].distance) occluded[j] = true;
    }
  }
  return selected;
}

Result<std::unique_ptr<GraphIndex>> BuildGraphIndex(
    const GraphBuildConfig& config, const VectorStore* store,
    std::unique_ptr<DistanceComputer> dist, BuildReport* report) {
  if (store == nullptr || dist == nullptr) {
    return Status::InvalidArgument("store and distance computer are required");
  }
  if (store->size() == 0) {
    return Status::FailedPrecondition("cannot build an index over 0 vectors");
  }
  if (config.max_degree == 0) {
    return Status::InvalidArgument("max_degree must be > 0");
  }
  const std::string& algo = config.algorithm;
  const bool known = algo == "kgraph" || algo == "nsg" || algo == "vamana" ||
                     algo == "mqa-hybrid";
  if (!known) {
    return Status::InvalidArgument("unknown graph algorithm: " + algo);
  }

  dag::DagContext ctx;
  {
    BuildState state;
    state.config = config;
    state.store = store;
    state.dist = dist.get();
    state.rng = Rng(config.seed);
    ctx.Put(kStateKey, std::move(state));
  }

  // Assemble the five-part pipeline for the chosen algorithm.
  dag::DagPipeline pipeline(algo);
  const bool nn_init = algo != "vamana";
  MQA_RETURN_NOT_OK(pipeline.AddNode(
      "initialization", {}, nn_init ? StageInitNNDescent : StageInitRandom));
  MQA_RETURN_NOT_OK(
      pipeline.AddNode("seed_acquisition", {"initialization"}, StageSeed));
  std::string tail = "seed_acquisition";
  if (algo == "kgraph") {
    MQA_RETURN_NOT_OK(pipeline.AddNode("neighbor_selection", {tail},
                                       StageTruncate));
    tail = "neighbor_selection";
  } else if (algo == "nsg") {
    MQA_RETURN_NOT_OK(pipeline.AddNode(
        "refinement", {tail},
        [](dag::DagContext* c) { return StageRefine(c, 1.0f); }));
    tail = "refinement";
  } else if (algo == "vamana") {
    MQA_RETURN_NOT_OK(pipeline.AddNode(
        "refinement_pass1", {tail},
        [](dag::DagContext* c) { return StageRefine(c, 1.0f); }));
    const float alpha = config.alpha;
    MQA_RETURN_NOT_OK(pipeline.AddNode(
        "refinement_pass2", {"refinement_pass1"},
        [alpha](dag::DagContext* c) { return StageRefine(c, alpha); }));
    tail = "refinement_pass2";
  } else {  // mqa-hybrid
    const float alpha = config.alpha;
    MQA_RETURN_NOT_OK(pipeline.AddNode(
        "refinement", {tail},
        [alpha](dag::DagContext* c) { return StageRefine(c, alpha); }));
    tail = "refinement";
  }
  if (algo != "kgraph") {
    MQA_RETURN_NOT_OK(pipeline.AddNode("connectivity", {tail}, StageConnect));
  }

  Timer timer;
  MQA_RETURN_NOT_OK(ctx.Contains(kStateKey)
                        ? Status::OK()
                        : Status::Internal("missing build state"));
  // The stage chain is linear; run sequentially for determinism.
  MQA_RETURN_NOT_OK(pipeline.Run(&ctx, /*parallel=*/false));
  const double total = timer.ElapsedSeconds();

  MQA_ASSIGN_OR_RETURN(BuildState * state, ctx.Get<BuildState>(kStateKey));
  if (report != nullptr) {
    report->algorithm = algo;
    report->total_seconds = total;
    report->stages = pipeline.reports();
    report->avg_degree = state->graph.AverageDegree();
    report->max_degree = state->graph.MaxDegree();
    report->medoid = state->medoid;
    report->connected = state->graph.IsConnectedFrom(state->medoid);
  }

  // Entry points: the medoid. A raw kNN graph (kgraph) has no long-range
  // links, so searches also start from random restarts to reach every
  // cluster — the standard KGraph search recipe.
  std::vector<uint32_t> entries{state->medoid};
  if (algo == "kgraph") {
    Rng entry_rng(config.seed ^ 0xe27);
    const uint32_t n = state->graph.num_nodes();
    for (uint32_t e : entry_rng.SampleWithoutReplacement(
             n, std::min<uint32_t>(n, 16))) {
      entries.push_back(e);
    }
  }
  return std::make_unique<GraphIndex>(algo, std::move(state->graph),
                                      std::move(dist), std::move(entries));
}

std::vector<std::string> GraphAlgorithms() {
  return {"kgraph", "nsg", "vamana", "mqa-hybrid"};
}

Status InsertIntoGraphIndex(GraphIndex* index, const VectorStore* store,
                            uint32_t new_id, const GraphBuildConfig& config) {
  if (index == nullptr || store == nullptr) {
    return Status::InvalidArgument("index and store are required");
  }
  AdjacencyGraph* graph = index->mutable_graph();
  if (new_id != graph->num_nodes()) {
    return Status::InvalidArgument("ids must stay dense: expected id " +
                                   std::to_string(graph->num_nodes()));
  }
  if (new_id >= store->size()) {
    return Status::FailedPrecondition(
        "the new vector must be in the store before insertion");
  }
  DistanceComputer* dist = index->distance();
  graph->AddNode();

  // Candidate acquisition: search for the new vector from the entries.
  std::vector<Neighbor> evaluated;
  BeamSearch(*graph, dist, store->data(new_id), index->entry_points(),
             /*k=*/1, config.build_beam, nullptr, &evaluated);
  std::vector<uint32_t> selected = RobustPrune(
      new_id, std::move(evaluated), config.alpha, config.max_degree, dist);
  graph->SetNeighbors(new_id, selected);

  // Pruned backlinks so the new node is reachable.
  for (uint32_t v : selected) {
    auto* vn = graph->mutable_neighbors(v);
    if (std::find(vn->begin(), vn->end(), new_id) != vn->end()) continue;
    vn->push_back(new_id);
    if (vn->size() > config.max_degree) {
      std::vector<Neighbor> pool;
      pool.reserve(vn->size());
      for (uint32_t w : *vn) {
        pool.push_back({dist->DistanceBetween(v, w), w});
      }
      graph->SetNeighbors(
          v, RobustPrune(v, std::move(pool), config.alpha,
                         config.max_degree, dist));
    }
  }
  // Degenerate safety: an empty selection (e.g. first insert into a
  // 1-node graph) still needs reachability.
  if (selected.empty() && new_id > 0) {
    graph->AddEdge(index->entry_points().empty()
                       ? 0
                       : index->entry_points()[0],
                   new_id);
  }
  return Status::OK();
}

Result<AdjacencyGraph> CompactAdjacency(const AdjacencyGraph& graph,
                                        const std::vector<uint32_t>& remap,
                                        uint32_t live_count,
                                        uint32_t max_degree) {
  if (remap.size() != graph.num_nodes()) {
    return Status::InvalidArgument("remap size does not match graph");
  }
  if (live_count == 0) {
    return Status::FailedPrecondition("cannot compact to an empty graph");
  }
  AdjacencyGraph compacted(live_count);
  std::vector<bool> visited(graph.num_nodes(), false);
  std::vector<uint32_t> queue;
  for (uint32_t node = 0; node < graph.num_nodes(); ++node) {
    const uint32_t new_id = remap[node];
    if (new_id == kTombstonedId) continue;
    // Splice: BFS through chains of dead neighbors; the first live node
    // on every such path becomes a direct edge.
    std::vector<uint32_t> selected;
    queue.clear();
    visited[node] = true;
    for (uint32_t n : graph.neighbors(node)) queue.push_back(n);
    for (size_t head = 0; head < queue.size(); ++head) {
      const uint32_t n = queue[head];
      if (visited[n]) continue;
      visited[n] = true;
      if (remap[n] != kTombstonedId) {
        selected.push_back(remap[n]);
        if (selected.size() >= max_degree) break;
      } else {
        for (uint32_t next : graph.neighbors(n)) queue.push_back(next);
      }
    }
    // Reset only the nodes this BFS touched (cheaper than a full clear).
    visited[node] = false;
    for (uint32_t n : queue) visited[n] = false;
    compacted.SetNeighbors(new_id, std::move(selected));
  }
  return compacted;
}

}  // namespace mqa
