#include "graph/search.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <queue>

#include "common/metrics.h"
#include "common/trace.h"

namespace mqa {

std::vector<Neighbor> BeamSearch(const AdjacencyGraph& graph,
                                 DistanceComputer* dist, const float* query,
                                 const std::vector<uint32_t>& entries,
                                 size_t k, size_t beam_width,
                                 SearchStats* stats,
                                 std::vector<Neighbor>* evaluated,
                                 const SearchFilter& filter) {
  const uint32_t n = graph.num_nodes();
  if (n == 0 || entries.empty()) return {};
  beam_width = std::max(beam_width, k);
  dist->BeginQuery(query);

  std::vector<bool> visited(n, false);

  // Candidate frontier: min-heap by distance.
  auto cand_greater = [](const Neighbor& a, const Neighbor& b) {
    return NeighborLess(b, a);
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(cand_greater)>
      frontier(cand_greater);

  // The beam steers navigation over every vertex; with a filter active,
  // admissible results are collected separately.
  TopK beam(beam_width);
  TopK admitted(k);

  auto offer = [&](float d, uint32_t id) {
    frontier.push({d, id});
    beam.Push(d, id);
    if (filter && filter(id)) admitted.Push(d, id);
  };

  for (uint32_t e : entries) {
    if (e >= n || visited[e]) continue;
    visited[e] = true;
    const float d = dist->Distance(query, e);
    if (stats != nullptr) ++stats->dist_comps;
    if (evaluated != nullptr) evaluated->push_back({d, e});
    offer(d, e);
  }

  // Adjacency-scan scratch, reused across hops. Unvisited neighbors are
  // collected first and their rows prefetched together, so by the time each
  // one is scored its vector is already on the way to L1; scoring order and
  // bound updates are exactly those of the one-pass loop.
  std::vector<uint32_t> to_score;

  while (!frontier.empty()) {
    const Neighbor current = frontier.top();
    frontier.pop();
    // Termination: the closest unexpanded candidate cannot improve the beam.
    if (beam.Full() && current.distance > beam.WorstDistance()) break;
    if (stats != nullptr) ++stats->hops;

    to_score.clear();
    for (uint32_t nbr : graph.neighbors(current.id)) {
      if (visited[nbr]) continue;
      visited[nbr] = true;
      to_score.push_back(nbr);
    }
    for (uint32_t nbr : to_score) dist->Prefetch(nbr);
    for (uint32_t nbr : to_score) {
      const float bound = beam.Full() ? beam.WorstDistance()
                                      : std::numeric_limits<float>::max();
      const float d = dist->DistanceWithBound(query, nbr, bound);
      if (stats != nullptr) ++stats->dist_comps;
      if (d > bound) continue;  // pruned: cannot enter the beam
      if (evaluated != nullptr) evaluated->push_back({d, nbr});
      offer(d, nbr);
    }
  }

  std::vector<Neighbor> results =
      filter ? admitted.TakeSorted() : beam.TakeSorted();
  if (results.size() > k) results.resize(k);
  return results;
}

uint32_t ApproximateMedoid(DistanceComputer* dist, Rng* rng,
                           uint32_t sample_size) {
  const uint32_t n = dist->size();
  if (n == 0) return 0;
  const uint32_t s = std::min(sample_size, n);
  std::vector<uint32_t> sample = rng->SampleWithoutReplacement(n, s);
  uint32_t best = sample[0];
  double best_sum = std::numeric_limits<double>::max();
  for (uint32_t cand : sample) {
    double sum = 0.0;
    for (uint32_t other : sample) {
      if (other == cand) continue;
      sum += dist->DistanceBetween(cand, other);
    }
    if (sum < best_sum) {
      best_sum = sum;
      best = cand;
    }
  }
  return best;
}

Result<std::vector<Neighbor>> GraphIndex::Search(const float* query,
                                                 const SearchParams& params,
                                                 SearchStats* stats) {
  Span span("graph/search");
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (graph_.num_nodes() == 0) return Status::FailedPrecondition("empty index");
  // The traversal fills a fresh local stats block; global counters and the
  // caller's accumulator are fed from it afterwards via SearchStats::Merge
  // (one resolved-pointer add per query, traversal loop untouched).
  SearchStats local;
  std::vector<Neighbor> out =
      BeamSearch(graph_, dist_.get(), query, entry_points_, params.k,
                 params.beam_width, &local, nullptr, params.filter);
  static Counter* const searches =
      MetricsRegistry::Global().GetCounter("graph/searches");
  static Counter* const hops =
      MetricsRegistry::Global().GetCounter("graph/hops");
  static Counter* const dist_comps =
      MetricsRegistry::Global().GetCounter("graph/dist_comps");
  searches->Increment();
  hops->Increment(local.hops);
  dist_comps->Increment(local.dist_comps);
  if (stats != nullptr) stats->Merge(local);
  return out;
}

Status GraphIndex::Save(std::ostream& out) const {
  const uint32_t name_len = static_cast<uint32_t>(name_.size());
  out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  out.write(name_.data(), name_len);
  MQA_RETURN_NOT_OK(graph_.Save(out));
  const uint32_t num_entries = static_cast<uint32_t>(entry_points_.size());
  out.write(reinterpret_cast<const char*>(&num_entries),
            sizeof(num_entries));
  out.write(reinterpret_cast<const char*>(entry_points_.data()),
            num_entries * sizeof(uint32_t));
  if (!out) return Status::IoError("failed to write graph index");
  return Status::OK();
}

Result<std::unique_ptr<GraphIndex>> GraphIndex::Load(
    std::istream& in, std::unique_ptr<DistanceComputer> dist) {
  uint32_t name_len = 0;
  in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  if (!in || name_len > 4096) return Status::IoError("bad index name");
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  if (!in) return Status::IoError("truncated index name");
  MQA_ASSIGN_OR_RETURN(AdjacencyGraph graph, AdjacencyGraph::Load(in));
  uint32_t num_entries = 0;
  in.read(reinterpret_cast<char*>(&num_entries), sizeof(num_entries));
  if (!in || num_entries > graph.num_nodes()) {
    return Status::IoError("bad entry point count");
  }
  std::vector<uint32_t> entries(num_entries);
  in.read(reinterpret_cast<char*>(entries.data()),
          num_entries * sizeof(uint32_t));
  if (!in) return Status::IoError("truncated entry points");
  if (dist != nullptr && dist->size() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "distance computer size does not match the saved graph");
  }
  return std::make_unique<GraphIndex>(std::move(name), std::move(graph),
                                      std::move(dist), std::move(entries));
}

Result<std::vector<Neighbor>> BruteForceIndex::Search(
    const float* query, const SearchParams& params, SearchStats* stats) {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  const uint32_t n = dist_->size();
  if (n == 0) return Status::FailedPrecondition("empty index");
  TopK topk(params.k);
  dist_->BeginQuery(query);
  if (!params.filter && !dist_->PrunesWithBound()) {
    // Exact linear scan: no per-candidate branch can skip work, so chunked
    // batches let the computer overlap each row's fetch with the previous
    // row's arithmetic. Bitwise identical to the per-candidate loop below.
    constexpr uint32_t kChunk = 256;
    std::vector<uint32_t> ids(kChunk);
    std::vector<float> dists(kChunk);
    for (uint32_t start = 0; start < n; start += kChunk) {
      const uint32_t count = std::min(kChunk, n - start);
      for (uint32_t i = 0; i < count; ++i) ids[i] = start + i;
      dist_->DistanceBatch(query, ids.data(), count, dists.data());
      if (stats != nullptr) stats->dist_comps += count;
      for (uint32_t i = 0; i < count; ++i) topk.Push(dists[i], start + i);
    }
    return topk.TakeSorted();
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (params.filter && !params.filter(i)) continue;
    const float bound = topk.Full() ? topk.WorstDistance()
                                    : std::numeric_limits<float>::max();
    const float d = dist_->DistanceWithBound(query, i, bound);
    if (stats != nullptr) ++stats->dist_comps;
    if (d > bound) continue;
    topk.Push(d, i);
  }
  return topk.TakeSorted();
}

}  // namespace mqa
