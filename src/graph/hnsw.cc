#include "graph/hnsw.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <queue>

namespace mqa {

Result<std::unique_ptr<HnswIndex>> HnswIndex::Build(
    const HnswConfig& config, const VectorStore* store,
    std::unique_ptr<DistanceComputer> dist) {
  if (store == nullptr || dist == nullptr) {
    return Status::InvalidArgument("store and distance computer are required");
  }
  if (store->size() == 0) {
    return Status::FailedPrecondition("cannot build an index over 0 vectors");
  }
  if (config.m < 2) return Status::InvalidArgument("m must be >= 2");
  std::unique_ptr<HnswIndex> index(
      new HnswIndex(config, store, std::move(dist)));
  const uint32_t n = store->size();
  index->levels_.reserve(n);
  index->links_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) index->Insert(i);
  return index;
}

void HnswIndex::Insert(uint32_t id) {
  // Exponentially distributed level: floor(-ln(U) * 1/ln(M)).
  const double ml = 1.0 / std::log(static_cast<double>(config_.m));
  double u = rng_.UniformDouble();
  while (u <= 1e-300) u = rng_.UniformDouble();
  const int level = static_cast<int>(-std::log(u) * ml);

  levels_.push_back(level);
  links_.emplace_back(static_cast<size_t>(level) + 1);

  if (max_level_ < 0) {
    // First element.
    entry_point_ = id;
    max_level_ = level;
    return;
  }

  const float* q = store_->data(id);
  dist_->BeginQuery(q);
  uint32_t cur = entry_point_;
  float cur_dist = dist_->Distance(q, cur);

  // Greedy descent through layers above the insertion level.
  for (int layer = max_level_; layer > level; --layer) {
    bool improved = true;
    while (improved) {
      improved = false;
      for (uint32_t nbr : links_[cur][layer]) {
        const float d = dist_->Distance(q, nbr);
        if (d < cur_dist) {
          cur = nbr;
          cur_dist = d;
          improved = true;
        }
      }
    }
  }

  // Connect at each layer from min(level, max_level_) down to 0.
  for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
    std::vector<Neighbor> candidates =
        SearchLayer(q, cur, cur_dist, config_.ef_construction, layer,
                    nullptr);
    const uint32_t m_max = layer == 0 ? config_.m * 2 : config_.m;
    std::vector<uint32_t> selected =
        SelectNeighbors(id, candidates, config_.m);
    links_[id][layer] = selected;
    // Backlinks with shrink-on-overflow.
    for (uint32_t nbr : selected) {
      auto& nbr_links = links_[nbr][layer];
      nbr_links.push_back(id);
      if (nbr_links.size() > m_max) {
        std::vector<Neighbor> pool;
        pool.reserve(nbr_links.size());
        for (uint32_t w : nbr_links) {
          pool.push_back({dist_->DistanceBetween(nbr, w), w});
        }
        nbr_links = SelectNeighbors(nbr, std::move(pool), m_max);
      }
    }
    if (!candidates.empty()) {
      cur = candidates[0].id;
      cur_dist = candidates[0].distance;
    }
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = id;
  }
}

std::vector<Neighbor> HnswIndex::SearchLayer(const float* query,
                                             uint32_t entry, float entry_dist,
                                             size_t ef, int layer,
                                             SearchStats* stats,
                                             const SearchFilter& filter,
                                             size_t k) const {
  std::vector<bool> visited(levels_.size(), false);
  auto cand_greater = [](const Neighbor& a, const Neighbor& b) {
    return NeighborLess(b, a);
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(cand_greater)>
      frontier(cand_greater);
  TopK beam(ef);
  TopK admitted(k > 0 ? k : ef);

  visited[entry] = true;
  frontier.push({entry_dist, entry});
  beam.Push(entry_dist, entry);
  if (filter && filter(entry)) admitted.Push(entry_dist, entry);

  // Two-pass adjacency scan (collect + prefetch, then score), same as
  // BeamSearch in graph/search.cc; scoring order is unchanged.
  std::vector<uint32_t> to_score;

  while (!frontier.empty()) {
    const Neighbor current = frontier.top();
    frontier.pop();
    if (beam.Full() && current.distance > beam.WorstDistance()) break;
    if (stats != nullptr) ++stats->hops;
    if (static_cast<size_t>(layer) >= links_[current.id].size()) continue;
    to_score.clear();
    for (uint32_t nbr : links_[current.id][layer]) {
      if (visited[nbr]) continue;
      visited[nbr] = true;
      to_score.push_back(nbr);
    }
    for (uint32_t nbr : to_score) dist_->Prefetch(nbr);
    for (uint32_t nbr : to_score) {
      const float bound = beam.Full() ? beam.WorstDistance()
                                      : std::numeric_limits<float>::max();
      const float d = dist_->DistanceWithBound(query, nbr, bound);
      if (stats != nullptr) ++stats->dist_comps;
      if (d > bound) continue;
      frontier.push({d, nbr});
      beam.Push(d, nbr);
      if (filter && filter(nbr)) admitted.Push(d, nbr);
    }
  }
  return filter ? admitted.TakeSorted() : beam.TakeSorted();
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(
    uint32_t node, std::vector<Neighbor> candidates, uint32_t m) const {
  std::sort(candidates.begin(), candidates.end(), NeighborLess);
  std::vector<uint32_t> selected;
  std::vector<Neighbor> kept;
  for (const Neighbor& c : candidates) {
    if (c.id == node) continue;
    if (selected.size() >= m) break;
    bool good = true;
    for (const Neighbor& s : kept) {
      if (dist_->DistanceBetween(s.id, c.id) < c.distance) {
        good = false;
        break;
      }
    }
    if (good) {
      selected.push_back(c.id);
      kept.push_back(c);
    }
  }
  // Fallback: if diversification kept too few, pad with the closest
  // remaining candidates (keepPrunedConnections).
  if (selected.size() < m) {
    for (const Neighbor& c : candidates) {
      if (selected.size() >= m) break;
      if (c.id == node) continue;
      if (std::find(selected.begin(), selected.end(), c.id) ==
          selected.end()) {
        selected.push_back(c.id);
      }
    }
  }
  return selected;
}

Result<std::vector<Neighbor>> HnswIndex::Search(const float* query,
                                                const SearchParams& params,
                                                SearchStats* stats) {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (levels_.empty()) return Status::FailedPrecondition("empty index");

  dist_->BeginQuery(query);
  uint32_t cur = entry_point_;
  float cur_dist = dist_->Distance(query, cur);
  if (stats != nullptr) ++stats->dist_comps;
  for (int layer = max_level_; layer > 0; --layer) {
    bool improved = true;
    while (improved) {
      improved = false;
      for (uint32_t nbr : links_[cur][layer]) {
        const float d = dist_->Distance(query, nbr);
        if (stats != nullptr) ++stats->dist_comps;
        if (d < cur_dist) {
          cur = nbr;
          cur_dist = d;
          improved = true;
        }
      }
      if (stats != nullptr) ++stats->hops;
    }
  }
  std::vector<Neighbor> results = SearchLayer(
      query, cur, cur_dist, std::max(params.beam_width, params.k), 0, stats,
      params.filter, params.k);
  if (results.size() > params.k) results.resize(params.k);
  return results;
}

Status HnswIndex::InsertAppended() {
  const uint32_t new_id = static_cast<uint32_t>(levels_.size());
  if (new_id >= store_->size()) {
    return Status::FailedPrecondition(
        "append the vector to the store before inserting");
  }
  Insert(new_id);
  return Status::OK();
}

namespace {
constexpr uint32_t kHnswMagic = 0x4d514148;  // "MQAH"

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}
}  // namespace

Status HnswIndex::Save(std::ostream& out) const {
  WritePod(out, kHnswMagic);
  WritePod(out, static_cast<uint32_t>(levels_.size()));
  WritePod(out, entry_point_);
  WritePod(out, max_level_);
  for (size_t i = 0; i < levels_.size(); ++i) {
    WritePod(out, levels_[i]);
    for (const auto& layer : links_[i]) {
      WritePod(out, static_cast<uint32_t>(layer.size()));
      out.write(reinterpret_cast<const char*>(layer.data()),
                static_cast<std::streamsize>(layer.size() *
                                             sizeof(uint32_t)));
    }
  }
  if (!out) return Status::IoError("failed to write hnsw index");
  return Status::OK();
}

Result<std::unique_ptr<HnswIndex>> HnswIndex::Load(
    std::istream& in, const HnswConfig& config, const VectorStore* store,
    std::unique_ptr<DistanceComputer> dist) {
  if (store == nullptr || dist == nullptr) {
    return Status::InvalidArgument("store and distance computer are required");
  }
  uint32_t magic = 0;
  if (!ReadPod(in, &magic) || magic != kHnswMagic) {
    return Status::IoError("bad hnsw header");
  }
  uint32_t n = 0;
  if (!ReadPod(in, &n)) return Status::IoError("truncated node count");
  if (n != store->size()) {
    return Status::InvalidArgument("saved hnsw does not match the store");
  }
  std::unique_ptr<HnswIndex> index(
      new HnswIndex(config, store, std::move(dist)));
  if (!ReadPod(in, &index->entry_point_) ||
      !ReadPod(in, &index->max_level_)) {
    return Status::IoError("truncated hnsw header");
  }
  index->levels_.resize(n);
  index->links_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!ReadPod(in, &index->levels_[i]) || index->levels_[i] < 0 ||
        index->levels_[i] > 64) {
      return Status::IoError("bad level in hnsw file");
    }
    index->links_[i].resize(static_cast<size_t>(index->levels_[i]) + 1);
    for (auto& layer : index->links_[i]) {
      uint32_t deg = 0;
      if (!ReadPod(in, &deg) || deg > n) {
        return Status::IoError("bad degree in hnsw file");
      }
      layer.resize(deg);
      in.read(reinterpret_cast<char*>(layer.data()),
              static_cast<std::streamsize>(deg * sizeof(uint32_t)));
      if (!in) return Status::IoError("truncated hnsw links");
    }
  }
  return index;
}

uint64_t HnswIndex::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& per_node : links_) {
    for (const auto& layer : per_node) bytes += layer.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace mqa
