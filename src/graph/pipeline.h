#ifndef MQA_GRAPH_PIPELINE_H_
#define MQA_GRAPH_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/topk.h"
#include "dag/dag.h"
#include "graph/search.h"
#include "vector/vector_store.h"

namespace mqa {

/// Parameters of the unified five-stage navigation-graph construction
/// pipeline. The `algorithm` selects how the stages are instantiated:
///
///   "kgraph"      init: NN-Descent kNN lists; no refinement
///   "nsg"         init: NN-Descent; search-based refine with the MRNG rule
///                 (alpha = 1); connectivity repair from the medoid
///   "vamana"      init: random regular graph; two refine passes
///                 (alpha 1, then `alpha`); DiskANN's RobustPrune
///   "mqa-hybrid"  the paper's composed algorithm: NN-Descent init +
///                 RobustPrune refinement + connectivity repair
struct GraphBuildConfig {
  std::string algorithm = "mqa-hybrid";
  uint32_t max_degree = 32;       ///< R: out-degree bound after selection
  uint32_t build_beam = 64;       ///< L: beam width of build-time searches
  float alpha = 1.2f;             ///< RobustPrune diversification factor
  uint32_t nn_descent_k = 32;     ///< kNN-list size of the init stage
  uint32_t nn_descent_iters = 8;  ///< max NN-Descent rounds
  uint64_t seed = 42;
  bool run_stages_on_dag = true;  ///< execute stages through the DAG engine
};

/// What the status-monitoring panel shows about a finished build.
struct BuildReport {
  std::string algorithm;
  double total_seconds = 0.0;
  std::vector<dag::NodeReport> stages;  ///< per-stage names and timings
  double avg_degree = 0.0;
  uint32_t max_degree = 0;
  uint32_t medoid = 0;
  bool connected = false;
};

/// DiskANN's RobustPrune neighbor selection. Given a candidate pool for
/// `node` (any order, duplicates/self allowed), returns a diverse neighbor
/// set of at most `max_degree`: a candidate is occluded when some already
/// selected neighbor p satisfies alpha * d(p, c) <= d(node, c).
/// With alpha = 1 this is the MRNG rule used by NSG.
std::vector<uint32_t> RobustPrune(uint32_t node,
                                  std::vector<Neighbor> candidates,
                                  float alpha, uint32_t max_degree,
                                  DistanceComputer* dist);

/// Runs the construction pipeline and returns a searchable index. The
/// distance computer is consumed (the index owns it afterwards). `store`
/// must outlive the index. `report` (optional) receives stage timings.
Result<std::unique_ptr<GraphIndex>> BuildGraphIndex(
    const GraphBuildConfig& config, const VectorStore* store,
    std::unique_ptr<DistanceComputer> dist, BuildReport* report = nullptr);

/// Algorithms accepted by GraphBuildConfig::algorithm.
std::vector<std::string> GraphAlgorithms();

/// Incremental ingestion: inserts row `new_id` of the store into an
/// existing index, DiskANN/Vamana style — search for the new vector,
/// RobustPrune the evaluated pool into its neighbor list, then add pruned
/// backlinks. `new_id` must be exactly index->size() (dense ids) and must
/// already be present in the store the index's distance computer reads.
Status InsertIntoGraphIndex(GraphIndex* index, const VectorStore* store,
                            uint32_t new_id, const GraphBuildConfig& config);

/// Physically evicts tombstoned nodes from a navigation graph. `remap` maps
/// old ids to new dense ids (kTombstonedId = deleted, as produced by
/// TombstoneSet::BuildRemap). For every live node, edges into a deleted
/// node are spliced through it transitively — the dead node's own (live)
/// neighbors become direct edges, chains of dead nodes are followed — so
/// paths that routed through evicted vertices survive. Per-node degree is
/// capped at `max_degree` (splicing can only widen candidate sets; order
/// keeps original neighbors first). Pure adjacency surgery: no distances
/// are computed, which keeps compaction cheap relative to a rebuild.
Result<AdjacencyGraph> CompactAdjacency(const AdjacencyGraph& graph,
                                        const std::vector<uint32_t>& remap,
                                        uint32_t live_count,
                                        uint32_t max_degree);

}  // namespace mqa

#endif  // MQA_GRAPH_PIPELINE_H_
