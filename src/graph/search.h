#ifndef MQA_GRAPH_SEARCH_H_
#define MQA_GRAPH_SEARCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/topk.h"
#include "graph/graph.h"
#include "graph/index.h"
#include "vector/vector_store.h"

namespace mqa {

/// Best-first beam search over a navigation graph — the paper's "Query
/// Execution" traversal: start at the entry vertices, repeatedly expand the
/// closest unexpanded vertex, stop when the beam can no longer improve.
/// Distances go through `dist->DistanceWithBound`, so the incremental
/// multi-vector scan prunes against the current beam frontier.
///
/// Returns the k best results sorted ascending. When `evaluated` is given,
/// every (distance, id) actually scored is appended (build-time candidate
/// pools). `stats` may be null. When `filter` is set, filtered-out
/// vertices are still traversed (they keep the graph navigable) but only
/// admitted ids are returned.
std::vector<Neighbor> BeamSearch(const AdjacencyGraph& graph,
                                 DistanceComputer* dist, const float* query,
                                 const std::vector<uint32_t>& entries,
                                 size_t k, size_t beam_width,
                                 SearchStats* stats,
                                 std::vector<Neighbor>* evaluated = nullptr,
                                 const SearchFilter& filter = nullptr);

/// Approximate medoid: the sampled node minimizing total distance to a
/// random sample. Deterministic given the rng seed.
uint32_t ApproximateMedoid(DistanceComputer* dist, Rng* rng,
                           uint32_t sample_size = 128);

/// A flat navigation-graph index (NSG / Vamana / KGraph / MQA-hybrid
/// results all live here): graph + distance computer + entry points.
class GraphIndex : public VectorIndex {
 public:
  GraphIndex(std::string name, AdjacencyGraph graph,
             std::unique_ptr<DistanceComputer> dist,
             std::vector<uint32_t> entry_points)
      : name_(std::move(name)),
        graph_(std::move(graph)),
        dist_(std::move(dist)),
        entry_points_(std::move(entry_points)) {}

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params,
                                       SearchStats* stats) override;

  std::string name() const override { return name_; }
  uint32_t size() const override { return graph_.num_nodes(); }
  uint64_t MemoryBytes() const override { return graph_.MemoryBytes(); }

  const AdjacencyGraph& graph() const { return graph_; }
  AdjacencyGraph* mutable_graph() { return &graph_; }
  DistanceComputer* distance() { return dist_.get(); }
  const std::vector<uint32_t>& entry_points() const { return entry_points_; }

  /// Persists name + graph + entry points (vectors are stored separately
  /// in the VectorStore).
  Status Save(std::ostream& out) const;

  /// Restores an index saved with Save(). The caller supplies a distance
  /// computer over the matching vector store.
  static Result<std::unique_ptr<GraphIndex>> Load(
      std::istream& in, std::unique_ptr<DistanceComputer> dist);

 private:
  std::string name_;
  AdjacencyGraph graph_;
  std::unique_ptr<DistanceComputer> dist_;
  std::vector<uint32_t> entry_points_;
};

/// Exhaustive scan baseline. Exact, O(N) per query; also benefits from
/// bound-pruned distances once the top-k fills up.
class BruteForceIndex : public VectorIndex {
 public:
  explicit BruteForceIndex(std::unique_ptr<DistanceComputer> dist)
      : dist_(std::move(dist)) {}

  Result<std::vector<Neighbor>> Search(const float* query,
                                       const SearchParams& params,
                                       SearchStats* stats) override;

  std::string name() const override { return "bruteforce"; }
  uint32_t size() const override { return dist_->size(); }
  uint64_t MemoryBytes() const override { return 0; }

  DistanceComputer* distance() { return dist_.get(); }

 private:
  std::unique_ptr<DistanceComputer> dist_;
};

}  // namespace mqa

#endif  // MQA_GRAPH_SEARCH_H_
