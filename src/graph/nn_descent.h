#ifndef MQA_GRAPH_NN_DESCENT_H_
#define MQA_GRAPH_NN_DESCENT_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "graph/graph.h"
#include "vector/vector_store.h"

namespace mqa {

/// Builds an approximate k-nearest-neighbor graph by NN-Descent (Dong et
/// al.): start from random neighbor lists and iteratively improve them via
/// neighbor-of-neighbor joins, comparing only pairs where at least one side
/// is newly inserted. The result is the standard initialization stage for
/// NSG-style navigation graphs.
///
/// `k` is the neighbor-list size; `iters` bounds the improvement rounds
/// (the loop also stops early when an iteration makes no updates).
Result<AdjacencyGraph> BuildNNDescentGraph(DistanceComputer* dist, uint32_t k,
                                           uint32_t iters, Rng* rng);

}  // namespace mqa

#endif  // MQA_GRAPH_NN_DESCENT_H_
