#include "graph/graph.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <queue>

namespace mqa {

namespace {

constexpr uint32_t kGraphMagic = 0x4d514147;  // "MQAG"

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

uint64_t AdjacencyGraph::num_edges() const {
  uint64_t n = 0;
  for (const auto& nbrs : adj_) n += nbrs.size();
  return n;
}

double AdjacencyGraph::AverageDegree() const {
  if (adj_.empty()) return 0.0;
  return static_cast<double>(num_edges()) / static_cast<double>(adj_.size());
}

uint32_t AdjacencyGraph::MaxDegree() const {
  uint32_t max_deg = 0;
  for (const auto& nbrs : adj_) {
    max_deg = std::max(max_deg, static_cast<uint32_t>(nbrs.size()));
  }
  return max_deg;
}

uint32_t AdjacencyGraph::ReachableFrom(uint32_t start) const {
  if (start >= num_nodes()) return 0;
  std::vector<bool> visited(num_nodes(), false);
  std::queue<uint32_t> frontier;
  frontier.push(start);
  visited[start] = true;
  uint32_t count = 1;
  while (!frontier.empty()) {
    const uint32_t u = frontier.front();
    frontier.pop();
    for (uint32_t v : adj_[u]) {
      if (!visited[v]) {
        visited[v] = true;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count;
}

Status AdjacencyGraph::Save(std::ostream& out) const {
  WritePod(out, kGraphMagic);
  WritePod(out, num_nodes());
  for (const auto& nbrs : adj_) {
    WritePod(out, static_cast<uint32_t>(nbrs.size()));
    out.write(reinterpret_cast<const char*>(nbrs.data()),
              static_cast<std::streamsize>(nbrs.size() * sizeof(uint32_t)));
  }
  if (!out) return Status::IoError("failed to write graph");
  return Status::OK();
}

Result<AdjacencyGraph> AdjacencyGraph::Load(std::istream& in) {
  uint32_t magic = 0;
  if (!ReadPod(in, &magic) || magic != kGraphMagic) {
    return Status::IoError("bad graph header");
  }
  uint32_t n = 0;
  if (!ReadPod(in, &n)) return Status::IoError("truncated node count");
  AdjacencyGraph graph(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t deg = 0;
    if (!ReadPod(in, &deg) || deg > n) {
      return Status::IoError("bad degree in graph file");
    }
    std::vector<uint32_t> nbrs(deg);
    in.read(reinterpret_cast<char*>(nbrs.data()),
            static_cast<std::streamsize>(deg * sizeof(uint32_t)));
    if (!in) return Status::IoError("truncated adjacency list");
    graph.SetNeighbors(i, std::move(nbrs));
  }
  return graph;
}

}  // namespace mqa
