#ifndef MQA_GRAPH_INDEX_H_
#define MQA_GRAPH_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/topk.h"

namespace mqa {

/// Predicate deciding whether a stored id may appear in the results.
/// Filtered-out vertices are still traversed (they keep the graph
/// navigable); they just cannot be returned.
using SearchFilter = std::function<bool(uint32_t)>;

/// Per-query search knobs. `beam_width` (a.k.a. ef / L) trades accuracy for
/// speed; searches return min(k, beam_width) results. `filter` (optional)
/// restricts which ids are eligible as results — attribute-constrained
/// search.
struct SearchParams {
  size_t k = 10;
  size_t beam_width = 64;
  SearchFilter filter;
};

/// Per-query search counters (accumulated when a pointer is supplied).
struct SearchStats {
  uint64_t hops = 0;        ///< vertices expanded
  uint64_t dist_comps = 0;  ///< distance evaluations issued
  uint64_t io_errors = 0;   ///< failed page reads (disk-resident indexes)
  /// True when I/O failures degraded the query to partial (cache-only)
  /// results; the neighbors returned are still sorted and valid, but the
  /// traversal could not expand everything it wanted to.
  bool partial = false;
  /// Shard coverage of a fanned-out query (sharded retrieval only; both
  /// stay 0 on single-index searches). shards_ok < shards_total means some
  /// shards' corpora are missing from the results — a coverage gap, which
  /// is distinct from `partial` (an individual index truncating its own
  /// traversal).
  uint32_t shards_total = 0;
  uint32_t shards_ok = 0;

  /// Folds another stats block into this one: counters add, `partial`
  /// ORs, shard coverage adds per side. The one merge rule shared by the
  /// in-memory graph, the disk index and the sharded fan-out.
  void Merge(const SearchStats& other) {
    hops += other.hops;
    dist_comps += other.dist_comps;
    io_errors += other.io_errors;
    partial = partial || other.partial;
    shards_total += other.shards_total;
    shards_ok += other.shards_ok;
  }

  void Reset() { *this = SearchStats{}; }
};

/// The common query interface over every index in MQA (graphs, brute force,
/// disk-resident). Queries are flattened vectors in the index's space.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// k-nearest-neighbor search. Results are sorted ascending by distance.
  virtual Result<std::vector<Neighbor>> Search(const float* query,
                                               const SearchParams& params,
                                               SearchStats* stats) = 0;

  virtual std::string name() const = 0;
  virtual uint32_t size() const = 0;

  /// Approximate index memory footprint in bytes (structure only, not the
  /// vectors).
  virtual uint64_t MemoryBytes() const = 0;
};

}  // namespace mqa

#endif  // MQA_GRAPH_INDEX_H_
