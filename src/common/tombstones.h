#ifndef MQA_COMMON_TOMBSTONES_H_
#define MQA_COMMON_TOMBSTONES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mqa {

/// Sentinel produced by TombstoneSet::BuildRemap for deleted ids.
inline constexpr uint32_t kTombstonedId = 0xFFFFFFFFu;

/// A dense set of logically deleted ids over a corpus with ids [0, size).
/// Deletion in MQA is two-phase: a tombstone hides the object from results
/// immediately (searches filter it out while the graph stays navigable),
/// and a later compaction pass physically evicts it. Not thread-safe; the
/// owner serializes mutation with retrieval like all framework state.
class TombstoneSet {
 public:
  /// Marks `id` deleted. `size` is the current corpus size (ids must stay
  /// in range); double deletion is an error so callers can surface it.
  Status Mark(uint32_t id, uint64_t size) {
    if (id >= size) {
      return Status::NotFound("cannot delete id " + std::to_string(id) +
                              ": corpus has " + std::to_string(size) +
                              " objects");
    }
    if (id < dead_.size() && dead_[id]) {
      return Status::FailedPrecondition("object " + std::to_string(id) +
                                        " is already deleted");
    }
    if (dead_.size() < size) dead_.resize(size, false);
    dead_[id] = true;
    ++count_;
    return Status::OK();
  }

  bool IsDeleted(uint32_t id) const {
    return id < dead_.size() && dead_[id];
  }

  /// True when at least one id is tombstoned (the searches-need-a-filter
  /// fast check).
  bool any() const { return count_ > 0; }
  uint64_t count() const { return count_; }

  /// Fraction of `size` ids that are tombstoned (0 when the corpus is
  /// empty) — the garbage ratio that triggers compaction.
  double GarbageRatio(uint64_t size) const {
    return size == 0 ? 0.0
                     : static_cast<double>(count_) / static_cast<double>(size);
  }

  /// Builds the compaction remap: old id -> new dense id for live ids,
  /// kTombstonedId for deleted ones. Returns the live count.
  uint32_t BuildRemap(uint64_t size, std::vector<uint32_t>* remap) const {
    remap->assign(size, kTombstonedId);
    uint32_t next = 0;
    for (uint64_t id = 0; id < size; ++id) {
      if (!IsDeleted(static_cast<uint32_t>(id))) {
        (*remap)[id] = next++;
      }
    }
    return next;
  }

  /// Forgets all tombstones (after compaction physically evicted them).
  void Clear() {
    dead_.clear();
    count_ = 0;
  }

 private:
  std::vector<bool> dead_;
  uint64_t count_ = 0;
};

}  // namespace mqa

#endif  // MQA_COMMON_TOMBSTONES_H_
