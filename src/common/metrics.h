#ifndef MQA_COMMON_METRICS_H_
#define MQA_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace mqa {

/// A monotonically increasing event count. All operations are relaxed
/// atomics: totals are exact once writers quiesce, and increments never
/// serialize hot paths. Pointers returned by the registry are stable for
/// the process lifetime, so call sites fetch once and cache.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-written instantaneous value (queue depth, cache size, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// An immutable copy of a histogram's state, detached from the live atomics
/// so it can be merged, summarized and exported without racing recorders.
/// `bounds` are the inclusive upper edges of the finite buckets; one extra
/// overflow bucket collects everything above the last bound.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  ///< bounds.size() + 1 entries
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Nearest-rank percentile with linear interpolation inside the bucket
  /// (bucket i spans (bounds[i-1], bounds[i]], bucket 0 starts at 0).
  /// The estimate is clamped to the observed [min, max]; the overflow
  /// bucket reports max. p in [0, 100].
  double Percentile(double p) const;

  /// Element-wise merge of another snapshot recorded with identical
  /// bounds (per-shard or per-process aggregation).
  Status Merge(const HistogramSnapshot& other);
};

/// A thread-safe fixed-bucket histogram. Recording is wait-free on the
/// bucket counters plus CAS loops for sum/min/max; there is no lock, so
/// concurrent Record calls from query threads never contend on a mutex.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

  /// The registry's default bucketing, tuned for latencies in
  /// milliseconds: exponential edges from 10 us to 10 s.
  static const std::vector<double>& DefaultLatencyBoundsMs();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// The process-wide metrics surface: named counters, gauges and histograms
/// (naming convention `component/name`, e.g. "diskindex/page_reads").
///
/// Lookup takes a reader-writer lock (shared for the common found-it
/// path, exclusive only to insert a new name); the returned pointers are
/// stable until process exit, so instrumented call sites resolve their
/// metric once (usually into a function-local static or a member) and
/// afterwards pay only a relaxed atomic per event — near-zero cost when
/// nobody is exporting.
/// Entries are never removed; ResetAll zeroes values but keeps pointers
/// valid, so tests and benches can bracket a measured region.
///
/// Production code records through Global(); independent instances exist
/// for unit tests and for merging experiments.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Finds or creates. A histogram's bounds are fixed by the first caller;
  /// later callers get the existing instance regardless of `bounds`.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name,
                          const std::vector<double>& bounds =
                              Histogram::DefaultLatencyBoundsMs());

  /// Read-side helpers (zero / empty snapshot when the metric is absent).
  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  HistogramSnapshot HistogramSnapshotOf(std::string_view name) const;

  /// All registered names, sorted (counters, gauges and histograms share
  /// one namespace section each).
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;

  /// Zeroes every metric (pointers stay valid).
  void ResetAll();

  /// Machine-readable export:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{name:{count,sum,min,max,mean,p50,p95,p99,
  ///                        buckets:[[bound,count],...]}}}
  /// Keys are sorted, numbers deterministic — golden-testable.
  std::string ToJson() const;

 private:
  mutable SharedMutex mu_;
  // node-based maps: pointers to mapped values are stable across inserts.
  // The lock guards map *structure* only; the mapped metric objects are
  // internally thread-safe (relaxed atomics), so readers holding the
  // shared side may observe and reset them.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      MQA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      MQA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      MQA_GUARDED_BY(mu_);
};

/// Measures wall time from construction to destruction through a
/// monotonic clock and records milliseconds into a histogram. For
/// latency distributions where a trace span would be too fine-grained.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram);
  ~ScopedLatency();
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  int64_t start_micros_;
};

}  // namespace mqa

#endif  // MQA_COMMON_METRICS_H_
