#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace mqa {
namespace internal {

CheckFailure::CheckFailure(const char* file, int line,
                           const char* condition) {
  stream_ << file << ":" << line << " Check failed: " << condition;
}

CheckFailure::~CheckFailure() {
  const std::string message = stream_.str();
  std::fputs(message.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace mqa
