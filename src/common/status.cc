#include "common/status.h"

namespace mqa {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

bool StatusCodeIsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kUnimplemented:
    case StatusCode::kInternal:
    case StatusCode::kIoError:
      return false;
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mqa
