#ifndef MQA_COMMON_THREAD_POOL_H_
#define MQA_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace mqa {

/// A fixed-size worker pool. Tasks are `std::function<void()>`; `Submit`
/// returns a future for completion/exception propagation. Used by the DAG
/// engine and by parallel index construction.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains and joins. Pending tasks are still executed before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future resolved on completion. The future
  /// is the only completion/exception channel — discarding it loses
  /// errors, so it is [[nodiscard]]; use Post for fire-and-forget work.
  [[nodiscard]] std::future<void> Submit(std::function<void()> task);

  /// Fire-and-forget enqueue: no promise/future is allocated. The task
  /// must not throw (an escaping exception is logged and swallowed);
  /// completion must be tracked out of band (e.g. a counter + CondVar,
  /// as the DAG scheduler does).
  void Post(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to limit queue overhead.
  ///
  /// Exception contract: if fn throws in any chunk, ParallelFor waits for
  /// every remaining chunk to finish and then rethrows the first exception
  /// to the caller; workers never std::terminate and the pool stays usable.
  /// Must not be called from a task running on this same pool (the caller
  /// blocks on a worker slot it may itself occupy).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  struct Task {
    std::function<void()> fn;
    std::promise<void> done;
    bool detached = false;  ///< Post()ed: nobody is waiting on `done`
  };

  void Enqueue(std::unique_ptr<Task> task) MQA_EXCLUDES(mu_);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<std::unique_ptr<Task>> queue_ MQA_GUARDED_BY(mu_);
  bool shutdown_ MQA_GUARDED_BY(mu_) = false;
};

/// A process-wide default pool sized to the hardware concurrency.
ThreadPool& DefaultThreadPool();

}  // namespace mqa

#endif  // MQA_COMMON_THREAD_POOL_H_
