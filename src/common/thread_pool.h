#ifndef MQA_COMMON_THREAD_POOL_H_
#define MQA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mqa {

/// A fixed-size worker pool. Tasks are `std::function<void()>`; `Submit`
/// returns a future for completion/exception propagation. Used by the DAG
/// engine and by parallel index construction.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains and joins. Pending tasks are still executed before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future resolved on completion.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to limit queue overhead.
  ///
  /// Exception contract: if fn throws in any chunk, ParallelFor waits for
  /// every remaining chunk to finish and then rethrows the first exception
  /// to the caller; workers never std::terminate and the pool stays usable.
  /// Must not be called from a task running on this same pool (the caller
  /// blocks on a worker slot it may itself occupy).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  struct Task {
    std::function<void()> fn;
    std::promise<void> done;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::unique_ptr<Task>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

/// A process-wide default pool sized to the hardware concurrency.
ThreadPool& DefaultThreadPool();

}  // namespace mqa

#endif  // MQA_COMMON_THREAD_POOL_H_
