#ifndef MQA_COMMON_RESULT_H_
#define MQA_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace mqa {

/// Holds either a value of type `T` or an error `Status`. Analogous to
/// `arrow::Result<T>` / `absl::StatusOr<T>`.
///
/// Usage:
///   Result<Index> r = BuildIndex(...);
///   if (!r.ok()) return r.status();
///   Index idx = std::move(r).Value();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (error). Constructing from
  /// an OK status is a programming error and degrades to Internal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The error status; `Status::OK()` when a value is held.
  const Status& status() const { return status_; }

  /// Accessors. Precondition: ok(); violating it aborts with the error.
  const T& Value() const& {
    CheckOk();
    return *value_;
  }
  T& Value() & {
    CheckOk();
    return *value_;
  }
  T&& Value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return Value(); }
  T& operator*() & { return Value(); }
  const T* operator->() const { return &Value(); }
  T* operator->() { return &Value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    MQA_CHECK(ok()) << ": Result::Value() on error: " << status_.ToString();
  }

  Status status_;  // OK when value_ is engaged.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// move-assigns the value into `lhs` (which must be declared by the caller,
/// e.g. `MQA_ASSIGN_OR_RETURN(auto v, Foo());`).
#define MQA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).Value()

#define MQA_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define MQA_ASSIGN_OR_RETURN_NAME(a, b) MQA_ASSIGN_OR_RETURN_CONCAT(a, b)

#define MQA_ASSIGN_OR_RETURN(lhs, rexpr) \
  MQA_ASSIGN_OR_RETURN_IMPL(             \
      MQA_ASSIGN_OR_RETURN_NAME(_mqa_result_, __LINE__), lhs, rexpr)

}  // namespace mqa

#endif  // MQA_COMMON_RESULT_H_
