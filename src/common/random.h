#ifndef MQA_COMMON_RANDOM_H_
#define MQA_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace mqa {

/// Deterministic PRNG used everywhere in MQA so that experiments are exactly
/// reproducible from a seed. Core generator is xoshiro256**, seeded via
/// SplitMix64.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box–Muller (cached pair).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// A random permutation of [0, n).
  std::vector<uint32_t> Permutation(uint32_t n);

  /// Samples k distinct values from [0, n) (Floyd's algorithm). When k >= n
  /// returns all of [0, n) shuffled.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mqa

#endif  // MQA_COMMON_RANDOM_H_
