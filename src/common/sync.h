#ifndef MQA_COMMON_SYNC_H_
#define MQA_COMMON_SYNC_H_

// The repo's synchronization vocabulary: every mutex, reader-writer lock
// and condition variable in src/ goes through the wrappers below (the
// `raw-mutex` lint rule bans std::mutex et al. outside this header), so
// each lock-protected invariant can carry Clang Thread Safety Analysis
// annotations and be checked at *compile time* under the `tsa` preset
// (-Wthread-safety -Werror=thread-safety).
//
// Conventions (see DESIGN.md "Concurrency contracts & static analysis"):
//   * every field protected by a lock is annotated MQA_GUARDED_BY(mu_);
//   * every private *Locked() helper that expects the lock to be held is
//     annotated MQA_REQUIRES(mu_);
//   * inter-mutex acquisition order is declared with MQA_ACQUIRED_BEFORE
//     on the mutex member that is taken first;
//   * the static lock-order auditor (tools/lint.py) parses these
//     annotations plus lexically nested MutexLock scopes across src/ and
//     fails the build on an ordering cycle.
//
// On non-Clang toolchains every macro expands to nothing and the wrappers
// compile down to the underlying std primitives — zero size and zero
// runtime cost (verified by bench_distance_kernels/bench_interaction).

#include <condition_variable>  // NOLINT(mqa-raw-mutex): the one wrap site
#include <mutex>               // NOLINT(mqa-raw-mutex)
#include <shared_mutex>        // NOLINT(mqa-raw-mutex)

#if defined(__clang__)
#define MQA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MQA_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex").
#define MQA_CAPABILITY(x) MQA_THREAD_ANNOTATION_(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define MQA_SCOPED_CAPABILITY MQA_THREAD_ANNOTATION_(scoped_lockable)
/// Field is protected by the given mutex.
#define MQA_GUARDED_BY(x) MQA_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee (not the pointer itself) is protected by the given mutex.
#define MQA_PT_GUARDED_BY(x) MQA_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Declares lock-acquisition order: this mutex is taken before `...`.
#define MQA_ACQUIRED_BEFORE(...) \
  MQA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define MQA_ACQUIRED_AFTER(...) \
  MQA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
/// Function requires the capability to be held (exclusively / shared).
#define MQA_REQUIRES(...) \
  MQA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MQA_REQUIRES_SHARED(...) \
  MQA_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/// Function acquires / releases the capability.
#define MQA_ACQUIRE(...) \
  MQA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MQA_ACQUIRE_SHARED(...) \
  MQA_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define MQA_RELEASE(...) \
  MQA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MQA_RELEASE_SHARED(...) \
  MQA_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define MQA_TRY_ACQUIRE(...) \
  MQA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Function must be called with the capability NOT held.
#define MQA_EXCLUDES(...) MQA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define MQA_ASSERT_CAPABILITY(x) MQA_THREAD_ANNOTATION_(assert_capability(x))
#define MQA_RETURN_CAPABILITY(x) MQA_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch for code the analysis cannot follow; use sparingly and
/// leave a comment explaining why.
#define MQA_NO_THREAD_SAFETY_ANALYSIS \
  MQA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace mqa {

class CondVar;

/// An annotated exclusive mutex. Prefer the RAII MutexLock below; call
/// Lock/Unlock directly only where RAII scoping is impossible.
class MQA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MQA_ACQUIRE() { mu_.lock(); }
  void Unlock() MQA_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() MQA_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// An annotated reader-writer mutex: many concurrent shared holders OR one
/// exclusive holder. Used on read-mostly structures (metric lookups).
class MQA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MQA_ACQUIRE() { mu_.lock(); }
  void Unlock() MQA_RELEASE() { mu_.unlock(); }
  void LockShared() MQA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() MQA_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex. [[nodiscard]] on the constructor makes
/// the classic `MutexLock(&mu_);` temporary (which unlocks immediately) a
/// compile error under -Werror=unused-result.
class MQA_SCOPED_CAPABILITY MutexLock {
 public:
  [[nodiscard]] explicit MutexLock(Mutex* mu) MQA_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() MQA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class MQA_SCOPED_CAPABILITY ReaderLock {
 public:
  [[nodiscard]] explicit ReaderLock(SharedMutex* mu) MQA_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() MQA_RELEASE() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class MQA_SCOPED_CAPABILITY WriterLock {
 public:
  [[nodiscard]] explicit WriterLock(SharedMutex* mu) MQA_ACQUIRE(mu)
      : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() MQA_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable paired with mqa::Mutex. No predicate overload on
/// purpose: spelling the `while (!cond) cv.Wait(&mu);` loop at the call
/// site keeps every guarded-field read lexically inside the locked scope,
/// where the thread-safety analysis can see it (a predicate lambda would
/// be opaque to TSA).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified, reacquires. The
  /// caller must hold `*mu` (checked by TSA); spurious wakeups happen, so
  /// always wait in a predicate loop.
  void Wait(Mutex* mu) MQA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mqa

#endif  // MQA_COMMON_SYNC_H_
