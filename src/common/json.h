#ifndef MQA_COMMON_JSON_H_
#define MQA_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mqa {

/// Escapes a string for inclusion inside JSON double quotes (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// Renders a double deterministically for JSON: integral values within
/// uint64 range print without a fraction ("12"), everything else through
/// "%.6g". NaN/inf (not representable in JSON) become null.
std::string JsonNumber(double v);

/// A minimal streaming JSON writer — just enough for the observability
/// exports (MetricsRegistry::ToJson, Trace::ToJson, bench reports). The
/// caller is responsible for well-formed nesting; commas are inserted
/// automatically between siblings.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object key; must be followed by a value or Begin*.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

 private:
  /// Emits the separating comma when a sibling value precedes this one.
  void BeforeValue();

  std::string out_;
  std::vector<bool> has_sibling_;  ///< per open scope
  bool pending_key_ = false;
};

}  // namespace mqa

#endif  // MQA_COMMON_JSON_H_
