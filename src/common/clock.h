#ifndef MQA_COMMON_CLOCK_H_
#define MQA_COMMON_CLOCK_H_

#include <cstdint>

#include "common/sync.h"

namespace mqa {

/// Time source abstraction for every component that waits or expires:
/// retry backoff, deadlines, circuit-breaker cool-downs and injected
/// latency spikes all read and sleep through a Clock. Production code uses
/// the process-wide SystemClock(); tests substitute a MockClock so retry
/// and breaker schedules are asserted exactly and no test ever sleeps.
///
/// The repo lint (`tools/lint.py`, rule `sleep`) forbids direct
/// `sleep_for`/`sleep_until` anywhere in src/ except the SystemClock
/// implementation, so time-dependent logic cannot bypass this interface.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic time in microseconds. Only differences are meaningful.
  virtual int64_t NowMicros() const = 0;

  /// Blocks the calling thread for the given duration (no-op when <= 0).
  virtual void SleepForMicros(int64_t micros) = 0;

  /// Convenience wrappers in milliseconds (fractional).
  double NowMillis() const { return static_cast<double>(NowMicros()) / 1e3; }
  void SleepForMillis(double millis) {
    SleepForMicros(static_cast<int64_t>(millis * 1e3));
  }
};

/// The real monotonic clock (std::chrono::steady_clock). Process-wide
/// singleton; never destroyed.
Clock* SystemClock();

/// A manually advanced clock for tests: `SleepForMicros` advances the
/// current time instead of blocking, so code under test experiences the
/// passage of time without wall-clock delay. Thread-safe.
class MockClock : public Clock {
 public:
  explicit MockClock(int64_t start_micros = 0) : now_micros_(start_micros) {}

  int64_t NowMicros() const override {
    MutexLock lock(&mu_);
    return now_micros_;
  }

  void SleepForMicros(int64_t micros) override {
    if (micros <= 0) return;
    MutexLock lock(&mu_);
    now_micros_ += micros;
  }

  /// Moves time forward without a sleeper (e.g. to expire a breaker
  /// cool-down between calls).
  void AdvanceMicros(int64_t micros) {
    MutexLock lock(&mu_);
    now_micros_ += micros;
  }
  void AdvanceMillis(double millis) {
    AdvanceMicros(static_cast<int64_t>(millis * 1e3));
  }

  /// Total time slept/advanced since construction (for schedule asserts).
  int64_t ElapsedMicros() const { return NowMicros(); }

 private:
  mutable Mutex mu_;
  int64_t now_micros_ MQA_GUARDED_BY(mu_);
};

}  // namespace mqa

#endif  // MQA_COMMON_CLOCK_H_
