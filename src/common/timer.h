#ifndef MQA_COMMON_TIMER_H_
#define MQA_COMMON_TIMER_H_

#include <chrono>

namespace mqa {

/// Monotonic wall-clock stopwatch used by benchmarks and the status monitor.
///
/// Not synchronized by design: a Timer instance is owned by the single
/// thread that constructed it (bench workers and DAG stages each keep their
/// own). Share measurements, not Timer objects, across threads — this is
/// what keeps the bench binaries TSan-clean.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mqa

#endif  // MQA_COMMON_TIMER_H_
