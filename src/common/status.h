#ifndef MQA_COMMON_STATUS_H_
#define MQA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace mqa {

/// Error categories used across the MQA system. Mirrors the Arrow/RocksDB
/// convention: functions that can fail return `Status` (or `Result<T>`)
/// instead of throwing exceptions across API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
/// [[nodiscard]]: silently dropping a Status hides failures, so discarding
/// one is a compile warning; use MQA_RETURN_NOT_OK or check ok() instead.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define MQA_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::mqa::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace mqa

#endif  // MQA_COMMON_STATUS_H_
