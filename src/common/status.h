#ifndef MQA_COMMON_STATUS_H_
#define MQA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace mqa {

/// Error categories used across the MQA system. Mirrors the Arrow/RocksDB
/// convention: functions that can fail return `Status` (or `Result<T>`)
/// instead of throwing exceptions across API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
  // Transient-failure codes (see Status::IsRetryable()): the operation did
  // not complete, but an identical attempt may succeed later. These model
  // flaky external services (GPU encoders, LLM endpoints, disk I/O).
  kUnavailable,        ///< dependency temporarily down or unreachable
  kDeadlineExceeded,   ///< ran out of time budget before completing
  kResourceExhausted,  ///< rate limit / quota / queue overflow
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Whether a code belongs to the transient-failure taxonomy (see
/// Status::IsRetryable()).
bool StatusCodeIsRetryable(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
/// [[nodiscard]]: silently dropping a Status hides failures, so discarding
/// one is a compile warning; use MQA_RETURN_NOT_OK or check ok() instead.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Builds a status from a runtime code (fault injection, deserialized
  /// errors). `kOk` input yields an OK status and ignores the message.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }

  /// True for transient-failure codes where retrying the identical
  /// operation may succeed (the taxonomy RetryPolicy keys on):
  /// kUnavailable, kDeadlineExceeded, kResourceExhausted. Permanent errors
  /// (bad arguments, missing data, internal bugs) are never retryable.
  bool IsRetryable() const { return StatusCodeIsRetryable(code_); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define MQA_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::mqa::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace mqa

#endif  // MQA_COMMON_STATUS_H_
