#ifndef MQA_COMMON_STRING_UTIL_H_
#define MQA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mqa {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator string.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Lower-cases and splits into alphanumeric word tokens; punctuation is a
/// separator. The unit of text used by the simulated encoders and SimLLM.
std::vector<std::string> Tokenize(std::string_view s);

/// True if `haystack` contains `needle` case-insensitively.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Renders a double with the given number of decimals (benchmark tables).
std::string FormatDouble(double v, int decimals);

}  // namespace mqa

#endif  // MQA_COMMON_STRING_UTIL_H_
