#ifndef MQA_COMMON_LOGGING_H_
#define MQA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mqa {

/// Severity levels for the process-wide logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are dropped.
/// Defaults to kInfo. Thread-safe (atomic underneath).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Used via the MQA_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MQA_LOG(level)                                                  \
  ::mqa::internal::LogMessage(::mqa::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace mqa

#endif  // MQA_COMMON_LOGGING_H_
