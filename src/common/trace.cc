#include "common/trace.h"

#include "common/json.h"
#include "common/string_util.h"

namespace mqa {

namespace {

thread_local Trace* tls_trace = nullptr;
thread_local int32_t tls_span = -1;

}  // namespace

Trace* ActiveTrace() { return tls_trace; }
int32_t ActiveSpanId() { return tls_span; }

// --- Trace ------------------------------------------------------------------

Trace::Trace(std::string name, Clock* clock)
    : name_(std::move(name)),
      clock_(clock != nullptr ? clock : SystemClock()),
      epoch_micros_(clock_->NowMicros()) {}

int32_t Trace::BeginSpan(std::string_view name, int32_t parent) {
  const int64_t now = clock_->NowMicros() - epoch_micros_;
  MutexLock lock(&mu_);
  SpanRecord span;
  span.id = static_cast<int32_t>(spans_.size());
  span.parent = parent;
  span.name = std::string(name);
  span.start_micros = now;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Trace::EndSpan(int32_t id) {
  const int64_t now = clock_->NowMicros() - epoch_micros_;
  MutexLock lock(&mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  if (spans_[id].end_micros < 0) spans_[id].end_micros = now;
}

std::vector<SpanRecord> Trace::spans() const {
  MutexLock lock(&mu_);
  return spans_;
}

int64_t Trace::TotalMicros() const {
  MutexLock lock(&mu_);
  int64_t total = 0;
  for (const SpanRecord& s : spans_) {
    if (s.parent < 0) total += s.DurationMicros();
  }
  return total;
}

std::string Trace::ToJson() const {
  const std::vector<SpanRecord> spans = this->spans();
  JsonWriter w;
  w.BeginObject();
  w.Key("trace").String(name_);
  w.Key("spans").BeginArray();
  for (const SpanRecord& s : spans) {
    w.BeginObject();
    w.Key("id").Int(s.id);
    w.Key("parent").Int(s.parent);
    w.Key("name").String(s.name);
    w.Key("start_us").Int(s.start_micros);
    w.Key("dur_us").Int(s.end_micros < 0 ? -1 : s.DurationMicros());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string Trace::Render() const {
  const std::vector<SpanRecord> spans = this->spans();
  // Children of each span, in Begin order (span ids are Begin-ordered).
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    const int32_t p = spans[i].parent;
    if (p >= 0 && static_cast<size_t>(p) < spans.size()) {
      children[p].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::string out = name_ + " (" +
                    FormatDouble(static_cast<double>(TotalMicros()) / 1e3, 3) +
                    " ms total)\n";
  // Depth-first render; explicit stack keeps sibling order stable.
  struct Frame {
    size_t span;
    size_t depth;
  };
  std::vector<Frame> stack;
  for (size_t r = roots.size(); r > 0; --r) {
    stack.push_back(Frame{roots[r - 1], 0});
  }
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const SpanRecord& s = spans[f.span];
    out += std::string(2 * (f.depth + 1), ' ');
    out += s.name;
    if (s.end_micros < 0) {
      out += " (open)";
    } else {
      out += ": " + FormatDouble(s.DurationMillis(), 3) + " ms";
      const int64_t parent_dur =
          s.parent >= 0 ? spans[s.parent].DurationMicros() : TotalMicros();
      if (parent_dur > 0) {
        const double share =
            100.0 * static_cast<double>(s.DurationMicros()) /
            static_cast<double>(parent_dur);
        out += " (" + FormatDouble(share, 1) + "%)";
      }
    }
    out += "\n";
    for (size_t c = children[f.span].size(); c > 0; --c) {
      stack.push_back(Frame{children[f.span][c - 1], f.depth + 1});
    }
  }
  return out;
}

// --- ScopedTrace / Span -----------------------------------------------------

ScopedTrace::ScopedTrace(Trace* trace, int32_t parent_span)
    : prev_trace_(tls_trace), prev_span_(tls_span) {
  tls_trace = trace;
  tls_span = parent_span;
}

ScopedTrace::~ScopedTrace() {
  tls_trace = prev_trace_;
  tls_span = prev_span_;
}

Span::Span(std::string_view name) {
  trace_ = tls_trace;
  if (trace_ == nullptr) return;
  prev_span_ = tls_span;
  id_ = trace_->BeginSpan(name, prev_span_);
  tls_span = id_;
  ambient_ = true;
}

Span::Span(Trace* trace, std::string_view name, int32_t parent)
    : trace_(trace) {
  if (trace_ == nullptr) return;
  id_ = trace_->BeginSpan(name, parent);
}

Span::~Span() {
  if (trace_ == nullptr) return;
  trace_->EndSpan(id_);
  if (ambient_) tls_span = prev_span_;
}

}  // namespace mqa
