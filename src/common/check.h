#ifndef MQA_COMMON_CHECK_H_
#define MQA_COMMON_CHECK_H_

#include <sstream>
#include <utility>

namespace mqa {
namespace internal {

/// Stream-style fatal-invariant sink. Collects the failure message and, on
/// destruction, prints "file:line Check failed: <cond> <message>" to stderr
/// and aborts the process. Used only via the MQA_CHECK* macros below.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  /// Aborts; never returns normally.
  ~CheckFailure();

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /// Appends the evaluated operands of a binary comparison check.
  template <typename A, typename B>
  CheckFailure& WithOperands(const A& a, const B& b) {
    stream_ << " (" << a << " vs " << b << ")";
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows the CheckFailure stream so MQA_CHECK can be a void expression
/// usable inside ternaries (the Google glog "voidify" trick).
struct CheckVoidify {
  void operator&(const CheckFailure&) const {}
};

}  // namespace internal
}  // namespace mqa

/// Fatal invariant check, always on (including release builds):
///   MQA_CHECK(ptr != nullptr) << "while loading " << path;
/// On failure prints file:line, the stringified condition and the streamed
/// message, then aborts. Prefer these over raw assert(): they survive
/// NDEBUG, carry context, and the custom lint bans assert() outside this
/// header's machinery.
#define MQA_CHECK(condition)                            \
  (condition) ? (void)0                                 \
              : ::mqa::internal::CheckVoidify() &       \
                    ::mqa::internal::CheckFailure(      \
                        __FILE__, __LINE__, #condition)

/// Binary comparison checks; evaluate each operand exactly once and print
/// both values on failure. Statement-shaped (they expand to an if/else), so
/// use them as standalone statements, optionally with a streamed message.
#define MQA_CHECK_OP_(lhs, rhs, op)                                        \
  if (auto mqa_check_pair_ = ::std::pair((lhs), (rhs));                    \
      mqa_check_pair_.first op mqa_check_pair_.second) {                   \
  } else /* NOLINT(readability/braces) */                                  \
    ::mqa::internal::CheckFailure(__FILE__, __LINE__,                      \
                                  #lhs " " #op " " #rhs)                   \
        .WithOperands(mqa_check_pair_.first, mqa_check_pair_.second)

#define MQA_CHECK_EQ(lhs, rhs) MQA_CHECK_OP_(lhs, rhs, ==)
#define MQA_CHECK_NE(lhs, rhs) MQA_CHECK_OP_(lhs, rhs, !=)
#define MQA_CHECK_LT(lhs, rhs) MQA_CHECK_OP_(lhs, rhs, <)
#define MQA_CHECK_LE(lhs, rhs) MQA_CHECK_OP_(lhs, rhs, <=)
#define MQA_CHECK_GT(lhs, rhs) MQA_CHECK_OP_(lhs, rhs, >)
#define MQA_CHECK_GE(lhs, rhs) MQA_CHECK_OP_(lhs, rhs, >=)

/// Debug-only variants: compiled out when NDEBUG is defined. Use for
/// checks on hot paths where the condition is too expensive for release.
#ifdef NDEBUG
#define MQA_DCHECK(condition) MQA_CHECK(true || (condition))
#define MQA_DCHECK_EQ(lhs, rhs) MQA_DCHECK((lhs) == (rhs))
#define MQA_DCHECK_NE(lhs, rhs) MQA_DCHECK((lhs) != (rhs))
#define MQA_DCHECK_LT(lhs, rhs) MQA_DCHECK((lhs) < (rhs))
#define MQA_DCHECK_LE(lhs, rhs) MQA_DCHECK((lhs) <= (rhs))
#define MQA_DCHECK_GT(lhs, rhs) MQA_DCHECK((lhs) > (rhs))
#define MQA_DCHECK_GE(lhs, rhs) MQA_DCHECK((lhs) >= (rhs))
#else
#define MQA_DCHECK(condition) MQA_CHECK(condition)
#define MQA_DCHECK_EQ(lhs, rhs) MQA_CHECK_EQ(lhs, rhs)
#define MQA_DCHECK_NE(lhs, rhs) MQA_CHECK_NE(lhs, rhs)
#define MQA_DCHECK_LT(lhs, rhs) MQA_CHECK_LT(lhs, rhs)
#define MQA_DCHECK_LE(lhs, rhs) MQA_CHECK_LE(lhs, rhs)
#define MQA_DCHECK_GT(lhs, rhs) MQA_CHECK_GT(lhs, rhs)
#define MQA_DCHECK_GE(lhs, rhs) MQA_CHECK_GE(lhs, rhs)
#endif

#endif  // MQA_COMMON_CHECK_H_
