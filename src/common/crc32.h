#ifndef MQA_COMMON_CRC32_H_
#define MQA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace mqa {

/// CRC-32 (ISO-HDLC polynomial 0xEDB88320, the zlib/PNG variant) over a
/// byte range. `seed` chains partial computations: Crc32(b, n2, Crc32(a,
/// n1)) == Crc32(concat(a, b)). Used to frame WAL records so recovery can
/// tell a torn tail from a valid one.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace mqa

#endif  // MQA_COMMON_CRC32_H_
