#include "common/retry.h"

#include <algorithm>
#include <string>

#include "common/metrics.h"

namespace mqa {

BackoffSchedule::BackoffSchedule(const RetryPolicy& policy)
    : policy_(policy), rng_(policy.seed) {}

void BackoffSchedule::Reset() {
  rng_ = Rng(policy_.seed);
  retries_issued_ = 0;
}

double BackoffSchedule::NextDelayMs() {
  double delay = policy_.initial_backoff_ms;
  for (int i = 0; i < retries_issued_; ++i) {
    delay *= policy_.backoff_multiplier;
    if (delay >= policy_.max_backoff_ms) break;
  }
  delay = std::min(delay, policy_.max_backoff_ms);
  ++retries_issued_;
  if (policy_.jitter_fraction > 0.0) {
    delay *= rng_.UniformDouble(1.0 - policy_.jitter_fraction,
                                1.0 + policy_.jitter_fraction);
  }
  return std::max(0.0, delay);
}

Retrier::Retrier(RetryPolicy policy, Clock* clock)
    : policy_(policy),
      clock_(clock != nullptr ? clock : SystemClock()),
      schedule_(policy) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
}

Status Retrier::Run(const std::function<Status()>& op) {
  stats_ = RetryStats{};
  schedule_.Reset();
  const double start_ms = clock_->NowMillis();
  // Backoff sleeps happen through clock_ and are otherwise invisible to
  // wall-clock timing — account for them in the registry on every exit
  // path so a retry storm shows up in the perf trajectory.
  struct RecordOnExit {
    const RetryStats* stats;
    ~RecordOnExit() {
      MetricsRegistry& m = MetricsRegistry::Global();
      m.GetCounter("retry/attempts")
          ->Increment(static_cast<uint64_t>(stats->attempts));
      if (stats->attempts > 1) {
        m.GetCounter("retry/retries")
            ->Increment(static_cast<uint64_t>(stats->attempts - 1));
        m.GetHistogram("retry/backoff_ms")->Record(stats->total_backoff_ms);
      }
    }
  } record_on_exit{&stats_};

  for (int attempt = 1;; ++attempt) {
    const double attempt_start_ms = clock_->NowMillis();
    Status st = op();
    ++stats_.attempts;
    if (policy_.per_attempt_deadline_ms > 0.0) {
      const double took = clock_->NowMillis() - attempt_start_ms;
      if (took > policy_.per_attempt_deadline_ms) {
        // Too slow counts as failed even if a response eventually arrived:
        // the caller's latency budget is gone either way.
        st = Status::DeadlineExceeded(
            "attempt took " + std::to_string(took) + " ms (budget " +
            std::to_string(policy_.per_attempt_deadline_ms) + " ms); " +
            (st.ok() ? std::string("late success discarded") : st.ToString()));
      }
    }
    if (st.ok()) return st;
    stats_.last_error = st;
    if (!st.IsRetryable()) return st;
    if (attempt >= policy_.max_attempts) {
      return Status::FromCode(
          st.code(), st.message() + " (gave up after " +
                         std::to_string(stats_.attempts) + " attempts)");
    }
    const double delay_ms = schedule_.NextDelayMs();
    if (policy_.overall_deadline_ms > 0.0) {
      const double elapsed = clock_->NowMillis() - start_ms;
      if (elapsed + delay_ms > policy_.overall_deadline_ms) {
        return Status::DeadlineExceeded(
            "retry budget of " +
            std::to_string(policy_.overall_deadline_ms) +
            " ms exhausted; last error: " + st.ToString());
      }
    }
    clock_->SleepForMillis(delay_ms);
    stats_.total_backoff_ms += delay_ms;
  }
}

}  // namespace mqa
