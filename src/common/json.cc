#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace mqa {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    // Exactly representable integer: print without fraction or exponent.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_ += ',';
    has_sibling_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  if (!has_sibling_.empty()) has_sibling_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  if (!has_sibling_.empty()) has_sibling_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_ += ',';
    has_sibling_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  out_ += JsonNumber(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace mqa
