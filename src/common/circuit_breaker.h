#ifndef MQA_COMMON_CIRCUIT_BREAKER_H_
#define MQA_COMMON_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"

namespace mqa {

/// Breaker state machine (classic three-state):
///
///   closed ──(failure_threshold consecutive failures)──> open
///   open ──(open_duration_ms elapsed)──> half-open
///   half-open ──(half_open_successes consecutive successes)──> closed
///   half-open ──(any failure)──> open (cool-down restarts)
enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateToString(BreakerState state);

struct CircuitBreakerConfig {
  int failure_threshold = 5;      ///< consecutive failures that trip open
  double open_duration_ms = 1000.0;  ///< cool-down before the probe phase
  int half_open_successes = 2;    ///< probe successes required to close
  /// Probes admitted concurrently while half-open; further calls are
  /// rejected until the probes report back.
  int half_open_max_probes = 1;
};

/// A thread-safe circuit breaker guarding one flaky dependency. Callers
/// bracket the protected call:
///
///   MQA_RETURN_NOT_OK(breaker.Admit());
///   Status st = DoCall();
///   breaker.Record(st);
///
/// While open, Admit() fails fast with kUnavailable so a persistently dead
/// dependency stops consuming retry and latency budget. Time flows through
/// the injected Clock, so tests drive the cool-down with a MockClock.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config, Clock* clock = nullptr);

  /// Gate before the protected call. OK when the call may proceed;
  /// kUnavailable (mentioning "circuit breaker") when it must not.
  Status Admit();

  /// Reports the outcome of an admitted call. Only retryable errors count
  /// as dependency failures (a kInvalidArgument reply proves the service
  /// is alive and answering).
  void Record(const Status& status);
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;

  /// Sequence of states entered since construction, starting closed —
  /// the observable closed->open->half-open->closed trace the chaos suite
  /// asserts on.
  std::vector<BreakerState> transitions() const;

  /// Optional observer invoked (outside the lock) on every transition.
  void OnTransition(std::function<void(BreakerState)> callback);

  uint64_t consecutive_failures() const;

 private:
  /// Rolls open -> half-open when the cool-down elapsed. Any resulting
  /// notifier is parked in pending_callback_ for the caller to invoke
  /// after unlocking.
  void MaybeHalfOpenLocked() MQA_REQUIRES(mu_);
  /// Switches state and records the transition. Returns a ready-to-invoke
  /// notifier (or null) to call outside the lock.
  std::function<void()> TransitionLocked(BreakerState next) MQA_REQUIRES(mu_);

  CircuitBreakerConfig config_;
  Clock* clock_;

  mutable Mutex mu_;
  BreakerState state_ MQA_GUARDED_BY(mu_) = BreakerState::kClosed;
  uint64_t consecutive_failures_ MQA_GUARDED_BY(mu_) = 0;
  int half_open_successes_ MQA_GUARDED_BY(mu_) = 0;
  int half_open_inflight_ MQA_GUARDED_BY(mu_) = 0;
  double opened_at_ms_ MQA_GUARDED_BY(mu_) = 0.0;
  std::vector<BreakerState> transitions_ MQA_GUARDED_BY(mu_){
      BreakerState::kClosed};
  std::function<void(BreakerState)> on_transition_ MQA_GUARDED_BY(mu_);
  /// see MaybeHalfOpenLocked
  std::function<void()> pending_callback_ MQA_GUARDED_BY(mu_);
};

}  // namespace mqa

#endif  // MQA_COMMON_CIRCUIT_BREAKER_H_
