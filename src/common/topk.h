#ifndef MQA_COMMON_TOPK_H_
#define MQA_COMMON_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mqa {

/// A (distance, id) pair as produced by vector search. Smaller distance is
/// better everywhere in MQA (similarities are negated upstream).
struct Neighbor {
  float distance = 0.0f;
  uint32_t id = 0;

  bool operator==(const Neighbor&) const = default;
};

/// Orders by distance, breaking ties by id for determinism.
inline bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

/// Keeps the k smallest-distance neighbors seen so far. Implemented as a
/// bounded binary max-heap: the root is the current worst member, so
/// `WorstDistance()` gives the early-abandon threshold for pruned distance
/// computation in O(1).
class TopK {
 public:
  /// Creates a collector for the k best results. Precondition: k > 0.
  explicit TopK(size_t k) : k_(k) { heap_.reserve(k + 1); }

  /// Offers a candidate; returns true when it entered the top-k.
  bool Push(Neighbor n) {
    if (heap_.size() < k_) {
      heap_.push_back(n);
      std::push_heap(heap_.begin(), heap_.end(), NeighborLess);
      return true;
    }
    if (!NeighborLess(n, heap_.front())) return false;
    std::pop_heap(heap_.begin(), heap_.end(), NeighborLess);
    heap_.back() = n;
    std::push_heap(heap_.begin(), heap_.end(), NeighborLess);
    return true;
  }

  bool Push(float distance, uint32_t id) { return Push({distance, id}); }

  /// Whether the collector already holds k entries.
  bool Full() const { return heap_.size() >= k_; }

  size_t Size() const { return heap_.size(); }
  size_t Capacity() const { return k_; }

  /// Distance of the current worst kept entry. Only meaningful when
  /// `Full()`; callers use it as the pruning bound.
  float WorstDistance() const { return heap_.front().distance; }

  /// Extracts results in ascending distance order (destructive).
  std::vector<Neighbor> TakeSorted() {
    std::sort(heap_.begin(), heap_.end(), NeighborLess);
    return std::move(heap_);
  }

 private:
  size_t k_;
  std::vector<Neighbor> heap_;
};

}  // namespace mqa

#endif  // MQA_COMMON_TOPK_H_
