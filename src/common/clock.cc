#include "common/clock.h"

#include <chrono>
#include <thread>

namespace mqa {

namespace {

/// The one place in the codebase allowed to call sleep_for: everything
/// else must wait through a Clock so tests can substitute MockClock.
class SteadyClock : public Clock {
 public:
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepForMicros(int64_t micros) override {
    if (micros <= 0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

Clock* SystemClock() {
  // Intentionally leaked singleton (never destroyed, shared by threads).
  static SteadyClock* const kClock = new SteadyClock();  // NOLINT(mqa-naked-new)
  return kClock;
}

}  // namespace mqa
