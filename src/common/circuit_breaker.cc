#include "common/circuit_breaker.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"

namespace mqa {

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config, Clock* clock)
    : config_(config), clock_(clock != nullptr ? clock : SystemClock()) {
  config_.failure_threshold = std::max(1, config_.failure_threshold);
  config_.half_open_successes = std::max(1, config_.half_open_successes);
  config_.half_open_max_probes = std::max(1, config_.half_open_max_probes);
}

void CircuitBreaker::MaybeHalfOpenLocked() {
  if (state_ != BreakerState::kOpen) return;
  if (clock_->NowMillis() - opened_at_ms_ < config_.open_duration_ms) return;
  half_open_successes_ = 0;
  half_open_inflight_ = 0;
  // The notifier is parked; the caller invokes it after releasing mu_.
  pending_callback_ = TransitionLocked(BreakerState::kHalfOpen);
}

std::function<void()> CircuitBreaker::TransitionLocked(BreakerState next) {
  state_ = next;
  transitions_.push_back(next);
  // Counter increments are atomic, safe under mu_; the name encodes the
  // destination state so dashboards can see trips vs. recoveries.
  MetricsRegistry::Global()
      .GetCounter(std::string("breaker/to_") +
                  (next == BreakerState::kOpen
                       ? "open"
                       : next == BreakerState::kHalfOpen ? "half_open"
                                                         : "closed"))
      ->Increment();
  if (!on_transition_) return nullptr;
  auto cb = on_transition_;
  return [cb, next]() { cb(next); };
}

Status CircuitBreaker::Admit() {
  std::function<void()> notify;
  Status out = Status::OK();
  {
    MutexLock lock(&mu_);
    MaybeHalfOpenLocked();
    notify = std::move(pending_callback_);
    switch (state_) {
      case BreakerState::kClosed:
        break;
      case BreakerState::kOpen: {
        const double remaining_ms =
            config_.open_duration_ms -
            (clock_->NowMillis() - opened_at_ms_);
        out = Status::Unavailable(
            "circuit breaker open (" +
            std::to_string(static_cast<int64_t>(std::max(0.0, remaining_ms))) +
            " ms until half-open probe)");
        break;
      }
      case BreakerState::kHalfOpen:
        if (half_open_inflight_ < config_.half_open_max_probes) {
          ++half_open_inflight_;
        } else {
          out = Status::Unavailable(
              "circuit breaker half-open, probe already in flight");
        }
        break;
    }
  }
  if (notify) notify();
  return out;
}

void CircuitBreaker::Record(const Status& status) {
  // A permanent error is an *answer*: the dependency is reachable and
  // responding, so it does not push the breaker toward open.
  if (status.ok() || !status.IsRetryable()) {
    RecordSuccess();
  } else {
    RecordFailure();
  }
}

void CircuitBreaker::RecordSuccess() {
  std::function<void()> notify;
  {
    MutexLock lock(&mu_);
    consecutive_failures_ = 0;
    if (state_ == BreakerState::kHalfOpen) {
      half_open_inflight_ = std::max(0, half_open_inflight_ - 1);
      ++half_open_successes_;
      if (half_open_successes_ >= config_.half_open_successes) {
        notify = TransitionLocked(BreakerState::kClosed);
      }
    }
  }
  if (notify) notify();
}

void CircuitBreaker::RecordFailure() {
  std::function<void()> notify;
  {
    MutexLock lock(&mu_);
    ++consecutive_failures_;
    const bool trip =
        state_ == BreakerState::kHalfOpen ||
        (state_ == BreakerState::kClosed &&
         consecutive_failures_ >=
             static_cast<uint64_t>(config_.failure_threshold));
    if (trip) {
      half_open_inflight_ = 0;
      half_open_successes_ = 0;
      opened_at_ms_ = clock_->NowMillis();
      notify = TransitionLocked(BreakerState::kOpen);
    }
  }
  if (notify) notify();
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(&mu_);
  // state() is a pure observer: an elapsed cool-down only rolls to
  // half-open when the next call is admitted.
  return state_;
}

std::vector<BreakerState> CircuitBreaker::transitions() const {
  MutexLock lock(&mu_);
  return transitions_;
}

void CircuitBreaker::OnTransition(std::function<void(BreakerState)> callback) {
  MutexLock lock(&mu_);
  on_transition_ = std::move(callback);
}

uint64_t CircuitBreaker::consecutive_failures() const {
  MutexLock lock(&mu_);
  return consecutive_failures_;
}

}  // namespace mqa
