#ifndef MQA_COMMON_FAULT_H_
#define MQA_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "common/sync.h"

namespace mqa {

/// How an armed fault point misbehaves. A spec combines a *trigger* (when
/// the point fires) with an *effect* (what it does when it fires).
///
/// Trigger, evaluated per hit in this order:
///   1. the first `skip_first` hits never fire;
///   2. with `every_nth > 0`, only every Nth eligible hit can fire;
///   3. the hit then fires with `probability` (seeded, deterministic);
///   4. with `once`, the spec disarms itself after its first firing;
///   5. with `max_fires > 0`, the spec disarms after that many firings.
///
/// Effect: `latency_ms > 0` sleeps through the injector's clock first
/// (a latency spike, survivable by deadlines); a non-OK `code` is then
/// returned to the caller as the injected error. `code == kOk` with a
/// latency models a slow-but-successful call.
struct FaultSpec {
  StatusCode code = StatusCode::kUnavailable;
  std::string message = "injected fault";
  double probability = 1.0;
  uint64_t every_nth = 0;
  uint64_t skip_first = 0;
  bool once = false;
  uint64_t max_fires = 0;
  double latency_ms = 0.0;
  /// Torn-write mode for byte-oriented points (WAL appends, snapshot
  /// writes): when in [0, 1], CheckPartial reports this fraction so the
  /// caller persists only that prefix of its payload before failing —
  /// modeling a crash mid-write. Negative (default) = not a torn write;
  /// plain Check() ignores this field entirely.
  double partial_fraction = -1.0;
};

/// Per-point counters (for tests and the chaos demo).
struct FaultPointStats {
  uint64_t hits = 0;   ///< times the point was evaluated while armed
  uint64_t fires = 0;  ///< times it actually injected its effect
};

/// A process-wide, deterministic fault-injection registry. Components
/// declare *named fault points* on their failure-prone hops (naming scheme
/// `<component>/<operation>`, e.g. "encoder/sim-image", "llm/complete",
/// "diskindex/read_page") and consult the injector at runtime; tests and
/// chaos drivers arm points with FaultSpecs to simulate outages.
///
/// Compiled in always; zero-cost when disarmed: `Check()` is a single
/// relaxed atomic load until at least one point is armed. Determinism:
/// every point draws from its own PRNG seeded from the injector seed and
/// the point name, so a given seed always yields the same fault schedule
/// regardless of arming order or unrelated points.
///
/// Thread-safe. Intended use is through the process-wide Global()
/// instance; independent instances exist only for injector unit tests.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The process-wide injector consulted by all production fault points.
  static FaultInjector& Global();

  /// Arms (or re-arms, resetting counters of) a named point.
  void Arm(const std::string& point, FaultSpec spec);

  /// Disarms one point / all points. Counters are discarded.
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Reseeds the deterministic fault schedule (applies to points armed
  /// afterwards).
  void Seed(uint64_t seed);

  /// Clock used for injected latency (tests install a MockClock so a
  /// latency spike advances virtual time instead of sleeping).
  void SetClock(Clock* clock);

  /// True when at least one point is armed. Call sites that must build a
  /// dynamic point name (e.g. "encoder/" + name) guard on this first so
  /// the disarmed fast path allocates nothing.
  bool enabled() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates a fault point: returns OK when disarmed or not firing,
  /// otherwise applies the armed spec's effect (latency and/or error).
  Status Check(std::string_view point) {
    if (!enabled()) return Status::OK();
    return CheckSlow(point, nullptr);
  }

  /// Check() for byte-oriented operations that can tear: on a firing spec
  /// with `partial_fraction` in [0, 1], *partial_fraction receives it (the
  /// caller writes that prefix of its payload before surfacing the error);
  /// otherwise *partial_fraction is set to -1. `partial_fraction` must be
  /// non-null.
  Status CheckPartial(std::string_view point, double* partial_fraction) {
    *partial_fraction = -1.0;
    if (!enabled()) return Status::OK();
    return CheckSlow(point, partial_fraction);
  }

  /// Counters of a point (zeros when never armed).
  FaultPointStats stats(const std::string& point) const;

  /// Names of all currently armed points (for the chaos demo's display).
  std::vector<std::string> ArmedPoints() const;

 private:
  struct PointState {
    FaultSpec spec;
    FaultPointStats stats;
    Rng rng{0};
    bool armed = true;  ///< false once `once`/`max_fires` exhausted
  };

  Status CheckSlow(std::string_view point, double* partial_fraction);

  /// Number of points still armed.
  size_t CountArmedLocked() const MQA_REQUIRES(mu_);

  mutable Mutex mu_;
  std::atomic<int> armed_points_{0};
  uint64_t seed_ MQA_GUARDED_BY(mu_) = 42;
  Clock* clock_ MQA_GUARDED_BY(mu_) = nullptr;  // null = SystemClock()
  // Transparent comparator: lookup by string_view without allocating.
  std::map<std::string, PointState, std::less<>> points_ MQA_GUARDED_BY(mu_);
};

/// RAII arming of one fault point: arms on construction, disarms on
/// destruction, so a test/chaos scope can never leak an armed fault into
/// later tests. [[nodiscard]] because a discarded temporary would disarm
/// immediately, silently testing nothing.
class [[nodiscard]] ScopedFault {
 public:
  [[nodiscard]] explicit ScopedFault(std::string point, FaultSpec spec = {},
                                     FaultInjector* injector = nullptr)
      : injector_(injector != nullptr ? injector : &FaultInjector::Global()),
        point_(std::move(point)) {
    injector_->Arm(point_, std::move(spec));
  }
  ~ScopedFault() { injector_->Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& point() const { return point_; }

 private:
  FaultInjector* const injector_;
  const std::string point_;
};

}  // namespace mqa

#endif  // MQA_COMMON_FAULT_H_
