#ifndef MQA_COMMON_TRACE_H_
#define MQA_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/sync.h"

namespace mqa {

/// One completed (or still-open) span of a trace tree.
struct SpanRecord {
  int32_t id = -1;
  int32_t parent = -1;  ///< -1 = root-level span
  std::string name;     ///< convention: component/operation
  int64_t start_micros = 0;  ///< relative to the trace epoch
  int64_t end_micros = -1;   ///< -1 while the span is open

  int64_t DurationMicros() const {
    return end_micros < 0 ? 0 : end_micros - start_micros;
  }
  double DurationMillis() const {
    return static_cast<double>(DurationMicros()) / 1e3;
  }
};

/// The span tree of one unit of work (a query turn, an offline build).
/// Spans carry start/end timestamps read from the trace's Clock — tests
/// install a MockClock, making every duration exact and deterministic.
///
/// Thread-safe: DAG stages running on pool threads append spans to the
/// same trace concurrently. Span ids are assigned in Begin order; the
/// parent chain is supplied by the Span/ScopedTrace helpers below.
class Trace {
 public:
  /// `clock` drives all timestamps; null = SystemClock(). Timestamps are
  /// stored relative to the clock reading at construction (the epoch), so
  /// a MockClock starting anywhere yields the same trace.
  explicit Trace(std::string name, Clock* clock = nullptr);

  /// Opens a span under `parent` (-1 = root) and returns its id.
  int32_t BeginSpan(std::string_view name, int32_t parent = -1);

  /// Closes an open span (idempotent; unknown ids are ignored).
  void EndSpan(int32_t id);

  const std::string& name() const { return name_; }
  Clock* clock() const { return clock_; }

  /// Snapshot of all spans recorded so far, in Begin order.
  std::vector<SpanRecord> spans() const;

  /// Sum of root-span durations — the trace's total accounted time.
  int64_t TotalMicros() const;

  /// {"trace":name,"spans":[{id,parent,name,start_us,dur_us},...]} with
  /// deterministic ordering and numbers — golden-testable under MockClock.
  std::string ToJson() const;

  /// Human `--explain`-style breakdown: one line per span, indented by
  /// depth, with duration and share of the parent's time. Open spans
  /// render as "(open)".
  std::string Render() const;

 private:
  std::string name_;
  Clock* clock_;
  int64_t epoch_micros_;

  mutable Mutex mu_;
  std::vector<SpanRecord> spans_ MQA_GUARDED_BY(mu_);
};

/// The calling thread's ambient trace (installed by ScopedTrace), or null.
/// Instrumented code constructs ambient `Span`s unconditionally; when no
/// trace is installed they are no-ops, so tracing costs one thread-local
/// load on untraced paths.
Trace* ActiveTrace();

/// The ambient span id new child spans attach under (-1 at the root).
int32_t ActiveSpanId();

/// Installs a trace (and optionally a parent span id) as the calling
/// thread's ambient trace for the current scope. Used at the top of a
/// query turn and when a DAG hands a stage to a pool thread: the worker
/// re-installs the pipeline's trace with the pipeline span as parent, so
/// stage spans land in the right subtree.
class ScopedTrace {
 public:
  explicit ScopedTrace(Trace* trace, int32_t parent_span = -1);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  Trace* prev_trace_;
  int32_t prev_span_;
};

/// RAII span. The ambient form attaches to ActiveTrace() under the
/// current ambient span and becomes the ambient span itself until
/// destruction; the explicit form writes into a given trace under a given
/// parent without touching thread-local state.
class Span {
 public:
  explicit Span(std::string_view name);                     // ambient
  Span(Trace* trace, std::string_view name, int32_t parent);  // explicit
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Id within the trace (-1 when no trace was active).
  int32_t id() const { return id_; }

 private:
  Trace* trace_ = nullptr;
  int32_t id_ = -1;
  int32_t prev_span_ = -1;
  bool ambient_ = false;
};

}  // namespace mqa

#endif  // MQA_COMMON_TRACE_H_
