#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/clock.h"
#include "common/json.h"

namespace mqa {

namespace {

/// min_/max_ rest at the identity elements so Record needs no seeding
/// branch; Snapshot maps a still-idle extreme back to 0.
constexpr double kIdleMin = std::numeric_limits<double>::infinity();
constexpr double kIdleMax = -std::numeric_limits<double>::infinity();

/// Relaxed CAS add for pre-C++20-hardware-support atomic doubles.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

// --- HistogramSnapshot ------------------------------------------------------

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest rank, 1-based: the k-th smallest recorded value.
  const uint64_t k = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * count)));
  uint64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] < k) {
      cum += counts[i];
      continue;
    }
    if (i >= bounds.size()) return max;  // overflow bucket
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    // Position of the k-th value inside this bucket, interpolated as if
    // the bucket's samples were evenly spread over (lower, upper].
    const double frac =
        static_cast<double>(k - cum) / static_cast<double>(counts[i]);
    const double est = lower + (upper - lower) * frac;
    return std::clamp(est, min, max);
  }
  return max;
}

Status HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.bounds != bounds) {
    return Status::InvalidArgument(
        "cannot merge histograms with different bucket bounds");
  }
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  if (other.count > 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = count == 0 ? other.max : std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  return Status::OK();
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (bounds_.empty()) bounds_.push_back(1.0);
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
  min_.store(kIdleMin, std::memory_order_relaxed);
  max_.store(kIdleMax, std::memory_order_relaxed);
}

void Histogram::Record(double value) {
  // First finite bound >= value, i.e. bucket i spans (bounds[i-1],
  // bounds[i]]; everything above the last bound lands in the overflow slot.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  count_.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  // min_/max_ idle at +/-inf until the first Record lands.
  if (!std::isfinite(snap.min)) snap.min = 0.0;
  if (!std::isfinite(snap.max)) snap.max = 0.0;
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kIdleMin, std::memory_order_relaxed);
  max_.store(kIdleMax, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::DefaultLatencyBoundsMs() {
  static const std::vector<double>* const kBounds =  // NOLINT(mqa-naked-new)
      new std::vector<double>{0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,
                              2.5,  5.0,   10.0, 25.0, 50.0, 100.0,
                              250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
  return *kBounds;
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked singleton (never destroyed, shared by threads).
  static MetricsRegistry* const kRegistry =  // NOLINT(mqa-naked-new)
      new MetricsRegistry();
  return *kRegistry;
}

// Find-or-create, reader-writer style: the hot path (name already
// registered) finishes under the shared lock; only a genuinely new name
// upgrades to the exclusive side, re-checking after the reacquire since
// another thread may have inserted it in the gap. Entries are never
// removed, so pointers read under either mode stay valid forever.
Counter* MetricsRegistry::GetCounter(std::string_view name) {
  {
    ReaderLock lock(&mu_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return it->second.get();
  }
  WriterLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  {
    ReaderLock lock(&mu_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second.get();
  }
  WriterLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<double>& bounds) {
  {
    ReaderLock lock(&mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second.get();
  }
  WriterLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  ReaderLock lock(&mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  ReaderLock lock(&mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

HistogramSnapshot MetricsRegistry::HistogramSnapshotOf(
    std::string_view name) const {
  ReaderLock lock(&mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{}
                                 : it->second->Snapshot();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  ReaderLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  ReaderLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  return names;
}

void MetricsRegistry::ResetAll() {
  ReaderLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsRegistry::ToJson() const {
  ReaderLock lock(&mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name).UInt(counter->value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name).Number(gauge->value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->Snapshot();
    w.Key(name).BeginObject();
    w.Key("count").UInt(snap.count);
    w.Key("sum").Number(snap.sum);
    w.Key("min").Number(snap.min);
    w.Key("max").Number(snap.max);
    w.Key("mean").Number(snap.Mean());
    w.Key("p50").Number(snap.Percentile(50));
    w.Key("p95").Number(snap.Percentile(95));
    w.Key("p99").Number(snap.Percentile(99));
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] == 0) continue;  // sparse: skip empty buckets
      w.BeginArray();
      if (i < snap.bounds.size()) {
        w.Number(snap.bounds[i]);
      } else {
        w.Null();  // overflow bucket has no upper bound
      }
      w.UInt(snap.counts[i]);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

// --- ScopedLatency ----------------------------------------------------------

ScopedLatency::ScopedLatency(Histogram* histogram)
    : histogram_(histogram), start_micros_(SystemClock()->NowMicros()) {}

ScopedLatency::~ScopedLatency() {
  if (histogram_ == nullptr) return;
  histogram_->Record(
      static_cast<double>(SystemClock()->NowMicros() - start_micros_) / 1e3);
}

}  // namespace mqa
