#ifndef MQA_COMMON_ALIGNED_H_
#define MQA_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace mqa {

/// Minimal over-aligned allocator so hot flat buffers (vector rows, pivot
/// tables) start on a cache-line/SIMD-register boundary. Stateless, so
/// containers using it stay copyable/movable/swappable like plain
/// std::vector.
template <typename T, size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// SIMD-friendly alignment for float buffers: one AVX-512 register / one
/// cache line. All rows of a padded row-major buffer whose stride is a
/// multiple of kSimdAlignment/sizeof(float) share this alignment.
inline constexpr size_t kSimdAlignment = 64;

using AlignedFloatVector =
    std::vector<float, AlignedAllocator<float, kSimdAlignment>>;

}  // namespace mqa

#endif  // MQA_COMMON_ALIGNED_H_
